//! Arithmetic-intensity analysis and AU usage classification.
//!
//! AUM's usage-aware stage (paper §VI-B1) judges an operator's AU usage via
//! its arithmetic intensity (ARI). The paper gives closed forms for the QKV
//! mapping: `6·(1/d + 3/(B·L))⁻¹` in prefill and `6·(1/d + 3/B)⁻¹` in
//! decode — with larger model dimension `d`, batch `B` and input length
//! `L`, ARI (and thus AU usage `U_AU`) rises.

use serde::{Deserialize, Serialize};

use aum_platform::topology::AuUsageLevel;

/// QKV-mapping arithmetic intensity in the prefill phase (§VI-B1).
///
/// # Panics
///
/// Panics if any argument is zero.
#[must_use]
pub fn qkv_ari_prefill(d: usize, batch: usize, input_len: usize) -> f64 {
    assert!(
        d > 0 && batch > 0 && input_len > 0,
        "dimensions must be positive"
    );
    6.0 / (1.0 / d as f64 + 3.0 / (batch as f64 * input_len as f64))
}

/// QKV-mapping arithmetic intensity in the decode phase (§VI-B1).
///
/// # Panics
///
/// Panics if any argument is zero.
#[must_use]
pub fn qkv_ari_decode(d: usize, batch: usize) -> f64 {
    assert!(d > 0 && batch > 0, "dimensions must be positive");
    6.0 / (1.0 / d as f64 + 3.0 / batch as f64)
}

/// Normalized AU usage `U_AU ∈ [0, 1)` derived from arithmetic intensity.
///
/// A saturating map `ari / (ari + ARI_HALF)`: operators below the machine
/// balance point barely use the AU; far above it they keep the AU busy.
#[must_use]
pub fn usage_from_ari(ari: f64) -> f64 {
    /// ARI at which an operator reaches 50% of its asymptotic AU usage.
    /// GenA's machine balance: 206.4 TFLOPS / 233.8 GB/s ≈ 880 flops/byte;
    /// the half-point sits well below balance because tile pipelines hide
    /// part of the traffic.
    const ARI_HALF: f64 = 220.0;
    let a = ari.max(0.0);
    a / (a + ARI_HALF)
}

/// Threshold classifier mapping `U_AU` to the three usage levels the
/// profiler buckets by. The paper sets the thresholds from server-level AU
/// usage distributions (§VI-B2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageClassifier {
    /// Usage at or above which an operator counts as Low (below: None).
    pub low_threshold: f64,
    /// Usage at or above which an operator counts as High.
    pub high_threshold: f64,
}

impl Default for UsageClassifier {
    fn default() -> Self {
        // Calibrated so llama-class decode (ARI ≈ 10-20) lands in Low and
        // prefill (ARI ≈ thousands) in High.
        UsageClassifier {
            low_threshold: 0.01,
            high_threshold: 0.55,
        }
    }
}

impl UsageClassifier {
    /// Creates a classifier.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ low < high ≤ 1`.
    #[must_use]
    pub fn new(low_threshold: f64, high_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&low_threshold)
                && (0.0..=1.0).contains(&high_threshold)
                && low_threshold < high_threshold,
            "thresholds must satisfy 0 <= low < high <= 1"
        );
        UsageClassifier {
            low_threshold,
            high_threshold,
        }
    }

    /// Classifies a normalized usage value.
    #[must_use]
    pub fn classify(&self, usage: f64) -> AuUsageLevel {
        if usage >= self.high_threshold {
            AuUsageLevel::High
        } else if usage >= self.low_threshold {
            AuUsageLevel::Low
        } else {
            AuUsageLevel::None
        }
    }

    /// Classifies an operator directly from its ARI.
    #[must_use]
    pub fn classify_ari(&self, ari: f64) -> AuUsageLevel {
        self.classify(usage_from_ari(ari))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_ari_matches_formula() {
        // d=4096, B=16, L=512: 6/(1/4096 + 3/8192) = 6/(0.000244+0.000366)
        let ari = qkv_ari_prefill(4096, 16, 512);
        assert!((ari - 9830.4).abs() < 1.0, "got {ari}");
    }

    #[test]
    fn decode_ari_matches_formula() {
        // d=4096, B=16: 6/(1/4096 + 3/16) ≈ 31.95
        let ari = qkv_ari_decode(4096, 16);
        assert!((ari - 31.95).abs() < 0.1, "got {ari}");
    }

    #[test]
    fn ari_grows_with_batch_and_length() {
        assert!(qkv_ari_decode(4096, 32) > qkv_ari_decode(4096, 16));
        assert!(qkv_ari_prefill(4096, 16, 1024) > qkv_ari_prefill(4096, 16, 256));
        assert!(qkv_ari_decode(8192, 16) > qkv_ari_decode(4096, 16));
    }

    #[test]
    fn usage_is_monotone_and_bounded() {
        let mut last = -1.0;
        for ari in [0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0] {
            let u = usage_from_ari(ari);
            assert!(u > last);
            assert!((0.0..1.0).contains(&u));
            last = u;
        }
        assert_eq!(usage_from_ari(-5.0), 0.0);
    }

    #[test]
    fn classifier_places_llm_phases() {
        let c = UsageClassifier::default();
        let prefill = usage_from_ari(qkv_ari_prefill(4096, 16, 512));
        let decode = usage_from_ari(qkv_ari_decode(4096, 16));
        assert_eq!(c.classify(prefill), AuUsageLevel::High);
        assert_eq!(c.classify(decode), AuUsageLevel::Low);
        assert_eq!(c.classify(0.0), AuUsageLevel::None);
    }

    #[test]
    fn classify_ari_shortcut_agrees() {
        let c = UsageClassifier::default();
        for ari in [0.0, 5.0, 50.0, 5000.0] {
            assert_eq!(c.classify_ari(ari), c.classify(usage_from_ari(ari)));
        }
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        let _ = UsageClassifier::new(0.9, 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = qkv_ari_decode(0, 16);
    }
}
