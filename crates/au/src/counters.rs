//! Synthetic PMU counters.
//!
//! The paper characterizes AU usage with three practical metrics (§IV-A1):
//!
//! - **AMX cycle ratio** (`tma_amx_busy`): fraction of cycles AMX is busy —
//!   14.4% for llama2-7b prefill, 1.5% for decode on GenA (Table II);
//! - **AMX µop ratio** (`tma_fp_amx / tma_fp_arith`): 3.7% / 0.5%;
//! - **`avx_insts`**: higher in decode, where vector-size operations run on
//!   AVX rather than AMX.
//!
//! This module accumulates those counters from cost-model executions so the
//! profiler can consume them exactly as it would consume `perf` output.

use serde::{Deserialize, Serialize};

use crate::gemm::GemmExecution;
use crate::unit::AuKind;

/// AMX FP µops issued per AMX-busy cycle, folded with the ~1 µop/cycle
/// issue rate of the surrounding code. Calibrated so the Table II pairs
/// (cycle ratio 14.4% ↔ µop ratio 3.7%; 1.5% ↔ 0.5%) are reproduced.
const AMX_UOPS_PER_BUSY_CYCLE: f64 = 0.26;
/// Average µops issued per core cycle across the serving loop.
const UOPS_PER_CYCLE: f64 = 1.0;
/// BF16 lanes of one AVX-512 FMA µop.
const AVX_OPS_PER_UOP: f64 = 64.0;

/// Accumulated counter state.
///
/// # Examples
///
/// ```
/// use aum_au::counters::PmuCounters;
///
/// let c = PmuCounters::new();
/// assert_eq!(c.amx_cycle_ratio(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PmuCounters {
    /// Total aggregated core cycles.
    pub cycles: f64,
    /// Cycles the AMX unit was busy (aggregated across cores).
    pub amx_busy_cycles: f64,
    /// FP µops executed by AMX.
    pub amx_fp_uops: f64,
    /// FP µops executed by AVX units.
    pub avx_fp_uops: f64,
    /// FP µops executed by scalar pipes.
    pub scalar_fp_uops: f64,
    /// Total µops of any kind.
    pub total_uops: f64,
}

impl PmuCounters {
    /// Fresh, zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        PmuCounters::default()
    }

    /// Records a kernel execution that ran on `cores` cores at `freq_ghz`
    /// using unit `kind`.
    pub fn record_gemm(&mut self, exec: &GemmExecution, kind: AuKind, cores: usize, freq_ghz: f64) {
        let wall_cycles = exec.time.as_secs_f64() * freq_ghz * 1e9 * cores as f64;
        self.cycles += wall_cycles;
        self.total_uops += wall_cycles * UOPS_PER_CYCLE;
        let flops = exec.achieved_tflops * 1e12 * exec.time.as_secs_f64();
        match kind {
            AuKind::Amx => {
                let busy = exec.au_busy_cycles_per_core * cores as f64;
                self.amx_busy_cycles += busy;
                self.amx_fp_uops += busy * AMX_UOPS_PER_BUSY_CYCLE;
            }
            AuKind::Avx512 => {
                self.avx_fp_uops += flops / AVX_OPS_PER_UOP;
            }
            AuKind::Scalar => {
                self.scalar_fp_uops += flops / 2.0;
            }
        }
    }

    /// Records `secs` of non-kernel activity (framework glue, attention
    /// softmax, sampling) on `cores` cores at `freq_ghz`, of which a
    /// fraction of µops are AVX.
    pub fn record_other(&mut self, secs: f64, cores: usize, freq_ghz: f64, avx_uop_frac: f64) {
        let cycles = secs.max(0.0) * freq_ghz * 1e9 * cores as f64;
        self.cycles += cycles;
        let uops = cycles * UOPS_PER_CYCLE;
        self.total_uops += uops;
        self.avx_fp_uops += uops * avx_uop_frac.clamp(0.0, 1.0);
    }

    /// `tma_amx_busy`: AMX-busy cycle fraction.
    #[must_use]
    pub fn amx_cycle_ratio(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.amx_busy_cycles / self.cycles
        }
    }

    /// `tma_fp_amx / tma_fp_arith` proxy: AMX FP µops over total µop slots.
    #[must_use]
    pub fn amx_uop_ratio(&self) -> f64 {
        if self.total_uops == 0.0 {
            0.0
        } else {
            self.amx_fp_uops / self.total_uops
        }
    }

    /// `avx_insts` rate: AVX FP µops per total µop slot.
    #[must_use]
    pub fn avx_inst_ratio(&self) -> f64 {
        if self.total_uops == 0.0 {
            0.0
        } else {
            self.avx_fp_uops / self.total_uops
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &PmuCounters) {
        self.cycles += other.cycles;
        self.amx_busy_cycles += other.amx_busy_cycles;
        self.amx_fp_uops += other.amx_fp_uops;
        self.avx_fp_uops += other.avx_fp_uops;
        self.scalar_fp_uops += other.scalar_fp_uops;
        self.total_uops += other.total_uops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_time, ExecContext, GemmShape};
    use crate::unit::{AuSpec, Precision};
    use aum_platform::spec::PlatformSpec;
    use aum_platform::units::GbPerSec;

    fn run(shape: GemmShape, kind: AuKind, freq: f64) -> PmuCounters {
        let spec = PlatformSpec::gen_a();
        let unit = AuSpec::for_platform(&spec, kind);
        let ctx = ExecContext::new(96, freq, GbPerSec(233.8));
        let exec = gemm_time(shape, Precision::Bf16, &unit, &ctx);
        let mut c = PmuCounters::new();
        c.record_gemm(&exec, kind, 96, freq);
        c
    }

    #[test]
    fn prefill_cycle_ratio_matches_table2() {
        // Pure prefill GEMM: cycle ratio ≈ achieved/peak ≈ 15-22%.
        let c = run(GemmShape::new(8192, 4096, 22016), AuKind::Amx, 2.5);
        let r = c.amx_cycle_ratio();
        assert!((0.10..=0.26).contains(&r), "prefill amx cycle ratio {r}");
    }

    #[test]
    fn decode_cycle_ratio_matches_table2() {
        let c = run(GemmShape::new(16, 4096, 22016), AuKind::Amx, 3.1);
        let r = c.amx_cycle_ratio();
        assert!((0.005..=0.035).contains(&r), "decode amx cycle ratio {r}");
    }

    #[test]
    fn uop_ratio_tracks_cycle_ratio_scaled() {
        let c = run(GemmShape::new(8192, 4096, 22016), AuKind::Amx, 2.5);
        let expected = c.amx_cycle_ratio() * 0.26;
        assert!((c.amx_uop_ratio() - expected).abs() < 1e-9);
    }

    #[test]
    fn avx_kernels_count_as_avx() {
        let c = run(GemmShape::new(1, 4096, 4096), AuKind::Avx512, 3.1);
        assert_eq!(c.amx_cycle_ratio(), 0.0);
        assert!(c.avx_inst_ratio() > 0.0);
    }

    #[test]
    fn record_other_adds_avx_glue() {
        let mut c = PmuCounters::new();
        c.record_other(0.010, 48, 3.1, 0.2);
        assert!(c.cycles > 0.0);
        assert!((c.avx_inst_ratio() - 0.2).abs() < 1e-9);
        assert_eq!(c.amx_cycle_ratio(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let a = run(GemmShape::new(16, 4096, 22016), AuKind::Amx, 3.1);
        let mut b = run(GemmShape::new(16, 4096, 22016), AuKind::Amx, 3.1);
        b.merge(&a);
        assert!((b.cycles - 2.0 * a.cycles).abs() / b.cycles < 1e-12);
        assert!((b.amx_busy_cycles - 2.0 * a.amx_busy_cycles).abs() / b.amx_busy_cycles < 1e-12);
    }

    #[test]
    fn empty_counters_are_zero() {
        let c = PmuCounters::new();
        assert_eq!(c.amx_cycle_ratio(), 0.0);
        assert_eq!(c.amx_uop_ratio(), 0.0);
        assert_eq!(c.avx_inst_ratio(), 0.0);
    }

    #[test]
    fn decode_mixed_workload_has_more_avx_than_prefill() {
        // Decode = small AMX GEMMs + lots of AVX attention/elementwise glue.
        let mut decode = run(GemmShape::new(16, 4096, 22016), AuKind::Amx, 3.1);
        decode.record_other(0.002, 96, 3.1, 0.35);
        let mut prefill = run(GemmShape::new(8192, 4096, 22016), AuKind::Amx, 2.5);
        prefill.record_other(0.002, 96, 2.5, 0.10);
        assert!(decode.avx_inst_ratio() > prefill.avx_inst_ratio());
    }
}
