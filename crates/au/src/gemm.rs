//! Roofline GEMM cost model.
//!
//! Kernel time is the max of a compute phase (sustained AU throughput) and
//! a memory phase (operand traffic over the granted bandwidth), plus fixed
//! launch overhead. The model reproduces the paper's §IV-A3 measurements on
//! GenA:
//!
//! - prefill GEMM `8192×4096×22016` → ≈40 TFLOPS (compute-bound);
//! - decode GEMM `16×4096×22016` → ≈4 TFLOPS (bandwidth-bound).

use serde::{Deserialize, Serialize};

use aum_platform::units::GbPerSec;
use aum_sim::time::SimDuration;

use crate::unit::{AuSpec, Precision};

/// DRAM bandwidth one core can demand (limited memory-level parallelism of
/// a single core's miss queue); a kernel on `c` cores can stream at most
/// `c × PER_CORE_BW_GBS`, so bandwidth-bound phases still need a minimum
/// core count — decode cannot shrink to one core for free.
pub const PER_CORE_BW_GBS: f64 = 8.0;

/// Dimensions of `C[M][N] += A[M][K] · B[K][N]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Output rows (batch×sequence for LLM projections).
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl GemmShape {
    /// Creates a shape.
    #[must_use]
    pub const fn new(m: usize, k: usize, n: usize) -> Self {
        GemmShape { m, k, n }
    }

    /// Floating-point operations (multiply + add).
    #[must_use]
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }

    /// DRAM traffic in bytes: read A and B, read-modify-write C.
    #[must_use]
    pub fn bytes(&self, prec: Precision) -> f64 {
        let e = prec.bytes() as f64;
        let a = self.m as f64 * self.k as f64;
        let b = self.k as f64 * self.n as f64;
        let c = 2.0 * self.m as f64 * self.n as f64;
        (a + b + c) * e
    }

    /// Arithmetic intensity in flops per byte.
    #[must_use]
    pub fn arithmetic_intensity(&self, prec: Precision) -> f64 {
        let bytes = self.bytes(prec);
        if bytes == 0.0 {
            0.0
        } else {
            self.flops() / bytes
        }
    }

    /// True for degenerate (zero-dimension) shapes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.m == 0 || self.k == 0 || self.n == 0
    }
}

impl core::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.k, self.n)
    }
}

/// Which roofline leg limited a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// Limited by AU throughput.
    Compute,
    /// Limited by memory bandwidth.
    Memory,
}

/// Execution environment of a kernel: how many cores it spans, at what
/// frequency, with how much granted DRAM bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecContext {
    /// Cores the kernel is parallelized across (≥ 1).
    pub cores: usize,
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// DRAM bandwidth granted to the kernel.
    pub bandwidth: GbPerSec,
    /// Extra multiplier (≥ 1) on the memory phase from cache-partition
    /// traffic amplification and pool queuing.
    pub memory_penalty: f64,
    /// Extra multiplier (≥ 1) on the compute phase from SMT port contention.
    pub compute_penalty: f64,
}

impl ExecContext {
    /// A clean context with no contention penalties.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or frequency/bandwidth are not positive.
    #[must_use]
    pub fn new(cores: usize, freq_ghz: f64, bandwidth: GbPerSec) -> Self {
        assert!(cores > 0, "kernel needs at least one core");
        assert!(freq_ghz > 0.0, "frequency must be positive");
        assert!(bandwidth.value() > 0.0, "bandwidth must be positive");
        ExecContext {
            cores,
            freq_ghz,
            bandwidth,
            memory_penalty: 1.0,
            compute_penalty: 1.0,
        }
    }

    /// Returns a copy with the given contention penalties.
    ///
    /// # Panics
    ///
    /// Panics if a penalty is below 1.
    #[must_use]
    pub fn with_penalties(mut self, memory: f64, compute: f64) -> Self {
        assert!(
            memory >= 1.0 && compute >= 1.0,
            "penalties are multipliers ≥ 1"
        );
        self.memory_penalty = memory;
        self.compute_penalty = compute;
        self
    }
}

/// Cost-model output for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmExecution {
    /// Wall time of the kernel.
    pub time: SimDuration,
    /// Pure compute-leg time.
    pub compute_time: SimDuration,
    /// Pure memory-leg time.
    pub memory_time: SimDuration,
    /// Limiting leg.
    pub bound: Bound,
    /// Achieved throughput in TFLOPS.
    pub achieved_tflops: f64,
    /// Ideal busy cycles of the AU itself per core (for PMU synthesis):
    /// flops / (ops_per_cycle × cores).
    pub au_busy_cycles_per_core: f64,
}

/// Evaluates the roofline model for one kernel.
///
/// # Examples
///
/// ```
/// use aum_au::gemm::{gemm_time, ExecContext, GemmShape};
/// use aum_au::unit::{AuKind, AuSpec, Precision};
/// use aum_platform::spec::PlatformSpec;
/// use aum_platform::units::GbPerSec;
///
/// let spec = PlatformSpec::gen_a();
/// let amx = AuSpec::for_platform(&spec, AuKind::Amx);
/// let ctx = ExecContext::new(96, 2.5, GbPerSec(233.8));
/// let exec = gemm_time(GemmShape::new(8192, 4096, 22016), Precision::Bf16, &amx, &ctx);
/// assert!(exec.achieved_tflops > 30.0);
/// ```
#[must_use]
pub fn gemm_time(
    shape: GemmShape,
    prec: Precision,
    unit: &AuSpec,
    ctx: &ExecContext,
) -> GemmExecution {
    if shape.is_empty() {
        return GemmExecution {
            time: SimDuration::ZERO,
            compute_time: SimDuration::ZERO,
            memory_time: SimDuration::ZERO,
            bound: Bound::Compute,
            achieved_tflops: 0.0,
            au_busy_cycles_per_core: 0.0,
        };
    }
    let flops = shape.flops();
    let per_core = unit.sustained_flops_per_core(ctx.freq_ghz, shape.m, shape.n, prec);
    let startup = unit.startup_cycles / (ctx.freq_ghz * 1e9);
    let compute_secs =
        (flops / (per_core * ctx.cores as f64).max(1.0)) * ctx.compute_penalty + startup;
    let reachable_bw = ctx
        .bandwidth
        .value()
        .min(ctx.cores as f64 * PER_CORE_BW_GBS);
    let memory_secs = shape.bytes(prec) / (reachable_bw * 1e9) * ctx.memory_penalty;
    let (wall, bound) = if compute_secs >= memory_secs {
        (compute_secs, Bound::Compute)
    } else {
        (memory_secs, Bound::Memory)
    };
    GemmExecution {
        time: SimDuration::from_secs_f64(wall),
        compute_time: SimDuration::from_secs_f64(compute_secs),
        memory_time: SimDuration::from_secs_f64(memory_secs),
        bound,
        achieved_tflops: flops / wall / 1e12,
        au_busy_cycles_per_core: flops
            / (unit.ops_per_cycle * prec.throughput_factor() * ctx.cores as f64),
    }
}

/// Picks the faster of AMX and AVX-512 for a shape — the paper notes the
/// best AU choice changes with matrix dimensions (§II-B, §IV-A1).
#[must_use]
pub fn pick_unit<'a>(
    shape: GemmShape,
    prec: Precision,
    amx: &'a AuSpec,
    avx: &'a AuSpec,
    ctx: &ExecContext,
) -> (&'a AuSpec, GemmExecution) {
    let with_amx = gemm_time(shape, prec, amx, ctx);
    let with_avx = gemm_time(shape, prec, avx, ctx);
    // Tie-break equal wall times (both memory-bound) by the lighter compute
    // leg: the unit that occupies execution ports for less time wins, which
    // is why vector-size operations run on AVX in practice (§IV-A1).
    if (with_amx.time, with_amx.compute_time) <= (with_avx.time, with_avx.compute_time) {
        (amx, with_amx)
    } else {
        (avx, with_avx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::AuKind;
    use aum_platform::spec::PlatformSpec;

    fn amx() -> AuSpec {
        AuSpec::for_platform(&PlatformSpec::gen_a(), AuKind::Amx)
    }

    fn avx() -> AuSpec {
        AuSpec::for_platform(&PlatformSpec::gen_a(), AuKind::Avx512)
    }

    fn gen_a_ctx() -> ExecContext {
        ExecContext::new(96, 2.5, GbPerSec(233.8))
    }

    #[test]
    fn prefill_gemm_matches_paper_tflops() {
        // §IV-A3: 8192×4096×22016 achieves ≈40.57 TFLOPS on GenA.
        let e = gemm_time(
            GemmShape::new(8192, 4096, 22016),
            Precision::Bf16,
            &amx(),
            &gen_a_ctx(),
        );
        assert_eq!(e.bound, Bound::Compute);
        assert!(
            (34.0..=48.0).contains(&e.achieved_tflops),
            "expected ≈40 TFLOPS, got {}",
            e.achieved_tflops
        );
    }

    #[test]
    fn decode_gemm_matches_paper_tflops() {
        // §IV-A3: 16×4096×22016 achieves ≈3.87 TFLOPS, memory bound.
        let e = gemm_time(
            GemmShape::new(16, 4096, 22016),
            Precision::Bf16,
            &amx(),
            &gen_a_ctx(),
        );
        assert_eq!(e.bound, Bound::Memory);
        assert!(
            (2.5..=5.5).contains(&e.achieved_tflops),
            "expected ≈3.9 TFLOPS, got {}",
            e.achieved_tflops
        );
    }

    #[test]
    fn shape_math() {
        let s = GemmShape::new(16, 4096, 22016);
        assert!((s.flops() - 2.0 * 16.0 * 4096.0 * 22016.0).abs() < 1.0);
        assert!(s.arithmetic_intensity(Precision::Bf16) > 10.0);
        assert!(s.arithmetic_intensity(Precision::Bf16) < 32.0);
        assert!(!s.is_empty());
        assert!(GemmShape::new(0, 1, 1).is_empty());
        assert_eq!(format!("{s}"), "16x4096x22016");
    }

    #[test]
    fn empty_shape_is_free() {
        let e = gemm_time(
            GemmShape::new(0, 4096, 4096),
            Precision::Bf16,
            &amx(),
            &gen_a_ctx(),
        );
        assert_eq!(e.time, SimDuration::ZERO);
        assert_eq!(e.achieved_tflops, 0.0);
    }

    #[test]
    fn memory_penalty_slows_memory_bound_kernels() {
        let shape = GemmShape::new(16, 4096, 22016);
        let clean = gemm_time(shape, Precision::Bf16, &amx(), &gen_a_ctx());
        let penalized = gemm_time(
            shape,
            Precision::Bf16,
            &amx(),
            &gen_a_ctx().with_penalties(2.0, 1.0),
        );
        let ratio = penalized.time.as_secs_f64() / clean.time.as_secs_f64();
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "memory-bound kernel slows ≈2x, got {ratio}"
        );
    }

    #[test]
    fn compute_penalty_slows_compute_bound_kernels() {
        let shape = GemmShape::new(8192, 4096, 22016);
        let clean = gemm_time(shape, Precision::Bf16, &amx(), &gen_a_ctx());
        let penalized = gemm_time(
            shape,
            Precision::Bf16,
            &amx(),
            &gen_a_ctx().with_penalties(1.0, 1.5),
        );
        assert!(penalized.time > clean.time);
    }

    #[test]
    fn more_cores_speed_up_compute_bound_only() {
        let shape = GemmShape::new(8192, 4096, 22016);
        let few = gemm_time(
            shape,
            Precision::Bf16,
            &amx(),
            &ExecContext::new(24, 2.5, GbPerSec(233.8)),
        );
        let many = gemm_time(shape, Precision::Bf16, &amx(), &gen_a_ctx());
        assert!(many.time < few.time);

        let mem_shape = GemmShape::new(16, 4096, 22016);
        let few = gemm_time(
            mem_shape,
            Precision::Bf16,
            &amx(),
            &ExecContext::new(24, 2.5, GbPerSec(233.8)),
        );
        let many = gemm_time(mem_shape, Precision::Bf16, &amx(), &gen_a_ctx());
        let ratio = few.time.as_secs_f64() / many.time.as_secs_f64();
        // 24 cores reach 24 × PER_CORE_BW = 192 GB/s of the 233.8 GB/s pool,
        // so the penalty is the bandwidth-ceiling ratio, not a compute one.
        assert!(
            ratio < 1.35,
            "memory-bound kernel barely benefits from cores, got {ratio}"
        );
        assert!(
            ratio > 1.1,
            "the per-core bandwidth ceiling must bite at 24 cores, got {ratio}"
        );
    }

    #[test]
    fn pick_unit_switches_with_m() {
        // Per-core kernel choice: on a few cores the compute leg dominates
        // and the tile-fill penalty decides the winner.
        let ctx = ExecContext::new(4, 2.5, GbPerSec(233.8));
        let (amx, avx) = (amx(), avx());
        let (unit, _) = pick_unit(
            GemmShape::new(1, 4096, 4096),
            Precision::Bf16,
            &amx,
            &avx,
            &ctx,
        );
        assert_eq!(unit.kind, AuKind::Avx512, "m=1 vector op favors AVX");
        let (unit, _) = pick_unit(
            GemmShape::new(512, 4096, 4096),
            Precision::Bf16,
            &amx,
            &avx,
            &ctx,
        );
        assert_eq!(unit.kind, AuKind::Amx, "large GEMM favors AMX");
    }

    #[test]
    fn frequency_scales_compute_leg() {
        let shape = GemmShape::new(8192, 4096, 22016);
        let slow = gemm_time(
            shape,
            Precision::Bf16,
            &amx(),
            &ExecContext::new(96, 2.1, GbPerSec(233.8)),
        );
        let fast = gemm_time(
            shape,
            Precision::Bf16,
            &amx(),
            &ExecContext::new(96, 2.5, GbPerSec(233.8)),
        );
        let ratio = slow.time.as_secs_f64() / fast.time.as_secs_f64();
        assert!((ratio - 2.5 / 2.1).abs() < 0.02);
    }

    #[test]
    fn au_busy_cycles_track_flops() {
        let shape = GemmShape::new(16, 4096, 22016);
        let e = gemm_time(shape, Precision::Bf16, &amx(), &gen_a_ctx());
        let expected = shape.flops() / (amx().ops_per_cycle * 96.0);
        assert!((e.au_busy_cycles_per_core - expected).abs() / expected < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_context_panics() {
        let _ = ExecContext::new(0, 2.5, GbPerSec(100.0));
    }

    #[test]
    fn higher_bandwidth_platform_accelerates_decode_shape() {
        let shape = GemmShape::new(16, 4096, 22016);
        let ddr = gemm_time(
            shape,
            Precision::Bf16,
            &amx(),
            &ExecContext::new(96, 2.5, GbPerSec(233.8)),
        );
        let hbm = gemm_time(
            shape,
            Precision::Bf16,
            &amx(),
            &ExecContext::new(96, 2.5, GbPerSec(588.0)),
        );
        assert!(hbm.time.as_secs_f64() < ddr.time.as_secs_f64() * 0.6);
    }
}
