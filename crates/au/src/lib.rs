//! # aum-au — accelerator-unit models
//!
//! The Variation-1/Variation-3 substrate of the AUM reproduction:
//!
//! - [`mod@unit`]: AMX/AVX-512/scalar unit specs derived from the Table I
//!   platform TFLOPS, including tile-fill efficiency (why small matrices
//!   prefer AVX);
//! - [`gemm`]: roofline cost model calibrated to the paper's §IV-A3 GEMM
//!   measurements (≈40 TFLOPS prefill, ≈4 TFLOPS decode on GenA);
//! - [`ari`]: arithmetic-intensity formulas (§VI-B1) and the `U_AU` usage
//!   classifier;
//! - [`topdown`]: top-down cycle accounting signatures (Fig 7/8, Table II)
//!   with allocation-pressure modulation;
//! - [`counters`]: synthetic PMU counters (`tma_amx_busy`, µop ratios,
//!   `avx_insts`) accumulated from cost-model executions;
//! - [`sharing`]: shared-AU topologies (SME-style clusters, §VIII future
//!   work) with their contention dimension.
//!
//! ## Example
//!
//! ```
//! use aum_au::gemm::{gemm_time, Bound, ExecContext, GemmShape};
//! use aum_au::unit::{AuKind, AuSpec, Precision};
//! use aum_platform::spec::PlatformSpec;
//! use aum_platform::units::GbPerSec;
//!
//! let spec = PlatformSpec::gen_a();
//! let amx = AuSpec::for_platform(&spec, AuKind::Amx);
//! let ctx = ExecContext::new(96, 2.5, spec.mem_bw);
//!
//! // The paper's two signature GEMMs land on opposite roofline legs:
//! let prefill = gemm_time(GemmShape::new(8192, 4096, 22016), Precision::Bf16, &amx, &ctx);
//! let decode = gemm_time(GemmShape::new(16, 4096, 22016), Precision::Bf16, &amx, &ctx);
//! assert_eq!(prefill.bound, Bound::Compute);
//! assert_eq!(decode.bound, Bound::Memory);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ari;
pub mod counters;
pub mod gemm;
pub mod sharing;
pub mod topdown;
pub mod unit;

pub use counters::PmuCounters;
pub use gemm::{gemm_time, Bound, ExecContext, GemmExecution, GemmShape};
pub use unit::{AuKind, AuSpec, Precision};
