//! Shared-AU topologies (paper §VIII, "Hardware topology adaptability").
//!
//! AMX places one accelerator unit on every physical core, so the paper can
//! assume "AU is not shared for hyperthreads" (§V-A). Emerging topologies
//! break that assumption: ARM's C1-SME2 unit is *shared among a cluster of
//! physical cores*, introducing a new contention dimension the paper flags
//! as future work. This module models it: under a shared topology, the
//! effective per-core AU throughput divides by the number of active cores
//! contending for each unit, and the profiler can sweep the new dimension.

use serde::{Deserialize, Serialize};

use crate::unit::AuSpec;

/// How accelerator units map onto physical cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AuTopology {
    /// One AU per physical core (Intel AMX; the paper's assumption).
    #[default]
    PerCore,
    /// One AU shared by a cluster of physical cores (ARM SME2-style).
    SharedCluster {
        /// Physical cores per accelerator unit.
        cores_per_au: usize,
    },
}

impl AuTopology {
    /// Fraction of a core's nominal AU throughput available when
    /// `active_cores` of the platform's `total_cores` issue AU work.
    ///
    /// Per-core units never contend. A shared cluster saturates once more
    /// cores than units are active: with `cores_per_au = 4` and every core
    /// busy, each core sustains only a quarter of the nominal rate.
    ///
    /// # Panics
    ///
    /// Panics if `total_cores` is zero or `active_cores > total_cores`.
    #[must_use]
    pub fn contention_factor(&self, active_cores: usize, total_cores: usize) -> f64 {
        assert!(total_cores > 0, "platform needs cores");
        assert!(
            active_cores <= total_cores,
            "more active cores than the platform has"
        );
        match *self {
            AuTopology::PerCore => 1.0,
            AuTopology::SharedCluster { cores_per_au } => {
                assert!(cores_per_au > 0, "a cluster shares at least one core");
                if active_cores == 0 {
                    return 1.0;
                }
                let units = total_cores.div_ceil(cores_per_au);
                // Active cores spread across clusters; each unit serves up
                // to `cores_per_au` contenders round-robin.
                let contenders_per_unit = active_cores as f64 / units as f64;
                (1.0 / contenders_per_unit).min(1.0)
            }
        }
    }

    /// Returns an [`AuSpec`] with its sustained throughput derated by the
    /// contention factor at the given occupancy.
    #[must_use]
    pub fn derate(&self, unit: &AuSpec, active_cores: usize, total_cores: usize) -> AuSpec {
        let factor = self.contention_factor(active_cores, total_cores);
        AuSpec {
            sustained_frac: unit.sustained_frac * factor,
            ..*unit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::AuKind;
    use aum_platform::spec::PlatformSpec;

    #[test]
    fn per_core_never_contends() {
        let t = AuTopology::PerCore;
        for active in [0usize, 1, 48, 96] {
            assert_eq!(t.contention_factor(active, 96), 1.0);
        }
    }

    #[test]
    fn shared_cluster_divides_throughput_at_saturation() {
        let t = AuTopology::SharedCluster { cores_per_au: 4 };
        // All 96 cores active on 24 units: 4 contenders each → 1/4.
        assert!((t.contention_factor(96, 96) - 0.25).abs() < 1e-12);
        // 24 active cores on 24 units: one each → no contention.
        assert!((t.contention_factor(24, 96) - 1.0).abs() < 1e-12);
        // Idle platform: nominal.
        assert_eq!(t.contention_factor(0, 96), 1.0);
    }

    #[test]
    fn contention_is_monotone_in_occupancy() {
        let t = AuTopology::SharedCluster { cores_per_au: 4 };
        let mut last = f64::INFINITY;
        for active in (0..=96).step_by(8) {
            let f = t.contention_factor(active, 96);
            assert!(
                f <= last + 1e-12,
                "more active cores cannot raise throughput"
            );
            assert!((0.0..=1.0).contains(&f));
            last = f;
        }
    }

    #[test]
    fn derate_scales_sustained_fraction_only() {
        let spec = PlatformSpec::gen_a();
        let amx = AuSpec::for_platform(&spec, AuKind::Amx);
        let t = AuTopology::SharedCluster { cores_per_au: 2 };
        let derated = t.derate(&amx, 96, 96);
        assert!((derated.sustained_frac - amx.sustained_frac * 0.5).abs() < 1e-12);
        assert_eq!(derated.ops_per_cycle, amx.ops_per_cycle);
        assert_eq!(derated.tile_m, amx.tile_m);
    }

    #[test]
    fn shared_topology_slows_compute_bound_kernels() {
        use crate::gemm::{gemm_time, ExecContext, GemmShape};
        use crate::unit::Precision;
        use aum_platform::units::GbPerSec;
        let spec = PlatformSpec::gen_a();
        let amx = AuSpec::for_platform(&spec, AuKind::Amx);
        let shared = AuTopology::SharedCluster { cores_per_au: 4 }.derate(&amx, 96, 96);
        let ctx = ExecContext::new(96, 2.5, GbPerSec(233.8));
        let shape = GemmShape::new(8192, 4096, 22016);
        let dedicated = gemm_time(shape, Precision::Bf16, &amx, &ctx);
        let contended = gemm_time(shape, Precision::Bf16, &shared, &ctx);
        let ratio = contended.time.as_secs_f64() / dedicated.time.as_secs_f64();
        assert!(
            (3.0..4.5).contains(&ratio),
            "4-way shared unit should slow compute-bound prefill ≈4×, got {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "more active cores")]
    fn oversubscribed_occupancy_panics() {
        let _ = AuTopology::PerCore.contention_factor(97, 96);
    }
}
