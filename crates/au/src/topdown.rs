//! Top-down microarchitecture cycle accounting (Yasin's methodology).
//!
//! The paper characterizes Variation-3 with the top-down method (§IV-C):
//! AU code has an *oversupplied frontend* (SIMD paradigm → tiny instruction
//! working set, ≈1% frontend bound vs ≈5-20% for scalar datacenter code)
//! and an *overloaded backend* (84-97% backend bound, split between
//! instruction-window serialization in the core and the memory hierarchy).
//!
//! [`TopDown`] carries the full tree; [`signature`] provides per-workload
//! base vectors calibrated to Fig 7/8 and Table II, and
//! [`TopDown::under_pressure`] modulates a signature by the current
//! resource allocation so the profiler sees allocation-dependent bounds.

use serde::{Deserialize, Serialize};

use aum_platform::spec::PlatformSpec;

/// Level-1 top-down split. Components sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Slots that retired useful µops.
    pub retiring: f64,
    /// Slots wasted on mispredicted paths.
    pub bad_speculation: f64,
    /// Slots starved by fetch/decode.
    pub frontend_bound: f64,
    /// Slots stalled on execution or memory resources.
    pub backend_bound: f64,
}

impl CycleBreakdown {
    /// Creates a normalized breakdown.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or all are zero.
    #[must_use]
    pub fn new(
        retiring: f64,
        bad_speculation: f64,
        frontend_bound: f64,
        backend_bound: f64,
    ) -> Self {
        for v in [retiring, bad_speculation, frontend_bound, backend_bound] {
            assert!(v >= 0.0, "cycle components must be non-negative");
        }
        let sum = retiring + bad_speculation + frontend_bound + backend_bound;
        assert!(sum > 0.0, "cycle breakdown cannot be all-zero");
        CycleBreakdown {
            retiring: retiring / sum,
            bad_speculation: bad_speculation / sum,
            frontend_bound: frontend_bound / sum,
            backend_bound: backend_bound / sum,
        }
    }
}

/// Split of backend-core stalls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreBoundBreakdown {
    /// Serializing operations waiting on the instruction window / ROB —
    /// the paper finds these critical for AU execution (Fig 8a).
    pub serializing: f64,
    /// Execution-port contention.
    pub ports: f64,
    /// Remaining core stalls (divider, scheduler).
    pub other: f64,
}

/// Split of backend-memory stalls across the hierarchy. Components are
/// fractions of *memory-bound* slots and sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBoundBreakdown {
    /// L1-data-cache bound.
    pub l1: f64,
    /// L2 bound.
    pub l2: f64,
    /// LLC bound.
    pub llc: f64,
    /// DRAM bound (bandwidth + latency).
    pub dram: f64,
}

/// Full top-down tree for one workload on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopDown {
    /// Level-1 split.
    pub cycles: CycleBreakdown,
    /// Fraction of backend slots that are core-bound (rest are memory).
    pub core_frac: f64,
    /// Core-bound decomposition.
    pub core: CoreBoundBreakdown,
    /// Memory-bound decomposition.
    pub memory: MemoryBoundBreakdown,
}

impl TopDown {
    /// Backend-bound fraction of all slots (Table II "BB").
    #[must_use]
    pub fn backend_bound(&self) -> f64 {
        self.cycles.backend_bound
    }

    /// Memory-bound fraction of all slots.
    #[must_use]
    pub fn memory_bound(&self) -> f64 {
        self.cycles.backend_bound * (1.0 - self.core_frac)
    }

    /// Core-bound fraction of all slots.
    #[must_use]
    pub fn core_bound(&self) -> f64 {
        self.cycles.backend_bound * self.core_frac
    }

    /// DRAM-bound fraction of all slots (Table II "DB").
    #[must_use]
    pub fn dram_bound(&self) -> f64 {
        self.memory_bound() * self.memory.dram
    }

    /// Returns this signature modulated by runtime pressure:
    /// `bw_slowdown ≥ 1` (memory-pool starvation factor) inflates the DRAM
    /// component; `llc_amplification ≥ 1` (traffic amplification from a
    /// shrunken LLC partition) inflates the LLC component. The tree is
    /// re-normalized, eating into retiring slots.
    #[must_use]
    pub fn under_pressure(&self, bw_slowdown: f64, llc_amplification: f64) -> TopDown {
        let bw = bw_slowdown.max(1.0);
        let llc = llc_amplification.max(1.0);
        let mem = self.memory_bound();
        let extra_dram = mem * self.memory.dram * (bw - 1.0) * 0.8;
        let extra_llc = mem * self.memory.llc * (llc - 1.0) * 0.8;
        let new_backend = (self.cycles.backend_bound + extra_dram + extra_llc).min(0.99);
        let grow = new_backend - self.cycles.backend_bound;
        // Backend grows at the expense of retiring.
        let retiring = (self.cycles.retiring - grow).max(0.005);
        let cycles = CycleBreakdown::new(
            retiring,
            self.cycles.bad_speculation,
            self.cycles.frontend_bound,
            new_backend,
        );
        // Within memory, re-weight toward the inflated components.
        let m = self.memory;
        let mem_weights = [
            m.l1,
            m.l2,
            m.llc * (1.0 + (llc - 1.0) * 0.8),
            m.dram * (1.0 + (bw - 1.0) * 0.8),
        ];
        let wsum: f64 = mem_weights.iter().sum();
        let memory = MemoryBoundBreakdown {
            l1: mem_weights[0] / wsum,
            l2: mem_weights[1] / wsum,
            llc: mem_weights[2] / wsum,
            dram: mem_weights[3] / wsum,
        };
        // Memory's share of backend grows with the added memory stalls.
        let old_mem_abs = self.memory_bound();
        let new_mem_abs = old_mem_abs + extra_dram + extra_llc;
        let core_frac = (1.0 - new_mem_abs / new_backend).clamp(0.0, 1.0);
        TopDown {
            cycles,
            core_frac,
            core: self.core,
            memory,
        }
    }

    /// Splits a unit of busy work by boundedness for the attribution
    /// ledger (`aum_sim::attrib`), under the given runtime pressure.
    ///
    /// The signature's *base* memory-bound slots split across the cache
    /// hierarchy via [`MemoryBoundBreakdown`]. Runtime pressure dilates the
    /// affected stall components linearly — a grant slowed `s`× stretches
    /// every DRAM stall `s`×, a partition amplifying traffic `a`× stretches
    /// LLC stalls `a`× — and the dilation mass beyond the calm signature is
    /// reported separately as `contention`, so the ledger can blame the
    /// co-runner rather than the workload. (This deliberately does *not*
    /// route through [`under_pressure`], whose backend-bound cap saturates
    /// for already-memory-bound signatures and would swallow large
    /// slowdowns — wall time has no such ceiling.) Everything that is not
    /// a memory stall — retiring, frontend, bad speculation and core-bound
    /// serialization — counts as `compute`: instruction-window
    /// serialization is a property of AU execution itself (Fig 8a), not of
    /// the shared memory system.
    ///
    /// [`under_pressure`]: TopDown::under_pressure
    #[must_use]
    pub fn work_split(&self, bw_slowdown: f64, llc_amplification: f64) -> WorkSplit {
        let bw = bw_slowdown.max(1.0);
        let amp = llc_amplification.max(1.0);
        let base_mem = self.memory_bound();
        let l1 = base_mem * self.memory.l1;
        let l2 = base_mem * self.memory.l2;
        let llc = base_mem * self.memory.llc;
        let dram = base_mem * self.memory.dram;
        let compute = (1.0 - base_mem).max(0.0);
        let contention = dram * (bw - 1.0) + llc * (amp - 1.0);
        let sum = compute + l1 + l2 + llc + dram + contention;
        WorkSplit {
            compute: compute / sum,
            l1: l1 / sum,
            l2: l2 / sum,
            llc: llc / sum,
            dram: dram / sum,
            contention: contention / sum,
        }
    }
}

/// How a unit of busy work divides by boundedness, normalized to sum
/// to 1 — the shape [`TopDown::work_split`] hands to the attribution
/// ledger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkSplit {
    /// Productive / in-core fraction (retiring, frontend, speculation,
    /// core-bound serialization).
    pub compute: f64,
    /// L1-bound fraction of the workload's own memory stalls.
    pub l1: f64,
    /// L2-bound fraction.
    pub l2: f64,
    /// LLC-bound fraction.
    pub llc: f64,
    /// DRAM-bound fraction.
    pub dram: f64,
    /// Memory stalls added by runtime pressure (co-runner contention on
    /// bandwidth and LLC capacity) beyond the base signature.
    pub contention: f64,
}

impl WorkSplit {
    /// Sum of all components (1 up to rounding).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.compute + self.l1 + self.l2 + self.llc + self.dram + self.contention
    }
}

/// The workloads Fig 7 characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignatureKind {
    /// Pure dense GEMM kernel loop.
    Gemm,
    /// LLM prefill phase.
    Prefill,
    /// LLM decode phase.
    Decode,
    /// SPEC CPU `mcf` (pointer-chasing scalar benchmark).
    Mcf,
    /// Google-style `ads` service (large-footprint scalar server code).
    Ads,
}

impl core::fmt::Display for SignatureKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SignatureKind::Gemm => write!(f, "GEMM"),
            SignatureKind::Prefill => write!(f, "Prefill"),
            SignatureKind::Decode => write!(f, "Decode"),
            SignatureKind::Mcf => write!(f, "mcf"),
            SignatureKind::Ads => write!(f, "ads"),
        }
    }
}

/// Base top-down signature of a workload on a platform.
///
/// Frontend bound grows mildly with platform memory bandwidth — the paper's
/// observation (3) in §IV-C1 that higher-bandwidth platforms show greater
/// frontend bound (the backend drains faster, exposing fetch).
///
/// # Examples
///
/// ```
/// use aum_au::topdown::{signature, SignatureKind};
/// use aum_platform::spec::PlatformSpec;
///
/// let spec = PlatformSpec::gen_a();
/// let prefill = signature(SignatureKind::Prefill, &spec);
/// let ads = signature(SignatureKind::Ads, &spec);
/// assert!(prefill.cycles.frontend_bound < ads.cycles.frontend_bound);
/// ```
#[must_use]
pub fn signature(kind: SignatureKind, spec: &PlatformSpec) -> TopDown {
    // (retiring, bad_spec, frontend, backend, core_frac,
    //  core: serializing/ports/other, memory: l1/l2/llc/dram)
    let (r, b, f, bb, core_frac, core, mem) = match kind {
        SignatureKind::Gemm => (
            0.05,
            0.005,
            0.010,
            0.935,
            0.40,
            CoreBoundBreakdown {
                serializing: 0.55,
                ports: 0.30,
                other: 0.15,
            },
            MemoryBoundBreakdown {
                l1: 0.26,
                l2: 0.24,
                llc: 0.22,
                dram: 0.28,
            },
        ),
        // Table II llama2-7b prefill: BB 92%, DB 24%; hierarchy levels
        // matter similarly (Fig 8b).
        SignatureKind::Prefill => (
            0.06,
            0.010,
            0.010,
            0.920,
            0.35,
            CoreBoundBreakdown {
                serializing: 0.55,
                ports: 0.30,
                other: 0.15,
            },
            MemoryBoundBreakdown {
                l1: 0.22,
                l2: 0.20,
                llc: 0.18,
                dram: 0.40,
            },
        ),
        // Table II llama2-7b decode: BB 96%, DB 59%; DRAM bandwidth
        // dominates (Fig 8b), serializing ratio higher (Fig 8a).
        SignatureKind::Decode => (
            0.030,
            0.005,
            0.005,
            0.960,
            0.19,
            CoreBoundBreakdown {
                serializing: 0.70,
                ports: 0.18,
                other: 0.12,
            },
            MemoryBoundBreakdown {
                l1: 0.09,
                l2: 0.08,
                llc: 0.07,
                dram: 0.76,
            },
        ),
        SignatureKind::Mcf => (
            0.200,
            0.050,
            0.050,
            0.700,
            0.15,
            CoreBoundBreakdown {
                serializing: 0.25,
                ports: 0.45,
                other: 0.30,
            },
            MemoryBoundBreakdown {
                l1: 0.10,
                l2: 0.15,
                llc: 0.20,
                dram: 0.55,
            },
        ),
        SignatureKind::Ads => (
            0.300,
            0.060,
            0.200,
            0.440,
            0.45,
            CoreBoundBreakdown {
                serializing: 0.20,
                ports: 0.55,
                other: 0.25,
            },
            MemoryBoundBreakdown {
                l1: 0.25,
                l2: 0.25,
                llc: 0.25,
                dram: 0.25,
            },
        ),
    };
    // Frontend grows ~∛ with bandwidth relative to GenA.
    let fe_scale = (spec.mem_bw.value() / 233.8).powf(0.33);
    let frontend = (f * fe_scale).min(0.35);
    TopDown {
        cycles: CycleBreakdown::new(r, b, frontend, bb),
        core_frac,
        core,
        memory: mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_a() -> PlatformSpec {
        PlatformSpec::gen_a()
    }

    #[test]
    fn breakdown_normalizes() {
        let c = CycleBreakdown::new(2.0, 1.0, 1.0, 4.0);
        let sum = c.retiring + c.bad_speculation + c.frontend_bound + c.backend_bound;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((c.backend_bound - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_component_rejected() {
        let _ = CycleBreakdown::new(-0.1, 0.1, 0.1, 0.9);
    }

    #[test]
    fn prefill_matches_table2() {
        let t = signature(SignatureKind::Prefill, &gen_a());
        assert!(
            (t.backend_bound() - 0.92).abs() < 0.01,
            "BB {}",
            t.backend_bound()
        );
        assert!(
            (t.dram_bound() - 0.24).abs() < 0.03,
            "DB {}",
            t.dram_bound()
        );
    }

    #[test]
    fn decode_matches_table2() {
        let t = signature(SignatureKind::Decode, &gen_a());
        assert!(
            (t.backend_bound() - 0.96).abs() < 0.01,
            "BB {}",
            t.backend_bound()
        );
        assert!(
            (t.dram_bound() - 0.59).abs() < 0.03,
            "DB {}",
            t.dram_bound()
        );
    }

    #[test]
    fn au_frontend_is_oversupplied() {
        // §IV-C1 observation (1): AU frontend bound ≈1% vs ≈5%+ for scalar.
        let spec = gen_a();
        for kind in [
            SignatureKind::Gemm,
            SignatureKind::Prefill,
            SignatureKind::Decode,
        ] {
            assert!(signature(kind, &spec).cycles.frontend_bound < 0.02);
        }
        assert!(signature(SignatureKind::Mcf, &spec).cycles.frontend_bound >= 0.05);
        assert!(signature(SignatureKind::Ads, &spec).cycles.frontend_bound >= 0.15);
    }

    #[test]
    fn higher_bandwidth_platforms_raise_frontend_bound() {
        // §IV-C1 observation (3).
        let a = signature(SignatureKind::Prefill, &PlatformSpec::gen_a());
        let b = signature(SignatureKind::Prefill, &PlatformSpec::gen_b());
        let c = signature(SignatureKind::Prefill, &PlatformSpec::gen_c());
        assert!(b.cycles.frontend_bound > a.cycles.frontend_bound);
        assert!(c.cycles.frontend_bound > a.cycles.frontend_bound);
    }

    #[test]
    fn decode_serializes_more_than_prefill() {
        // Fig 8a: decode has higher serializing demands.
        let spec = gen_a();
        let p = signature(SignatureKind::Prefill, &spec);
        let d = signature(SignatureKind::Decode, &spec);
        assert!(d.core.serializing > p.core.serializing);
    }

    #[test]
    fn decode_is_dram_dominated() {
        // Fig 8b: decode memory bound dominated by DRAM; prefill spread out.
        let spec = gen_a();
        let d = signature(SignatureKind::Decode, &spec);
        assert!(d.memory.dram > 0.6);
        let p = signature(SignatureKind::Prefill, &spec);
        assert!(p.memory.dram < 0.5);
        assert!(p.memory.l1 > 0.15);
    }

    #[test]
    fn pressure_inflates_dram_bound() {
        let t = signature(SignatureKind::Decode, &gen_a());
        let pressured = t.under_pressure(2.0, 1.0);
        assert!(pressured.dram_bound() > t.dram_bound());
        assert!(pressured.backend_bound() > t.backend_bound());
        assert!(pressured.backend_bound() <= 0.99);
        let sum = pressured.cycles.retiring
            + pressured.cycles.bad_speculation
            + pressured.cycles.frontend_bound
            + pressured.cycles.backend_bound;
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pressure_inflates_llc_bound() {
        let t = signature(SignatureKind::Prefill, &gen_a());
        let pressured = t.under_pressure(1.0, 2.5);
        assert!(pressured.memory.llc > t.memory.llc);
        let msum = pressured.memory.l1
            + pressured.memory.l2
            + pressured.memory.llc
            + pressured.memory.dram;
        assert!((msum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_pressure_is_identity_like() {
        let t = signature(SignatureKind::Decode, &gen_a());
        let same = t.under_pressure(1.0, 1.0);
        assert!((same.backend_bound() - t.backend_bound()).abs() < 1e-9);
        assert!((same.dram_bound() - t.dram_bound()).abs() < 1e-9);
    }

    #[test]
    fn accessors_are_consistent() {
        let t = signature(SignatureKind::Prefill, &gen_a());
        assert!((t.core_bound() + t.memory_bound() - t.backend_bound()).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", SignatureKind::Gemm), "GEMM");
        assert_eq!(format!("{}", SignatureKind::Ads), "ads");
    }

    #[test]
    fn work_split_sums_to_one() {
        let spec = gen_a();
        for kind in [
            SignatureKind::Gemm,
            SignatureKind::Prefill,
            SignatureKind::Decode,
            SignatureKind::Mcf,
            SignatureKind::Ads,
        ] {
            let w = signature(kind, &spec).work_split(1.7, 1.4);
            assert!((w.sum() - 1.0).abs() < 1e-12, "{kind}: {}", w.sum());
            for v in [w.compute, w.l1, w.l2, w.llc, w.dram, w.contention] {
                assert!(v >= 0.0, "{kind}: negative component");
            }
        }
    }

    #[test]
    fn pressure_becomes_contention_not_dram() {
        let t = signature(SignatureKind::Decode, &gen_a());
        let calm = t.work_split(1.0, 1.0);
        let pressured = t.work_split(2.0, 1.0);
        assert!(calm.contention.abs() < 1e-12, "no pressure, no contention");
        assert!(pressured.contention > 0.05, "bandwidth pressure must show");
        // The workload's own DRAM share is diluted, not inflated — the
        // *added* stalls land on the co-runner's account.
        assert!(pressured.dram < calm.dram + 1e-12);
        assert!(pressured.compute < calm.compute);
    }
}
