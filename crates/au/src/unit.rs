//! Accelerator-unit specifications.
//!
//! Every physical core of the modeled platforms carries an AMX unit (eight
//! 1 KiB tile registers + a TMUL array executing 1024 BF16 ops/cycle,
//! paper §II-A) and AVX-512 FMA pipes. Per-core throughput is derived from
//! the platform's Table I TFLOPS figures, which the paper computes at base
//! frequency.

use serde::{Deserialize, Serialize};

use aum_platform::spec::{Generation, PlatformSpec};
use aum_platform::units::Tflops;

/// The execution-unit families a matrix kernel can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuKind {
    /// Plain scalar FMA pipeline.
    Scalar,
    /// AVX-512 vector units.
    Avx512,
    /// AMX tile-matrix unit.
    Amx,
}

impl core::fmt::Display for AuKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuKind::Scalar => write!(f, "Scalar"),
            AuKind::Avx512 => write!(f, "AVX-512"),
            AuKind::Amx => write!(f, "AMX"),
        }
    }
}

/// Numeric precision of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// bfloat16 — supported since Sapphire Rapids.
    Bf16,
    /// float16 — added in Granite Rapids (§II-A).
    Fp16,
    /// float8 — added in Diamond Rapids (§II-A); no modeled platform has it.
    Fp8,
    /// int8 inference.
    Int8,
}

impl Precision {
    /// Bytes per element.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            Precision::Bf16 | Precision::Fp16 => 2,
            Precision::Fp8 | Precision::Int8 => 1,
        }
    }

    /// Throughput multiplier relative to BF16 on units that support the
    /// precision (narrow types double MAC density).
    #[must_use]
    pub fn throughput_factor(self) -> f64 {
        match self {
            Precision::Bf16 | Precision::Fp16 => 1.0,
            Precision::Fp8 | Precision::Int8 => 2.0,
        }
    }

    /// Whether a platform generation's AMX supports this precision.
    #[must_use]
    pub fn supported_by(self, generation: Generation) -> bool {
        match self {
            Precision::Bf16 | Precision::Int8 => true,
            Precision::Fp16 => generation == Generation::GraniteRapids,
            Precision::Fp8 => false,
        }
    }
}

/// Per-core capability description of one AU kind on one platform.
///
/// # Examples
///
/// ```
/// use aum_au::unit::{AuKind, AuSpec};
/// use aum_platform::spec::PlatformSpec;
///
/// let amx = AuSpec::for_platform(&PlatformSpec::gen_a(), AuKind::Amx);
/// let avx = AuSpec::for_platform(&PlatformSpec::gen_a(), AuKind::Avx512);
/// assert!(amx.ops_per_cycle > avx.ops_per_cycle);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuSpec {
    /// Unit family.
    pub kind: AuKind,
    /// BF16 flops per cycle per core at full issue.
    pub ops_per_cycle: f64,
    /// Tile/vector granularity in the M dimension (AMX tiles hold 16 rows).
    pub tile_m: usize,
    /// Tile/vector granularity in the N dimension (AMX tiles hold 64 BF16
    /// columns across the B tile pair).
    pub tile_n: usize,
    /// Fraction of peak a tuned kernel sustains end-to-end, including tile
    /// loads, layout shuffles and framework overhead. Calibrated so the
    /// paper's measured GEMM TFLOPS (§IV-A3) are reproduced.
    pub sustained_frac: f64,
    /// Fixed per-kernel launch overhead in core cycles (dispatch, tile
    /// configuration via `LDTILECFG`, loop setup).
    pub startup_cycles: f64,
}

/// AMX kernel efficiency: paper §IV-A3 measures 40.57 TFLOPS for large
/// prefill GEMMs against a 206.4 TFLOPS Table I peak, i.e. ≈20% sustained
/// through the full xFasterTransformer stack.
const AMX_SUSTAINED: f64 = 0.22;
/// AVX-512 kernels are long-tuned and sustain a much larger peak fraction.
const AVX_SUSTAINED: f64 = 0.55;
/// Scalar loop efficiency.
const SCALAR_SUSTAINED: f64 = 0.85;

impl AuSpec {
    /// Derives the per-core spec of `kind` on `platform`.
    ///
    /// Per-core ops/cycle divide the platform's Table I TFLOPS (quoted at
    /// base frequency) by `cores × base_freq`, matching the paper's own
    /// "AU TFLOPS calculated based on base frequencies".
    #[must_use]
    pub fn for_platform(platform: &PlatformSpec, kind: AuKind) -> Self {
        let per_core_hz = platform.base_freq.value() * 1e9;
        let per_core =
            |peak: Tflops| peak.value() * 1e12 / (platform.total_cores() as f64 * per_core_hz);
        match kind {
            AuKind::Amx => AuSpec {
                kind,
                ops_per_cycle: per_core(platform.amx_peak),
                tile_m: 16,
                tile_n: 64,
                sustained_frac: AMX_SUSTAINED,
                startup_cycles: 2200.0,
            },
            AuKind::Avx512 => AuSpec {
                kind,
                ops_per_cycle: per_core(platform.avx_peak),
                tile_m: 1,
                tile_n: 32,
                sustained_frac: AVX_SUSTAINED,
                startup_cycles: 350.0,
            },
            AuKind::Scalar => AuSpec {
                kind,
                ops_per_cycle: 4.0,
                tile_m: 1,
                tile_n: 1,
                sustained_frac: SCALAR_SUSTAINED,
                startup_cycles: 50.0,
            },
        }
    }

    /// Fraction of tile/vector lanes a matrix of `m × n` actually fills:
    /// small matrices waste AMX tile rows, which is why "the most efficient
    /// AU choices change with matrix dimensions" (§II-B).
    #[must_use]
    pub fn fill_efficiency(&self, m: usize, n: usize) -> f64 {
        if m == 0 || n == 0 {
            return 0.0;
        }
        let fill = |dim: usize, tile: usize| -> f64 {
            if tile <= 1 {
                1.0
            } else {
                let tiles = dim.div_ceil(tile);
                dim as f64 / (tiles * tile) as f64
            }
        };
        fill(m, self.tile_m) * fill(n, self.tile_n)
    }

    /// Sustained per-core throughput (flops/s) at frequency `ghz` for an
    /// `m × n`-shaped output and the given precision.
    #[must_use]
    pub fn sustained_flops_per_core(&self, ghz: f64, m: usize, n: usize, prec: Precision) -> f64 {
        self.ops_per_cycle
            * ghz.max(0.0)
            * 1e9
            * self.sustained_frac
            * self.fill_efficiency(m, n)
            * prec.throughput_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_a_ops_per_cycle_derive_from_table1() {
        let spec = PlatformSpec::gen_a();
        let amx = AuSpec::for_platform(&spec, AuKind::Amx);
        // 206.4e12 / (96 cores * 2.7e9 Hz) ≈ 796 ops/cycle.
        assert!(
            (amx.ops_per_cycle - 796.3).abs() < 1.0,
            "got {}",
            amx.ops_per_cycle
        );
        let avx = AuSpec::for_platform(&spec, AuKind::Avx512);
        assert!(
            (avx.ops_per_cycle - 98.8).abs() < 1.0,
            "got {}",
            avx.ops_per_cycle
        );
    }

    #[test]
    fn gen_c_is_stronger_per_core() {
        let a = AuSpec::for_platform(&PlatformSpec::gen_a(), AuKind::Amx);
        let c = AuSpec::for_platform(&PlatformSpec::gen_c(), AuKind::Amx);
        assert!(c.ops_per_cycle > a.ops_per_cycle);
    }

    #[test]
    fn fill_efficiency_full_tiles() {
        let amx = AuSpec::for_platform(&PlatformSpec::gen_a(), AuKind::Amx);
        assert!((amx.fill_efficiency(16, 64) - 1.0).abs() < 1e-12);
        assert!((amx.fill_efficiency(32, 128) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fill_efficiency_partial_tiles() {
        let amx = AuSpec::for_platform(&PlatformSpec::gen_a(), AuKind::Amx);
        assert!((amx.fill_efficiency(8, 64) - 0.5).abs() < 1e-12);
        assert!((amx.fill_efficiency(1, 64) - 1.0 / 16.0).abs() < 1e-12);
        assert_eq!(amx.fill_efficiency(0, 64), 0.0);
    }

    #[test]
    fn avx_ignores_m_granularity() {
        let avx = AuSpec::for_platform(&PlatformSpec::gen_a(), AuKind::Avx512);
        assert!((avx.fill_efficiency(1, 64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_m_prefers_avx() {
        // §IV-A1: vector-size operations are more efficient on AVX than AMX.
        let spec = PlatformSpec::gen_a();
        let amx = AuSpec::for_platform(&spec, AuKind::Amx);
        let avx = AuSpec::for_platform(&spec, AuKind::Avx512);
        let m1_amx = amx.sustained_flops_per_core(2.5, 1, 4096, Precision::Bf16);
        let m1_avx = avx.sustained_flops_per_core(3.1, 1, 4096, Precision::Bf16);
        assert!(m1_avx > m1_amx, "m=1 should favor AVX");
        let m16_amx = amx.sustained_flops_per_core(2.5, 16, 4096, Precision::Bf16);
        let m16_avx = avx.sustained_flops_per_core(3.1, 16, 4096, Precision::Bf16);
        assert!(m16_amx > m16_avx, "m=16 should favor AMX");
    }

    #[test]
    fn precision_support_matrix() {
        assert!(Precision::Bf16.supported_by(Generation::SapphireRapids));
        assert!(!Precision::Fp16.supported_by(Generation::SapphireRapids));
        assert!(Precision::Fp16.supported_by(Generation::GraniteRapids));
        assert!(!Precision::Fp8.supported_by(Generation::GraniteRapids));
    }

    #[test]
    fn precision_bytes_and_factor() {
        assert_eq!(Precision::Bf16.bytes(), 2);
        assert_eq!(Precision::Int8.bytes(), 1);
        assert_eq!(Precision::Int8.throughput_factor(), 2.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", AuKind::Amx), "AMX");
        assert_eq!(format!("{}", AuKind::Avx512), "AVX-512");
    }
}
