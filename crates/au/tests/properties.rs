//! Property-based tests of the accelerator-unit models: the roofline cost
//! model must behave like physics under arbitrary shapes and contexts.

use proptest::prelude::*;

use aum_au::ari::{qkv_ari_decode, qkv_ari_prefill, usage_from_ari, UsageClassifier};
use aum_au::gemm::{gemm_time, ExecContext, GemmShape, PER_CORE_BW_GBS};
use aum_au::topdown::{signature, SignatureKind};
use aum_au::unit::{AuKind, AuSpec, Precision};
use aum_platform::spec::PlatformSpec;
use aum_platform::units::GbPerSec;

fn any_shape() -> impl Strategy<Value = GemmShape> {
    (1usize..8192, 1usize..8192, 1usize..32768).prop_map(|(m, k, n)| GemmShape::new(m, k, n))
}

fn any_kind() -> impl Strategy<Value = AuKind> {
    prop_oneof![
        Just(AuKind::Amx),
        Just(AuKind::Avx512),
        Just(AuKind::Scalar)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gemm_time_is_positive_and_bounded_by_both_legs(
        shape in any_shape(),
        kind in any_kind(),
        cores in 1usize..128,
        freq in 0.5f64..4.0,
        bw in 10.0f64..800.0,
    ) {
        let spec = PlatformSpec::gen_a();
        let unit = AuSpec::for_platform(&spec, kind);
        let ctx = ExecContext::new(cores, freq, GbPerSec(bw));
        let exec = gemm_time(shape, Precision::Bf16, &unit, &ctx);
        prop_assert!(exec.time.as_secs_f64() > 0.0);
        prop_assert!(exec.time >= exec.compute_time.min(exec.memory_time));
        prop_assert!(
            exec.time.as_nanos() >= exec.compute_time.max(exec.memory_time).as_nanos()
        );
        // Achieved throughput can never exceed the bandwidth roofline.
        let reachable = bw.min(cores as f64 * PER_CORE_BW_GBS);
        let bw_roof = shape.arithmetic_intensity(Precision::Bf16) * reachable * 1e9 / 1e12;
        prop_assert!(exec.achieved_tflops <= bw_roof * (1.0 + 1e-6) + 1e-9);
    }

    #[test]
    fn gemm_time_is_monotone_in_resources(
        shape in any_shape(),
        cores in 1usize..96,
        freq in 0.5f64..3.0,
        bw in 20.0f64..400.0,
    ) {
        let spec = PlatformSpec::gen_a();
        let unit = AuSpec::for_platform(&spec, AuKind::Amx);
        let base = gemm_time(shape, Precision::Bf16, &unit,
            &ExecContext::new(cores, freq, GbPerSec(bw)));
        let more_cores = gemm_time(shape, Precision::Bf16, &unit,
            &ExecContext::new(cores + 8, freq, GbPerSec(bw)));
        let more_freq = gemm_time(shape, Precision::Bf16, &unit,
            &ExecContext::new(cores, freq + 0.5, GbPerSec(bw)));
        let more_bw = gemm_time(shape, Precision::Bf16, &unit,
            &ExecContext::new(cores, freq, GbPerSec(bw + 100.0)));
        prop_assert!(more_cores.time <= base.time);
        prop_assert!(more_freq.time <= base.time);
        prop_assert!(more_bw.time <= base.time);
    }

    #[test]
    fn penalties_never_speed_things_up(
        shape in any_shape(),
        mem_pen in 1.0f64..4.0,
        cmp_pen in 1.0f64..4.0,
    ) {
        let spec = PlatformSpec::gen_a();
        let unit = AuSpec::for_platform(&spec, AuKind::Amx);
        let clean = ExecContext::new(48, 2.5, GbPerSec(200.0));
        let dirty = clean.with_penalties(mem_pen, cmp_pen);
        let a = gemm_time(shape, Precision::Bf16, &unit, &clean);
        let b = gemm_time(shape, Precision::Bf16, &unit, &dirty);
        prop_assert!(b.time >= a.time);
        // SimDuration rounds to whole nanoseconds; allow that much slack.
        prop_assert!(
            b.time.as_secs_f64() <= a.time.as_secs_f64() * mem_pen.max(cmp_pen) + 3e-9
        );
    }

    #[test]
    fn flops_and_bytes_scale_linearly(m in 1usize..512, k in 1usize..2048, n in 1usize..2048) {
        let s = GemmShape::new(m, k, n);
        let d = GemmShape::new(2 * m, k, n);
        prop_assert!((d.flops() - 2.0 * s.flops()).abs() < 1.0);
        // Doubling m grows bytes by less than 2x (B matrix is shared).
        prop_assert!(d.bytes(Precision::Bf16) < 2.0 * s.bytes(Precision::Bf16) + 1.0);
        prop_assert!(d.bytes(Precision::Bf16) > s.bytes(Precision::Bf16));
    }

    #[test]
    fn arithmetic_intensity_monotone_in_batch(d in 64usize..8192, b1 in 1usize..64, b2 in 1usize..64, l in 1usize..4096) {
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(qkv_ari_decode(d, hi) >= qkv_ari_decode(d, lo));
        prop_assert!(qkv_ari_prefill(d, hi, l) >= qkv_ari_prefill(d, lo, l));
        // Prefill over L tokens is at least as intense as decode at the
        // same batch.
        prop_assert!(qkv_ari_prefill(d, lo, l) >= qkv_ari_decode(d, lo) - 1e-9);
    }

    #[test]
    fn usage_classification_is_monotone(a1 in 0.0f64..1e6, a2 in 0.0f64..1e6) {
        let c = UsageClassifier::default();
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        let (u_lo, u_hi) = (usage_from_ari(lo), usage_from_ari(hi));
        prop_assert!(u_hi >= u_lo);
        // Classification is monotone: a higher-usage operator never maps to
        // a lower level.
        let rank = |l: aum_platform::topology::AuUsageLevel| match l {
            aum_platform::topology::AuUsageLevel::None => 0,
            aum_platform::topology::AuUsageLevel::Low => 1,
            aum_platform::topology::AuUsageLevel::High => 2,
        };
        prop_assert!(rank(c.classify(u_hi)) >= rank(c.classify(u_lo)));
    }

    #[test]
    fn topdown_stays_normalized_under_pressure(
        bw in 1.0f64..5.0,
        llc in 1.0f64..5.0,
        kind in prop_oneof![
            Just(SignatureKind::Gemm), Just(SignatureKind::Prefill),
            Just(SignatureKind::Decode), Just(SignatureKind::Mcf), Just(SignatureKind::Ads)
        ],
    ) {
        for spec in PlatformSpec::presets() {
            let t = signature(kind, &spec).under_pressure(bw, llc);
            let sum = t.cycles.retiring + t.cycles.bad_speculation
                + t.cycles.frontend_bound + t.cycles.backend_bound;
            prop_assert!((sum - 1.0).abs() < 1e-9);
            let msum = t.memory.l1 + t.memory.l2 + t.memory.llc + t.memory.dram;
            prop_assert!((msum - 1.0).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&t.core_frac));
            prop_assert!(t.dram_bound() <= t.backend_bound() + 1e-9);
        }
    }

    #[test]
    fn fill_efficiency_is_a_fraction(m in 0usize..4096, n in 0usize..4096, kind in any_kind()) {
        let unit = AuSpec::for_platform(&PlatformSpec::gen_a(), kind);
        let e = unit.fill_efficiency(m, n);
        prop_assert!((0.0..=1.0).contains(&e));
        if m > 0 && n > 0 {
            prop_assert!(e > 0.0);
            // Multiples of the tile are perfectly filled.
            let full = unit.fill_efficiency(unit.tile_m * m.max(1), unit.tile_n * n.max(1));
            prop_assert!((full - 1.0).abs() < 1e-12);
        }
    }
}
