//! Validates the paper's <1 ms runtime-controller decision latency claim
//! (§VII-D: "decides resource allocation with one CPU core in less than
//! 1 ms to lookup table").

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aum::controller::AumController;
use aum::manager::{ResourceManager, SystemState};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::time::{SimDuration, SimTime};
use aum_workloads::be::BeKind;

fn bench(c: &mut Criterion) {
    let model = build_model(&ProfilerConfig::smoke(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let mut controller = AumController::new(model);
    let state = SystemState {
        now: SimTime::from_secs(10),
        scenario: Scenario::Chatbot,
        be: Some(BeKind::SpecJbb),
        queue_len: 1,
        head_wait: SimDuration::from_millis(20),
        decode_batch: 12,
        worst_lag_secs: 0.01,
        recent_ttft_p50: 0.3,
        recent_ttft_p90: 0.5,
        recent_tpot_p50: 0.09,
        recent_tpot_p90: 0.098,
        power_w: 220.0,
        bw_utilization: 0.9,
    };
    c.bench_function("controller/decide", |b| {
        b.iter(|| controller.decide(black_box(&state)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
