//! End-to-end co-location experiment throughput: 60 simulated seconds of
//! chatbot + SPECjbb under a static partitioned manager.

use criterion::{criterion_group, criterion_main, Criterion};

use aum::experiment::{run_experiment, ExperimentConfig};
use aum::manager::{Decision, StaticManager};
use aum_llm::engine::EngineMode;
use aum_llm::traces::Scenario;
use aum_platform::rdt::{RdtAllocation, ResourceVector};
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::ProcessorDivision;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

fn bench(c: &mut Criterion) {
    let spec = PlatformSpec::gen_a();
    let mut cfg =
        ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, Some(BeKind::SpecJbb));
    cfg.duration = SimDuration::from_secs(60);
    let decision = Decision {
        division: ProcessorDivision::new(48, 24, 24),
        allocation: RdtAllocation::new(
            ResourceVector::new(10, 10, 0.85),
            ResourceVector::new(6, 6, 0.15),
        ),
        smt_sharing: false,
        engine_mode: EngineMode::Partitioned,
    };
    let mut group = c.benchmark_group("e2e");
    group.sample_size(20);
    group.bench_function("colocation_60s", |b| {
        b.iter(|| {
            let mut mgr = StaticManager::new("static", decision);
            run_experiment(&cfg, &mut mgr)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
