//! Microbenchmark of the GEMM roofline cost model: the innermost primitive
//! of every serving-iteration evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aum_au::gemm::{gemm_time, ExecContext, GemmShape};
use aum_au::unit::{AuKind, AuSpec, Precision};
use aum_platform::spec::PlatformSpec;

fn bench(c: &mut Criterion) {
    let spec = PlatformSpec::gen_a();
    let amx = AuSpec::for_platform(&spec, AuKind::Amx);
    let ctx = ExecContext::new(96, 2.5, spec.mem_bw);
    let prefill = GemmShape::new(8192, 4096, 22016);
    let decode = GemmShape::new(16, 4096, 22016);
    c.bench_function("gemm_cost/prefill_shape", |b| {
        b.iter(|| gemm_time(black_box(prefill), Precision::Bf16, &amx, &ctx))
    });
    c.bench_function("gemm_cost/decode_shape", |b| {
        b.iter(|| gemm_time(black_box(decode), Precision::Bf16, &amx, &ctx))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
