//! Serving-iteration cost evaluation: one decode and one prefill step of
//! llama2-7b through the full op-graph + roofline + PMU pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aum_au::counters::PmuCounters;
use aum_au::gemm::ExecContext;
use aum_au::unit::Precision;
use aum_llm::config::ModelConfig;
use aum_llm::cost::{iteration_cost, AuKernels};
use aum_llm::ops::Phase;
use aum_platform::spec::PlatformSpec;

fn bench(c: &mut Criterion) {
    let spec = PlatformSpec::gen_a();
    let kernels = AuKernels::for_platform(&spec);
    let model = ModelConfig::llama2_7b();
    let decode_ctx = ExecContext::new(96, 3.1, spec.mem_bw);
    let prefill_ctx = ExecContext::new(96, 2.5, spec.mem_bw);
    c.bench_function("llm_iteration/decode_bs16", |b| {
        b.iter(|| {
            let mut pmu = PmuCounters::new();
            iteration_cost(
                black_box(&model),
                Phase::Decode,
                16,
                855,
                Precision::Bf16,
                &kernels,
                &decode_ctx,
                &mut pmu,
            )
        })
    });
    c.bench_function("llm_iteration/prefill_755", |b| {
        b.iter(|| {
            let mut pmu = PmuCounters::new();
            iteration_cost(
                black_box(&model),
                Phase::Prefill,
                755,
                755,
                Precision::Bf16,
                &kernels,
                &prefill_ctx,
                &mut pmu,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
