//! One platform-model step: frequency governor + bandwidth arbitration +
//! power + thermal integration.

use criterion::{criterion_group, criterion_main, Criterion};

use aum_platform::power::ActivityClass;
use aum_platform::spec::PlatformSpec;
use aum_platform::state::{PlatformSim, RegionLoad};
use aum_platform::topology::AuUsageLevel;
use aum_platform::units::GbPerSec;
use aum_sim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let mut sim = PlatformSim::new(PlatformSpec::gen_a());
    let loads = [
        RegionLoad::new(
            AuUsageLevel::High,
            48,
            ActivityClass::Amx,
            0.4,
            GbPerSec(40.0),
        ),
        RegionLoad::new(
            AuUsageLevel::Low,
            24,
            ActivityClass::Avx,
            0.9,
            GbPerSec(190.0),
        ),
        RegionLoad::new(
            AuUsageLevel::None,
            24,
            ActivityClass::Mixed,
            1.0,
            GbPerSec(28.0),
        ),
    ];
    c.bench_function("platform/step", |b| {
        b.iter(|| sim.step(SimDuration::from_millis(500), &loads))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
