//! Cost of one offline profiling sweep (a reduced grid; the paper's full
//! grid is 450 executions, §VII-D).

use criterion::{criterion_group, criterion_main, Criterion};

use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_workloads::be::BeKind;

fn bench(c: &mut Criterion) {
    let cfg = ProfilerConfig::smoke(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
    let mut group = c.benchmark_group("profiler");
    group.sample_size(10);
    group.bench_function("build_model/smoke_grid", |b| b.iter(|| build_model(&cfg)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
