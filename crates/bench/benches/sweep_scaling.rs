//! Sweep-executor scaling on the profiler grid: the same 8-cell
//! (division × allocation) sweep at jobs ∈ {1, 2, 4, 8}.
//!
//! The acceptance target is ≥ 2× wall-clock speedup at 4 jobs on a
//! machine with ≥ 4 hardware threads (CI runners). On fewer cores the
//! higher-jobs rows converge to the serial row instead of improving —
//! the grid stays deterministic either way, which is the point.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::exec;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

/// A 4×2 grid (8 cells, 1 repetition, short runs): big enough that every
/// jobs level has work for all workers, small enough for Criterion.
fn grid_config() -> ProfilerConfig {
    let mut cfg =
        ProfilerConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
    cfg.divisions.truncate(4);
    cfg.allocations.truncate(2);
    cfg.repetitions = 2;
    cfg.run_duration = SimDuration::from_secs(60);
    cfg
}

fn bench(c: &mut Criterion) {
    let cfg = grid_config();
    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(10);
    for jobs in [1usize, 2, 4, 8] {
        let name = format!("profiler_grid_jobs{jobs}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                exec::set_jobs(jobs);
                let model = build_model(black_box(&cfg));
                exec::set_jobs(0);
                model.buckets.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
