//! Telemetry overhead on the serving hot loop: the same short experiment
//! (engine + platform + manager, no tracing-specific code paths) under a
//! disabled tracer, `NullSink`, `MemorySink`, and a `JsonlSink` writing to
//! `/dev/null`. The disabled and `NullSink` rows must be indistinguishable
//! from each other — `Tracer::emit` short-circuits before constructing the
//! event — while the sink-backed rows price construction, cloning, and
//! serialization.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aum::baselines::AllAu;
use aum::experiment::{run_experiment_traced, ExperimentConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::telemetry::{JsonlSink, MemorySink, MetricsRegistry, NullSink, Tracer};
use aum_sim::{SimDuration, SimTime};

fn short_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, None);
    cfg.duration = SimDuration::from_secs(20);
    cfg
}

fn run_once(cfg: &ExperimentConfig, tracer: Tracer) -> f64 {
    let mut mgr = AllAu::new(&cfg.platform);
    run_experiment_traced(cfg, &mut mgr, tracer).efficiency
}

fn bench(c: &mut Criterion) {
    let cfg = short_config();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| run_once(black_box(&cfg), Tracer::disabled()))
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| run_once(black_box(&cfg), Tracer::new(NullSink)))
    });
    // The always-on flight-recorder budget: a bounded ring must price like
    // clone-into-a-buffer (it is one), i.e. within 2x of `NullSink` — the
    // acceptance bound that makes `--flight` safe to leave on everywhere.
    group.bench_function("ring_sink", |b| {
        b.iter(|| {
            run_once(
                black_box(&cfg),
                Tracer::new(aum_sim::flight::RingSink::new(4096)),
            )
        })
    });
    group.bench_function("memory_sink", |b| {
        b.iter(|| run_once(black_box(&cfg), Tracer::new(MemorySink::new())))
    });
    group.bench_function("jsonl_devnull", |b| {
        b.iter(|| {
            let sink = JsonlSink::create("/dev/null").expect("open /dev/null");
            run_once(black_box(&cfg), Tracer::new(sink))
        })
    });
    group.finish();

    // Quiet-interval snapshots must reuse the registry's cached Arc maps
    // instead of cloning the BTreeMaps — 10k snapshots between mutations
    // allocate nothing beyond the snapshot structs themselves. The
    // assertion guards the satellite fix; the bench row prices it.
    let mut snap_group = c.benchmark_group("metrics_registry");
    snap_group.sample_size(10);
    snap_group.bench_function("registry_snapshot_10k", |b| {
        b.iter(|| {
            let mut registry = MetricsRegistry::new();
            registry.counter_add("tokens", 1024);
            registry.gauge_set("power_w", 231.5);
            let first = {
                let snap = registry.snapshot(SimTime::ZERO);
                (Arc::clone(&snap.counters), Arc::clone(&snap.gauges))
            };
            for i in 1..10_000u64 {
                let snap = registry.snapshot(SimTime::from_secs(i));
                assert!(
                    Arc::ptr_eq(&snap.counters, &first.0) && Arc::ptr_eq(&snap.gauges, &first.1),
                    "quiet snapshot must share map allocations"
                );
            }
            black_box(registry.snapshot(SimTime::from_secs(10_000)).at)
        })
    });
    snap_group.finish();

    // Self-profiling scoped-timer budget: the disabled path is one relaxed
    // atomic load and must stay within 1.05x of the bare loop — that is the
    // contract that lets the `aum_sim::prof` scopes live permanently inside
    // `iteration_cost` and the engine step loop. The enabled row prices a
    // full enter/exit (two `Instant` reads plus two relaxed `fetch_add`s);
    // it has no hard budget but is reported so a registry-lock regression
    // on the enter path is visible.
    let mut prof_group = c.benchmark_group("prof_overhead");
    prof_group.sample_size(20);
    // A serially-dependent mul-xor-shift mix at roughly the cost of one
    // cost-model iteration (~100 ns) — the granularity the permanent
    // scopes actually wrap. The xor-shift rounds have no closed-form
    // composition, so the optimizer cannot fold the chain away (a plain
    // `acc*m+c` chain composes into a single affine map), which would
    // turn the ratio below into a measurement of the timer against
    // nothing.
    let work = |x: u64| -> u64 {
        let mut acc = x | 1;
        for _ in 0..64u64 {
            acc ^= acc >> 13;
            acc = acc.wrapping_mul(6364136223846793005);
            acc ^= acc >> 7;
        }
        acc
    };
    aum_sim::prof::set_enabled(false);
    prof_group.bench_function("baseline_no_timer", |b| {
        b.iter(|| {
            let mut acc = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..1000u64 {
                acc = work(black_box(acc));
            }
            acc
        })
    });
    prof_group.bench_function("scope_disabled", |b| {
        b.iter(|| {
            let mut acc = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..1000u64 {
                let _s = aum_sim::prof::scope("bench.cell");
                acc = work(black_box(acc));
            }
            acc
        })
    });
    aum_sim::prof::reset();
    aum_sim::prof::set_enabled(true);
    prof_group.bench_function("scope_enabled", |b| {
        b.iter(|| {
            let mut acc = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..1000u64 {
                let _s = aum_sim::prof::scope("bench.cell");
                acc = work(black_box(acc));
            }
            acc
        })
    });
    aum_sim::prof::set_enabled(false);
    aum_sim::prof::reset();
    prof_group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
