//! Telemetry overhead on the serving hot loop: the same short experiment
//! (engine + platform + manager, no tracing-specific code paths) under a
//! disabled tracer, `NullSink`, `MemorySink`, and a `JsonlSink` writing to
//! `/dev/null`. The disabled and `NullSink` rows must be indistinguishable
//! from each other — `Tracer::emit` short-circuits before constructing the
//! event — while the sink-backed rows price construction, cloning, and
//! serialization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aum::baselines::AllAu;
use aum::experiment::{run_experiment_traced, ExperimentConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::telemetry::{JsonlSink, MemorySink, NullSink, Tracer};
use aum_sim::SimDuration;

fn short_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, None);
    cfg.duration = SimDuration::from_secs(20);
    cfg
}

fn run_once(cfg: &ExperimentConfig, tracer: Tracer) -> f64 {
    let mut mgr = AllAu::new(&cfg.platform);
    run_experiment_traced(cfg, &mut mgr, tracer).efficiency
}

fn bench(c: &mut Criterion) {
    let cfg = short_config();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.bench_function("disabled", |b| {
        b.iter(|| run_once(black_box(&cfg), Tracer::disabled()))
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| run_once(black_box(&cfg), Tracer::new(NullSink)))
    });
    group.bench_function("memory_sink", |b| {
        b.iter(|| run_once(black_box(&cfg), Tracer::new(MemorySink::new())))
    });
    group.bench_function("jsonl_devnull", |b| {
        b.iter(|| {
            let sink = JsonlSink::create("/dev/null").expect("open /dev/null");
            run_once(black_box(&cfg), Tracer::new(sink))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
