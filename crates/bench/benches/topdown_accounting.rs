//! Top-down signature generation and allocation-pressure modulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aum_au::topdown::{signature, SignatureKind};
use aum_platform::spec::PlatformSpec;

fn bench(c: &mut Criterion) {
    let spec = PlatformSpec::gen_a();
    c.bench_function("topdown/signature", |b| {
        b.iter(|| signature(black_box(SignatureKind::Decode), &spec))
    });
    let sig = signature(SignatureKind::Decode, &spec);
    c.bench_function("topdown/under_pressure", |b| {
        b.iter(|| sig.under_pressure(black_box(1.8), black_box(1.3)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
