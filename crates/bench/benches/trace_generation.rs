//! Request-trace generation throughput (Table IV scenarios).

use criterion::{criterion_group, criterion_main, Criterion};

use aum_llm::traces::{Scenario, TraceGenerator};
use aum_sim::rng::DetRng;
use aum_sim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let rng = DetRng::from_seed(42);
    let generator = TraceGenerator::new(Scenario::Chatbot, 1.0);
    c.bench_function("traces/generate_300s", |b| {
        b.iter(|| generator.generate(&rng, SimDuration::from_secs(300)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
