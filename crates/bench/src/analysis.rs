//! Detailed analyses: price sensitivity (§VII-D), management overheads
//! (§VII-D), and TCO (§VII-E).

use std::time::Instant;

use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig};
use aum::manager::{ResourceManager, SystemState};
use aum::prices::Prices;
use aum::profiler::{build_model, ProfilerConfig};
use aum::tco::{tco_report, TcoInputs};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::report::{fmt_pct, TextTable};
use aum_sim::time::{SimDuration, SimTime};
use aum_workloads::be::BeKind;

use crate::common::{scheme_outcome, ModelCache, Scheme};

/// §VII-D price sensitivity: efficiency gain of AUM over SMT-AU under the
/// default 1.8/0.2 prices and the "cheaper tokens" 0.9/0.1 setting
/// (Compute co-runner, code-completion scenario).
#[must_use]
pub fn sens() -> String {
    let spec = PlatformSpec::gen_a();
    let scenario = Scenario::CodeCompletion;
    let be = BeKind::Compute;
    let mut out = String::from("Price sensitivity (Compute + cc): AUM vs SMT-AU\n");
    let mut t = TextTable::new(["alpha/beta", "AUM eff", "SMT-AU eff", "AUM gain"]);
    for prices in [Prices::paper_default(), Prices::cheap_tokens()] {
        let model = build_model(&ProfilerConfig {
            prices,
            ..ProfilerConfig::paper_default(spec.clone(), scenario, be)
        });
        let mut cfg = ExperimentConfig::paper_default(spec.clone(), scenario, Some(be));
        cfg.prices = prices;
        let aum = run_experiment(&cfg, &mut AumController::new(model));
        let mut smt = aum::baselines::SmtAu::new(&spec);
        let smt_out = run_experiment(&cfg, &mut smt);
        t.row([
            format!("{}/{}", prices.alpha, prices.beta),
            format!("{:.3}", aum.efficiency),
            format!("{:.3}", smt_out.efficiency),
            fmt_pct(aum.efficiency / smt_out.efficiency - 1.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(paper: 7.6% gain at 1.8/0.2, 9.1% at 0.9/0.1 — cheaper tokens shift \
         resources toward sharing)\n",
    );
    out
}

/// §VII-D management overheads: profiler convergence cost, controller
/// decision latency, and model memory footprint.
#[must_use]
pub fn overhead() -> String {
    let spec = PlatformSpec::gen_a();
    let mut out = String::from("Management overheads of AUM (§VII-D)\n\n");

    // Offline profiling cost across the evaluation grid.
    let cache = ModelCache::new();
    let t0 = Instant::now();
    for scenario in Scenario::ALL {
        let _ = cache.model(&spec, scenario, BeKind::SpecJbb);
    }
    let _ = cache.model(&spec, Scenario::Chatbot, BeKind::Compute);
    let _ = cache.model(&spec, Scenario::Chatbot, BeKind::Olap);
    let profile_wall = t0.elapsed();
    out.push_str(&format!(
        "Background profiler: {} pinned executions across the grid (paper: ≈450), \
         {profile_wall:?} wall-clock in simulation\n",
        cache.total_runs()
    ));

    // Controller decision latency (<1 ms claim) and model footprint.
    let model = cache.model(&spec, Scenario::Chatbot, BeKind::SpecJbb);
    out.push_str(&format!(
        "AUV model footprint: {} buckets, ≈{} KB in memory (paper: ≈15 MB including \
         runtime telemetry)\n",
        model.buckets.len(),
        model.approx_size_bytes() / 1024,
    ));
    let mut controller = AumController::new(model);
    let state = SystemState {
        now: SimTime::from_secs(10),
        scenario: Scenario::Chatbot,
        be: Some(BeKind::SpecJbb),
        queue_len: 1,
        head_wait: SimDuration::from_millis(20),
        decode_batch: 12,
        worst_lag_secs: 0.01,
        recent_ttft_p50: 0.3,
        recent_ttft_p90: 0.5,
        recent_tpot_p50: 0.09,
        recent_tpot_p90: 0.098,
        power_w: 220.0,
        bw_utilization: 0.9,
    };
    let iters = 10_000u32;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = std::hint::black_box(controller.decide(std::hint::black_box(&state)));
    }
    let per_decision = t0.elapsed() / iters;
    out.push_str(&format!(
        "Runtime controller decision latency: {per_decision:?} per decision \
         (paper: <1 ms table lookup)\n"
    ));
    assert!(
        per_decision < std::time::Duration::from_millis(1),
        "decision latency must stay under the paper's 1 ms bound"
    );
    out
}

/// §VII-E total cost of ownership: performance-per-CapEx vs the GPU
/// reference, with and without AUM's efficiency gain.
#[must_use]
pub fn tco() -> String {
    let spec = PlatformSpec::gen_a();
    let cache = ModelCache::new();
    let excl = scheme_outcome(
        Scheme::AllAu,
        &spec,
        Scenario::Chatbot,
        BeKind::SpecJbb,
        &cache,
    );
    let aum = scheme_outcome(
        Scheme::Aum,
        &spec,
        Scenario::Chatbot,
        BeKind::SpecJbb,
        &cache,
    );
    let gain = aum.efficiency / excl.efficiency;
    let mut t = TextTable::new(["configuration", "perf/CapEx vs GPU", "perf/W vs GPU"]);
    for (name, g) in [
        ("CPU exclusive", 1.0),
        ("CPU + AUM (measured gain)", gain),
        ("CPU + AUM (paper's 15%)", 1.15),
    ] {
        let r = tco_report(&TcoInputs::gen_a_with_gain(g));
        t.row([
            name.to_string(),
            format!("{:.2}", r.perf_per_capex_vs_gpu),
            format!("{:.2}", r.perf_per_watt_vs_gpu),
        ]);
    }
    format!(
        "TCO analysis (§VII-E): measured AUM gain on GenA = {}\n{}\
         (paper: CPU with AUM reaches ≈88% of GPU performance-per-CapEx)\n",
        fmt_pct(gain - 1.0),
        t.render()
    )
}
