//! Attribution-ledger studies: `repro attrib` and `repro trace-diff`.
//!
//! `repro attrib <study>` runs one AUM experiment with the full trace
//! pipeline attached and renders the time/energy attribution ledger as a
//! report: per-region cause breakdowns, a perf-per-watt blame summary, an
//! elided dominant-loss timeline and a blame line for every SLO breach in
//! the trace. `--metrics-out <file.prom>` additionally writes the final
//! metrics snapshot plus the ledger in Prometheus text exposition format.
//!
//! `repro trace-diff <a.jsonl> <b.jsonl>` aligns the `AttributionSample`
//! events of two traces on simulation time and reports the per-cause shift
//! of total time share in percentage points. Any cause shifting by at
//! least the threshold (default 2.0 pp) marks the diff a regression — the
//! CLI exits 1 so CI can gate on attribution drift. Two same-seed runs
//! serialize byte-identical streams (see
//! [`aum_sim::telemetry::OrderingSink`]), so a self-diff is exactly zero.

use std::fmt::Write as _;

use aum::experiment::{try_run_experiment_traced, ExperimentConfig, Fault, FaultEvent, FaultPlan};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::attrib::{self, Cause, CauseVec, Ledger, Region};
use aum_sim::prom;
use aum_sim::telemetry::{Event, MemorySink, OrderingSink, SloMetric, TraceRecord, Tracer};
use aum_sim::time::{SimDuration, SimTime};
use aum_workloads::be::BeKind;

use crate::common::{harness_tracer, make_manager, ModelCache, Scheme};

/// Default regression threshold for [`trace_diff`], percentage points of
/// total time share per cause.
pub const DEFAULT_THRESHOLD_PP: f64 = 2.0;

/// A rendered attribution study: the human-readable report plus the
/// Prometheus exposition of the same run.
#[derive(Debug)]
pub struct StudyReport {
    /// The report text (tables, blame lines, timeline).
    pub text: String,
    /// Prometheus text format: final metrics snapshot + ledger series.
    pub prom: String,
}

/// A rendered trace diff plus its regression verdict.
#[derive(Debug)]
pub struct TraceDiff {
    /// The rendered per-cause delta table and verdict line.
    pub text: String,
    /// Whether any cause shifted by at least the threshold.
    pub regression: bool,
}

/// The studies `repro attrib` knows how to run.
fn study_config(study: &str, quick: bool) -> Result<(ExperimentConfig, BeKind), String> {
    let spec = PlatformSpec::gen_a();
    match study {
        "fig14" => {
            let be = BeKind::SpecJbb;
            let mut cfg = ExperimentConfig::paper_default(spec, Scenario::Chatbot, Some(be));
            cfg.duration = SimDuration::from_secs(if quick { 60 } else { 300 });
            Ok((cfg, be))
        }
        "chaos" => {
            let be = BeKind::Olap;
            let duration = if quick { 120 } else { 240 };
            let mut cfg = ExperimentConfig::paper_default(spec, Scenario::Chatbot, Some(be));
            cfg.duration = SimDuration::from_secs(duration);
            cfg.fault = FaultPlan::single(FaultEvent::permanent(
                duration as f64 / 4.0,
                Fault::BandwidthDegrade { frac: 0.8 },
            ));
            Ok((cfg, be))
        }
        other => Err(format!(
            "unknown attrib study '{other}' (expected 'fig14' or 'chaos')"
        )),
    }
}

/// Runs one attribution study end to end.
///
/// The run always traces into an in-process [`MemorySink`] (wrapped in an
/// [`OrderingSink`] so SLO-breach lookups and re-emission see time order);
/// when the harness tracer is enabled (`repro --trace`) every record is
/// re-emitted there so the study's trace lands in the requested file too.
///
/// # Errors
///
/// Returns the experiment's error string — notably an attribution-ledger
/// conservation violation — or an unknown study name. The `repro` driver
/// exits 1 on either.
pub fn run_study(study: &str, quick: bool) -> Result<StudyReport, String> {
    let (cfg, be) = study_config(study, quick)?;
    let cache = ModelCache::new();
    let mut mgr = make_manager(Scheme::Aum, &cfg.platform, cfg.scenario, Some(be), &cache);
    let (tracer, sink) = Tracer::shared(OrderingSink::new(MemorySink::new()));
    let outcome = try_run_experiment_traced(&cfg, mgr.as_mut(), tracer)
        .map_err(|e| format!("attrib study '{study}' failed: {e}"))?;
    let records = sink
        .lock()
        .expect("attrib trace sink lock")
        .inner()
        .records()
        .to_vec();
    let harness = harness_tracer();
    if harness.is_enabled() {
        for r in &records {
            harness.emit(r.at, || r.event.clone());
        }
    }

    let ledger = &outcome.ledger;
    let mut text = String::new();
    let dur = cfg.duration.as_secs_f64();
    let _ = writeln!(
        text,
        "Attribution ledger — study {study} (AUM on GenA, Chatbot + {be:?}, {dur:.0}s, seed {})",
        cfg.seed
    );
    match ledger.verify(attrib::EPSILON) {
        Ok(()) => {
            let _ = writeln!(
                text,
                "conservation: OK ({} intervals, wall {:.1}s, energy {:.1}J, eps {:.0e})",
                ledger.intervals.len(),
                ledger.wall_secs(),
                ledger.energy_j(),
                attrib::EPSILON
            );
        }
        Err(e) => return Err(format!("attrib study '{study}': {e}")),
    }
    let _ = writeln!(
        text,
        "avg power {:.1} W | efficiency {:.3} | TTFT guarantee {:.1}% | TPOT guarantee {:.1}%",
        outcome.avg_power_w,
        outcome.efficiency,
        outcome.slo.ttft_guarantee * 100.0,
        outcome.slo.tpot_guarantee * 100.0
    );
    text.push('\n');

    render_region_table(&mut text, ledger, Quantity::Time);
    text.push('\n');
    render_region_table(&mut text, ledger, Quantity::Energy);
    text.push('\n');
    render_blame_summary(&mut text, ledger);
    text.push('\n');
    render_timeline(&mut text, ledger);
    render_breach_blame(&mut text, ledger, &records);

    let mut prom_text = String::new();
    if let Some(last) = outcome.metrics.last() {
        prom_text.push_str(&prom::render_registry(last));
    }
    prom_text.push_str(&prom::render_ledger(ledger));
    // The run's latency distributions as Prometheus histograms, from the
    // same mergeable log-linear buckets the SLO report quantiles use.
    prom_text.push_str(&prom::render_histogram(
        "aum_ttft_seconds",
        "Time-to-first-token distribution of the study run",
        &[("study", study)],
        &outcome.slo.ttft_hist,
    ));
    prom_text.push_str(&prom::render_histogram(
        "aum_tpot_request_seconds",
        "Per-request mean time-per-output-token distribution of the study run",
        &[("study", study)],
        &outcome.slo.tpot_req_hist,
    ));

    Ok(StudyReport {
        text,
        prom: prom_text,
    })
}

/// Which ledger axis a table renders.
#[derive(Clone, Copy)]
enum Quantity {
    Time,
    Energy,
}

/// Renders one per-region breakdown table: each region's total with its
/// cause shares (≥ 0.1 % of the region, largest first).
fn render_region_table(out: &mut String, ledger: &Ledger, q: Quantity) {
    let (title, unit) = match q {
        Quantity::Time => ("time attribution (per region wall time)", "s"),
        Quantity::Energy => ("energy attribution (per region energy)", "J"),
    };
    let _ = writeln!(out, "{title}:");
    let _ = writeln!(
        out,
        "  {:<8} {:>10}  breakdown",
        "region",
        format!("total {unit}")
    );
    for region in Region::ALL {
        let vec = match q {
            Quantity::Time => ledger.region_time(region),
            Quantity::Energy => ledger.region_energy(region),
        };
        let total = vec.sum();
        let mut shares: Vec<(Cause, f64)> = vec
            .iter()
            .filter(|(_, v)| total > 0.0 && *v / total >= 1e-3)
            .collect();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1));
        let breakdown = if shares.is_empty() {
            "-".to_owned()
        } else {
            shares
                .iter()
                .map(|(c, v)| format!("{} {:.1}%", c.label(), v / total * 100.0))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let _ = writeln!(out, "  {:<8} {:>10.1}  {breakdown}", region.label(), total);
    }
}

/// Renders the perf-per-watt blame line: how much package energy went to
/// loss causes (anything that is neither useful compute nor clean idle),
/// and which loss dominates.
fn render_blame_summary(out: &mut String, ledger: &Ledger) {
    let energy = ledger.total_energy();
    let total = energy.sum();
    let loss_j: f64 = energy
        .iter()
        .filter(|(c, _)| c.is_loss())
        .map(|(_, v)| v)
        .sum();
    let line = match energy.dominant_loss(total) {
        Some((cause, v)) if total > 0.0 => format!(
            "perf/W blame: {loss_j:.1} J ({:.1}% of package energy) lost to inefficiency; \
             dominant loss: {} ({:.1}%)",
            loss_j / total * 100.0,
            cause.label(),
            v / total * 100.0
        ),
        _ => "perf/W blame: no loss attribution (fully compute/idle)".to_owned(),
    };
    let _ = writeln!(out, "{line}");
}

/// How many intervals the dominant-loss timeline prints before eliding.
const TIMELINE_SAMPLES: usize = 12;

/// Renders an evenly-sampled timeline of the dominant loss cause per
/// control interval (time-weighted across regions).
fn render_timeline(out: &mut String, ledger: &Ledger) {
    if ledger.is_empty() {
        return;
    }
    let n = ledger.intervals.len();
    let step = n.div_ceil(TIMELINE_SAMPLES).max(1);
    let _ = writeln!(out, "dominant-loss timeline ({n} intervals, every {step}):");
    for iv in ledger.intervals.iter().step_by(step) {
        let mut time = CauseVec::zero();
        for r in &iv.regions {
            time.accumulate(&r.time);
        }
        let line = match time.dominant_loss(time.sum()) {
            Some((cause, v)) => format!(
                "{} {:.1}% of interval time",
                cause.label(),
                v / time.sum().max(f64::MIN_POSITIVE) * 100.0
            ),
            None => "no loss".to_owned(),
        };
        let _ = writeln!(out, "  t={:>7.1}s  {line}", iv.at.as_secs_f64());
    }
}

/// How many SLO breaches get individual blame lines before eliding.
const BREACH_CAP: usize = 8;

/// Renders one blame line per SLO breach in the trace: which region the
/// breached metric runs in (TTFT → prefill / AU-high, TPOT → decode /
/// AU-low) and the dominant loss cause of the covering interval.
fn render_breach_blame(out: &mut String, ledger: &Ledger, records: &[TraceRecord]) {
    let breaches: Vec<(SimTime, SloMetric, f64, f64)> = records
        .iter()
        .filter_map(|r| match r.event {
            Event::SloBreach {
                metric,
                observed_secs,
                budget_secs,
            } => Some((r.at, metric, observed_secs, budget_secs)),
            _ => None,
        })
        .collect();
    if breaches.is_empty() {
        let _ = writeln!(out, "SLO breaches: none");
        return;
    }
    let _ = writeln!(out, "SLO breach blame ({} breaches):", breaches.len());
    for (at, metric, observed, budget) in breaches.iter().take(BREACH_CAP) {
        let (name, region) = match metric {
            SloMetric::Ttft => ("ttft", Region::AuHigh),
            SloMetric::Tpot => ("tpot", Region::AuLow),
        };
        let blame = match ledger.blame(*at, region) {
            Some((cause, share)) => format!(
                "dominant loss in {}: {} ({:.1}% of region time)",
                region.label(),
                cause.label(),
                share * 100.0
            ),
            None => format!("no loss attribution in {}", region.label()),
        };
        let _ = writeln!(
            out,
            "  t={:>7.1}s  {name} {observed:.2}s > budget {budget:.2}s — {blame}",
            at.as_secs_f64()
        );
    }
    if breaches.len() > BREACH_CAP {
        let _ = writeln!(out, "  … {} more elided", breaches.len() - BREACH_CAP);
    }
}

/// Sums every `AttributionSample` time vector per simulation timestamp
/// (across regions), preserving time order.
fn attribution_by_time(records: &[TraceRecord]) -> Vec<(SimTime, CauseVec)> {
    let mut out: Vec<(SimTime, CauseVec)> = Vec::new();
    for r in records {
        if let Event::AttributionSample { time, .. } = &r.event {
            match out.last_mut() {
                Some((at, vec)) if *at == r.at => vec.accumulate(time),
                _ => {
                    let mut vec = CauseVec::zero();
                    vec.accumulate(time);
                    out.push((r.at, vec));
                }
            }
        }
    }
    out
}

/// Diffs the attribution content of two traces.
///
/// Intervals are aligned on simulation time (only timestamps present in
/// both traces are compared); each trace's aligned time vectors are summed
/// and normalized to shares, and the per-cause share deltas are reported
/// in percentage points, largest magnitude first. `regression` is set when
/// any cause moves by at least `threshold_pp`.
///
/// # Errors
///
/// Returns an error when either trace carries no `AttributionSample`
/// events, or when the traces share no timestamps.
pub fn trace_diff(
    a: &[TraceRecord],
    b: &[TraceRecord],
    threshold_pp: f64,
) -> Result<TraceDiff, String> {
    // The two traces reduce independently — a 2-cell sweep halves the
    // dominant cost of diffing two large JSONL traces when jobs ≥ 2.
    let mut reduced = aum_sim::exec::sweep(vec![a, b], |_, t| attribution_by_time(t));
    let by_time_b = reduced.pop().expect("two cells in, two out");
    let by_time_a = reduced.pop().expect("two cells in, two out");
    if by_time_a.is_empty() {
        return Err(
            "trace A has no attribution samples (was it produced by `repro attrib`?)".into(),
        );
    }
    if by_time_b.is_empty() {
        return Err(
            "trace B has no attribution samples (was it produced by `repro attrib`?)".into(),
        );
    }

    let mut total_a = CauseVec::zero();
    let mut total_b = CauseVec::zero();
    let mut aligned = 0usize;
    let mut ib = 0usize;
    for (at, vec_a) in &by_time_a {
        while ib < by_time_b.len() && by_time_b[ib].0 < *at {
            ib += 1;
        }
        if ib < by_time_b.len() && by_time_b[ib].0 == *at {
            total_a.accumulate(vec_a);
            total_b.accumulate(&by_time_b[ib].1);
            aligned += 1;
        }
    }
    if aligned == 0 {
        return Err(format!(
            "no aligned intervals (trace A has {}, trace B has {}, zero shared timestamps)",
            by_time_a.len(),
            by_time_b.len()
        ));
    }

    let sum_a = total_a.sum();
    let sum_b = total_b.sum();
    let mut rows: Vec<(Cause, f64, f64, f64)> = Cause::ALL
        .iter()
        .map(|&c| {
            let pa = if sum_a > 0.0 {
                total_a.get(c) / sum_a * 100.0
            } else {
                0.0
            };
            let pb = if sum_b > 0.0 {
                total_b.get(c) / sum_b * 100.0
            } else {
                0.0
            };
            (c, pa, pb, pb - pa)
        })
        .collect();
    rows.sort_by(|x, y| y.3.abs().total_cmp(&x.3.abs()));
    let over: Vec<&(Cause, f64, f64, f64)> = rows
        .iter()
        .filter(|(_, _, _, d)| d.abs() >= threshold_pp)
        .collect();
    let regression = !over.is_empty();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "trace-diff: {aligned} aligned intervals (A: {}, B: {}), threshold {threshold_pp:.2} pp",
        by_time_a.len(),
        by_time_b.len()
    );
    let _ = writeln!(
        text,
        "  {:<16} {:>8} {:>8} {:>8}",
        "cause", "A %", "B %", "Δpp"
    );
    for (c, pa, pb, d) in &rows {
        let flag = if d.abs() >= threshold_pp { "  **" } else { "" };
        let _ = writeln!(
            text,
            "  {:<16} {pa:>8.2} {pb:>8.2} {d:>+8.2}{flag}",
            c.label()
        );
    }
    let verdict = if regression {
        let worst = over[0];
        format!(
            "verdict: REGRESSION — {} cause(s) shifted ≥ {threshold_pp:.2} pp (worst: {} {:+.2} pp)",
            over.len(),
            worst.0.label(),
            worst.3
        )
    } else {
        let max = rows.first().map_or(0.0, |r| r.3.abs());
        format!("verdict: OK — max |Δ| {max:.2} pp < {threshold_pp:.2} pp")
    };
    let _ = writeln!(text, "{verdict}");

    Ok(TraceDiff { text, regression })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum_sim::attrib::Region;

    fn sample(at_secs: f64, region: Region, compute: f64, dram: f64) -> TraceRecord {
        let mut time = CauseVec::zero();
        time.add(Cause::Compute, compute);
        time.add(Cause::MemDram, dram);
        TraceRecord {
            at: SimTime::from_secs_f64(at_secs),
            event: Event::AttributionSample {
                region,
                dt_secs: compute + dram,
                time,
                energy: time,
            },
        }
    }

    #[test]
    fn self_diff_is_zero_and_not_a_regression() {
        let trace = vec![
            sample(0.5, Region::AuHigh, 0.4, 0.1),
            sample(0.5, Region::AuLow, 0.3, 0.2),
            sample(1.0, Region::AuHigh, 0.4, 0.1),
        ];
        let diff = trace_diff(&trace, &trace, DEFAULT_THRESHOLD_PP).unwrap();
        assert!(!diff.regression);
        assert!(diff.text.contains("verdict: OK"), "{}", diff.text);
        assert!(diff.text.contains("3 aligned intervals") || diff.text.contains("2 aligned"));
    }

    #[test]
    fn dram_shift_beyond_threshold_is_flagged() {
        let a = vec![sample(0.5, Region::AuHigh, 0.8, 0.2)];
        let b = vec![sample(0.5, Region::AuHigh, 0.6, 0.4)];
        let diff = trace_diff(&a, &b, DEFAULT_THRESHOLD_PP).unwrap();
        assert!(diff.regression);
        assert!(diff.text.contains("REGRESSION"), "{}", diff.text);
        assert!(diff.text.contains("mem-dram"), "{}", diff.text);
    }

    #[test]
    fn small_shift_respects_custom_threshold() {
        let a = vec![sample(0.5, Region::AuHigh, 0.80, 0.20)];
        let b = vec![sample(0.5, Region::AuHigh, 0.79, 0.21)];
        assert!(!trace_diff(&a, &b, 2.0).unwrap().regression);
        assert!(trace_diff(&a, &b, 0.5).unwrap().regression);
    }

    #[test]
    fn empty_traces_error_cleanly() {
        let trace = vec![sample(0.5, Region::AuHigh, 0.8, 0.2)];
        assert!(trace_diff(&[], &trace, 2.0).is_err());
        assert!(trace_diff(&trace, &[], 2.0).is_err());
    }

    #[test]
    fn disjoint_timestamps_error_cleanly() {
        let a = vec![sample(0.5, Region::AuHigh, 0.8, 0.2)];
        let b = vec![sample(1.5, Region::AuHigh, 0.8, 0.2)];
        let err = trace_diff(&a, &b, 2.0).unwrap_err();
        assert!(err.contains("no aligned intervals"), "{err}");
    }

    #[test]
    fn unknown_study_is_rejected() {
        assert!(run_study("fig99", true).is_err());
    }
}
