//! Reproduction driver: regenerates the paper's tables and figures.
//!
//! Usage:
//!   repro `<id>`                     run one experiment (e.g. `fig14`)
//!   repro all                        run everything in paper order
//!   repro list                       list experiment ids
//!   repro help | --help              print the full subcommand list
//!   repro chaos [--quick]            fault-matrix resilience study
//!   repro attrib <study> [--quick]   time/energy attribution ledger report
//!                                    (study: `fig14` or `chaos`)
//!   repro trace-summary <file>       explain a telemetry trace (includes
//!                                    the SLO burn-rate digest and the
//!                                    worst-TTFT span drill-down)
//!   repro trace-diff <a> <b>         attribution delta between two traces
//!   repro trace-export <file> --perfetto <out.json>
//!                                    convert a span trace to Chrome Trace
//!                                    Event Format (Perfetto-loadable)
//!
//! Flags (only valid when running experiments):
//!   --out <dir>          additionally write one .txt artifact per experiment
//!   --trace <file>       stream telemetry from AUM-scheme runs and profiler
//!                        sweeps to <file> as JSON lines
//!   --jobs <N>           worker threads for sweep cells (default: the
//!                        `AUM_JOBS` env var, else available parallelism;
//!                        `--jobs 1` runs serially — outputs are
//!                        byte-identical at every N)
//!   --quick              short runs — the CI smoke configuration
//!                        (chaos/attrib, and experiments that consult the
//!                        harness quick mode, currently fig14)
//!   --metrics-out <file> (attrib only) write the run's final metrics
//!                        snapshot + ledger in Prometheus text format
//!   --threshold <pp>     (trace-diff only) regression threshold in
//!                        percentage points of time share (default 2.0)
//!   --perfetto <file>    (trace-export only) output path of the Chrome
//!                        Trace Event Format JSON
//!
//! `repro chaos` exits 1 if any SLO guarantee in the matrix is non-finite.
//! `repro attrib` exits 1 on an attribution-ledger conservation violation.
//! `repro trace-diff` exits 1 when any cause shifts by ≥ the threshold.
//! `repro trace-export` exits 1 on an empty, truncated or unbalanced trace
//! (truncation errors carry the offending line number).
//!
//! Unknown or malformed arguments are rejected with exit code 2.

use std::path::PathBuf;
use std::time::Instant;

use aum_sim::telemetry::{parse_jsonl, JsonlSink, OrderingSink, TraceSink, Tracer};

enum Command {
    List,
    All,
    One(String),
    Chaos { quick: bool },
    Attrib { study: String, quick: bool },
    TraceSummary(PathBuf),
    TraceDiff { a: PathBuf, b: PathBuf },
    TraceExport { input: PathBuf, perfetto: PathBuf },
}

struct Cli {
    command: Command,
    out_dir: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    threshold: Option<f64>,
    jobs: Option<usize>,
    quick: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut positionals: Vec<&str> = Vec::new();
    let mut out_dir = None;
    let mut trace = None;
    let mut metrics_out = None;
    let mut threshold = None;
    let mut jobs = None;
    let mut perfetto = None;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let v = args.get(i + 1).ok_or("--out requires a directory")?;
                if out_dir.replace(PathBuf::from(v)).is_some() {
                    return Err("--out given twice".into());
                }
                i += 2;
            }
            "--trace" => {
                let v = args.get(i + 1).ok_or("--trace requires a file path")?;
                if trace.replace(PathBuf::from(v)).is_some() {
                    return Err("--trace given twice".into());
                }
                i += 2;
            }
            "--metrics-out" => {
                let v = args
                    .get(i + 1)
                    .ok_or("--metrics-out requires a file path")?;
                if metrics_out.replace(PathBuf::from(v)).is_some() {
                    return Err("--metrics-out given twice".into());
                }
                i += 2;
            }
            "--threshold" => {
                let v = args.get(i + 1).ok_or("--threshold requires a number")?;
                let parsed: f64 = v
                    .parse()
                    .map_err(|_| format!("--threshold: `{v}` is not a number"))?;
                if !parsed.is_finite() || parsed < 0.0 {
                    return Err("--threshold must be a finite non-negative number".into());
                }
                if threshold.replace(parsed).is_some() {
                    return Err("--threshold given twice".into());
                }
                i += 2;
            }
            "--jobs" => {
                let v = args.get(i + 1).ok_or("--jobs requires a worker count")?;
                let parsed: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs: `{v}` is not a positive integer"))?;
                if parsed == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                if jobs.replace(parsed).is_some() {
                    return Err("--jobs given twice".into());
                }
                i += 2;
            }
            "--perfetto" => {
                let v = args.get(i + 1).ok_or("--perfetto requires a file path")?;
                if perfetto.replace(PathBuf::from(v)).is_some() {
                    return Err("--perfetto given twice".into());
                }
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            positional => {
                positionals.push(positional);
                i += 1;
            }
        }
    }
    let command = match positionals.as_slice() {
        [] => return Err("missing command".into()),
        ["list"] => Command::List,
        ["all"] => Command::All,
        ["chaos"] => Command::Chaos { quick },
        ["attrib", study] => Command::Attrib {
            study: (*study).to_owned(),
            quick,
        },
        ["attrib"] => return Err("attrib requires a study name (fig14 or chaos)".into()),
        ["trace-summary", file] => Command::TraceSummary(PathBuf::from(file)),
        ["trace-summary"] => return Err("trace-summary requires a file".into()),
        ["trace-diff", a, b] => Command::TraceDiff {
            a: PathBuf::from(a),
            b: PathBuf::from(b),
        },
        ["trace-diff", ..] => return Err("trace-diff requires two trace files".into()),
        ["trace-export", file] => Command::TraceExport {
            input: PathBuf::from(file),
            perfetto: perfetto
                .take()
                .ok_or("trace-export requires --perfetto <out.json>")?,
        },
        ["trace-export"] => return Err("trace-export requires a trace file".into()),
        [id] => Command::One((*id).to_owned()),
        [_, extra, ..] => return Err(format!("unexpected argument `{extra}`")),
    };
    if quick
        && !matches!(
            command,
            Command::Chaos { .. } | Command::Attrib { .. } | Command::One(_) | Command::All
        )
    {
        return Err("--quick is only valid when running experiments or studies".into());
    }
    if metrics_out.is_some() && !matches!(command, Command::Attrib { .. }) {
        return Err("--metrics-out is only valid with the attrib command".into());
    }
    if threshold.is_some() && !matches!(command, Command::TraceDiff { .. }) {
        return Err("--threshold is only valid with the trace-diff command".into());
    }
    if perfetto.is_some() {
        return Err("--perfetto is only valid with the trace-export command".into());
    }
    if jobs.is_some()
        && matches!(
            command,
            Command::List | Command::TraceSummary(_) | Command::TraceExport { .. }
        )
    {
        return Err("--jobs is only valid for commands that run sweeps".into());
    }
    match command {
        Command::List
        | Command::TraceSummary(_)
        | Command::TraceDiff { .. }
        | Command::TraceExport { .. }
            if out_dir.is_some() || trace.is_some() =>
        {
            Err("--out/--trace are only valid when running experiments".into())
        }
        command => Ok(Cli {
            command,
            out_dir,
            trace,
            metrics_out,
            threshold,
            jobs,
            quick,
        }),
    }
}

fn usage_text(experiments: &[(&'static str, aum_bench::Experiment)]) -> String {
    let mut out = String::new();
    out.push_str(
        "usage: repro <id>|all|list [--quick] [--out <dir>] [--trace <file.jsonl>] [--jobs <N>]\n",
    );
    out.push_str("       repro help | --help\n");
    out.push_str(
        "       repro chaos [--quick] [--out <dir>] [--trace <file.jsonl>] [--jobs <N>]\n",
    );
    out.push_str(
        "       repro attrib <fig14|chaos> [--quick] [--metrics-out <file.prom>] \
         [--out <dir>] [--trace <file.jsonl>] [--jobs <N>]\n",
    );
    out.push_str("       repro trace-summary <file.jsonl>\n");
    out.push_str("       repro trace-diff <a.jsonl> <b.jsonl> [--threshold <pp>] [--jobs <N>]\n");
    out.push_str("       repro trace-export <file.jsonl> --perfetto <out.json>\n");
    out.push_str(&format!(
        "ids: {}\n",
        experiments
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = aum_bench::experiments();
    // `repro help` / `repro --help`: the full subcommand list on stdout,
    // exit 0 — recognized anywhere on the command line.
    if args.first().map(String::as_str) == Some("help") || args.iter().any(|a| a == "--help") {
        print!("{}", usage_text(&experiments));
        return;
    }
    let usage = || eprint!("{}", usage_text(&experiments));
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            usage();
            std::process::exit(2);
        }
    };
    if let Some(n) = cli.jobs {
        aum_sim::exec::set_jobs(n);
    }
    aum_bench::common::set_quick(cli.quick);
    if let Some(dir) = &cli.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    // When tracing, install a shared JSONL sink consulted by AUM-scheme
    // runs and profiler sweeps inside the harness.
    let trace_handle = cli.trace.as_ref().map(|path| {
        let sink = match JsonlSink::create(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        // OrderingSink re-sorts each run's records by sim time: components
        // are simulated sequentially over overlapping interval windows, so
        // raw emission order is not globally monotonic.
        let (tracer, handle) = Tracer::shared(OrderingSink::new(sink));
        aum_bench::common::install_tracer(tracer);
        handle
    });
    // Wall-clock timing goes to stderr so stdout stays byte-identical
    // across runs and worker counts (the CI serial-vs-parallel gate
    // `cmp`s captured stdout).
    let emit = |name: &str, out: &str, elapsed: std::time::Duration| {
        println!("==== {name} ====\n{out}");
        eprintln!("{name}: completed in {elapsed:?}");
        if let Some(dir) = &cli.out_dir {
            let path = dir.join(format!("{name}.txt"));
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("cannot write {}: {e}", path.display());
            }
        }
    };
    // Per-study executor accounting: speedup = summed cell compute time /
    // sweep wall time. Printed to stderr so stdout artifacts stay
    // byte-identical across worker counts.
    let report_speedup = |name: &str, before: &aum_sim::exec::ExecStats| {
        let d = aum_sim::exec::stats().since(before);
        if d.cells > 0 {
            eprintln!(
                "{name}: {} sweep cells, busy {:.2?} / wall {:.2?}, speedup {:.2}x (jobs {})",
                d.cells,
                d.busy,
                d.wall,
                d.speedup(),
                aum_sim::exec::jobs()
            );
        }
    };
    let mut exit_code = 0;
    match &cli.command {
        Command::List => {
            for (name, _) in &experiments {
                println!("{name}");
            }
        }
        Command::All => {
            let t0 = Instant::now();
            for (name, run) in &experiments {
                let t = Instant::now();
                let before = aum_sim::exec::stats();
                let out = run();
                emit(name, &out, t.elapsed());
                report_speedup(name, &before);
            }
            eprintln!("total: {:?}", t0.elapsed());
        }
        Command::Chaos { quick } => {
            let t = Instant::now();
            let before = aum_sim::exec::stats();
            let run = aum_bench::chaos::run(*quick);
            emit("chaos", &run.text, t.elapsed());
            report_speedup("chaos", &before);
            if run.degenerate {
                eprintln!("error: chaos matrix produced non-finite SLO guarantees");
                exit_code = 1;
            }
        }
        Command::Attrib { study, quick } => {
            let t = Instant::now();
            let before = aum_sim::exec::stats();
            match aum_bench::attribution::run_study(study, *quick) {
                Ok(report) => {
                    emit(&format!("attrib-{study}"), &report.text, t.elapsed());
                    report_speedup(&format!("attrib-{study}"), &before);
                    if let Some(path) = &cli.metrics_out {
                        if let Err(e) = std::fs::write(path, &report.prom) {
                            eprintln!("cannot write {}: {e}", path.display());
                            exit_code = 1;
                        } else {
                            eprintln!("metrics: {}", path.display());
                        }
                    }
                }
                Err(msg) => {
                    eprintln!("error: {msg}");
                    exit_code = 1;
                }
            }
        }
        Command::TraceDiff { a, b } => {
            let read_trace = |path: &PathBuf| -> Result<Vec<_>, String> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let records = parse_jsonl(&text)
                    .map_err(|e| format!("malformed trace {}: {e}", path.display()))?;
                if records.is_empty() {
                    return Err(format!("empty trace {}: no records", path.display()));
                }
                Ok(records)
            };
            let threshold = cli
                .threshold
                .unwrap_or(aum_bench::attribution::DEFAULT_THRESHOLD_PP);
            match read_trace(a).and_then(|ra| read_trace(b).map(|rb| (ra, rb))) {
                Ok((ra, rb)) => match aum_bench::attribution::trace_diff(&ra, &rb, threshold) {
                    Ok(diff) => {
                        print!("{}", diff.text);
                        if diff.regression {
                            exit_code = 1;
                        }
                    }
                    Err(msg) => {
                        eprintln!("error: {msg}");
                        std::process::exit(1);
                    }
                },
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
        }
        Command::One(id) => match experiments.iter().find(|(n, _)| n == id) {
            Some((name, run)) => {
                let t = Instant::now();
                let before = aum_sim::exec::stats();
                let out = run();
                emit(name, &out, t.elapsed());
                report_speedup(name, &before);
            }
            None => {
                eprintln!("error: unknown experiment `{id}`");
                usage();
                std::process::exit(2);
            }
        },
        Command::TraceSummary(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            match parse_jsonl(&text) {
                Ok(records) => print!("{}", aum_bench::tracereport::summarize(&records)),
                Err(e) => {
                    eprintln!("malformed trace {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        Command::TraceExport { input, perfetto } => {
            let text = match std::fs::read_to_string(input) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", input.display());
                    std::process::exit(1);
                }
            };
            let records = match parse_jsonl(&text) {
                Ok(records) if records.is_empty() => {
                    eprintln!("error: empty trace {}: no records", input.display());
                    std::process::exit(1);
                }
                Ok(records) => records,
                Err(e) => {
                    eprintln!("malformed trace {}: {e}", input.display());
                    std::process::exit(1);
                }
            };
            match aum_bench::perfetto::export(&records) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(perfetto, &json) {
                        eprintln!("cannot write {}: {e}", perfetto.display());
                        std::process::exit(1);
                    }
                    eprintln!(
                        "perfetto: {} records \u{2192} {}",
                        records.len(),
                        perfetto.display()
                    );
                }
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }
    if let (Some(handle), Some(path)) = (trace_handle, &cli.trace) {
        handle.lock().expect("sink lock").flush_sink();
        eprintln!(
            "trace: {} events \u{2192} {}",
            handle.lock().expect("sink lock").inner().lines_written(),
            path.display()
        );
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
