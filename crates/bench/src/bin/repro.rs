//! Reproduction driver: regenerates the paper's tables and figures.
//!
//! Usage:
//!   repro `<id>`             run one experiment (e.g. `fig14`, `table2`)
//!   repro all                run everything in paper order
//!   repro all --out <dir>    additionally write one .txt artifact per
//!                            experiment into <dir>
//!   repro list               list experiment ids

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = aum_bench::experiments();
    let usage = || {
        eprintln!("usage: repro <id>|all|list [--out <dir>]");
        eprintln!("ids: {}", experiments.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" "));
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let emit = |name: &str, out: &str, elapsed: std::time::Duration| {
        println!("==== {name} ({elapsed:?}) ====\n{out}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{name}.txt"));
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("cannot write {}: {e}", path.display());
            }
        }
    };
    match args.first().map(String::as_str) {
        Some("list") => {
            for (name, _) in &experiments {
                println!("{name}");
            }
        }
        Some("all") => {
            let t0 = Instant::now();
            for (name, run) in &experiments {
                let t = Instant::now();
                let out = run();
                emit(name, &out, t.elapsed());
            }
            eprintln!("total: {:?}", t0.elapsed());
        }
        Some(id) => match experiments.iter().find(|(n, _)| *n == id) {
            Some((name, run)) => {
                let t = Instant::now();
                let out = run();
                emit(name, &out, t.elapsed());
            }
            None => {
                usage();
                std::process::exit(2);
            }
        },
        None => {
            usage();
            std::process::exit(2);
        }
    }
}
