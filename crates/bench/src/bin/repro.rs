//! Reproduction driver: regenerates the paper's tables and figures.
//!
//! Run `repro help` for the full command and flag reference. The usage
//! text is generated from the same [`COMMANDS`]/[`FLAGS`] tables the
//! argument parser walks, so the help and the parser cannot drift apart:
//! adding a flag means adding one table row, and both the synopsis and
//! the per-command validity checks pick it up.
//!
//! Observability plane (all optional, all off by default):
//!
//! ```text
//!   --flight <dir>        anomaly-triggered flight recorder; incident
//!                         dumps are JSONL consumable by `trace-summary`
//!                         and `trace-export --perfetto`
//!   --serve-metrics <a>   live Prometheus endpoint with run-health gauges
//!   --watchdog <secs>     stall detector (exit 3 instead of hanging)
//! ```
//!
//! Exit codes:
//!   0  success
//!   1  a study failed its own gate (degenerate chaos matrix, attribution
//!      conservation violation, trace-diff regression, perf-report
//!      regression vs --baseline, export error) or an incident dump could
//!      not be written
//!   2  unknown or malformed arguments
//!   3  the run-health watchdog fired (no progress for the configured
//!      wall-clock timeout)

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use aum_sim::flight::{FlightConfig, FlightRecorder};
use aum_sim::live::{self, MetricsServer, Watchdog};
use aum_sim::telemetry::{parse_jsonl, JsonlSink, OrderingSink, TraceSink, Tracer};
use aum_sim::time::SimDuration;

/// Identity of a parsed command, used to key flag applicability.
/// `Run` covers both `repro <id>` and `repro all`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CmdId {
    Run,
    List,
    Chaos,
    FleetChaos,
    Attrib,
    PerfReport,
    TraceSummary,
    TraceDiff,
    TraceExport,
}

/// One row of the command table: positional synopsis plus the short label
/// used in per-flag validity lists and error messages.
struct CommandSpec {
    id: CmdId,
    usage: &'static str,
    label: &'static str,
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        id: CmdId::Run,
        usage: "<id>|all",
        label: "<id>|all",
    },
    CommandSpec {
        id: CmdId::List,
        usage: "list",
        label: "list",
    },
    CommandSpec {
        id: CmdId::Chaos,
        usage: "chaos",
        label: "chaos",
    },
    CommandSpec {
        id: CmdId::FleetChaos,
        usage: "fleet-chaos",
        label: "fleet-chaos",
    },
    CommandSpec {
        id: CmdId::Attrib,
        usage: "attrib <fig14|chaos>",
        label: "attrib",
    },
    CommandSpec {
        id: CmdId::PerfReport,
        usage: "perf-report <id>",
        label: "perf-report",
    },
    CommandSpec {
        id: CmdId::TraceSummary,
        usage: "trace-summary <file.jsonl>",
        label: "trace-summary",
    },
    CommandSpec {
        id: CmdId::TraceDiff,
        usage: "trace-diff <a.jsonl> <b.jsonl>",
        label: "trace-diff",
    },
    CommandSpec {
        id: CmdId::TraceExport,
        usage: "trace-export <file.jsonl>",
        label: "trace-export",
    },
];

/// One row of the flag table. `value` is `Some((metavar, noun))` for
/// value-taking flags — the metavar renders in usage text, the noun in
/// the "requires" error — and `None` for boolean switches.
struct FlagSpec {
    name: &'static str,
    value: Option<(&'static str, &'static str)>,
    applies: &'static [CmdId],
    help: &'static str,
}

/// Commands that run experiments or studies.
const RUNS: &[CmdId] = &[
    CmdId::Run,
    CmdId::Chaos,
    CmdId::FleetChaos,
    CmdId::Attrib,
    CmdId::PerfReport,
];
/// Commands that dispatch sweep cells through the parallel executor.
const SWEEPS: &[CmdId] = &[
    CmdId::Run,
    CmdId::Chaos,
    CmdId::FleetChaos,
    CmdId::Attrib,
    CmdId::PerfReport,
    CmdId::TraceDiff,
];

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--quick",
        value: None,
        applies: RUNS,
        help: "short runs — the CI smoke configuration",
    },
    FlagSpec {
        name: "--out",
        value: Some(("<dir>", "a directory")),
        applies: RUNS,
        help: "additionally write one .txt artifact per experiment",
    },
    FlagSpec {
        name: "--trace",
        value: Some(("<file.jsonl>", "a file path")),
        applies: RUNS,
        help: "stream telemetry from AUM-scheme runs and profiler sweeps as JSON lines",
    },
    FlagSpec {
        name: "--jobs",
        value: Some(("<N>", "a worker count")),
        applies: SWEEPS,
        help: "worker threads for sweep cells (default: AUM_JOBS env var, else available \
               parallelism; outputs are byte-identical at every N)",
    },
    FlagSpec {
        name: "--metrics-out",
        value: Some(("<file.prom>", "a file path")),
        applies: &[CmdId::Attrib],
        help: "write the run's final metrics snapshot + ledger in Prometheus text format",
    },
    FlagSpec {
        name: "--threshold",
        value: Some(("<pp>", "a number")),
        applies: &[CmdId::TraceDiff],
        help: "regression threshold in percentage points of time share (default 2.0)",
    },
    FlagSpec {
        name: "--perfetto",
        value: Some(("<out.json>", "a file path")),
        applies: &[CmdId::TraceExport],
        help: "output path of the Chrome Trace Event Format JSON (required)",
    },
    FlagSpec {
        name: "--flame",
        value: Some(("<file.folded>", "a file path")),
        applies: &[CmdId::PerfReport],
        help: "write the self-time tree as collapsed stacks (inferno/speedscope input)",
    },
    FlagSpec {
        name: "--bench-out",
        value: Some(("<file.json>", "a file path")),
        applies: &[CmdId::PerfReport],
        help: "destination of the machine-readable summary (default BENCH_<sha>.json)",
    },
    FlagSpec {
        name: "--baseline",
        value: Some(("<file.json>", "a file path")),
        applies: &[CmdId::PerfReport],
        help: "compare cells/sec against a previous BENCH_<sha>.json; exit 1 on a >20% drop",
    },
    FlagSpec {
        name: "--flight",
        value: Some(("<dir>", "a directory")),
        applies: RUNS,
        help: "arm the flight recorder: keep a bounded ring of telemetry and dump the \
               recent window to <dir>/incident-NNNN-<trigger>.jsonl on faults, safe-mode \
               entries, SLO burn pages, attribution near-misses, and watchdog stalls",
    },
    FlagSpec {
        name: "--flight-capacity",
        value: Some(("<events>", "a record count")),
        applies: RUNS,
        help: "flight-recorder ring retention in records (default 4096; requires --flight)",
    },
    FlagSpec {
        name: "--flight-window",
        value: Some(("<secs>", "a duration in seconds")),
        applies: RUNS,
        help: "sim-time window an incident dump covers (default 30; requires --flight)",
    },
    FlagSpec {
        name: "--serve-metrics",
        value: Some(("<addr>", "a listen address")),
        applies: RUNS,
        help: "serve live run-health gauges and the latest cell's metrics over HTTP at \
               http://<addr>/metrics while the run executes",
    },
    FlagSpec {
        name: "--serve-hold",
        value: Some(("<secs>", "a duration in seconds")),
        applies: RUNS,
        help: "keep the metrics endpoint up for <secs> after the run completes \
               (requires --serve-metrics)",
    },
    FlagSpec {
        name: "--watchdog",
        value: Some(("<secs>", "a duration in seconds")),
        applies: RUNS,
        help: "terminate with exit 3 when no sweep-cell or controller-interval progress \
               lands for <secs> of wall time, instead of hanging",
    },
];

enum Command {
    List,
    All,
    One(String),
    Chaos { quick: bool },
    FleetChaos { quick: bool },
    Attrib { study: String, quick: bool },
    PerfReport { study: String, quick: bool },
    TraceSummary(PathBuf),
    TraceDiff { a: PathBuf, b: PathBuf },
    TraceExport { input: PathBuf, perfetto: PathBuf },
}

impl Command {
    fn id(&self) -> CmdId {
        match self {
            Command::List => CmdId::List,
            Command::All | Command::One(_) => CmdId::Run,
            Command::Chaos { .. } => CmdId::Chaos,
            Command::FleetChaos { .. } => CmdId::FleetChaos,
            Command::Attrib { .. } => CmdId::Attrib,
            Command::PerfReport { .. } => CmdId::PerfReport,
            Command::TraceSummary(_) => CmdId::TraceSummary,
            Command::TraceDiff { .. } => CmdId::TraceDiff,
            Command::TraceExport { .. } => CmdId::TraceExport,
        }
    }

    /// Phase label shown on the live endpoint.
    fn phase(&self) -> String {
        match self {
            Command::List => "list".into(),
            Command::All => "all".into(),
            Command::One(id) => id.clone(),
            Command::Chaos { .. } => "chaos".into(),
            Command::FleetChaos { .. } => "fleet-chaos".into(),
            Command::Attrib { study, .. } => format!("attrib-{study}"),
            Command::PerfReport { study, .. } => format!("perf-report-{study}"),
            Command::TraceSummary(_) => "trace-summary".into(),
            Command::TraceDiff { .. } => "trace-diff".into(),
            Command::TraceExport { .. } => "trace-export".into(),
        }
    }
}

struct Cli {
    command: Command,
    out_dir: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    threshold: Option<f64>,
    jobs: Option<usize>,
    quick: bool,
    flight: Option<PathBuf>,
    flight_capacity: Option<usize>,
    flight_window_secs: Option<f64>,
    serve_metrics: Option<String>,
    serve_hold_secs: u64,
    watchdog_secs: Option<u64>,
    flame: Option<PathBuf>,
    bench_out: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

/// Raw flag values captured by the table-driven scan, indexed like
/// [`FLAGS`]; switches store an empty string.
struct RawFlags(Vec<Option<String>>);

impl RawFlags {
    fn get(&self, name: &str) -> Option<&str> {
        let idx = FLAGS.iter().position(|f| f.name == name)?;
        self.0[idx].as_deref()
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    fn path(&self, name: &str) -> Option<PathBuf> {
        self.get(name).map(PathBuf::from)
    }
}

/// The generic scan: splits `args` into positionals and per-flag values
/// using only the [`FLAGS`] table. Unknown flags, missing values, and
/// duplicates are rejected here; typed validation happens afterwards.
fn scan_flags(args: &[String]) -> Result<(Vec<String>, RawFlags), String> {
    let mut positionals = Vec::new();
    let mut values: Vec<Option<String>> = vec![None; FLAGS.len()];
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(idx) = FLAGS.iter().position(|f| f.name == arg) {
            let spec = &FLAGS[idx];
            let value = match spec.value {
                Some((_, noun)) => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("{} requires {noun}", spec.name))?;
                    i += 2;
                    v.clone()
                }
                None => {
                    i += 1;
                    String::new()
                }
            };
            if values[idx].replace(value).is_some() {
                return Err(format!("{} given twice", spec.name));
            }
        } else if arg.starts_with('-') {
            return Err(format!("unknown flag `{arg}`"));
        } else {
            positionals.push(arg.to_owned());
            i += 1;
        }
    }
    Ok((positionals, RawFlags(values)))
}

fn parse_positive<T: std::str::FromStr + PartialOrd + From<u8>>(
    raw: &RawFlags,
    name: &str,
    what: &str,
) -> Result<Option<T>, String> {
    let Some(v) = raw.get(name) else {
        return Ok(None);
    };
    let parsed: T = v
        .parse()
        .map_err(|_| format!("{name}: `{v}` is not {what}"))?;
    if parsed < T::from(1u8) {
        return Err(format!("{name} must be at least 1"));
    }
    Ok(Some(parsed))
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let (positionals, raw) = scan_flags(args)?;
    let positionals: Vec<&str> = positionals.iter().map(String::as_str).collect();
    let quick = raw.has("--quick");
    let command = match positionals.as_slice() {
        [] => return Err("missing command".into()),
        ["list"] => Command::List,
        ["all"] => Command::All,
        ["chaos"] => Command::Chaos { quick },
        ["fleet-chaos"] => Command::FleetChaos { quick },
        ["attrib", study] => Command::Attrib {
            study: (*study).to_owned(),
            quick,
        },
        ["attrib"] => return Err("attrib requires a study name (fig14 or chaos)".into()),
        ["perf-report", study] => Command::PerfReport {
            study: (*study).to_owned(),
            quick,
        },
        ["perf-report"] => return Err("perf-report requires a study id (see `repro list`)".into()),
        ["trace-summary", file] => Command::TraceSummary(PathBuf::from(file)),
        ["trace-summary"] => return Err("trace-summary requires a file".into()),
        ["trace-diff", a, b] => Command::TraceDiff {
            a: PathBuf::from(a),
            b: PathBuf::from(b),
        },
        ["trace-diff", ..] => return Err("trace-diff requires two trace files".into()),
        ["trace-export", file] => Command::TraceExport {
            input: PathBuf::from(file),
            perfetto: raw
                .path("--perfetto")
                .ok_or("trace-export requires --perfetto <out.json>")?,
        },
        ["trace-export"] => return Err("trace-export requires a trace file".into()),
        [id] => Command::One((*id).to_owned()),
        [_, extra, ..] => return Err(format!("unexpected argument `{extra}`")),
    };
    // Table-driven applicability: every provided flag must list the
    // resolved command — the same table renders the help text.
    let cmd_id = command.id();
    for (spec, value) in FLAGS.iter().zip(&raw.0) {
        if value.is_some() && !spec.applies.contains(&cmd_id) {
            let valid: Vec<&str> = COMMANDS
                .iter()
                .filter(|c| spec.applies.contains(&c.id))
                .map(|c| c.label)
                .collect();
            return Err(format!(
                "{} is only valid with: {}",
                spec.name,
                valid.join(", ")
            ));
        }
    }
    // Cross-flag requirements the applicability table cannot express.
    for (dependent, prereq) in [
        ("--flight-capacity", "--flight"),
        ("--flight-window", "--flight"),
        ("--serve-hold", "--serve-metrics"),
    ] {
        if raw.has(dependent) && !raw.has(prereq) {
            return Err(format!("{dependent} requires {prereq}"));
        }
    }
    let threshold = raw
        .get("--threshold")
        .map(|v| {
            let parsed: f64 = v
                .parse()
                .map_err(|_| format!("--threshold: `{v}` is not a number"))?;
            if !parsed.is_finite() || parsed < 0.0 {
                return Err("--threshold must be a finite non-negative number".to_string());
            }
            Ok(parsed)
        })
        .transpose()?;
    let flight_window_secs = raw
        .get("--flight-window")
        .map(|v| {
            let parsed: f64 = v
                .parse()
                .map_err(|_| format!("--flight-window: `{v}` is not a number"))?;
            if !parsed.is_finite() || parsed <= 0.0 {
                return Err("--flight-window must be a positive number of seconds".to_string());
            }
            Ok(parsed)
        })
        .transpose()?;
    let jobs = parse_positive::<usize>(&raw, "--jobs", "a positive integer")?;
    let flight_capacity = parse_positive::<usize>(&raw, "--flight-capacity", "a positive integer")?;
    let watchdog_secs = parse_positive::<u64>(&raw, "--watchdog", "a whole number of seconds")?;
    let serve_hold_secs = raw
        .get("--serve-hold")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("--serve-hold: `{v}` is not a whole number of seconds"))
        })
        .transpose()?
        .unwrap_or(0);
    Ok(Cli {
        command,
        out_dir: raw.path("--out"),
        trace: raw.path("--trace"),
        metrics_out: raw.path("--metrics-out"),
        threshold,
        jobs,
        quick,
        flight: raw.path("--flight"),
        flight_capacity,
        flight_window_secs,
        serve_metrics: raw.get("--serve-metrics").map(str::to_owned),
        serve_hold_secs,
        watchdog_secs,
        flame: raw.path("--flame"),
        bench_out: raw.path("--bench-out"),
        baseline: raw.path("--baseline"),
    })
}

/// Renders the help text from the same tables the parser walks.
fn usage_text(experiments: &[(&'static str, aum_bench::Experiment)]) -> String {
    let mut out = String::new();
    for (i, cmd) in COMMANDS.iter().enumerate() {
        let lead = if i == 0 { "usage:" } else { "      " };
        let has_flags = FLAGS.iter().any(|f| f.applies.contains(&cmd.id));
        let flags = if has_flags { " [flags]" } else { "" };
        out.push_str(&format!("{lead} repro {}{flags}\n", cmd.usage));
    }
    out.push_str("       repro help | --help\n");
    out.push_str("flags:\n");
    for spec in FLAGS {
        let head = match spec.value {
            Some((metavar, _)) => format!("{} {metavar}", spec.name),
            None => spec.name.to_string(),
        };
        let valid: Vec<&str> = COMMANDS
            .iter()
            .filter(|c| spec.applies.contains(&c.id))
            .map(|c| c.label)
            .collect();
        out.push_str(&format!(
            "  {head:<28} {}  [{}]\n",
            spec.help,
            valid.join(", ")
        ));
    }
    out.push_str(&format!(
        "ids: {}\n",
        experiments
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out
}

/// The installed harness sink: either the plain ordered JSONL chain or
/// the flight recorder wrapping it (with the JSONL leg optional).
enum SinkHandle {
    Plain(Arc<Mutex<OrderingSink<JsonlSink>>>),
    Flight(Arc<Mutex<FlightRecorder<OrderingSink<JsonlSink>>>>),
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = aum_bench::experiments();
    // `repro help` / `repro --help`: the full subcommand list on stdout,
    // exit 0 — recognized anywhere on the command line.
    if args.first().map(String::as_str) == Some("help") || args.iter().any(|a| a == "--help") {
        print!("{}", usage_text(&experiments));
        return;
    }
    let usage = || eprint!("{}", usage_text(&experiments));
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            usage();
            std::process::exit(2);
        }
    };
    if let Some(n) = cli.jobs {
        aum_sim::exec::set_jobs(n);
    }
    aum_bench::common::set_quick(cli.quick);
    if let Some(dir) = &cli.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    // Run-health watchdog: armed before any sweep so a stalled cell turns
    // into a typed exit instead of a hung CI job.
    let watchdog = cli
        .watchdog_secs
        .map(|secs| Watchdog::arm(Duration::from_secs(secs)));
    // Live metrics endpoint. The listener and its snapshots live outside
    // the determinism contract: nothing it serves feeds back into stdout
    // or traces.
    let server = cli.serve_metrics.as_ref().map(|addr| {
        let state = live::install();
        let server = match MetricsServer::serve(addr, state.clone()) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("cannot serve metrics on {addr}: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("metrics: live endpoint at http://{}/metrics", server.addr());
        let _ = state.set_phase(&cli.command.phase());
        (state, server)
    });
    // The harness tracer. With `--flight` the recorder is the outermost
    // sink so it observes records live, in the deterministic emission
    // order of the canonical cell merge; the ordered JSONL chain (the
    // `--trace` leg) rides inside it unchanged.
    let make_jsonl = |path: &PathBuf| -> OrderingSink<JsonlSink> {
        let sink = match JsonlSink::create(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        // OrderingSink re-sorts each run's records by sim time: components
        // are simulated sequentially over overlapping interval windows, so
        // raw emission order is not globally monotonic.
        OrderingSink::new(sink)
    };
    let sink_handle: Option<SinkHandle> = if let Some(dir) = &cli.flight {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        let mut fcfg = FlightConfig::new(dir);
        if let Some(capacity) = cli.flight_capacity {
            fcfg.capacity = capacity;
        }
        if let Some(secs) = cli.flight_window_secs {
            fcfg.window = SimDuration::from_secs_f64(secs);
        }
        let inner = cli.trace.as_ref().map(&make_jsonl);
        let (tracer, handle) = Tracer::shared(FlightRecorder::with_inner_opt(fcfg, inner));
        aum_bench::common::install_tracer(tracer);
        if let Some((state, _)) = &server {
            let flight = handle.clone();
            state.set_flight_source(move || flight.lock().expect("flight lock").stats());
        }
        Some(SinkHandle::Flight(handle))
    } else if let Some(path) = &cli.trace {
        let (tracer, handle) = Tracer::shared(make_jsonl(path));
        aum_bench::common::install_tracer(tracer);
        Some(SinkHandle::Plain(handle))
    } else {
        None
    };
    // Wall-clock timing goes to stderr so stdout stays byte-identical
    // across runs and worker counts (the CI serial-vs-parallel gate
    // `cmp`s captured stdout).
    let emit = |name: &str, out: &str, elapsed: std::time::Duration| {
        println!("==== {name} ====\n{out}");
        eprintln!("{name}: completed in {elapsed:?}");
        if let Some(dir) = &cli.out_dir {
            let path = dir.join(format!("{name}.txt"));
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("cannot write {}: {e}", path.display());
            }
        }
    };
    // Per-study executor accounting: speedup = summed cell compute time /
    // sweep wall time. Printed to stderr so stdout artifacts stay
    // byte-identical across worker counts.
    let report_speedup = |name: &str, before: &aum_sim::exec::ExecStats| {
        let d = aum_sim::exec::stats().since(before);
        if d.cells > 0 {
            eprintln!(
                "{name}: {} sweep cells, busy {:.2?} / wall {:.2?}, speedup {:.2}x (jobs {}; \
                 claim {:.2?}, merge {:.2?}, idle {:.2?})",
                d.cells,
                d.busy,
                d.wall,
                d.speedup(),
                aum_sim::exec::jobs(),
                d.claim,
                d.merge,
                d.idle,
            );
        }
    };
    let set_phase = |label: &str| {
        if let Some((state, _)) = &server {
            let _ = state.set_phase(label);
        }
    };
    let mut exit_code = 0;
    match &cli.command {
        Command::List => {
            for (name, _) in &experiments {
                println!("{name}");
            }
        }
        Command::All => {
            let t0 = Instant::now();
            for (name, run) in &experiments {
                set_phase(name);
                let t = Instant::now();
                let before = aum_sim::exec::stats();
                let out = run();
                emit(name, &out, t.elapsed());
                report_speedup(name, &before);
            }
            eprintln!("total: {:?}", t0.elapsed());
        }
        Command::Chaos { quick } => {
            let t = Instant::now();
            let before = aum_sim::exec::stats();
            let run = aum_bench::chaos::run(*quick);
            emit("chaos", &run.text, t.elapsed());
            report_speedup("chaos", &before);
            if run.degenerate {
                eprintln!("error: chaos matrix produced non-finite SLO guarantees");
                exit_code = 1;
            }
        }
        Command::FleetChaos { quick } => {
            let t = Instant::now();
            let before = aum_sim::exec::stats();
            let run = aum_bench::fleetchaos::run(*quick);
            emit("fleet-chaos", &run.text, t.elapsed());
            report_speedup("fleet-chaos", &before);
            if run.degenerate {
                eprintln!(
                    "error: fleet-chaos matrix failed conservation, finiteness, \
                     or the node-crash acceptance gate"
                );
                exit_code = 1;
            }
        }
        Command::Attrib { study, quick } => {
            let t = Instant::now();
            let before = aum_sim::exec::stats();
            match aum_bench::attribution::run_study(study, *quick) {
                Ok(report) => {
                    emit(&format!("attrib-{study}"), &report.text, t.elapsed());
                    report_speedup(&format!("attrib-{study}"), &before);
                    if let Some(path) = &cli.metrics_out {
                        if let Err(e) = std::fs::write(path, &report.prom) {
                            eprintln!("cannot write {}: {e}", path.display());
                            exit_code = 1;
                        } else {
                            eprintln!("metrics: {}", path.display());
                        }
                    }
                }
                Err(msg) => {
                    eprintln!("error: {msg}");
                    exit_code = 1;
                }
            }
        }
        Command::PerfReport { study, quick } => {
            let t = Instant::now();
            let before = aum_sim::exec::stats();
            match aum_bench::perfreport::collect(study, *quick) {
                Ok(report) => {
                    let name = format!("perf-report-{study}");
                    let text = format!(
                        "{}\n{}\n{}",
                        report.study_output, report.deterministic, report.timing
                    );
                    emit(&name, &text, t.elapsed());
                    report_speedup(&name, &before);
                    if let Some(path) = &cli.flame {
                        if let Err(e) = std::fs::write(path, &report.folded) {
                            eprintln!("cannot write {}: {e}", path.display());
                            exit_code = 1;
                        } else {
                            eprintln!(
                                "flame: {} stack(s) \u{2192} {}",
                                report.folded.lines().count(),
                                path.display()
                            );
                        }
                    }
                    let bench_path = cli.bench_out.clone().unwrap_or_else(|| {
                        PathBuf::from(format!("BENCH_{}.json", report.bench.sha))
                    });
                    match serde_json::to_string_pretty(&report.bench) {
                        Ok(json) => {
                            if let Err(e) = std::fs::write(&bench_path, json) {
                                eprintln!("cannot write {}: {e}", bench_path.display());
                                exit_code = 1;
                            } else {
                                eprintln!("bench: {}", bench_path.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("cannot serialize bench summary: {e}");
                            exit_code = 1;
                        }
                    }
                    if let Some(path) = &cli.baseline {
                        let gate = std::fs::read_to_string(path)
                            .map_err(|e| format!("cannot read {}: {e}", path.display()))
                            .and_then(|text| {
                                serde_json::from_str::<aum_bench::perfreport::BenchSummary>(&text)
                                    .map_err(|e| {
                                        format!("malformed baseline {}: {e}", path.display())
                                    })
                            })
                            .and_then(|baseline| {
                                report.bench.regression_against(&baseline).map_err(|msg| {
                                    format!("perf regression vs {}: {msg}", path.display())
                                })
                            });
                        match gate {
                            Ok(line) => eprintln!("perf gate: {line}"),
                            Err(msg) => {
                                eprintln!("error: {msg}");
                                exit_code = 1;
                            }
                        }
                    }
                }
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(2);
                }
            }
        }
        Command::TraceDiff { a, b } => {
            let read_trace = |path: &PathBuf| -> Result<Vec<_>, String> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let records = parse_jsonl(&text)
                    .map_err(|e| format!("malformed trace {}: {e}", path.display()))?;
                if records.is_empty() {
                    return Err(format!("empty trace {}: no records", path.display()));
                }
                Ok(records)
            };
            let threshold = cli
                .threshold
                .unwrap_or(aum_bench::attribution::DEFAULT_THRESHOLD_PP);
            match read_trace(a).and_then(|ra| read_trace(b).map(|rb| (ra, rb))) {
                Ok((ra, rb)) => match aum_bench::attribution::trace_diff(&ra, &rb, threshold) {
                    Ok(diff) => {
                        print!("{}", diff.text);
                        if diff.regression {
                            exit_code = 1;
                        }
                    }
                    Err(msg) => {
                        eprintln!("error: {msg}");
                        std::process::exit(1);
                    }
                },
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
        }
        Command::One(id) => match experiments.iter().find(|(n, _)| n == id) {
            Some((name, run)) => {
                let t = Instant::now();
                let before = aum_sim::exec::stats();
                let out = run();
                emit(name, &out, t.elapsed());
                report_speedup(name, &before);
            }
            None => {
                eprintln!("error: unknown experiment `{id}`");
                usage();
                std::process::exit(2);
            }
        },
        Command::TraceSummary(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            match parse_jsonl(&text) {
                Ok(records) => print!("{}", aum_bench::tracereport::summarize(&records)),
                Err(e) => {
                    eprintln!("malformed trace {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        Command::TraceExport { input, perfetto } => {
            let text = match std::fs::read_to_string(input) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", input.display());
                    std::process::exit(1);
                }
            };
            let records = match parse_jsonl(&text) {
                Ok(records) if records.is_empty() => {
                    eprintln!("error: empty trace {}: no records", input.display());
                    std::process::exit(1);
                }
                Ok(records) => records,
                Err(e) => {
                    eprintln!("malformed trace {}: {e}", input.display());
                    std::process::exit(1);
                }
            };
            match aum_bench::perfetto::export(&records) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(perfetto, &json) {
                        eprintln!("cannot write {}: {e}", perfetto.display());
                        std::process::exit(1);
                    }
                    eprintln!(
                        "perfetto: {} records \u{2192} {}",
                        records.len(),
                        perfetto.display()
                    );
                }
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::exit(1);
                }
            }
        }
    }
    // The work is done: stop stall detection before the flush/hold tail,
    // which makes no heartbeat progress by design.
    if let Some(watchdog) = watchdog {
        watchdog.disarm();
    }
    match &sink_handle {
        Some(SinkHandle::Plain(handle)) => {
            let mut sink = handle.lock().expect("sink lock");
            sink.flush_sink();
            if let Some(path) = &cli.trace {
                eprintln!(
                    "trace: {} events \u{2192} {}",
                    sink.inner().lines_written(),
                    path.display()
                );
            }
        }
        Some(SinkHandle::Flight(handle)) => {
            let mut recorder = handle.lock().expect("flight lock");
            recorder.flush_sink();
            if let (Some(path), Some(ordered)) = (&cli.trace, recorder.inner()) {
                eprintln!(
                    "trace: {} events \u{2192} {}",
                    ordered.inner().lines_written(),
                    path.display()
                );
            }
            let stats = recorder.stats();
            if let Some(dir) = &cli.flight {
                eprintln!(
                    "flight: {} trigger(s), {} incident dump(s) \u{2192} {}",
                    stats.triggers,
                    stats.incidents,
                    dir.display()
                );
            }
            for incident in recorder.incidents() {
                eprintln!(
                    "flight: incident {:04} [{}] at t={:.1}s \u{2192} {} ({} events)",
                    incident.seq,
                    incident.trigger.label(),
                    incident.at.as_secs_f64(),
                    incident.path.display(),
                    incident.events
                );
            }
            for error in recorder.errors() {
                eprintln!("flight: error: {error}");
                exit_code = 1;
            }
        }
        None => {}
    }
    if let Some((state, server)) = server {
        let _ = state.set_phase("done");
        if cli.serve_hold_secs > 0 {
            eprintln!(
                "metrics: holding endpoint for {}s (ctrl-c to stop early)",
                cli.serve_hold_secs
            );
            std::thread::sleep(Duration::from_secs(cli.serve_hold_secs));
        }
        server.shutdown();
        live::uninstall();
    }
    if exit_code != 0 {
        std::process::exit(exit_code);
    }
}
