//! Chaos study: a scripted fault matrix exercising the resilience layer.
//!
//! `repro chaos [--quick]` runs every fault scenario in the taxonomy
//! against three schemes — AUM (the full controller), STATIC-BEST (the
//! profiled optimum frozen at t=0) and ALL-AU (exclusive serving) — and
//! reports *SLO retention*: the fraction of each scheme's own healthy SLO
//! guarantee it keeps under the fault. Normalizing per scheme isolates
//! resilience (how gracefully a scheme degrades) from raw healthy
//! performance (which Fig 17 already covers).
//!
//! `--quick` restricts the matrix to the three acceptance-critical faults
//! (bandwidth collapse, thermal runaway, BE surge) over a shorter run —
//! the CI smoke configuration.
//!
//! Every run is seeded; the same seed yields a byte-identical report. A
//! non-finite guarantee anywhere marks the report degenerate and the
//! driver exits nonzero.

use std::fmt::Write as _;

use aum::baselines::{AllAu, StaticBest};
use aum::controller::AumController;
use aum::experiment::{
    run_experiment_traced, ExperimentConfig, Fault, FaultEvent, FaultPlan, Outcome,
};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::AuUsageLevel;
use aum_sim::telemetry::Tracer;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

use crate::common::{harness_tracer, ModelCache};

/// Seed shared by every run in the matrix — fixed so the report is
/// reproducible by construction.
const CHAOS_SEED: u64 = 7;

/// The rendered chaos report plus its health verdict.
pub struct ChaosRun {
    /// The full table, ready to print.
    pub text: String,
    /// `true` if any guarantee or retention came out non-finite — the
    /// driver turns this into a nonzero exit code.
    pub degenerate: bool,
}

/// One named fault scenario of the matrix.
struct ChaosScenario {
    name: &'static str,
    plan: FaultPlan,
}

/// Builds the fault matrix. Injection at `t0`, windowed faults recover at
/// `t1`. `quick` keeps only the three acceptance-critical scenarios.
fn scenarios(t0: f64, t1: f64, quick: bool) -> Vec<ChaosScenario> {
    let mut list = vec![
        ChaosScenario {
            // frac 0.8 leaves adaptation headroom: shedding the co-runner's
            // pool share clears the queuing onset and recovers the LLM's
            // SLO. (Below ~0.6 the serving load alone saturates the pool
            // and no manager can react its way out — every scheme pins at
            // the same floor.)
            name: "bandwidth-collapse",
            plan: FaultPlan::single(FaultEvent::permanent(
                t0,
                Fault::BandwidthDegrade { frac: 0.8 },
            )),
        },
        ChaosScenario {
            name: "thermal-runaway",
            plan: FaultPlan::single(FaultEvent::windowed(
                t0,
                t1,
                Fault::ThermalRunaway { severity: 1.5 },
            )),
        },
        ChaosScenario {
            name: "be-surge",
            plan: FaultPlan::single(FaultEvent::windowed(t0, t1, Fault::BeSurge { factor: 4.0 })),
        },
    ];
    if quick {
        return list;
    }
    list.extend([
        ChaosScenario {
            name: "license-lock",
            plan: FaultPlan::single(FaultEvent::permanent(
                t0,
                Fault::FrequencyLicenseLock {
                    level: AuUsageLevel::High,
                },
            )),
        },
        ChaosScenario {
            name: "core-offline",
            plan: FaultPlan::single(FaultEvent::permanent(t0, Fault::CoreOffline { count: 8 })),
        },
        ChaosScenario {
            name: "rdt-blackout",
            plan: FaultPlan::single(FaultEvent::permanent(
                t0,
                Fault::RdtWriteFailure { delay_intervals: 0 },
            )),
        },
        ChaosScenario {
            name: "sensor-noise",
            plan: FaultPlan::single(FaultEvent::permanent(t0, Fault::SensorNoise { sigma: 0.6 })),
        },
        ChaosScenario {
            name: "sensor-dropout",
            plan: FaultPlan::single(FaultEvent::permanent(t0, Fault::SensorDropout)),
        },
        ChaosScenario {
            name: "multi-fault-script",
            plan: FaultPlan::new(vec![
                FaultEvent::windowed(t0, t1, Fault::BandwidthDegrade { frac: 0.7 }),
                FaultEvent::windowed(t0 + 20.0, t1, Fault::ThermalRunaway { severity: 1.2 }),
                FaultEvent::windowed(t0 + 40.0, t1, Fault::BeSurge { factor: 2.0 }),
            ]),
        },
    ]);
    list
}

/// The three schemes under chaos, in report order.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ChaosScheme {
    Aum,
    StaticBest,
    AllAu,
}

impl ChaosScheme {
    const ALL: [ChaosScheme; 3] = [
        ChaosScheme::Aum,
        ChaosScheme::StaticBest,
        ChaosScheme::AllAu,
    ];

    fn name(self) -> &'static str {
        match self {
            ChaosScheme::Aum => "AUM",
            ChaosScheme::StaticBest => "STATIC-BEST",
            ChaosScheme::AllAu => "ALL-AU",
        }
    }
}

/// A scheme's healthy-vs-faulted SLO guarantees for one scenario.
struct Cell {
    ttft_g: f64,
    tpot_g: f64,
    score: f64,
    retention: f64,
    safe_entries: u64,
}

/// Combined SLO score: the mean of the two guarantee fractions. The mean
/// (rather than the min) keeps the score sensitive to both metrics — TPOT
/// guarantees sit near 1.0 when healthy, so bandwidth and frequency faults
/// show up there, while queueing faults show up in TTFT.
fn slo_score(out: &Outcome) -> f64 {
    0.5 * (out.slo.ttft_guarantee + out.slo.tpot_guarantee)
}

/// Runs one scheme under one plan; the second return is the controller's
/// safe-mode entry count (always 0 for the static baselines). `tracer` is
/// the per-cell capture handed out by the sweep executor — only the AUM
/// cell streams into it (matching the figure harness), so `repro chaos
/// --trace` shows AUM's fault and safe-mode events without baseline noise.
fn run_scheme(
    scheme: ChaosScheme,
    plan: &FaultPlan,
    duration_secs: u64,
    cache: &ModelCache,
    tracer: &Tracer,
) -> (Outcome, u64) {
    let spec = PlatformSpec::gen_a();
    // ALL-AU serves exclusively by definition; the managed schemes carry
    // the OLAP co-runner whose resources the fault plane squeezes.
    let be = match scheme {
        ChaosScheme::AllAu => None,
        _ => Some(BeKind::Olap),
    };
    let mut cfg = ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, be);
    cfg.duration = SimDuration::from_secs(duration_secs);
    cfg.seed = CHAOS_SEED;
    cfg.fault = plan.clone();
    match scheme {
        ChaosScheme::Aum => {
            let mut ctl = AumController::new(cache.model(&spec, Scenario::Chatbot, BeKind::Olap));
            let out = run_experiment_traced(&cfg, &mut ctl, tracer.clone());
            let entries = ctl.safe_mode_entries();
            (out, entries)
        }
        ChaosScheme::StaticBest => {
            let mut mgr = StaticBest::new(&cache.model(&spec, Scenario::Chatbot, BeKind::Olap));
            (run_experiment_traced(&cfg, &mut mgr, Tracer::disabled()), 0)
        }
        ChaosScheme::AllAu => {
            let mut mgr = AllAu::new(&spec);
            (run_experiment_traced(&cfg, &mut mgr, Tracer::disabled()), 0)
        }
    }
}

/// Runs the fault matrix and renders the retention report.
#[must_use]
pub fn run(quick: bool) -> ChaosRun {
    run_with(quick, &ModelCache::new())
}

/// [`run`] against a caller-supplied model cache — the parallel-determinism
/// suite passes a smoke-scale cache so the identical matrix/executor code
/// path stays testable in debug builds.
#[must_use]
pub fn run_with(quick: bool, cache: &ModelCache) -> ChaosRun {
    let (duration, t0, t1) = if quick {
        (120u64, 30.0, 90.0)
    } else {
        (240u64, 60.0, 180.0)
    };
    let scenarios = scenarios(t0, t1, quick);

    // Build the single AUV model serially before any parallel dispatch, so
    // the profiler's (internally parallel, order-merged) trace lands ahead
    // of every cell stream.
    let spec = PlatformSpec::gen_a();
    cache.warm([(&spec, Scenario::Chatbot, BeKind::Olap)]);

    // Healthy baselines: one per scheme, same seed and duration.
    let healthy: Vec<(ChaosScheme, Outcome)> = aum_sim::exec::sweep_traced(
        &harness_tracer(),
        ChaosScheme::ALL.to_vec(),
        |_, s, tracer| run_scheme(s, &FaultPlan::none(), duration, cache, &tracer).0,
    )
    .into_iter()
    .zip(ChaosScheme::ALL)
    .map(|(o, s)| (s, o))
    .collect();

    let mut out = String::new();
    let mode = if quick { "quick" } else { "full" };
    let _ = writeln!(
        out,
        "chaos resilience matrix ({mode}) \u{2014} gen_a / chatbot / OLAP co-runner, \
         seed {CHAOS_SEED}, {duration}s runs, faults strike at t={t0:.0}s"
    );
    let _ = writeln!(
        out,
        "retention = SLO score under fault / same scheme healthy; \
         score = mean(TTFT, TPOT guarantee)"
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<20} {:<12} {:>7} {:>7} {:>7} {:>10} {:>10}",
        "fault", "scheme", "ttft_g", "tpot_g", "score", "retention", "safe-mode"
    );
    for (scheme, base) in &healthy {
        let _ = writeln!(
            out,
            "{:<20} {:<12} {:>7.3} {:>7.3} {:>7.3} {:>9.1}% {:>10}",
            "(healthy)",
            scheme.name(),
            base.slo.ttft_guarantee,
            base.slo.tpot_guarantee,
            slo_score(base),
            100.0,
            "-"
        );
    }

    // The whole fault × scheme matrix is independent cells; dispatch it
    // through the sweep executor in (scenario, scheme) order.
    let matrix_cells: Vec<(usize, ChaosScheme)> = (0..scenarios.len())
        .flat_map(|i| ChaosScheme::ALL.map(move |s| (i, s)))
        .collect();
    let matrix: Vec<(Outcome, u64)> =
        aum_sim::exec::sweep_traced(&harness_tracer(), matrix_cells, |_, (i, scheme), tracer| {
            run_scheme(scheme, &scenarios[i].plan, duration, cache, &tracer)
        });
    let mut matrix_iter = matrix.into_iter();

    let mut degenerate = false;
    for sc in &scenarios {
        let mut cells: Vec<(ChaosScheme, Cell)> = Vec::new();
        for &(scheme, ref base) in &healthy {
            let (faulted, safe_entries) = matrix_iter.next().expect("matrix covers every cell");
            let score = slo_score(&faulted);
            let retention = score / slo_score(base).max(1e-9);
            let cell = Cell {
                ttft_g: faulted.slo.ttft_guarantee,
                tpot_g: faulted.slo.tpot_guarantee,
                score,
                retention,
                safe_entries,
            };
            if !(cell.ttft_g.is_finite()
                && cell.tpot_g.is_finite()
                && cell.score.is_finite()
                && cell.retention.is_finite())
            {
                degenerate = true;
            }
            cells.push((scheme, cell));
        }
        for (scheme, cell) in &cells {
            let safe = if cell.safe_entries > 0 {
                format!("{}x", cell.safe_entries)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<20} {:<12} {:>7.3} {:>7.3} {:>7.3} {:>9.1}% {:>10}",
                sc.name,
                scheme.name(),
                cell.ttft_g,
                cell.tpot_g,
                cell.score,
                cell.retention * 100.0,
                safe
            );
        }
        let aum = &cells[0].1;
        let stat = &cells[1].1;
        let verdict = if aum.retention > stat.retention {
            "AUM more resilient"
        } else if aum.retention < stat.retention {
            "STATIC-BEST more resilient"
        } else {
            "tie"
        };
        let _ = writeln!(
            out,
            "  -> AUM retention {:.1}% vs STATIC-BEST {:.1}%  [{verdict}]",
            aum.retention * 100.0,
            stat.retention * 100.0
        );
    }

    if degenerate {
        out.push_str("\nDEGENERATE: non-finite guarantee detected \u{2014} failing the run\n");
    }
    ChaosRun {
        text: out,
        degenerate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_deterministic_and_finite() {
        let a = run(true);
        let b = run(true);
        assert_eq!(a.text, b.text, "same seed must yield an identical report");
        assert!(!a.degenerate, "quick matrix must stay finite:\n{}", a.text);
        assert!(a.text.contains("bandwidth-collapse"));
        assert!(a.text.contains("STATIC-BEST"));
    }
}
