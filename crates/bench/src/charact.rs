//! Characterization experiments: Table I, Fig 4, Fig 5, Table II.

use aum_au::counters::PmuCounters;
use aum_au::gemm::ExecContext;
use aum_au::topdown::{signature, SignatureKind};
use aum_au::unit::Precision;
use aum_llm::config::ModelConfig;
use aum_llm::cost::{iteration_cost, AuKernels};
use aum_llm::ops::Phase;
use aum_platform::spec::PlatformSpec;
use aum_sim::report::{fmt3, TextTable};
use aum_workloads::au_apps::{au_acceleration, AuApp};
use aum_workloads::gpu::GpuReference;

/// Table I: hardware specifications of the evaluated platforms.
#[must_use]
pub fn table1() -> String {
    let mut t = TextTable::new([
        "Platform",
        "Generation",
        "CPU",
        "cores/sockets",
        "AVX/AMX TFLOPS",
        "Base",
        "L1I",
        "L1D",
        "L2/core",
        "LLC/socket",
        "Memory",
        "BW",
    ]);
    for s in PlatformSpec::presets() {
        t.row([
            s.name.clone(),
            s.generation.to_string(),
            s.cpu_model.clone(),
            format!("{}/{}", s.cores_per_socket, s.sockets),
            format!("{:.1}/{:.1}", s.avx_peak.value(), s.amx_peak.value()),
            format!("{:.1} GHz", s.base_freq.value()),
            format!("{} KB", s.l1i_kb),
            format!("{} KB", s.l1d_kb),
            format!("{} MB", s.l2_mb_per_core),
            format!("{} MB", s.llc_mb_per_socket),
            format!("{} {}GB", s.memory, s.memory_gb),
            format!("{:.1} GB/s", s.mem_bw.value()),
        ]);
    }
    format!(
        "Table I: hardware specifications of evaluated CPUs\n{}",
        t.render()
    )
}

/// Fig 4: AU acceleration of Faiss/Vocoder/DeepFM on GenC under different
/// dimensions, cores and batch sizes, relative to AU-disabled execution.
#[must_use]
pub fn fig4() -> String {
    let spec = PlatformSpec::gen_c();
    // (app, sweep label, shown value, (dimension, cores, batch)) cells in
    // report order; `au_acceleration` is pure, so the sweep executor runs
    // them concurrently and hands results back in this exact order.
    type Fig4Cell = (AuApp, &'static str, usize, (usize, usize, usize));
    let cells: Vec<Fig4Cell> = AuApp::ALL
        .into_iter()
        .flat_map(|app| {
            let dims = [128usize, 256, 512, 1024]
                .into_iter()
                .map(move |d| (app, "dimension", d, (d, 8, 16)));
            let cores = [2usize, 8, 32, 120]
                .into_iter()
                .map(move |c| (app, "cores", c, (512, c, 16)));
            let batches = [1usize, 8, 64]
                .into_iter()
                .map(move |bs| (app, "batch", bs, (512, 8, bs)));
            dims.chain(cores).chain(batches)
        })
        .collect();
    let rows_per_app = cells.len() / AuApp::ALL.len();
    let speedups = aum_sim::exec::sweep(cells.clone(), |_, (app, _, _, (d, c, bs))| {
        au_acceleration(&spec, app, d, c, bs)
    });
    let mut out =
        String::from("Fig 4: AU acceleration of AI workloads on GenC (× vs AU-disabled)\n");
    for (app_idx, app) in AuApp::ALL.into_iter().enumerate() {
        let mut t = TextTable::new(["sweep", "value", "speedup"]);
        let base = app_idx * rows_per_app;
        for row in 0..rows_per_app {
            let (_, label, value, _) = cells[base + row];
            t.row([label.into(), value.to_string(), fmt3(speedups[base + row])]);
        }
        out.push_str(&format!("\n[{app}]\n{}", t.render()));
    }
    out
}

/// Fig 5: exclusive AU-enabled CPU vs the A100/FlexGen reference on
/// performance, performance-per-watt and performance-per-cost.
#[must_use]
pub fn fig5() -> String {
    let gpu = GpuReference::a100_flexgen();
    // Serving capacity as the paper reports it: sustained batch-16 decode
    // iteration rate (§III-B quotes 188 tokens/s for GenA), with package
    // power from a fully loaded exclusive division.
    let capacity = |spec: &PlatformSpec| -> (f64, f64) {
        let kernels = AuKernels::for_platform(spec);
        let gov = aum_platform::freq::FrequencyGovernor::for_spec(spec);
        let f_low = gov
            .license_frequency(aum_platform::topology::AuUsageLevel::Low)
            .value();
        let ctx = ExecContext::new(spec.total_cores(), f_low, spec.mem_bw * 0.95);
        let mut pmu = PmuCounters::new();
        let cost = iteration_cost(
            &ModelConfig::llama2_7b(),
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ctx,
            &mut pmu,
        );
        let tokens_per_sec = 16.0 / cost.time.as_secs_f64();
        let mut sim = aum_platform::state::PlatformSim::new(spec.clone());
        let total = spec.total_cores();
        let f_high = gov
            .license_frequency(aum_platform::topology::AuUsageLevel::High)
            .value();
        let _ = f_high;
        let snap = sim.step(
            aum_sim::time::SimDuration::from_millis(500),
            &[
                aum_platform::state::RegionLoad::new(
                    aum_platform::topology::AuUsageLevel::High,
                    total / 3,
                    aum_platform::power::ActivityClass::Amx,
                    0.35,
                    spec.mem_bw * 0.2,
                ),
                aum_platform::state::RegionLoad::new(
                    aum_platform::topology::AuUsageLevel::Low,
                    total - total / 3,
                    aum_platform::power::ActivityClass::Avx,
                    0.95,
                    spec.mem_bw * 0.8,
                ),
            ],
        );
        (tokens_per_sec, snap.power.value())
    };
    let (a_tps, a_w) = capacity(&PlatformSpec::gen_a());
    let (c_tps, c_w) = capacity(&PlatformSpec::gen_c());
    let mut t = TextTable::new([
        "Unit",
        "tokens/s",
        "perf (norm)",
        "perf/W (norm)",
        "perf/$ (norm)",
    ]);
    let specs = [
        ("GenA", a_tps, a_w, PlatformSpec::gen_a().cost_usd),
        ("GenC", c_tps, c_w, PlatformSpec::gen_c().cost_usd),
        (
            "A100 (FlexGen)",
            gpu.tokens_per_sec,
            gpu.power_w,
            gpu.cost_usd,
        ),
    ];
    let base = specs[0];
    for (name, tps, power, cost) in specs {
        t.row([
            name.to_string(),
            format!("{tps:.0}"),
            fmt3(tps / base.1),
            fmt3((tps / power) / (base.1 / base.2)),
            fmt3((tps / cost) / (base.1 / base.3)),
        ]);
    }
    format!(
        "Fig 5: inferior performance/efficiency of exclusive AU-enabled CPU vs GPU\n\
         (paper anchors: GPU ≈2.1× GenA perf-per-watt, GPU perf-per-cost worse than GenC)\n{}",
        t.render()
    )
}

/// Table II: six LLM architectures — AMX cycle ratio, AMX µop ratio,
/// backend bound and DRAM bound, per phase, on GenA.
#[must_use]
pub fn table2() -> String {
    let spec = PlatformSpec::gen_a();
    let kernels = AuKernels::for_platform(&spec);
    let llama_ref = traffic_per_token(&ModelConfig::llama2_7b());
    let mut t = TextTable::new([
        "Model",
        "Size",
        "Cycle Ratio (P/D)",
        "uop Ratio (P/D)",
        "BB (P/D)",
        "DB (P/D)",
    ]);
    for model in ModelConfig::table2_models() {
        let mut pmu_p = PmuCounters::new();
        let ctx_p = ExecContext::new(96, 2.5, spec.mem_bw);
        let _ = iteration_cost(
            &model,
            Phase::Prefill,
            8192,
            512,
            Precision::Bf16,
            &kernels,
            &ctx_p,
            &mut pmu_p,
        );
        let mut pmu_d = PmuCounters::new();
        let ctx_d = ExecContext::new(96, 3.1, spec.mem_bw);
        let _ = iteration_cost(
            &model,
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ctx_d,
            &mut pmu_d,
        );

        // Backend/DRAM bounds: the phase signature modulated by the model's
        // per-token traffic relative to llama2-7b (MoE streams only its
        // active experts, relieving memory pressure, §IV-A2).
        let scale = (traffic_per_token(&model) / llama_ref).powf(0.35);
        let sig_p = signature(SignatureKind::Prefill, &spec);
        let sig_d = signature(SignatureKind::Decode, &spec);
        let bb = |base: f64| (base * scale.powf(0.15)).min(0.99);
        let db = |base: f64| (base * scale).min(0.95);
        t.row([
            model.name.clone(),
            format!("{:.1}B", model.param_count() / 1e9),
            format!(
                "{:.1} / {:.1}",
                pmu_p.amx_cycle_ratio() * 100.0,
                pmu_d.amx_cycle_ratio() * 100.0
            ),
            format!(
                "{:.1} / {:.1}",
                pmu_p.amx_uop_ratio() * 100.0,
                pmu_d.amx_uop_ratio() * 100.0
            ),
            format!(
                "{:.0} / {:.0}",
                bb(sig_p.backend_bound()) * 100.0,
                bb(sig_d.backend_bound()) * 100.0
            ),
            format!(
                "{:.0} / {:.0}",
                db(sig_p.dram_bound()) * 100.0,
                db(sig_d.dram_bound()) * 100.0
            ),
        ]);
    }
    format!(
        "Table II: LLM architectures (values are Prefill / Decode percentages)\n{}",
        t.render()
    )
}

/// Weight bytes streamed per generated token (decode traffic driver).
fn traffic_per_token(model: &ModelConfig) -> f64 {
    model.streamed_weight_bytes(Precision::Bf16)
}
