//! Shared infrastructure of the reproduction harness: scheme construction,
//! AUV-model caching, and experiment execution.

use std::cell::RefCell;
use std::collections::HashMap;

use aum::baselines::{AllAu, AuFi, AuRb, AuUp, RpAu, SmtAu};
use aum::controller::AumController;
use aum::experiment::{run_experiment, run_experiment_traced, ExperimentConfig, Outcome};
use aum::manager::ResourceManager;
use aum::profiler::{build_model_traced, AuvModel, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::telemetry::Tracer;
use aum_workloads::be::BeKind;

thread_local! {
    /// The harness-wide tracer consulted by AUM-scheme runs and profiler
    /// sweeps. Disabled by default; `repro --trace <file>` installs a
    /// [`aum_sim::telemetry::JsonlSink`]-backed tracer here.
    static HARNESS_TRACER: RefCell<Tracer> = RefCell::new(Tracer::disabled());
}

/// Installs the tracer consulted by subsequent AUM-scheme experiment runs
/// and profiling sweeps on this thread. Baseline schemes stay untraced so a
/// figure-wide trace stays bounded and focused on the controller under
/// study.
pub fn install_tracer(tracer: Tracer) {
    HARNESS_TRACER.with(|t| *t.borrow_mut() = tracer);
}

/// The currently installed harness tracer (disabled unless
/// [`install_tracer`] was called).
#[must_use]
pub fn harness_tracer() -> Tracer {
    HARNESS_TRACER.with(|t| t.borrow().clone())
}

/// The seven evaluated schemes (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// AU-exclusive, no sharing.
    AllAu,
    /// AUV-oblivious SMT sharing.
    SmtAu,
    /// AUV-oblivious resource partitioning.
    RpAu,
    /// Usage-pattern-aware variant.
    AuUp,
    /// Frequency-interference-aware variant.
    AuFi,
    /// Resource-bound-aware variant.
    AuRb,
    /// The full three-dimensional proposal.
    Aum,
}

impl Scheme {
    /// All schemes in Table V order.
    pub const ALL: [Scheme; 7] = [
        Scheme::AllAu,
        Scheme::SmtAu,
        Scheme::RpAu,
        Scheme::AuUp,
        Scheme::AuFi,
        Scheme::AuRb,
        Scheme::Aum,
    ];

    /// Printable scheme name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::AllAu => "ALL-AU",
            Scheme::SmtAu => "SMT-AU",
            Scheme::RpAu => "RP-AU",
            Scheme::AuUp => "AU-UP",
            Scheme::AuFi => "AU-FI",
            Scheme::AuRb => "AU-RB",
            Scheme::Aum => "AUM",
        }
    }
}

/// Caches profiled AUV models across experiments (one offline profile can
/// drive thousands of cores, §VII-D).
#[derive(Default)]
pub struct ModelCache {
    models: HashMap<(String, Scenario, BeKind), AuvModel>,
}

impl ModelCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        ModelCache::default()
    }

    /// Returns (building if necessary) the AUV model for a configuration.
    pub fn model(&mut self, spec: &PlatformSpec, scenario: Scenario, be: BeKind) -> AuvModel {
        self.models
            .entry((spec.name.clone(), scenario, be))
            .or_insert_with(|| {
                build_model_traced(
                    &ProfilerConfig::paper_default(spec.clone(), scenario, be),
                    harness_tracer(),
                )
            })
            .clone()
    }

    /// Total profiling executions performed so far.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.models.values().map(|m| m.profiling_runs).sum()
    }
}

/// Builds the manager for a scheme (profiling first for AUM).
pub fn make_manager(
    scheme: Scheme,
    spec: &PlatformSpec,
    scenario: Scenario,
    be: Option<BeKind>,
    cache: &mut ModelCache,
) -> Box<dyn ResourceManager> {
    match scheme {
        Scheme::AllAu => Box::new(AllAu::new(spec)),
        Scheme::SmtAu => Box::new(SmtAu::new(spec)),
        Scheme::RpAu => Box::new(RpAu::new(spec)),
        Scheme::AuUp => Box::new(AuUp::new(spec)),
        Scheme::AuFi => Box::new(AuFi::new(spec)),
        Scheme::AuRb => Box::new(AuRb::new(spec)),
        Scheme::Aum => {
            let model = cache.model(spec, scenario, be.unwrap_or(BeKind::SpecJbb));
            Box::new(AumController::new(model))
        }
    }
}

/// Runs one scheme on one (platform, scenario, co-runner) cell. ALL-AU runs
/// exclusively (no co-runner) by definition.
pub fn scheme_outcome(
    scheme: Scheme,
    spec: &PlatformSpec,
    scenario: Scenario,
    be: BeKind,
    cache: &mut ModelCache,
) -> Outcome {
    scheme_outcome_with_rate(scheme, spec, scenario, be, None, cache)
}

/// [`scheme_outcome`] with an explicit request-rate override — used by the
/// cross-platform study where the offered load scales with serving capacity.
pub fn scheme_outcome_with_rate(
    scheme: Scheme,
    spec: &PlatformSpec,
    scenario: Scenario,
    be: BeKind,
    rate: Option<f64>,
    cache: &mut ModelCache,
) -> Outcome {
    let be_opt = if scheme == Scheme::AllAu {
        None
    } else {
        Some(be)
    };
    let mut cfg = ExperimentConfig::paper_default(spec.clone(), scenario, be_opt);
    cfg.rate = rate;
    let mut mgr = make_manager(scheme, spec, scenario, be_opt, cache);
    let tracer = if scheme == Scheme::Aum {
        harness_tracer()
    } else {
        Tracer::disabled()
    };
    run_experiment_traced(&cfg, mgr.as_mut(), tracer)
}

/// Offered request rate scaled to a platform's serving capacity relative to
/// GenA — the binding resource is memory bandwidth for decode and AMX
/// throughput for prefill, so the scale takes the smaller of the two
/// (GenB's HBM triples bandwidth but keeps GenA's AU, GenC improves both).
#[must_use]
pub fn platform_scaled_rate(spec: &PlatformSpec, scenario: Scenario) -> f64 {
    let gen_a = PlatformSpec::gen_a();
    let bw_ratio = spec.mem_bw.value() / gen_a.mem_bw.value();
    let amx_ratio = spec.amx_peak.value() / gen_a.amx_peak.value();
    scenario.default_rate() * bw_ratio.min(amx_ratio)
}

/// Runs an exclusive (ALL-AU) experiment with a request-rate override —
/// used by capacity measurements such as Fig 5.
pub fn exclusive_capacity(spec: &PlatformSpec, scenario: Scenario, rate: f64) -> Outcome {
    let mut cfg = ExperimentConfig::paper_default(spec.clone(), scenario, None);
    cfg.rate = Some(rate);
    let mut mgr = AllAu::new(spec);
    run_experiment(&cfg, &mut mgr)
}
