//! Shared infrastructure of the reproduction harness: scheme construction,
//! AUV-model caching, and experiment execution.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use aum::baselines::{AllAu, AuFi, AuRb, AuUp, RpAu, SmtAu};
use aum::controller::AumController;
use aum::experiment::{run_experiment, run_experiment_traced, ExperimentConfig, Outcome};
use aum::manager::ResourceManager;
use aum::profiler::{build_model_traced, AuvModel, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::telemetry::Tracer;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

/// The harness-wide tracer consulted by AUM-scheme runs and profiler
/// sweeps. Disabled by default; `repro --trace <file>` installs a
/// [`aum_sim::telemetry::JsonlSink`]-backed tracer here. Process-global
/// (not thread-local) so sweep-executor worker threads observe it too.
static HARNESS_TRACER: Mutex<Option<Tracer>> = Mutex::new(None);

/// Installs the tracer consulted by subsequent AUM-scheme experiment runs
/// and profiling sweeps. Baseline schemes stay untraced so a figure-wide
/// trace stays bounded and focused on the controller under study.
pub fn install_tracer(tracer: Tracer) {
    *HARNESS_TRACER.lock().expect("harness tracer lock") = Some(tracer);
}

/// The currently installed harness tracer (disabled unless
/// [`install_tracer`] was called).
#[must_use]
pub fn harness_tracer() -> Tracer {
    HARNESS_TRACER
        .lock()
        .expect("harness tracer lock")
        .clone()
        .unwrap_or_else(Tracer::disabled)
}

/// Harness-wide quick mode, set by `repro --quick`: experiments that
/// consult it (currently `fig14`) run at smoke-profiler scale with short
/// cells, matching the CI trace-export smoke configuration.
static QUICK: AtomicBool = AtomicBool::new(false);

/// Enables or disables quick mode for subsequent experiment runs.
pub fn set_quick(on: bool) {
    QUICK.store(on, Ordering::SeqCst);
}

/// Whether quick mode is on.
#[must_use]
pub fn quick() -> bool {
    QUICK.load(Ordering::SeqCst)
}

/// Process-wide platform-name intern table. Platform specs are a handful of
/// static presets, so a linear scan under a mutex is cheaper than hashing
/// the name — and interning makes every [`ModelCache`] key `Copy`, so cache
/// hits allocate nothing.
static PLATFORM_NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Interns a platform name, returning its stable dense id.
#[must_use]
pub fn intern_platform(name: &str) -> usize {
    let mut names = PLATFORM_NAMES.lock().expect("platform intern lock");
    if let Some(id) = names.iter().position(|n| n == name) {
        return id;
    }
    names.push(name.to_string());
    names.len() - 1
}

/// The seven evaluated schemes (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// AU-exclusive, no sharing.
    AllAu,
    /// AUV-oblivious SMT sharing.
    SmtAu,
    /// AUV-oblivious resource partitioning.
    RpAu,
    /// Usage-pattern-aware variant.
    AuUp,
    /// Frequency-interference-aware variant.
    AuFi,
    /// Resource-bound-aware variant.
    AuRb,
    /// The full three-dimensional proposal.
    Aum,
}

impl Scheme {
    /// All schemes in Table V order.
    pub const ALL: [Scheme; 7] = [
        Scheme::AllAu,
        Scheme::SmtAu,
        Scheme::RpAu,
        Scheme::AuUp,
        Scheme::AuFi,
        Scheme::AuRb,
        Scheme::Aum,
    ];

    /// Printable scheme name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::AllAu => "ALL-AU",
            Scheme::SmtAu => "SMT-AU",
            Scheme::RpAu => "RP-AU",
            Scheme::AuUp => "AU-UP",
            Scheme::AuFi => "AU-FI",
            Scheme::AuRb => "AU-RB",
            Scheme::Aum => "AUM",
        }
    }
}

/// Cache key: interned platform id + scenario + co-runner. `Copy`, so
/// lookups are allocation-free (the old key cloned `spec.name` per call).
type CacheKey = (usize, Scenario, BeKind);

/// Caches profiled AUV models across experiments (one offline profile can
/// drive thousands of cores, §VII-D).
///
/// Concurrency-safe: lookups take `&self`, the map lock is held only long
/// enough to fetch/insert a per-key latch, and the actual profiling sweep
/// runs under the key's [`OnceLock`] — concurrent requests for the *same*
/// model block until the single build finishes, while requests for
/// *different* models proceed independently. Models are returned as
/// [`Arc<AuvModel>`] clones (pointer bumps), never deep bucket copies.
pub struct ModelCache {
    models: Mutex<HashMap<CacheKey, Arc<OnceLock<Arc<AuvModel>>>>>,
    /// Builds the profiling sweep for a key — `paper_default` in studies;
    /// tests substitute `ProfilerConfig::smoke` to keep runtimes sane while
    /// exercising the identical cache/executor code path.
    profile: fn(PlatformSpec, Scenario, BeKind) -> ProfilerConfig,
    lookups: std::sync::atomic::AtomicU64,
    builds: std::sync::atomic::AtomicU64,
}

/// A point-in-time copy of one [`ModelCache`]'s hit/miss accounting.
///
/// `hits = lookups − builds`: a lookup counts as a *hit* unless this very
/// call ran the profiling sweep. A caller that blocks on another thread's
/// in-flight build is a hit — the work was shared — which keeps the counts
/// deterministic at every `--jobs` level (one lookup per call site, one
/// build per distinct key).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Model requests served ([`ModelCache::model`] calls).
    pub lookups: u64,
    /// Requests that ran the profiling sweep (distinct keys built).
    pub builds: u64,
}

impl CacheStats {
    /// Lookups served without running a profiling sweep.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.lookups.saturating_sub(self.builds)
    }

    /// Fraction of lookups served from cache (1.0 for an idle cache).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits() as f64 / self.lookups as f64
        }
    }
}

impl Default for ModelCache {
    fn default() -> Self {
        ModelCache::new()
    }
}

impl ModelCache {
    /// Creates an empty cache profiling at paper scale.
    #[must_use]
    pub fn new() -> Self {
        Self::with_profile(ProfilerConfig::paper_default)
    }

    /// Creates an empty cache with a custom profiling-sweep factory.
    #[must_use]
    pub fn with_profile(profile: fn(PlatformSpec, Scenario, BeKind) -> ProfilerConfig) -> Self {
        ModelCache {
            models: Mutex::new(HashMap::new()),
            profile,
            lookups: std::sync::atomic::AtomicU64::new(0),
            builds: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Returns (building if necessary) the AUV model for a configuration.
    ///
    /// The build itself is traced through the harness tracer and
    /// parallelized internally by the profiler's sweep; callers that
    /// dispatch traced cells through the executor should [`Self::warm`]
    /// every needed model first so profiler events keep their serial
    /// position in the merged trace.
    pub fn model(&self, spec: &PlatformSpec, scenario: Scenario, be: BeKind) -> Arc<AuvModel> {
        use std::sync::atomic::Ordering;
        let _prof = aum_sim::prof::scope("model_cache.lookup");
        self.lookups.fetch_add(1, Ordering::Relaxed);
        aum_sim::prof::count("model_cache.lookup", 1);
        let key = (intern_platform(&spec.name), scenario, be);
        let slot = {
            let mut models = self.models.lock().expect("model cache lock");
            Arc::clone(models.entry(key).or_default())
        };
        Arc::clone(slot.get_or_init(|| {
            let _prof = aum_sim::prof::scope("model_cache.build");
            self.builds.fetch_add(1, Ordering::Relaxed);
            aum_sim::prof::count("model_cache.build", 1);
            Arc::new(build_model_traced(
                &(self.profile)(spec.clone(), scenario, be),
                harness_tracer(),
            ))
        }))
    }

    /// Hit/miss accounting for this cache instance (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        use std::sync::atomic::Ordering;
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }

    /// Eagerly builds the models for every listed configuration, in order.
    /// Called before a parallel study sweep so cells only ever *hit* the
    /// cache and the profiler's own trace events land deterministically
    /// ahead of the study's.
    pub fn warm<'a>(
        &self,
        configs: impl IntoIterator<Item = (&'a PlatformSpec, Scenario, BeKind)>,
    ) {
        for (spec, scenario, be) in configs {
            let _ = self.model(spec, scenario, be);
        }
    }

    /// Total profiling executions performed so far.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.models
            .lock()
            .expect("model cache lock")
            .values()
            .filter_map(|slot| slot.get().map(|m| m.profiling_runs))
            .sum()
    }
}

/// Builds the manager for a scheme (profiling first for AUM).
pub fn make_manager(
    scheme: Scheme,
    spec: &PlatformSpec,
    scenario: Scenario,
    be: Option<BeKind>,
    cache: &ModelCache,
) -> Box<dyn ResourceManager> {
    match scheme {
        Scheme::AllAu => Box::new(AllAu::new(spec)),
        Scheme::SmtAu => Box::new(SmtAu::new(spec)),
        Scheme::RpAu => Box::new(RpAu::new(spec)),
        Scheme::AuUp => Box::new(AuUp::new(spec)),
        Scheme::AuFi => Box::new(AuFi::new(spec)),
        Scheme::AuRb => Box::new(AuRb::new(spec)),
        Scheme::Aum => {
            let model = cache.model(spec, scenario, be.unwrap_or(BeKind::SpecJbb));
            Box::new(AumController::new(model))
        }
    }
}

/// Runs one scheme on one (platform, scenario, co-runner) cell. ALL-AU runs
/// exclusively (no co-runner) by definition.
pub fn scheme_outcome(
    scheme: Scheme,
    spec: &PlatformSpec,
    scenario: Scenario,
    be: BeKind,
    cache: &ModelCache,
) -> Outcome {
    scheme_outcome_with_rate(scheme, spec, scenario, be, None, cache)
}

/// [`scheme_outcome`] with an explicit request-rate override — used by the
/// cross-platform study where the offered load scales with serving capacity.
pub fn scheme_outcome_with_rate(
    scheme: Scheme,
    spec: &PlatformSpec,
    scenario: Scenario,
    be: BeKind,
    rate: Option<f64>,
    cache: &ModelCache,
) -> Outcome {
    let tracer = if scheme == Scheme::Aum {
        harness_tracer()
    } else {
        Tracer::disabled()
    };
    scheme_outcome_cell(scheme, spec, scenario, be, rate, None, cache, &tracer)
}

/// The fully-parameterized scheme cell: explicit tracer (so parallel sweep
/// cells can capture into per-cell sinks) and optional duration override
/// (so the determinism tests drive the exact study code path at reduced
/// scale). `rate = None` uses the scenario default; `duration = None` uses
/// the paper default.
#[allow(clippy::too_many_arguments)]
pub fn scheme_outcome_cell(
    scheme: Scheme,
    spec: &PlatformSpec,
    scenario: Scenario,
    be: BeKind,
    rate: Option<f64>,
    duration: Option<SimDuration>,
    cache: &ModelCache,
    tracer: &Tracer,
) -> Outcome {
    let be_opt = if scheme == Scheme::AllAu {
        None
    } else {
        Some(be)
    };
    let mut cfg = ExperimentConfig::paper_default(spec.clone(), scenario, be_opt);
    cfg.rate = rate;
    if let Some(d) = duration {
        cfg.duration = d;
    }
    let mut mgr = make_manager(scheme, spec, scenario, be_opt, cache);
    let tracer = if scheme == Scheme::Aum {
        tracer.clone()
    } else {
        Tracer::disabled()
    };
    run_experiment_traced(&cfg, mgr.as_mut(), tracer)
}

/// Offered request rate scaled to a platform's serving capacity relative to
/// GenA — the binding resource is memory bandwidth for decode and AMX
/// throughput for prefill, so the scale takes the smaller of the two
/// (GenB's HBM triples bandwidth but keeps GenA's AU, GenC improves both).
#[must_use]
pub fn platform_scaled_rate(spec: &PlatformSpec, scenario: Scenario) -> f64 {
    let gen_a = PlatformSpec::gen_a();
    let bw_ratio = spec.mem_bw.value() / gen_a.mem_bw.value();
    let amx_ratio = spec.amx_peak.value() / gen_a.amx_peak.value();
    scenario.default_rate() * bw_ratio.min(amx_ratio)
}

/// Runs an exclusive (ALL-AU) experiment with a request-rate override —
/// used by capacity measurements such as Fig 5.
pub fn exclusive_capacity(spec: &PlatformSpec, scenario: Scenario, rate: f64) -> Outcome {
    let mut cfg = ExperimentConfig::paper_default(spec.clone(), scenario, None);
    cfg.rate = Some(rate);
    let mut mgr = AllAu::new(spec);
    run_experiment(&cfg, &mut mgr)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-counted cache accounting: 6 lookups over 2 distinct keys must
    /// report exactly 6 lookups, 2 builds, 4 hits — the counts are defined
    /// by which lookups actually ran the build closure, so they hold at
    /// any worker count (the profiling sweep runs once per key).
    #[test]
    fn model_cache_hit_miss_counts_are_exact() {
        let cache = ModelCache::with_profile(ProfilerConfig::smoke);
        let start = cache.stats();
        assert_eq!((start.lookups, start.builds), (0, 0));
        assert!((start.hit_rate() - 1.0).abs() < f64::EPSILON);

        let spec = PlatformSpec::gen_a();
        for _ in 0..3 {
            cache.model(&spec, Scenario::Chatbot, BeKind::SpecJbb);
        }
        for _ in 0..3 {
            cache.model(&spec, Scenario::Chatbot, BeKind::Olap);
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups, 6, "every model() call is a lookup");
        assert_eq!(stats.builds, 2, "one profiling sweep per distinct key");
        assert_eq!(stats.hits(), 4, "hits = lookups - builds");
        assert!((stats.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    }
}
