//! Evaluation experiments: Table III, Fig 14-18.

use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig, Outcome};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::freq::FrequencyGovernor;
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::AuUsageLevel;
use aum_sim::report::{fmt3, fmt_pct, TextTable};
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

use crate::common::{harness_tracer, scheme_outcome, scheme_outcome_cell, ModelCache, Scheme};

/// Runs a (scenario × co-runner × scheme) grid of scheme cells through the
/// parallel sweep executor, returning outcomes in grid order (scenario
/// major, then co-runner, then scheme). The AUV models every AUM cell
/// needs are built serially first ([`ModelCache::warm`]), so the profiler
/// trace keeps its deterministic position ahead of the per-cell streams
/// that [`aum_sim::exec::sweep_traced`] merges in grid order.
///
/// Fig 14/16/17 run this at paper scale; the parallel-determinism suite
/// drives the *same* code path at reduced duration, which is why the
/// duration override lives here.
pub fn scheme_grid(
    spec: &PlatformSpec,
    scenarios: &[Scenario],
    bes: &[BeKind],
    schemes: &[Scheme],
    duration: Option<SimDuration>,
    cache: &ModelCache,
) -> Vec<Outcome> {
    scheme_grid_hists(spec, scenarios, bes, schemes, duration, cache).0
}

/// [`scheme_grid`] that additionally folds every cell's latency histograms
/// into grid-wide merged distributions, keyed by metric name. The merge
/// runs in canonical cell order inside
/// [`aum_sim::exec::sweep_traced_hists`], so — like the trace stream — the
/// merged histograms are byte-identical for any worker count.
pub fn scheme_grid_hists(
    spec: &PlatformSpec,
    scenarios: &[Scenario],
    bes: &[BeKind],
    schemes: &[Scheme],
    duration: Option<SimDuration>,
    cache: &ModelCache,
) -> (
    Vec<Outcome>,
    std::collections::BTreeMap<String, aum_sim::LogHistogram>,
) {
    if schemes.contains(&Scheme::Aum) {
        cache.warm(
            scenarios
                .iter()
                .flat_map(|&sc| bes.iter().map(move |&be| (spec, sc, be))),
        );
    }
    let cells: Vec<(Scenario, BeKind, Scheme)> = scenarios
        .iter()
        .flat_map(|&sc| {
            bes.iter()
                .flat_map(move |&be| schemes.iter().map(move |&s| (sc, be, s)))
        })
        .collect();
    aum_sim::exec::sweep_traced_hists(&harness_tracer(), cells, |_, (sc, be, scheme), tracer| {
        let o = scheme_outcome_cell(scheme, spec, sc, be, None, duration, cache, &tracer);
        let hists = vec![
            ("ttft_seconds".to_string(), o.slo.ttft_hist.clone()),
            (
                "tpot_request_seconds".to_string(),
                o.slo.tpot_req_hist.clone(),
            ),
        ];
        (o, hists)
    })
}

/// Table III: an example bucket of the AUV model — per-usage-level core
/// ranges, frequencies, resource tuple, and average/tail performance.
#[must_use]
pub fn table3() -> String {
    let spec = PlatformSpec::gen_a();
    let model = build_model(&ProfilerConfig::paper_default(
        spec.clone(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ));
    let slo = Scenario::Chatbot.slo();
    let (d, c) = model.best_bucket(slo.ttft.as_secs_f64(), slo.tpot.as_secs_f64());
    let bucket = model.bucket(d, c);
    let gov = FrequencyGovernor::for_spec(&spec);
    let div = bucket.division;
    let mut t = TextTable::new([
        "U_AU", "C_AU", "F_AU", "R_L2C", "R_LLC", "R_BW", "P^a", "P^t",
    ]);
    let rows = [
        (
            AuUsageLevel::High,
            bucket.allocation.au,
            // P^a/P^t for the High region: median/tail TTFT-derived rate.
            1.0 / bucket.ttft_p50.max(1e-9),
            1.0 / bucket.ttft_p90.max(1e-9),
        ),
        (
            AuUsageLevel::Low,
            bucket.allocation.au,
            1.0 / bucket.tpot_p50.max(1e-9),
            1.0 / bucket.tpot_p90.max(1e-9),
        ),
        (
            AuUsageLevel::None,
            bucket.allocation.shared,
            bucket.be_rate / 1e4,
            bucket.be_rate * 0.8 / 1e4,
        ),
    ];
    for (level, alloc, pa, pt) in rows {
        let (lo, hi) = div.region_range(level);
        t.row([
            level.to_string(),
            if hi > lo {
                format!("{lo}-{}", hi - 1)
            } else {
                "-".to_string()
            },
            format!("{:.1} GHz", gov.license_frequency(level).value()),
            format!("0-{}", alloc.l2_ways.saturating_sub(1)),
            format!("0-{}", alloc.llc_ways.saturating_sub(1)),
            format!("{:.0}%", alloc.mem_bw_frac * 100.0),
            format!("{pa:.2}"),
            format!("{pt:.2}"),
        ]);
    }
    format!(
        "Table III: example AUV-model bucket (GenA, chatbot + SPECjbb; division {div})\n\
         (P^a/P^t: High = 1/TTFT p50/p90, Low = 1/TPOT p50/p90, None = BE rate /1e4)\n{}",
        t.render()
    )
}

/// Fig 14: CPU performance-per-watt across scenarios, sharing selections
/// and the seven schemes, normalized to ALL-AU under the chatbot scenario.
#[must_use]
pub fn fig14() -> String {
    let spec = PlatformSpec::gen_a();
    // Quick mode (`repro fig14 --quick`): smoke-profile models and 30 s
    // cells through the exact same grid code path — the CI trace-export
    // smoke runs this to get a full span trace in seconds.
    let quick = crate::common::quick();
    let cache = if quick {
        ModelCache::with_profile(ProfilerConfig::smoke)
    } else {
        ModelCache::new()
    };
    let duration = if quick {
        Some(SimDuration::from_secs(30))
    } else {
        None
    };
    let cb_base = scheme_outcome_cell(
        Scheme::AllAu,
        &spec,
        Scenario::Chatbot,
        BeKind::SpecJbb,
        None,
        duration,
        &cache,
        &harness_tracer(),
    )
    .efficiency;
    let (grid, hists) = scheme_grid_hists(
        &spec,
        &Scenario::ALL,
        &BeKind::ALL,
        &Scheme::ALL,
        duration,
        &cache,
    );
    let mut out =
        String::from("Fig 14: CPU performance-per-watt, normalized to ALL-AU (chatbot)\n");
    let mut aum_vs_best_oblivious = Vec::new();
    let mut aum_vs_exclusive = Vec::new();
    let mut grid_iter = grid.iter();
    for scenario in Scenario::ALL {
        for be in BeKind::ALL {
            let mut t = TextTable::new(["scheme", "efficiency (norm)", "P_N", "power W"]);
            let mut per_scheme = std::collections::HashMap::new();
            for scheme in Scheme::ALL {
                let o = grid_iter.next().expect("grid covers every cell");
                per_scheme.insert(scheme, o.efficiency);
                t.row([
                    scheme.name().to_string(),
                    fmt3(o.efficiency / cb_base),
                    format!("{:.0}", o.be_rate),
                    format!("{:.0}", o.avg_power_w),
                ]);
            }
            let aum = per_scheme[&Scheme::Aum];
            let oblivious = per_scheme[&Scheme::SmtAu].max(per_scheme[&Scheme::RpAu]);
            aum_vs_best_oblivious.push(aum / oblivious - 1.0);
            aum_vs_exclusive.push(aum / per_scheme[&Scheme::AllAu] - 1.0);
            out.push_str(&format!("\n[{} + {}]\n{}", scenario, be, t.render()));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    out.push_str(&format!(
        "\nAverage AUM gain vs AU-exclusive: {} (paper: 8.8%)\n\
         Average AUM gain vs best AUV-oblivious sharing: {} (paper: 4.7%)\n",
        fmt_pct(mean(&aum_vs_exclusive)),
        fmt_pct(mean(&aum_vs_best_oblivious)),
    ));
    // Grid-wide latency distributions from the deterministically merged
    // per-cell histograms (byte-identical at any --jobs).
    if let (Some(ttft), Some(tpot)) = (hists.get("ttft_seconds"), hists.get("tpot_request_seconds"))
    {
        out.push_str(&format!(
            "Grid-wide TTFT: {} requests, p50 {} p99 {} s | per-request TPOT p99 {} s\n",
            ttft.count(),
            fmt3(ttft.quantile(0.5)),
            fmt3(ttft.quantile(0.99)),
            fmt3(tpot.quantile(0.99)),
        ));
    }
    out
}

/// Fig 15: efficiency on the three hardware platforms sharing with SPECjbb,
/// normalized to ALL-AU on GenA.
#[must_use]
pub fn fig15() -> String {
    let cache = ModelCache::new();
    let gen_a = PlatformSpec::gen_a();
    let base = scheme_outcome(
        Scheme::AllAu,
        &gen_a,
        Scenario::Chatbot,
        BeKind::SpecJbb,
        &cache,
    )
    .efficiency;
    // Offered load scales with platform serving capacity: the paper
    // exercises every platform near its own operating point.
    let presets = PlatformSpec::presets();
    cache.warm(
        presets
            .iter()
            .flat_map(|spec| Scenario::ALL.map(|sc| (spec, sc, BeKind::SpecJbb))),
    );
    let cells: Vec<(&PlatformSpec, Scenario, Scheme)> = presets
        .iter()
        .flat_map(|spec| {
            Scenario::ALL.into_iter().flat_map(move |sc| {
                [Scheme::AllAu, Scheme::Aum].map(move |scheme| (spec, sc, scheme))
            })
        })
        .collect();
    let grid = aum_sim::exec::sweep_traced(
        &harness_tracer(),
        cells,
        |_, (spec, scenario, scheme), tracer| {
            let rate = Some(crate::common::platform_scaled_rate(spec, scenario));
            scheme_outcome_cell(
                scheme,
                spec,
                scenario,
                BeKind::SpecJbb,
                rate,
                None,
                &cache,
                &tracer,
            )
        },
    );
    let mut out =
        String::from("Fig 15: efficiency on evolving platforms (norm. to ALL-AU on GenA)\n");
    let mut grid_iter = grid.iter();
    for spec in &presets {
        let mut t = TextTable::new(["scenario", "ALL-AU", "AUM", "AUM gain"]);
        for scenario in Scenario::ALL {
            let excl = grid_iter.next().expect("grid covers every cell");
            let aum = grid_iter.next().expect("grid covers every cell");
            t.row([
                scenario.to_string(),
                fmt3(excl.efficiency / base),
                fmt3(aum.efficiency / base),
                fmt_pct(aum.efficiency / excl.efficiency - 1.0),
            ]);
        }
        out.push_str(&format!("\n[{}]\n{}", spec.name, t.render()));
    }
    out
}

/// Fig 16: decomposed AU and shared-application performance per scheme,
/// averaged over the three scenarios (SPECjbb co-runner). AU performance is
/// normalized to ALL-AU; shared performance to RP-AU.
#[must_use]
pub fn fig16() -> String {
    let spec = PlatformSpec::gen_a();
    let cache = ModelCache::new();
    let grid = scheme_grid(
        &spec,
        &Scenario::ALL,
        &[BeKind::SpecJbb],
        &Scheme::ALL,
        None,
        &cache,
    );
    let mut au_norm = std::collections::HashMap::new();
    let mut be_norm = std::collections::HashMap::new();
    for (s_idx, _scenario) in Scenario::ALL.into_iter().enumerate() {
        let row = &grid[s_idx * Scheme::ALL.len()..(s_idx + 1) * Scheme::ALL.len()];
        let all_au = &row[0];
        let rp = &row[2];
        debug_assert_eq!(Scheme::ALL[0], Scheme::AllAu);
        debug_assert_eq!(Scheme::ALL[2], Scheme::RpAu);
        for (o, scheme) in row.iter().zip(Scheme::ALL) {
            let au_perf =
                (o.prefill_tps + o.decode_tps) / (all_au.prefill_tps + all_au.decode_tps).max(1e-9);
            let be_perf = o.be_rate / rp.be_rate.max(1e-9);
            *au_norm.entry(scheme).or_insert(0.0) += au_perf / 3.0;
            *be_norm.entry(scheme).or_insert(0.0) += be_perf / 3.0;
        }
    }
    let mut t = TextTable::new(["scheme", "AU perf (vs ALL-AU)", "shared perf (vs RP-AU)"]);
    for scheme in Scheme::ALL {
        t.row([
            scheme.name().to_string(),
            fmt3(au_norm[&scheme]),
            fmt3(be_norm[&scheme]),
        ]);
    }
    format!(
        "Fig 16: decomposed performance, averaged over scenarios (SPECjbb sharing)\n{}",
        t.render()
    )
}

/// Fig 17: SLO guarantee ratios per scheme and scenario (SPECjbb sharing):
/// prefill TTFT on the left, decode TPOT on the right.
#[must_use]
pub fn fig17() -> String {
    let spec = PlatformSpec::gen_a();
    let cache = ModelCache::new();
    let grid = scheme_grid(
        &spec,
        &Scenario::ALL,
        &[BeKind::SpecJbb],
        &Scheme::ALL,
        None,
        &cache,
    );
    let mut out = String::from("Fig 17: SLO guarantee ratios when sharing with SPECjbb\n");
    let mut grid_iter = grid.iter();
    for scenario in Scenario::ALL {
        let mut t = TextTable::new(["scheme", "prefill TTFT guarantee", "decode TPOT guarantee"]);
        for scheme in Scheme::ALL {
            let o = grid_iter.next().expect("grid covers every cell");
            t.row([
                scheme.name().to_string(),
                fmt3(o.slo.ttft_guarantee),
                fmt3(o.slo.tpot_guarantee),
            ]);
        }
        out.push_str(&format!("\n[{scenario}]\n{}", t.render()));
    }
    out
}

/// Fig 18: CDFs of the shared class's LLC-way and bandwidth allocations
/// under AUM vs the static RP-AU (SPECjbb + chatbot).
#[must_use]
pub fn fig18() -> String {
    let spec = PlatformSpec::gen_a();
    let cache = ModelCache::new();
    let model = cache.model(&spec, Scenario::Chatbot, BeKind::SpecJbb);
    let cfg =
        ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, Some(BeKind::SpecJbb));
    let aum = run_experiment(&cfg, &mut AumController::new(model));
    let rp = scheme_outcome(
        Scheme::RpAu,
        &spec,
        Scenario::Chatbot,
        BeKind::SpecJbb,
        &cache,
    );
    let mut out =
        String::from("Fig 18: shared-class resource allocation CDFs (chatbot + SPECjbb)\n");
    for (label, a, r) in [
        (
            "shared LLC ways",
            &aum.shared_llc_samples,
            &rp.shared_llc_samples,
        ),
        (
            "shared bandwidth %",
            &aum.shared_bw_samples,
            &rp.shared_bw_samples,
        ),
    ] {
        let mut t = TextTable::new(["CDF", "AUM", "RP-AU"]);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            t.row([
                format!("p{:.0}", q * 100.0),
                fmt3(a.quantile(q)),
                fmt3(r.quantile(q)),
            ]);
        }
        out.push_str(&format!("\n[{label}]\n{}", t.render()));
    }
    out.push_str(&format!(
        "\nAUM allocation spread (LLC ways p10→p90): {:.0}→{:.0}  vs RP-AU: {:.0}→{:.0}\n",
        aum.shared_llc_samples.quantile(0.1),
        aum.shared_llc_samples.quantile(0.9),
        rp.shared_llc_samples.quantile(0.1),
        rp.shared_llc_samples.quantile(0.9),
    ));
    out
}
