//! Extension experiments beyond the paper's evaluation: design-choice
//! ablations (DESIGN.md §5) and the §VIII future-work directions.

use aum::cluster::{run_cluster, ClusterConfig, RoutingPolicy};
use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig};
use aum::profiler::{build_model, default_allocations, default_divisions, ProfilerConfig};
use aum_au::counters::PmuCounters;
use aum_au::gemm::ExecContext;
use aum_au::sharing::AuTopology;
use aum_au::unit::{AuKind, AuSpec, Precision};
use aum_llm::config::ModelConfig;
use aum_llm::cost::{iteration_cost, AuKernels};
use aum_llm::ops::Phase;
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::report::{fmt3, fmt_pct, TextTable};
use aum_workloads::be::BeKind;

use aum_llm::traces::RateProfile;

use crate::common::{scheme_outcome, ModelCache, Scheme};

/// Fig 1 companion: the management gap. AU acceleration of key operations
/// (left side of the paper's opening figure) against the degradation that
/// AUV-oblivious managers inflict when the accelerated application is
/// shared (right side).
#[must_use]
pub fn fig1() -> String {
    let gen_c = PlatformSpec::gen_c();
    let speedup = aum_workloads::au_apps::au_acceleration(
        &gen_c,
        aum_workloads::au_apps::AuApp::Faiss,
        512,
        32,
        64,
    );
    let spec = PlatformSpec::gen_a();
    let cache = ModelCache::new();
    let base = scheme_outcome(
        Scheme::AllAu,
        &spec,
        Scenario::Chatbot,
        BeKind::Olap,
        &cache,
    );
    let smt = scheme_outcome(
        Scheme::SmtAu,
        &spec,
        Scenario::Chatbot,
        BeKind::Olap,
        &cache,
    );
    let aum = scheme_outcome(Scheme::Aum, &spec, Scenario::Chatbot, BeKind::Olap, &cache);
    let oblivious_loss = 1.0 - smt.decode_tps / base.decode_tps;
    let aum_loss = 1.0 - aum.decode_tps / base.decode_tps;
    let mut out = String::from("Fig 1: the management gap\n");
    out.push_str(&format!(
        "- Evolving AU: AMX accelerates key operations up to {speedup:.1}x (Faiss, GenC)\n"
    ));
    out.push_str(&format!(
        "- AUV-oblivious sharing (SMT + OLAP): {:.0}% AU performance degradation\n",
        oblivious_loss * 100.0
    ));
    out.push_str("  (paper: 10-50% degradations from oblivious managers)\n");
    out.push_str(&format!(
        "- AUM closes the gap: {:.0}% degradation at {:+.1}% efficiency vs exclusive\n",
        aum_loss.max(0.0) * 100.0,
        (aum.efficiency / base.efficiency - 1.0) * 100.0,
    ));
    out
}

/// Runtime adaptation under a load step (the §IV-A3 "inherently variable"
/// arrival rates): AUM with and without online model refinement (the
/// §VII-D limitation, implemented as an extension) against the static
/// RP-AU feedback.
#[must_use]
pub fn adapt() -> String {
    let spec = PlatformSpec::gen_a();
    let scenario = Scenario::Chatbot;
    let be = BeKind::SpecJbb;
    let model = build_model(&ProfilerConfig::paper_default(spec.clone(), scenario, be));
    let mut cfg = ExperimentConfig::paper_default(spec.clone(), scenario, Some(be));
    // Offered load steps from 0.3 to 0.51 req/s mid-run (above the
    // calibrated comfortable operating point).
    cfg.rate = Some(0.3);
    cfg.rate_profile = RateProfile::Step {
        at_secs: 150.0,
        factor: 1.7,
    };
    let mut t = TextTable::new([
        "manager",
        "efficiency",
        "TPOT guarantee",
        "TTFT guarantee",
        "division switches",
    ]);
    let mut plain = AumController::new(model.clone());
    let plain_out = run_experiment(&cfg, &mut plain);
    t.row([
        "AUM".to_string(),
        fmt3(plain_out.efficiency),
        fmt3(plain_out.slo.tpot_guarantee),
        fmt3(plain_out.slo.ttft_guarantee),
        plain.switch_count().to_string(),
    ]);
    let mut refined = AumController::new(model).with_online_refinement(0.15);
    let refined_out = run_experiment(&cfg, &mut refined);
    t.row([
        "AUM + online refinement".to_string(),
        fmt3(refined_out.efficiency),
        fmt3(refined_out.slo.tpot_guarantee),
        fmt3(refined_out.slo.ttft_guarantee),
        refined.switch_count().to_string(),
    ]);
    let mut rp = aum::baselines::RpAu::new(&spec);
    let rp_out = run_experiment(&cfg, &mut rp);
    t.row([
        "RP-AU".to_string(),
        fmt3(rp_out.efficiency),
        fmt3(rp_out.slo.tpot_guarantee),
        fmt3(rp_out.slo.ttft_guarantee),
        "-".to_string(),
    ]);
    format!(
        "Runtime adaptation: chatbot load steps 0.3 -> 0.51 req/s at t=150 s (+ SPECjbb)\n{}",
        t.render()
    )
}

/// Ablation: AUV-model bucket granularity (DESIGN.md §5.1). Sweeps the
/// profiler grid size and reports the profiling cost against the quality of
/// the AUM outcome the model supports.
#[must_use]
pub fn ablate() -> String {
    let spec = PlatformSpec::gen_a();
    let scenario = Scenario::Chatbot;
    let be = BeKind::SpecJbb;
    let full_divs = default_divisions(&spec);
    let full_cfgs = default_allocations(&spec);
    let cache = ModelCache::new();
    let exclusive = scheme_outcome(Scheme::AllAu, &spec, scenario, be, &cache);
    let mut t = TextTable::new([
        "grid (div x cfg)",
        "profiling runs",
        "AUM efficiency gain",
        "TPOT guarantee",
    ]);
    for (divs, cfgs) in [(2usize, 2usize), (3, 3), (6, 5)] {
        let mut pc = ProfilerConfig::paper_default(spec.clone(), scenario, be);
        pc.divisions = full_divs.iter().copied().take(divs).collect();
        pc.allocations = full_cfgs.iter().copied().take(cfgs).collect();
        let model = build_model(&pc);
        let runs = model.profiling_runs;
        let cfg = ExperimentConfig::paper_default(spec.clone(), scenario, Some(be));
        let out = run_experiment(&cfg, &mut AumController::new(model));
        t.row([
            format!("{divs} x {cfgs}"),
            runs.to_string(),
            fmt_pct(out.efficiency / exclusive.efficiency - 1.0),
            fmt3(out.slo.tpot_guarantee),
        ]);
    }
    // Value of runtime adaptation: freeze the best bucket of the full
    // model and compare against the adaptive controller.
    let full_model = build_model(&ProfilerConfig::paper_default(spec.clone(), scenario, be));
    let cfg = ExperimentConfig::paper_default(spec.clone(), scenario, Some(be));
    let static_out = run_experiment(&cfg, &mut aum::baselines::StaticBest::new(&full_model));
    let aum_out = run_experiment(&cfg, &mut AumController::new(full_model));
    let mut t2 = TextTable::new(["manager", "efficiency gain", "TPOT guarantee"]);
    t2.row([
        "STATIC-BEST (frozen bucket)".to_string(),
        fmt_pct(static_out.efficiency / exclusive.efficiency - 1.0),
        fmt3(static_out.slo.tpot_guarantee),
    ]);
    t2.row([
        "AUM (runtime adaptation)".to_string(),
        fmt_pct(aum_out.efficiency / exclusive.efficiency - 1.0),
        fmt3(aum_out.slo.tpot_guarantee),
    ]);
    format!(
        "Ablation: AUV-model bucket granularity (chatbot + SPECjbb, GenA)\n\
         (coarser grids cost less profiling but leave efficiency or SLO quality behind)\n{}\n\
         Runtime adaptation vs hindsight static-best:\n{}",
        t.render(),
        t2.render()
    )
}

/// §VIII extension: AUV-aware cluster load balancing across the three
/// heterogeneous platforms.
#[must_use]
pub fn cluster() -> String {
    let cfg = ClusterConfig::heterogeneous_demo(Scenario::Chatbot);
    let mut t = TextTable::new([
        "routing policy",
        "cluster efficiency",
        "violation rate",
        "weights (A/B/C)",
    ]);
    for policy in [
        RoutingPolicy::Uniform,
        RoutingPolicy::BandwidthProportional,
        RoutingPolicy::AuvWeighted,
    ] {
        let out = run_cluster(&cfg, policy);
        t.row([
            out.policy.clone(),
            fmt3(out.efficiency),
            fmt3(out.violation_rate),
            out.weights
                .iter()
                .map(|w| format!("{w:.2}"))
                .collect::<Vec<_>>()
                .join("/"),
        ]);
    }
    format!(
        "Cluster extension (§VIII): routing a shared fleet of GenA+GenB+GenC\n{}",
        t.render()
    )
}

/// Chunked-prefill extension (the Sarathi/DistServe direction the paper's
/// related work cites): bounding decode stalls behind long prompts in the
/// time-multiplexed deployment.
#[must_use]
pub fn chunked() -> String {
    use aum_llm::engine::{EngineConfig, EngineMode, EngineResources, LlmEngine, RegionResources};
    use aum_llm::traces::TraceGenerator;
    use aum_sim::rng::DetRng;
    use aum_sim::time::{SimDuration, SimTime};

    let spec = PlatformSpec::gen_a();
    let mut t = TextTable::new([
        "prefill mode",
        "max inter-token stall (s)",
        "wall TPOT p90 (s)",
        "TTFT p90 (s)",
    ]);
    for chunk in [None, Some(1024usize), Some(512), Some(256)] {
        let trace = TraceGenerator::new(Scenario::Summarization, 0.6)
            .generate(&DetRng::from_seed(23), SimDuration::from_secs(180));
        let mut cfg = EngineConfig::paper_default(Scenario::Summarization);
        cfg.prefill_chunk = chunk;
        let mut engine = LlmEngine::new(cfg, &spec, trace);
        let res = EngineResources {
            prefill: RegionResources::new(96, 2.5, spec.mem_bw),
            decode: RegionResources::new(96, 3.1, spec.mem_bw),
            mode: EngineMode::TimeMultiplexed,
        };
        for step in 1..=180 {
            let _ = engine.run_interval(SimTime::from_secs(step), &res);
        }
        let mut last: std::collections::BTreeMap<_, SimTime> = std::collections::BTreeMap::new();
        let mut max_gap = 0.0f64;
        for tok in engine.token_records() {
            if let Some(prev) = last.insert(tok.id, tok.emitted) {
                max_gap = max_gap.max(tok.emitted.saturating_since(prev).as_secs_f64());
            }
        }
        let report = engine.slo_report();
        t.row([
            chunk.map_or("whole prompt".to_string(), |c| format!("chunk {c}")),
            fmt3(max_gap),
            fmt3(engine.wall_tpot_quantile(0.9)),
            fmt3(report.ttft_p90),
        ]);
    }
    format!(
        "Chunked prefill (summarization, time-multiplexed GenA): bounding decode\n\
         stalls behind 1700-token prompts\n{}",
        t.render()
    )
}

/// NUMA placement extension: what the paper's processor divisions cost or
/// save on the 2-socket platforms when region placement is NUMA-aware
/// versus naive (contiguous core ids over interleaved memory).
#[must_use]
pub fn numa() -> String {
    use aum_platform::numa::NumaConfig;
    use aum_platform::topology::ProcessorDivision;

    let mut out = String::from(
        "NUMA placement (2-socket GenA): decode capacity under division placement
",
    );
    let spec = PlatformSpec::gen_a();
    let cfg = NumaConfig::for_spec(&spec);
    let kernels = AuKernels::for_platform(&spec);
    let model = ModelConfig::llama2_7b();
    let capacity = |bw: aum_platform::units::GbPerSec| -> f64 {
        let ctx = ExecContext::new(spec.total_cores(), 3.1, bw * 0.95);
        let mut pmu = PmuCounters::new();
        let cost = iteration_cost(
            &model,
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ctx,
            &mut pmu,
        );
        16.0 / cost.time.as_secs_f64()
    };
    let mut t = TextTable::new([
        "division (H/L/N)",
        "remote frac (naive)",
        "remote frac (aware)",
        "decode tok/s (naive)",
        "decode tok/s (aware)",
    ]);
    for (h, l) in [(64, 16), (56, 24), (48, 32), (48, 24), (40, 32)] {
        let d = ProcessorDivision::new(h, l, 96 - h - l);
        let naive = cfg.naive_remote_frac();
        let aware = cfg.aware_remote_frac(&d, 96);
        t.row([
            format!("{d}"),
            fmt3(naive),
            fmt3(aware),
            format!("{:.0}", capacity(cfg.effective_bandwidth(naive))),
            format!("{:.0}", capacity(cfg.effective_bandwidth(aware))),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "(socket-aligned divisions such as H48/L24/N24 keep every access local;
         naive interleaved placement pays ~15% decode capacity on GenA)
",
    );
    out
}

/// §II-A extension: precision scaling of decode capacity (BF16 everywhere,
/// FP16 on Granite Rapids, INT8 as the quantized-serving ablation), plus
/// the SME-style shared-AU topology's cost on prefill.
#[must_use]
pub fn precision() -> String {
    let mut out =
        String::from("Precision & topology extensions: batch-16 decode capacity (tokens/s)\n");
    let mut t = TextTable::new(["platform", "BF16", "FP16", "INT8 (quantized)"]);
    for spec in PlatformSpec::presets() {
        let kernels = AuKernels::for_platform(&spec);
        let model = ModelConfig::llama2_7b();
        let cap = |prec: Precision| -> String {
            if !prec.supported_by(spec.generation) && prec != Precision::Int8 {
                return "-".to_string();
            }
            let ctx = ExecContext::new(
                spec.total_cores(),
                spec.base_freq.value(),
                spec.mem_bw * 0.95,
            );
            let mut pmu = PmuCounters::new();
            let cost = iteration_cost(
                &model,
                Phase::Decode,
                16,
                855,
                prec,
                &kernels,
                &ctx,
                &mut pmu,
            );
            format!("{:.0}", 16.0 / cost.time.as_secs_f64())
        };
        t.row([
            spec.name.clone(),
            cap(Precision::Bf16),
            cap(Precision::Fp16),
            cap(Precision::Int8),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nShared-AU topology (SME-style): prefill slowdown vs per-core AMX\n");
    let spec = PlatformSpec::gen_a();
    let amx = AuSpec::for_platform(&spec, AuKind::Amx);
    let ctx = ExecContext::new(96, 2.5, spec.mem_bw);
    let mut t = TextTable::new([
        "cores per AU",
        "prefill GEMM TFLOPS",
        "slowdown vs per-core",
    ]);
    let base = aum_au::gemm::gemm_time(
        aum_au::gemm::GemmShape::new(8192, 4096, 22016),
        Precision::Bf16,
        &amx,
        &ctx,
    );
    for cores_per_au in [1usize, 2, 4, 8] {
        let topo = if cores_per_au == 1 {
            AuTopology::PerCore
        } else {
            AuTopology::SharedCluster { cores_per_au }
        };
        let unit = topo.derate(&amx, 96, 96);
        let exec = aum_au::gemm::gemm_time(
            aum_au::gemm::GemmShape::new(8192, 4096, 22016),
            Precision::Bf16,
            &unit,
            &ctx,
        );
        t.row([
            cores_per_au.to_string(),
            format!("{:.1}", exec.achieved_tflops),
            fmt3(exec.time.as_secs_f64() / base.time.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());
    out
}
