//! Fleet-chaos study: node-fault matrix over the resilient fleet router.
//!
//! `repro fleet-chaos [--quick]` replays every node-scoped fault scenario
//! (crash, crash/restart, straggler, router partition, rolling drain)
//! against two routers on the heterogeneous demo fleet — FAILOVER (the
//! health-checked epoch router, [`aum::fleet::run_fleet`] under
//! `RoutingPolicy::Failover`) and STATIC (the same router with the
//! AUV-weighted t=0 split frozen for the whole run) — and reports *SLO
//! retention*: the fraction of each router's own healthy attainment it
//! keeps under the fault, plus serving cost per million tokens.
//!
//! Every cell also re-checks the stranded-request conservation identity
//! `dispatched == completed + redispatched + shed + dropped`, which the
//! integer flow model must satisfy **exactly** — any violation (or a
//! failover router that retains < 80% under the scripted node crash, or a
//! static router that fails to do strictly worse) marks the report
//! degenerate and the driver exits nonzero.
//!
//! `--quick` restricts the matrix to the acceptance-critical crash
//! scenarios over a shorter run — the CI smoke configuration. Reports are
//! byte-identical at any `--jobs` setting: the matrix dispatches through
//! the deterministic sweep executor and the fleet model itself is pure
//! integer arithmetic.

use std::fmt::Write as _;

use aum::cluster::{routing_weights, ClusterConfig, RoutingPolicy};
use aum::fleet::{run_fleet_traced, FleetOutcome, NodeFault, NodeFaultEvent, NodeFaultPlan};
use aum::profiler::AuvModel;
use aum_llm::traces::Scenario;
use aum_sim::telemetry::{MetricsSnapshot, Tracer};
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

use crate::common::{harness_tracer, ModelCache};

/// Seed written into every fleet config — the flow model is deterministic
/// by construction, but the seed keeps serialized configs reproducible.
const FLEET_SEED: u64 = 11;

/// The rendered fleet-chaos report plus its health verdict.
pub struct FleetChaosRun {
    /// The full table, ready to print.
    pub text: String,
    /// `true` if conservation broke, anything came out non-finite, or the
    /// node-crash acceptance criterion failed — the driver turns this
    /// into a nonzero exit code.
    pub degenerate: bool,
}

/// One named node-fault scenario of the matrix.
struct FleetScenario {
    name: &'static str,
    plan: NodeFaultPlan,
}

/// Builds the node-fault matrix. Faults strike at `t0`; windowed faults
/// recover at `t1`. `quick` keeps the acceptance-critical crash pair.
fn scenarios(t0: f64, t1: f64, quick: bool) -> Vec<FleetScenario> {
    let mut list = vec![
        FleetScenario {
            name: "node-crash",
            plan: NodeFaultPlan::single(NodeFaultEvent::permanent(0, t0, NodeFault::Crash)),
        },
        FleetScenario {
            name: "crash-restart",
            plan: NodeFaultPlan::single(NodeFaultEvent::windowed(0, t0, t1, NodeFault::Crash)),
        },
    ];
    if quick {
        return list;
    }
    list.extend([
        FleetScenario {
            name: "straggler",
            plan: NodeFaultPlan::single(NodeFaultEvent::windowed(
                2,
                t0,
                t1,
                NodeFault::Straggler { factor: 3.0 },
            )),
        },
        FleetScenario {
            name: "partition",
            plan: NodeFaultPlan::single(NodeFaultEvent::windowed(1, t0, t1, NodeFault::Partition)),
        },
        FleetScenario {
            // Nodes drain one after another, as a rolling restart would.
            name: "rolling-drain",
            plan: NodeFaultPlan::new(vec![
                NodeFaultEvent::windowed(0, t0, t0 + 30.0, NodeFault::Drain),
                NodeFaultEvent::windowed(1, t0 + 30.0, t0 + 60.0, NodeFault::Drain),
                NodeFaultEvent::windowed(2, t0 + 60.0, t0 + 90.0, NodeFault::Drain),
            ]),
        },
        FleetScenario {
            name: "multi-fault-script",
            plan: NodeFaultPlan::new(vec![
                NodeFaultEvent::windowed(0, t0, t1, NodeFault::Crash),
                NodeFaultEvent::windowed(2, t0 + 20.0, t1, NodeFault::Straggler { factor: 2.0 }),
            ]),
        },
    ]);
    list
}

/// The two routers under chaos, in report order.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FleetScheme {
    Failover,
    Static,
}

impl FleetScheme {
    const ALL: [FleetScheme; 2] = [FleetScheme::Failover, FleetScheme::Static];

    fn name(self) -> &'static str {
        match self {
            FleetScheme::Failover => "FAILOVER",
            FleetScheme::Static => "STATIC",
        }
    }

    /// The routing policy the fleet loop runs under. STATIC uses the same
    /// AUV-weighted base split as FAILOVER — the *only* difference is
    /// per-epoch health re-weighting, so the comparison isolates the
    /// failover mechanism itself.
    fn policy(self) -> RoutingPolicy {
        match self {
            FleetScheme::Failover => RoutingPolicy::Failover,
            FleetScheme::Static => RoutingPolicy::AuvWeighted,
        }
    }
}

/// Runs one router under one plan. Only the FAILOVER cell streams into
/// the harness tracer (matching the chaos study: headline scheme only),
/// so `repro fleet-chaos --trace`/`--flight` capture the health
/// transitions, re-dispatches and sheds without baseline noise.
fn run_scheme(
    scheme: FleetScheme,
    base: &ClusterConfig,
    plan: &NodeFaultPlan,
    weights: &[f64],
    tracer: &Tracer,
    scenario: &str,
) -> FleetOutcome {
    let mut cfg = base.clone();
    cfg.fault_plan = plan.clone();
    let tracer = match scheme {
        FleetScheme::Failover => tracer.clone(),
        FleetScheme::Static => Tracer::disabled(),
    };
    // Every traced cell gets its own span track (`fleet/<policy>/<fault>`)
    // — span ids are only unique per track, and all cells merge into one
    // harness trace.
    let track = format!("fleet/{}/{scenario}", scheme.policy());
    run_fleet_traced(&cfg, scheme.policy(), weights, &tracer, &track)
}

/// Publishes one completed FAILOVER cell to the live `/metrics` endpoint
/// (when installed): fleet-level aggregate series plus the per-node
/// registry snapshots under a `node` label. Wall-clock observability
/// only — the text never feeds back into the matrix.
fn publish_live_fleet(scenario: &str, outcome: &FleetOutcome) {
    let Some(live) = aum_sim::live::installed() else {
        return;
    };
    let mut text = String::new();
    let esc = aum_sim::prom::escape_label_value(scenario);
    let counters: [(&str, &str, u64); 7] = [
        (
            "aum_fleet_offered_requests",
            "New requests offered to the fleet.",
            outcome.offered,
        ),
        (
            "aum_fleet_dispatched_requests",
            "Requests entering dispatch, counting retries.",
            outcome.dispatched,
        ),
        (
            "aum_fleet_completed_requests",
            "Requests completed by a live node.",
            outcome.completed,
        ),
        (
            "aum_fleet_on_time_requests",
            "Requests served in capacity on first dispatch.",
            outcome.on_time,
        ),
        (
            "aum_fleet_redispatched_requests",
            "Stranded requests re-queued with backoff.",
            outcome.redispatched,
        ),
        (
            "aum_fleet_dropped_requests",
            "Stranded requests whose retry budget ran out.",
            outcome.dropped,
        ),
        (
            "aum_fleet_shed_requests",
            "Requests shed by the admission controller.",
            outcome.shed,
        ),
    ];
    for (name, help, v) in counters {
        let _ = writeln!(text, "# HELP {name} {help}");
        let _ = writeln!(text, "# TYPE {name} counter");
        let _ = writeln!(text, "{name}{{scenario=\"{esc}\"}} {v}");
    }
    let _ = writeln!(
        text,
        "# HELP aum_fleet_attainment SLO attainment, on-time / offered."
    );
    let _ = writeln!(text, "# TYPE aum_fleet_attainment gauge");
    let _ = writeln!(
        text,
        "aum_fleet_attainment{{scenario=\"{esc}\"}} {}",
        outcome.attainment
    );
    let series: Vec<(String, &MetricsSnapshot)> = outcome
        .node_metrics
        .iter()
        .map(|m| (m.label.clone(), &m.snapshot))
        .collect();
    text.push_str(&aum_sim::prom::render_node_registries(&series));
    live.publish_exposition(text);
}

/// Runs the node-fault matrix and renders the retention report.
#[must_use]
pub fn run(quick: bool) -> FleetChaosRun {
    run_with(quick, &ModelCache::new())
}

/// [`run`] against a caller-supplied model cache — the parallel-determinism
/// suite passes a smoke-scale cache so the identical matrix/executor code
/// path stays testable in debug builds.
#[must_use]
pub fn run_with(quick: bool, cache: &ModelCache) -> FleetChaosRun {
    let (duration, t0, t1) = if quick {
        (120u64, 30.0, 90.0)
    } else {
        (300u64, 60.0, 200.0)
    };
    // Name the study phase on the live endpoint for the whole matrix
    // (restored on exit so the CLI's command-level phase survives).
    let live = aum_sim::live::installed();
    let prev_phase = live.as_ref().map(|l| l.set_phase("fleet"));
    let mut base = ClusterConfig::heterogeneous_demo(Scenario::Chatbot);
    base.duration = SimDuration::from_secs(duration);
    base.seed = FLEET_SEED;
    // Fleet-scale offered rate: the demo config's per-server trickle is
    // too sparse for whole-request epoch accounting (per-node capacity
    // would floor to 0 requests/epoch). 120 req/s over 3 nodes keeps the
    // integer rounding error of the flow model under a few percent.
    base.total_rate = 120.0;
    let scenarios = scenarios(t0, t1, quick);

    // Profile every platform serially before any parallel dispatch (the
    // capacity weights need the AUV models), so the profiler's trace lands
    // ahead of every cell stream.
    let bes: Vec<BeKind> = base
        .servers
        .iter()
        .map(|s| s.be.unwrap_or(BeKind::SpecJbb))
        .collect();
    cache.warm(
        base.servers
            .iter()
            .zip(&bes)
            .map(|(s, &be)| (&s.platform, base.scenario, be)),
    );
    let models: Vec<AuvModel> = base
        .servers
        .iter()
        .zip(&bes)
        .map(|(s, &be)| (*cache.model(&s.platform, base.scenario, be)).clone())
        .collect();
    // Physical capacity shares: the profiled AUV split, independent of
    // which routing policy a cell runs.
    let capacity = routing_weights(&base, RoutingPolicy::AuvWeighted, &models);

    // Healthy baselines: one per router, no faults.
    let healthy: Vec<(FleetScheme, FleetOutcome)> = aum_sim::exec::sweep_traced(
        &harness_tracer(),
        FleetScheme::ALL.to_vec(),
        |_, s, tracer| {
            run_scheme(
                s,
                &base,
                &NodeFaultPlan::none(),
                &capacity,
                &tracer,
                "healthy",
            )
        },
    )
    .into_iter()
    .zip(FleetScheme::ALL)
    .map(|(o, s)| (s, o))
    .collect();

    let mut out = String::new();
    let mode = if quick { "quick" } else { "full" };
    let _ = writeln!(
        out,
        "fleet-chaos resilience matrix ({mode}) \u{2014} heterogeneous 3-node fleet / chatbot, \
         seed {FLEET_SEED}, {duration}s runs, node faults strike at t={t0:.0}s"
    );
    let _ = writeln!(
        out,
        "retention = attainment under fault / same router healthy; \
         attainment = on-time / offered; conservation must hold exactly"
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<20} {:<10} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>7} {:>10} {:>9} {:>9}",
        "fault",
        "router",
        "offered",
        "on-time",
        "redisp",
        "drop",
        "shed",
        "xition",
        "attain",
        "retention",
        "$/Mtok",
        "conserve"
    );
    let mut degenerate = false;
    fn row(
        out: &mut String,
        name: &str,
        scheme: FleetScheme,
        o: &FleetOutcome,
        retention: Option<f64>,
        degenerate: &mut bool,
    ) {
        // Both identities must hold: fleet-level flow conservation and
        // the per-node rollup partitioning those totals exactly.
        let conserve = if o.conservation_ok() && o.node_conservation_ok() {
            "exact"
        } else {
            *degenerate = true;
            "VIOLATED"
        };
        if !(o.attainment.is_finite() && o.usd_per_mtok.is_finite()) {
            *degenerate = true;
        }
        let _ = writeln!(
            out,
            "{:<20} {:<10} {:>8} {:>8} {:>7} {:>7} {:>7} {:>6} {:>7.3} {:>9} {:>9} {:>9}",
            name,
            scheme.name(),
            o.offered,
            o.on_time,
            o.redispatched,
            o.dropped,
            o.shed,
            o.health_transitions,
            o.attainment,
            retention.map_or("-".to_string(), |r| format!("{:.1}%", r * 100.0)),
            format!("{:.4}", o.usd_per_mtok),
            conserve
        );
    }
    for (scheme, o) in &healthy {
        row(&mut out, "(healthy)", *scheme, o, None, &mut degenerate);
    }

    // The whole fault × router matrix is independent cells; dispatch it
    // through the sweep executor in (scenario, router) order.
    let matrix_cells: Vec<(usize, FleetScheme)> = (0..scenarios.len())
        .flat_map(|i| FleetScheme::ALL.map(move |s| (i, s)))
        .collect();
    let matrix: Vec<FleetOutcome> =
        aum_sim::exec::sweep_traced(&harness_tracer(), matrix_cells, |_, (i, scheme), tracer| {
            run_scheme(
                scheme,
                &base,
                &scenarios[i].plan,
                &capacity,
                &tracer,
                scenarios[i].name,
            )
        });
    let mut matrix_iter = matrix.into_iter();

    for sc in &scenarios {
        let mut retentions: Vec<(FleetScheme, f64)> = Vec::new();
        for (scheme, base_out) in &healthy {
            let faulted = matrix_iter.next().expect("matrix covers every cell");
            let retention = faulted.attainment / base_out.attainment.max(1e-9);
            if !retention.is_finite() {
                degenerate = true;
            }
            if *scheme == FleetScheme::Failover {
                publish_live_fleet(sc.name, &faulted);
            }
            row(
                &mut out,
                sc.name,
                *scheme,
                &faulted,
                Some(retention),
                &mut degenerate,
            );
            retentions.push((*scheme, retention));
        }
        let failover = retentions[0].1;
        let stat = retentions[1].1;
        let verdict = if failover > stat {
            "FAILOVER more resilient"
        } else if failover < stat {
            "STATIC more resilient"
        } else {
            "tie"
        };
        let _ = writeln!(
            out,
            "  -> FAILOVER retention {:.1}% vs STATIC {:.1}%  [{verdict}]",
            failover * 100.0,
            stat * 100.0
        );
        // Acceptance gate (ISSUE 7): under the scripted node crash the
        // failover router must retain >= 80% of its healthy attainment
        // and the static router must be strictly worse.
        if sc.name == "node-crash" && !(failover >= 0.8 && stat < failover) {
            degenerate = true;
            let _ = writeln!(
                out,
                "  !! node-crash acceptance FAILED: failover {:.3} (need >= 0.8), \
                 static {:.3} (need < failover)",
                failover, stat
            );
        }
    }

    if degenerate {
        out.push_str(
            "\nDEGENERATE: conservation, finiteness, or the node-crash acceptance \
             criterion failed \u{2014} failing the run\n",
        );
    }
    if let (Some(live), Some(prev)) = (live.as_ref(), prev_phase) {
        live.set_phase(&prev);
    }
    FleetChaosRun {
        text: out,
        degenerate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum::profiler::ProfilerConfig;

    #[test]
    fn quick_report_is_deterministic_and_healthy() {
        let cache = ModelCache::with_profile(ProfilerConfig::smoke);
        let a = run_with(true, &cache);
        let b = run_with(true, &cache);
        assert_eq!(a.text, b.text, "same seed must yield an identical report");
        assert!(
            !a.degenerate,
            "quick matrix must pass its gates:\n{}",
            a.text
        );
        assert!(a.text.contains("node-crash"));
        assert!(a.text.contains("FAILOVER more resilient"));
        assert!(!a.text.contains("VIOLATED"));
    }
}
