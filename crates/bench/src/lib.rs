//! # aum-bench — reproduction harness
//!
//! Regenerates every table and figure of the AUM paper's characterization
//! and evaluation sections (see DESIGN.md §4 for the experiment index):
//!
//! - [`charact`]: Table I, Fig 4, Fig 5, Table II;
//! - [`variations`]: Fig 6, Fig 7, Fig 8;
//! - [`sharing`]: Fig 9, Fig 10, Fig 12, Fig 13;
//! - [`evaluation`]: Table III, Fig 14-18;
//! - [`analysis`]: price sensitivity, overheads, TCO;
//! - [`extensions`]: bucket-granularity ablation, the §VIII cluster
//!   extension, and precision/topology studies;
//! - [`chaos`]: the fault-matrix resilience study (`repro chaos`);
//! - [`fleetchaos`]: the node-fault fleet resilience study
//!   (`repro fleet-chaos`);
//! - [`attribution`]: the attribution-ledger study and trace diff
//!   (`repro attrib`, `repro trace-diff`);
//! - [`perfetto`]: Chrome Trace Event Format export of span traces
//!   (`repro trace-export`);
//! - [`perfreport`]: the simulator self-performance profile
//!   (`repro perf-report`), including the `BENCH_<sha>.json` writer and
//!   regression gate;
//! - [`tracereport`]: the `trace-summary` renderer, including the SLO
//!   burn-rate digest and per-request span drill-down;
//! - [`common`]: scheme construction and model caching.
//!
//! Run `cargo run -p aum-bench --release --bin repro -- all` (or a single
//! experiment id such as `fig14`).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod attribution;
pub mod chaos;
pub mod charact;
pub mod common;
pub mod evaluation;
pub mod extensions;
pub mod fleetchaos;
pub mod perfetto;
pub mod perfreport;
pub mod sharing;
pub mod tracereport;
pub mod variations;

/// An experiment implementation: renders its table(s) as text.
pub type Experiment = fn() -> String;

/// All experiment ids with their implementations, in paper order.
#[must_use]
pub fn experiments() -> Vec<(&'static str, Experiment)> {
    vec![
        ("fig1", extensions::fig1 as Experiment),
        ("table1", charact::table1),
        ("fig4", charact::fig4),
        ("fig5", charact::fig5),
        ("table2", charact::table2),
        ("fig6", variations::fig6),
        ("fig7", variations::fig7),
        ("fig8", variations::fig8),
        ("fig9", sharing::fig9),
        ("fig10", sharing::fig10),
        ("fig12", sharing::fig12),
        ("fig13", sharing::fig13),
        ("table3", evaluation::table3),
        ("fig14", evaluation::fig14),
        ("fig15", evaluation::fig15),
        ("fig16", evaluation::fig16),
        ("fig17", evaluation::fig17),
        ("fig18", evaluation::fig18),
        ("sens", analysis::sens),
        ("overhead", analysis::overhead),
        ("tco", analysis::tco),
        ("ablate", extensions::ablate),
        ("adapt", extensions::adapt),
        ("chunked", extensions::chunked),
        ("cluster", extensions::cluster),
        ("precision", extensions::precision),
        ("numa", extensions::numa),
    ]
}
