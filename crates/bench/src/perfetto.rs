//! Chrome Trace Event Format export of span traces (`repro trace-export`).
//!
//! Converts a telemetry JSONL stream into the JSON object format that
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly: `B`/`E` duration events reconstructed from the span stream,
//! one *process* per span track (experiment cell / profiler sweep), greedy
//! lane assignment of overlapping top-level spans onto *threads*, and `C`
//! counter events for iteration token throughput.
//!
//! The exporter is strict: a stream whose span opens and closes do not
//! pair up is refused with the underlying [`aum_sim::span::SpanError`]
//! rather than silently emitting an unbalanced trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use aum_sim::span::collect_spans;
use aum_sim::telemetry::{Event, TraceRecord};
use aum_sim::time::SimTime;

/// Microsecond timestamp on the Chrome trace clock.
fn ts(at: SimTime) -> f64 {
    at.as_secs_f64() * 1e6
}

/// JSON string escaping for names and track labels.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Converts a parsed telemetry stream into Chrome Trace Event Format JSON.
///
/// # Errors
///
/// - the stream has no records, or no span events at all;
/// - the span stream is unbalanced (any [`aum_sim::span::SpanError`]);
/// - a reconstructed lane would require time to run backwards (cannot
///   happen for streams produced by [`aum_sim::telemetry::OrderingSink`],
///   checked anyway so a hand-edited trace fails loudly).
pub fn export(records: &[TraceRecord]) -> Result<String, String> {
    if records.is_empty() {
        return Err("empty trace: no records to export".into());
    }
    let forest = collect_spans(records).map_err(|e| format!("unbalanced span stream: {e}"))?;
    if forest.nodes.is_empty() {
        return Err(
            "trace contains no span events (was it recorded with --trace on a run \
             that emits spans?)"
                .into(),
        );
    }

    // One Chrome "process" per span track, in sorted track order so the
    // output is deterministic regardless of span close order.
    let mut pids: BTreeMap<&str, usize> = BTreeMap::new();
    for n in &forest.nodes {
        let next = pids.len() + 1;
        pids.entry(n.track.as_str()).or_insert(next);
    }

    let mut events: Vec<String> = Vec::new();
    for (track, pid) in &pids {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(track)
        ));
    }

    // Per track: sort the top-level spans by (open, id) and greedily pack
    // them onto lanes ("threads") whose previous occupant already closed,
    // so overlapping requests render side by side instead of clobbering
    // one another. Children inherit their parent's lane.
    for (track, pid) in &pids {
        let mut roots: Vec<usize> = forest
            .roots
            .iter()
            .copied()
            .filter(|&i| forest.nodes[i].track == *track)
            .collect();
        roots.sort_by_key(|&i| (forest.nodes[i].open, forest.nodes[i].id));
        let mut lanes: Vec<SimTime> = Vec::new();
        for root in roots {
            let open = forest.nodes[root].open;
            let lane = match lanes.iter().position(|&busy_until| busy_until <= open) {
                Some(idx) => idx,
                None => {
                    lanes.push(SimTime::ZERO);
                    lanes.len() - 1
                }
            };
            lanes[lane] = forest.nodes[root].close;
            emit_subtree(&forest, root, *pid, lane + 1, &mut events)?;
        }
    }

    // Token-throughput counters ride along so Perfetto shows load next to
    // the spans. Counters are global (the engine does not tag iterations
    // with a track), so they live in a dedicated pid-0 process.
    let mut have_counters = false;
    for r in records {
        if let Event::IterationCompleted { phase, tokens, .. } = &r.event {
            if !have_counters {
                have_counters = true;
                events.push(
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                     \"args\":{\"name\":\"counters\"}}"
                        .to_string(),
                );
            }
            events.push(format!(
                "{{\"name\":\"tokens_{:?}\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":0,\"tid\":0,\
                 \"args\":{{\"tokens\":{tokens}}}}}",
                phase,
                ts(r.at)
            ));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    Ok(out)
}

/// Emits the `B`/`E` pair for `node` and, nested inside, all its children
/// (sorted by open time) on the same lane. Verifies that emission order is
/// monotone in time — guaranteed for interval-nested children, so a
/// violation means the input invariants were broken upstream.
fn emit_subtree(
    forest: &aum_sim::span::SpanForest,
    node: usize,
    pid: usize,
    tid: usize,
    events: &mut Vec<String>,
) -> Result<(), String> {
    let n = &forest.nodes[node];
    let mut children = n.children.clone();
    children.sort_by_key(|&c| (forest.nodes[c].open, forest.nodes[c].id));
    let mut last = n.open;
    for &c in &children {
        let child = &forest.nodes[c];
        if child.open < last || child.close > n.close {
            return Err(format!(
                "span {:#x} ({}) escapes its parent {:#x} on track {:?} — \
                 non-monotone lane",
                child.id, child.label, n.id, n.track
            ));
        }
        last = child.close;
    }
    events.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{:.3},\"pid\":{pid},\"tid\":{tid}}}",
        esc(&n.label),
        n.kind.label(),
        ts(n.open)
    ));
    for &c in &children {
        emit_subtree(forest, c, pid, tid, events)?;
    }
    events.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{:.3},\"pid\":{pid},\"tid\":{tid}}}",
        esc(&n.label),
        n.kind.label(),
        ts(n.close)
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum_sim::span::{SpanId, SpanKind};
    use aum_sim::time::SimDuration;

    fn rec(at_secs: f64, event: Event) -> TraceRecord {
        TraceRecord {
            at: SimTime::ZERO + SimDuration::from_secs_f64(at_secs),
            event,
        }
    }

    fn open(id: SpanId, parent: Option<SpanId>, kind: SpanKind, at: f64) -> TraceRecord {
        rec(
            at,
            Event::SpanOpen {
                id: id.0,
                parent: parent.map(|p| p.0),
                kind,
                track: "run".to_string(),
                label: format!("{} {}", kind.label(), id.payload()),
            },
        )
    }

    fn close(id: SpanId, kind: SpanKind, at: f64) -> TraceRecord {
        rec(
            at,
            Event::SpanClose {
                id: id.0,
                kind,
                track: "run".to_string(),
            },
        )
    }

    #[test]
    fn export_emits_balanced_pairs_with_nesting() {
        let req = SpanId::derive(SpanKind::RequestLifecycle, 1);
        let dec = SpanId::derive(SpanKind::DecodeIteration, 0);
        let records = vec![
            open(req, None, SpanKind::RequestLifecycle, 0.0),
            open(dec, Some(req), SpanKind::DecodeIteration, 0.2),
            close(dec, SpanKind::DecodeIteration, 0.3),
            close(req, SpanKind::RequestLifecycle, 1.0),
        ];
        let json = export(&records).expect("balanced stream exports");
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2, "{json}");
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2, "{json}");
        assert!(json.contains("\"name\":\"request 1\""), "{json}");
        // Nesting: the child's B comes after the parent's B and its E
        // before the parent's E.
        let pb = json.find("\"name\":\"request 1\",\"cat\":\"request\",\"ph\":\"B\"");
        let cb = json.find("\"name\":\"decode 0\",\"cat\":\"decode\",\"ph\":\"B\"");
        assert!(pb < cb, "{json}");
    }

    #[test]
    fn overlapping_roots_get_distinct_lanes() {
        let a = SpanId::derive(SpanKind::RequestLifecycle, 1);
        let b = SpanId::derive(SpanKind::RequestLifecycle, 2);
        let records = vec![
            open(a, None, SpanKind::RequestLifecycle, 0.0),
            open(b, None, SpanKind::RequestLifecycle, 0.5),
            close(a, SpanKind::RequestLifecycle, 1.0),
            close(b, SpanKind::RequestLifecycle, 1.5),
        ];
        let json = export(&records).expect("overlap exports");
        assert!(json.contains("\"tid\":1"), "{json}");
        assert!(json.contains("\"tid\":2"), "{json}");
    }

    #[test]
    fn unbalanced_stream_is_refused() {
        let a = SpanId::derive(SpanKind::RequestLifecycle, 1);
        let err = export(&[open(a, None, SpanKind::RequestLifecycle, 0.0)]).unwrap_err();
        assert!(err.contains("unbalanced"), "{err}");
        assert!(export(&[]).unwrap_err().contains("empty trace"));
    }

    #[test]
    fn spanless_trace_is_refused() {
        let records = vec![rec(
            1.0,
            Event::RequestFinished {
                id: 1,
                generated: 4,
                mean_tpot_secs: 0.05,
                ttft_secs: 0.4,
            },
        )];
        assert!(export(&records).unwrap_err().contains("no span events"));
    }

    #[test]
    fn counters_ride_along() {
        use aum_sim::telemetry::PhaseKind;
        let a = SpanId::derive(SpanKind::ControllerInterval, 0);
        let records = vec![
            open(a, None, SpanKind::ControllerInterval, 0.0),
            rec(
                0.5,
                Event::IterationCompleted {
                    phase: PhaseKind::Decode,
                    batch: 4,
                    tokens: 4,
                    duration_secs: 0.01,
                },
            ),
            close(a, SpanKind::ControllerInterval, 1.0),
        ];
        let json = export(&records).expect("exports");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("tokens_Decode"), "{json}");
    }

    #[test]
    fn fleet_traces_export_per_node_tracks() {
        fn pair(
            kind: SpanKind,
            payload: u64,
            track: &str,
            label: &str,
            t0: f64,
            t1: f64,
        ) -> [TraceRecord; 2] {
            let id = SpanId::derive(kind, payload);
            [
                rec(
                    t0,
                    Event::SpanOpen {
                        id: id.0,
                        parent: None,
                        kind,
                        track: track.to_string(),
                        label: label.to_string(),
                    },
                ),
                rec(
                    t1,
                    Event::SpanClose {
                        id: id.0,
                        kind,
                        track: track.to_string(),
                    },
                ),
            ]
        }
        // The shape `run_fleet` emits: epochs on the fleet track, health
        // episodes and hops on per-node tracks.
        let mut records = Vec::new();
        records.extend(pair(
            SpanKind::FleetEpoch,
            0,
            "fleet/failover",
            "epoch 0",
            0.0,
            1.0,
        ));
        records.extend(pair(
            SpanKind::NodeHealthEpisode,
            1 << 40,
            "fleet/failover/node1",
            "Suspect",
            0.2,
            0.9,
        ));
        records.extend(pair(
            SpanKind::RedispatchHop,
            (1 << 40) | 1,
            "fleet/failover/node0",
            "batch r2a2 x12",
            0.3,
            2.0,
        ));
        let json = export(&records).expect("fleet trace exports");
        // One Chrome process (pid) per track, named after the track.
        for track in [
            "fleet/failover",
            "fleet/failover/node0",
            "fleet/failover/node1",
        ] {
            assert!(
                json.contains(&format!("\"name\":\"{track}\"")),
                "missing process for {track}: {json}"
            );
        }
        let pids: std::collections::BTreeSet<&str> = json
            .match_indices("\"process_name\"")
            .map(|(i, _)| &json[i..json[i..].find('}').unwrap() + i])
            .collect();
        assert_eq!(pids.len(), 3, "{json}");
        assert!(json.contains("\"name\":\"batch r2a2 x12\""), "{json}");
        assert!(json.contains("\"cat\":\"hop\""), "{json}");
        assert!(json.contains("\"cat\":\"health\""), "{json}");
        assert!(json.contains("\"cat\":\"epoch\""), "{json}");
        serde_json::from_str::<serde_json::Value>(&json).expect("valid JSON");
    }

    #[test]
    fn labels_are_json_escaped() {
        let a = SpanId::derive(SpanKind::FaultWindow, 0);
        let records = vec![
            rec(
                0.0,
                Event::SpanOpen {
                    id: a.0,
                    parent: None,
                    kind: SpanKind::FaultWindow,
                    track: "t\"q\"\\w".to_string(),
                    label: "line\nbreak".to_string(),
                },
            ),
            rec(
                1.0,
                Event::SpanClose {
                    id: a.0,
                    kind: SpanKind::FaultWindow,
                    track: "t\"q\"\\w".to_string(),
                },
            ),
        ];
        let json = export(&records).expect("exports");
        assert!(json.contains("line\\nbreak"), "{json}");
        assert!(json.contains("t\\\"q\\\"\\\\w"), "{json}");
        // Still parses as JSON.
        serde_json::from_str::<serde_json::Value>(&json).expect("valid JSON");
    }
}
