//! `repro perf-report` — self-performance profile of the simulator.
//!
//! Runs one registered study under the [`aum_sim::prof`] self-profiling
//! plane and renders where *host* wall-clock went: a self-time tree over
//! the instrumented hot paths (cost-model evaluation, engine stepping,
//! profiler cells, executor claim/merge), `ModelCache` hit/miss
//! accounting, and the executor's claim/compute/merge/idle breakdown.
//!
//! The output is split along the repository's determinism contract:
//!
//! * [`PerfReport::deterministic`] — tree shape, call counts, cache and
//!   copy-on-write counters. Byte-identical at any `--jobs` level; the
//!   `parallel_determinism` suite gates on it.
//! * [`PerfReport::timing`] — host-nanosecond totals, shares, cells/sec,
//!   exec speedup. Nondeterministic by nature; never part of identity
//!   comparisons.
//! * [`PerfReport::folded`] — collapsed-stack flamegraph lines
//!   (`a;b;c <µs>`, `inferno`/speedscope input format).
//! * [`PerfReport::bench`] — the machine-readable [`BenchSummary`] that
//!   `repro` writes to `BENCH_<sha>.json` so CI can diff consecutive
//!   runs and fail on a >20% cells/sec regression
//!   ([`BenchSummary::regression_against`]).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::common::set_quick;

/// Cells/sec may regress by at most this factor before
/// [`BenchSummary::regression_against`] reports a failure (>20% drop).
pub const REGRESSION_TOLERANCE: f64 = 0.80;

/// One entry of the top-self-time table in [`BenchSummary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseShare {
    /// `;`-joined scope path (collapsed-stack syntax).
    pub path: String,
    /// Fraction of the profiled run's top-level self time.
    pub share: f64,
}

/// Machine-readable summary written to `BENCH_<sha>.json`.
///
/// Scalar throughput and cache figures only — everything CI needs to
/// diff two commits without parsing a rendered report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Commit this run measured (`GITHUB_SHA`, `git rev-parse`, or
    /// `"local"`).
    pub sha: String,
    /// Study id the profile ran.
    pub study: String,
    /// Whether the study ran in `--quick` mode.
    pub quick: bool,
    /// Worker count the executor resolved to.
    pub jobs: u64,
    /// Executor cells completed during the profiled run.
    pub cells: u64,
    /// Host wall-clock of the whole profiled study, in seconds.
    pub wall_seconds: f64,
    /// Cells completed per host wall-clock second — the headline
    /// throughput number the regression gate compares.
    pub cells_per_sec: f64,
    /// Executor speedup (Σ cell compute time / Σ sweep wall time).
    pub exec_speedup: f64,
    /// `ModelCache` lookups during the run.
    pub cache_lookups: u64,
    /// `ModelCache` profiling sweeps actually executed.
    pub cache_builds: u64,
    /// Fraction of lookups served from cache.
    pub cache_hit_rate: f64,
    /// Top-5 scopes by self time, as shares of the profiled total.
    pub top_phases: Vec<PhaseShare>,
}

impl BenchSummary {
    /// Compares this run's throughput against a `baseline` summary.
    ///
    /// Returns `Err` with a human-readable message when cells/sec
    /// dropped below [`REGRESSION_TOLERANCE`] × baseline, `Ok` with a
    /// one-line comparison otherwise. Baselines without throughput
    /// (zero-cell runs) always pass.
    pub fn regression_against(&self, baseline: &BenchSummary) -> Result<String, String> {
        if baseline.cells_per_sec <= 0.0 {
            return Ok(format!(
                "baseline {} has no throughput data; skipping regression gate",
                baseline.sha
            ));
        }
        let ratio = self.cells_per_sec / baseline.cells_per_sec;
        let line = format!(
            "cells/sec {:.1} vs baseline {:.1} ({} → {}): {:+.1}%",
            self.cells_per_sec,
            baseline.cells_per_sec,
            baseline.sha,
            self.sha,
            (ratio - 1.0) * 100.0,
        );
        if ratio < REGRESSION_TOLERANCE {
            Err(format!(
                "{line} — regression beyond {:.0}% tolerance",
                (1.0 - REGRESSION_TOLERANCE) * 100.0
            ))
        } else {
            Ok(line)
        }
    }
}

/// A complete perf-report run: the study's own output plus the three
/// rendered sections and the machine-readable summary.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// The study's normal rendered tables (unchanged by profiling).
    pub study_output: String,
    /// Deterministic section: tree shape, call counts, counters.
    pub deterministic: String,
    /// Host-timing section (nondeterministic, excluded from gates).
    pub timing: String,
    /// Collapsed-stack flamegraph lines.
    pub folded: String,
    /// Machine-readable summary for `BENCH_<sha>.json`.
    pub bench: BenchSummary,
}

/// The commit id for [`BenchSummary::sha`]: `GITHUB_SHA` if set (CI),
/// else `git rev-parse --short HEAD`, else `"local"`.
#[must_use]
pub fn current_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    "local".to_string()
}

/// Runs `study` (an id from [`crate::experiments`]) under the
/// self-profiling plane and collects the report.
///
/// Resets the profiling tree first, so the report covers exactly this
/// study; profiling is switched off again before returning.
pub fn collect(study: &str, quick: bool) -> Result<PerfReport, String> {
    let run = crate::experiments()
        .into_iter()
        .find(|(id, _)| *id == study)
        .map(|(_, f)| f)
        .ok_or_else(|| {
            let ids: Vec<&str> = crate::experiments().iter().map(|(id, _)| *id).collect();
            format!(
                "unknown study `{study}` (expected one of: {})",
                ids.join(", ")
            )
        })?;
    set_quick(quick);

    aum_sim::prof::reset();
    aum_sim::prof::set_enabled(true);
    let exec_before = aum_sim::exec::stats();
    let t0 = Instant::now();
    let study_output = {
        let _study_scope = aum_sim::prof::scope("study");
        run()
    };
    let wall = t0.elapsed();
    aum_sim::prof::set_enabled(false);
    let snap = aum_sim::prof::snapshot();
    let exec = aum_sim::exec::stats().since(&exec_before);

    let cache = crate::common::CacheStats {
        lookups: snap.counter("model_cache.lookup"),
        builds: snap.counter("model_cache.build"),
    };

    let mut deterministic = String::new();
    deterministic.push_str(&format!("== perf-report: {study} (deterministic) ==\n"));
    deterministic.push_str(&format!("quick: {quick}\n"));
    deterministic.push_str(&format!(
        "exec: sweeps={} cells={}\n",
        exec.sweeps, exec.cells
    ));
    deterministic.push_str(&format!(
        "model cache: lookups={} builds={} hits={} hit_rate={:.1}%\n",
        cache.lookups,
        cache.builds,
        cache.hits(),
        100.0 * cache.hit_rate(),
    ));
    deterministic.push_str(&snap.render_deterministic());

    let wall_secs = wall.as_secs_f64();
    let covered = snap.top_level_nanos() as f64 / 1e9;
    let mut timing = String::new();
    timing.push_str(&format!(
        "== perf-report: {study} (host timing, nondeterministic) ==\n"
    ));
    timing.push_str(&format!(
        "study wall: {:.3}s   profiled coverage: {:.3}s ({:.1}%)\n",
        wall_secs,
        covered,
        100.0 * covered / wall_secs.max(1e-9),
    ));
    timing.push_str(&format!(
        "throughput: {:.1} cells/sec   exec speedup: {:.2}x (busy {:.3}s / sweep wall {:.3}s)\n",
        exec.cells as f64 / wall_secs.max(1e-9),
        exec.speedup(),
        exec.busy.as_secs_f64(),
        exec.wall.as_secs_f64(),
    ));
    timing.push_str(&format!(
        "exec breakdown: claim {:.1}ms   merge {:.1}ms   worker idle {:.1}ms\n",
        exec.claim.as_secs_f64() * 1e3,
        exec.merge.as_secs_f64() * 1e3,
        exec.idle.as_secs_f64() * 1e3,
    ));
    timing.push_str(
        "note: scopes on pool workers aggregate CPU time across threads, so shares \
         under parallel sweeps can exceed 100% of wall.\n",
    );
    timing.push_str(&snap.render_timing());

    let bench = BenchSummary {
        sha: current_sha(),
        study: study.to_string(),
        quick,
        jobs: aum_sim::exec::jobs() as u64,
        cells: exec.cells,
        wall_seconds: wall_secs,
        cells_per_sec: exec.cells as f64 / wall_secs.max(1e-9),
        exec_speedup: exec.speedup(),
        cache_lookups: cache.lookups,
        cache_builds: cache.builds,
        cache_hit_rate: cache.hit_rate(),
        top_phases: snap
            .top_self_phases(5)
            .into_iter()
            .map(|(path, share)| PhaseShare { path, share })
            .collect(),
    };

    Ok(PerfReport {
        study_output,
        deterministic,
        timing,
        folded: snap.render_folded(),
        bench,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(cps: f64) -> BenchSummary {
        BenchSummary {
            sha: "abc".into(),
            study: "fig14".into(),
            quick: true,
            jobs: 4,
            cells: 100,
            wall_seconds: 1.0,
            cells_per_sec: cps,
            exec_speedup: 3.0,
            cache_lookups: 10,
            cache_builds: 2,
            cache_hit_rate: 0.8,
            top_phases: vec![PhaseShare {
                path: "study;exec.sweep".into(),
                share: 0.9,
            }],
        }
    }

    #[test]
    fn unknown_study_is_a_clean_error() {
        let err = collect("not-a-study", true).expect_err("must fail");
        assert!(err.contains("unknown study"));
        assert!(err.contains("fig14"));
    }

    #[test]
    fn bench_summary_round_trips_through_json() {
        let json = serde_json::to_string_pretty(&summary(250.0)).expect("serialize");
        let back: BenchSummary = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.cells, 100);
        assert_eq!(back.top_phases.len(), 1);
        assert_eq!(back.top_phases[0].path, "study;exec.sweep");
    }

    #[test]
    fn regression_gate_trips_only_beyond_tolerance() {
        let base = summary(100.0);
        assert!(summary(95.0).regression_against(&base).is_ok());
        assert!(summary(81.0).regression_against(&base).is_ok());
        let err = summary(79.0).regression_against(&base).expect_err("trip");
        assert!(err.contains("regression"));
        assert!(summary(0.1).regression_against(&summary(0.0)).is_ok());
    }
}
