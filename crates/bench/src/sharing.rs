//! Sharing-deficiency experiments: Fig 9 (SMT), Fig 10 (resource
//! partitioning), Fig 12 (processor dividing), Fig 13 (LLC allocation).

use aum::calib::au_llc_penalty;
use aum::experiment::{run_experiment, ExperimentConfig};
use aum::manager::{Decision, StaticManager};
use aum_llm::engine::EngineMode;
use aum_llm::traces::Scenario;
use aum_platform::rdt::{RdtAllocation, ResourceVector};
use aum_platform::smt::smt_impact;
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::{AuUsageLevel, ProcessorDivision};
use aum_sim::report::{fmt3, TextTable};
use aum_workloads::be::{BeKind, BeProfile};

use crate::common::{scheme_outcome, ModelCache, Scheme};

/// Fig 9: variable SMT impact on AU sharing performance.
#[must_use]
pub fn fig9() -> String {
    let mut out = String::from(
        "Fig 9a: SMT impact vs sharing pressure (OLAP siblings; model-level slowdowns)\n",
    );
    let olap = BeProfile::of(BeKind::Olap);
    let mut t = TextTable::new([
        "sharing frac",
        "decode mem slowdown",
        "decode port slowdown",
        "prefill mem slowdown",
        "OLAP-side slowdown",
    ]);
    for frac in [0.25, 0.5, 0.75, 1.0] {
        let low = smt_impact(olap.smt, AuUsageLevel::Low, frac);
        let high = smt_impact(olap.smt, AuUsageLevel::High, frac);
        t.row([
            format!("{frac:.2}"),
            fmt3(low.au_memory_slowdown),
            fmt3(low.au_compute_slowdown),
            fmt3(high.au_memory_slowdown),
            fmt3(low.be_slowdown),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFig 9b: end-to-end impact of shared application types (SMT-AU vs ALL-AU)\n");
    let spec = PlatformSpec::gen_a();
    let cache = ModelCache::new();
    let base = scheme_outcome(
        Scheme::AllAu,
        &spec,
        Scenario::Chatbot,
        BeKind::SpecJbb,
        &cache,
    );
    let mut t = TextTable::new([
        "shared app",
        "decode tput vs ALL-AU",
        "TPOT guarantee",
        "TTFT guarantee",
        "BE rate",
    ]);
    for be in [BeKind::Compute, BeKind::Olap, BeKind::SpecJbb] {
        let out_ = scheme_outcome(Scheme::SmtAu, &spec, Scenario::Chatbot, be, &cache);
        t.row([
            be.to_string(),
            fmt3(out_.decode_tps / base.decode_tps),
            fmt3(out_.slo.tpot_guarantee),
            fmt3(out_.slo.ttft_guarantee),
            format!("{:.0}", out_.be_rate),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Fig 10: AUV-oblivious resource partitioning — exclusive (one resource
/// partitioned) vs inclusive (all partitioned) effects on LLM serving
/// performance with SPECjbb.
#[must_use]
pub fn fig10() -> String {
    let spec = PlatformSpec::gen_a();
    let total = spec.total_cores();
    let division = ProcessorDivision::new(total / 2, total / 4, total - total / 2 - total / 4);
    // "Exclusive" = partition only the named resource (the others overlap).
    let variants: Vec<(&str, RdtAllocation)> = vec![
        (
            "exclusive-L2",
            RdtAllocation::new(
                ResourceVector::new(12, 16, 1.0),
                ResourceVector::new(4, 16, 1.0),
            ),
        ),
        (
            "exclusive-LLC",
            RdtAllocation::new(
                ResourceVector::new(16, 12, 1.0),
                ResourceVector::new(16, 4, 1.0),
            ),
        ),
        (
            "exclusive-MemBW",
            RdtAllocation::new(
                ResourceVector::new(16, 16, 0.8),
                ResourceVector::new(16, 16, 0.2),
            ),
        ),
        (
            "inclusive-all",
            RdtAllocation::new(
                ResourceVector::new(12, 12, 0.8),
                ResourceVector::new(4, 4, 0.2),
            ),
        ),
        ("unpartitioned", RdtAllocation::unpartitioned(&spec)),
    ];
    let run = |alloc: RdtAllocation| {
        let cfg =
            ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, Some(BeKind::SpecJbb));
        let mut mgr = StaticManager::new(
            "rp",
            Decision {
                division,
                allocation: alloc,
                smt_sharing: false,
                engine_mode: EngineMode::Partitioned,
            },
        );
        run_experiment(&cfg, &mut mgr)
    };
    let base = run(variants[3].1);
    let mut t = TextTable::new([
        "partitioning",
        "LLM latency perf (vs inclusive)",
        "TPOT guarantee",
        "BE rate (vs inclusive)",
    ]);
    for (name, alloc) in &variants {
        let o = run(*alloc);
        t.row([
            (*name).to_string(),
            // Latency-side serving performance: inverse tail TPOT.
            fmt3(base.slo.tpot_req_p90 / o.slo.tpot_req_p90.max(1e-9)),
            fmt3(o.slo.tpot_guarantee),
            fmt3(o.be_rate / base.be_rate.max(1e-9)),
        ]);
    }
    format!(
        "Fig 10: AUV-oblivious resource partitioning impact (llama2-7b + SPECjbb, GenA)\n{}",
        t.render()
    )
}

/// Fig 12: AU application performance across processor divisions,
/// normalized to exclusive all-core performance.
#[must_use]
pub fn fig12() -> String {
    let spec = PlatformSpec::gen_a();
    let total = spec.total_cores();
    let cache = ModelCache::new();
    let base = scheme_outcome(
        Scheme::AllAu,
        &spec,
        Scenario::Chatbot,
        BeKind::SpecJbb,
        &cache,
    );
    let mut t = TextTable::new([
        "division (H/L/N)",
        "prefill tput (norm)",
        "decode tput (norm)",
        "TTFT p90 (s)",
        "TPOT req-p90 (s)",
    ]);
    for (h, l) in [
        (64, 32),
        (64, 16),
        (48, 32),
        (48, 24),
        (32, 32),
        (32, 16),
        (24, 16),
    ] {
        let division = ProcessorDivision::new(h, l, total - h - l);
        let cfg =
            ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, Some(BeKind::SpecJbb));
        let mut mgr = StaticManager::new(
            "div",
            Decision {
                division,
                allocation: RdtAllocation::new(
                    ResourceVector::new(12, 12, 0.9),
                    ResourceVector::new(4, 4, 0.1),
                ),
                smt_sharing: false,
                engine_mode: EngineMode::Partitioned,
            },
        );
        let o = run_experiment(&cfg, &mut mgr);
        t.row([
            format!("{division}"),
            fmt3(o.prefill_tps / base.prefill_tps),
            fmt3(o.decode_tps / base.decode_tps),
            fmt3(o.slo.ttft_p90),
            fmt3(o.slo.tpot_req_p90),
        ]);
    }
    format!(
        "Fig 12: AU application vs processor dividing (normalized to exclusive all-core)\n{}",
        t.render()
    )
}

/// Fig 13: AU performance vs LLC way allocation for different usages and
/// platforms (performance factor = 1 / llc penalty).
#[must_use]
pub fn fig13() -> String {
    let mut out = String::from(
        "Fig 13: AU performance vs LLC ways (normalized to all ways; cost-model factors)\n",
    );
    for spec in [PlatformSpec::gen_a(), PlatformSpec::gen_c()] {
        let mut t = TextTable::new(["LLC ways", "high-AU (prefill)", "low-AU (decode)"]);
        for ways in [1u32, 2, 4, 6, 8, 12, 16] {
            t.row([
                ways.to_string(),
                fmt3(1.0 / au_llc_penalty(&spec, AuUsageLevel::High, ways)),
                fmt3(1.0 / au_llc_penalty(&spec, AuUsageLevel::Low, ways)),
            ]);
        }
        out.push_str(&format!("\n[{}]\n{}", spec.name, t.render()));
    }
    out
}
