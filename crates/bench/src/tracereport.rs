//! Post-hoc analysis of telemetry traces: turns a JSONL event stream into
//! a causal timeline (breach → controller action with its reason →
//! recovery), per-event-type counts, and controller decision statistics.
//!
//! Consumed by `repro trace-summary <file.jsonl>`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use aum_sim::telemetry::{DecisionKind, Event, SlackVerdict, SloMetric, TraceRecord};
use aum_sim::SimTime;

/// Timeline entries beyond this count are elided from the middle so a
/// long run stays readable.
const TIMELINE_CAP: usize = 60;

fn secs(at: SimTime) -> f64 {
    at.as_secs_f64()
}

fn metric_name(metric: SloMetric) -> &'static str {
    match metric {
        SloMetric::Ttft => "TTFT",
        SloMetric::Tpot => "TPOT",
    }
}

fn kind_name(kind: DecisionKind) -> &'static str {
    match kind {
        DecisionKind::Harvest => "harvest",
        DecisionKind::Return => "return",
        DecisionKind::Switch => "switch",
    }
}

/// Renders the full summary for a parsed trace.
#[must_use]
pub fn summarize(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("empty trace: no records\n");
        return out;
    }
    // A trace may concatenate several runs (each restarting its sim
    // clock), so span over min/max rather than first/last.
    let lo = records.iter().map(|r| r.at).min().unwrap_or(SimTime::ZERO);
    let hi = records.iter().map(|r| r.at).max().unwrap_or(SimTime::ZERO);
    let _ = writeln!(
        out,
        "trace: {} events spanning t={:.1}s .. t={:.1}s",
        records.len(),
        secs(lo),
        secs(hi)
    );

    out.push_str(&event_counts(records));
    out.push_str(&decision_stats(records));
    out.push_str(&attribution_stats(records));
    out.push_str(&timeline(records));
    out
}

/// Aggregate attribution over `AttributionSample` events: total time share
/// per cause across every sampled region, plus the dominant loss. Absent
/// when the trace carries no samples (pre-ledger traces).
fn attribution_stats(records: &[TraceRecord]) -> String {
    use aum_sim::attrib::CauseVec;

    let mut total = CauseVec::zero();
    let mut samples = 0usize;
    for r in records {
        if let Event::AttributionSample { time, .. } = &r.event {
            total.accumulate(time);
            samples += 1;
        }
    }
    if samples == 0 {
        return String::new();
    }
    let sum = total.sum();
    let mut out = String::from("\nattribution (time share across sampled regions):\n");
    let mut shares: Vec<_> = total.iter().filter(|(_, v)| *v > 0.0).collect();
    shares.sort_by(|a, b| b.1.total_cmp(&a.1));
    let line = shares
        .iter()
        .map(|(c, v)| {
            format!(
                "{} {:.1}%",
                c.label(),
                v / sum.max(f64::MIN_POSITIVE) * 100.0
            )
        })
        .collect::<Vec<_>>()
        .join(" | ");
    let _ = writeln!(out, "  {samples} samples: {line}");
    if let Some((cause, v)) = total.dominant_loss(sum) {
        let _ = writeln!(
            out,
            "  dominant loss: {} ({:.1}% of attributed time)",
            cause.label(),
            v / sum.max(f64::MIN_POSITIVE) * 100.0
        );
    }
    out
}

/// Per-event-type counts, alphabetical by label.
fn event_counts(records: &[TraceRecord]) -> String {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in records {
        *counts.entry(r.event.kind_label()).or_insert(0) += 1;
    }
    let mut out = String::from("\nevent counts:\n");
    let width = counts.keys().map(|k| k.len()).max().unwrap_or(0);
    for (label, n) in &counts {
        let _ = writeln!(out, "  {label:width$}  {n}");
    }
    out
}

/// Aggregate statistics over `ControllerDecision` events.
fn decision_stats(records: &[TraceRecord]) -> String {
    let mut total = 0usize;
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut collisions = 0usize;
    let mut violating = 0usize;
    let mut lag_sum = 0.0f64;
    let mut dev_sum = 0.0f64;
    let mut breach_by_metric: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in records {
        match &r.event {
            Event::ControllerDecision {
                kind,
                verdict,
                lag_secs,
                deviation,
                collision,
                ..
            } => {
                total += 1;
                *by_kind.entry(kind_name(*kind)).or_insert(0) += 1;
                collisions += usize::from(*collision);
                violating += usize::from(*verdict == SlackVerdict::Violating);
                lag_sum += lag_secs;
                dev_sum += deviation;
            }
            Event::SloBreach { metric, .. } => {
                *breach_by_metric.entry(metric_name(*metric)).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    let mut out = String::from("\ncontroller decisions:\n");
    if total == 0 {
        out.push_str("  none recorded\n");
    } else {
        let kinds = by_kind
            .iter()
            .map(|(k, n)| format!("{k} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  total {total}  ({kinds})");
        let _ = writeln!(
            out,
            "  verdicts: meeting {}  violating {violating}  collisions {collisions}",
            total - violating
        );
        let n = total as f64;
        let _ = writeln!(
            out,
            "  mean LAG slack {:+.3}s  mean \u{3b4}_AU {:.2}",
            lag_sum / n,
            dev_sum / n
        );
    }
    if !breach_by_metric.is_empty() {
        let breaches = breach_by_metric
            .iter()
            .map(|(m, n)| format!("{m} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  SLO breach intervals: {breaches}");
    }
    out
}

/// One rendered timeline entry.
fn entry_line(at: SimTime, body: &str) -> String {
    format!("  t={:8.1}s  {body}\n", secs(at))
}

/// The causal timeline: controller decisions annotated with the breach
/// pressure that preceded them and how long breaches persisted afterwards,
/// interleaved with platform events (frequency, thermal, RDT moves) and a
/// collapsed profiler line.
fn timeline(records: &[TraceRecord]) -> String {
    let mut entries: Vec<String> = Vec::new();

    // Collapse profiler progress to a single line.
    let profiler: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| matches!(r.event, Event::ProfilerProgress { .. }))
        .collect();
    if let Some(last) = profiler.last() {
        if let Event::ProfilerProgress {
            completed, total, ..
        } = last.event
        {
            entries.push(entry_line(
                last.at,
                &format!("profiler swept {completed}/{total} grid cells (offline)"),
            ));
        }
    }

    // Breach timestamps drive the "recovered" annotations.
    let breaches: Vec<(SimTime, SloMetric, f64, f64)> = records
        .iter()
        .filter_map(|r| match r.event {
            Event::SloBreach {
                metric,
                observed_secs,
                budget_secs,
            } => Some((r.at, metric, observed_secs, budget_secs)),
            _ => None,
        })
        .collect();

    let mut prev_decision_at = SimTime::ZERO;
    for r in records {
        match &r.event {
            Event::FreqTransition {
                region,
                from_ghz,
                to_ghz,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!("freq[{region:?}] {from_ghz:.2} \u{2192} {to_ghz:.2} GHz"),
                ));
            }
            Event::ThermalThrottle { region, drop_ghz } => {
                entries.push(entry_line(
                    r.at,
                    &format!("thermal throttle[{region:?}] -{drop_ghz:.2} GHz"),
                ));
            }
            Event::RdtReallocation {
                llc_ways_from,
                llc_ways_to,
                mem_bw_from,
                mem_bw_to,
                ..
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!(
                        "RDT move: LLC {llc_ways_from}\u{2192}{llc_ways_to} ways, \
                         mem-bw {:.0}%\u{2192}{:.0}%",
                        mem_bw_from * 100.0,
                        mem_bw_to * 100.0
                    ),
                ));
            }
            Event::FaultInjected { kind, detail } => {
                entries.push(entry_line(
                    r.at,
                    &format!("FAULT injected: {kind} ({detail})"),
                ));
            }
            Event::FaultRecovered { kind } => {
                entries.push(entry_line(r.at, &format!("FAULT recovered: {kind}")));
            }
            Event::FaultOutsideWindow {
                kind,
                at_secs,
                duration_secs,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!(
                        "WARNING: fault {kind} scheduled at t={at_secs:.1}s \
                         never fires (run ends at {duration_secs:.1}s)"
                    ),
                ));
            }
            Event::SensorRejected {
                sensor,
                observed,
                substituted,
                reason,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!(
                        "sensor distrust[{sensor}]: {observed:.4} rejected ({reason}), \
                         using {substituted:.4}"
                    ),
                ));
            }
            Event::SafeModeTransition { from, to, reason } => {
                entries.push(entry_line(
                    r.at,
                    &format!("resilience {from:?} \u{2192} {to:?}: {reason}"),
                ));
            }
            Event::ControllerDecision {
                action,
                verdict,
                reason,
                ..
            } => {
                let since_prev = breaches
                    .iter()
                    .filter(|(t, ..)| *t > prev_decision_at && *t <= r.at)
                    .count();
                let pressure = if since_prev > 0 {
                    format!(" [{since_prev} breach intervals led here]")
                } else {
                    String::new()
                };
                let mut body = format!("{reason} \u{2192} {action}{pressure}");
                if *verdict == SlackVerdict::Violating {
                    body.push_str(&recovery_note(&breaches, r.at, records));
                }
                entries.push(entry_line(r.at, &body));
                prev_decision_at = r.at;
            }
            _ => {}
        }
    }

    let mut out = String::from("\ncausal timeline:\n");
    if entries.is_empty() {
        out.push_str("  no controller or platform events recorded\n");
        return out;
    }
    if entries.len() > TIMELINE_CAP {
        let head = TIMELINE_CAP * 2 / 3;
        let tail = TIMELINE_CAP - head;
        for e in &entries[..head] {
            out.push_str(e);
        }
        let _ = writeln!(
            out,
            "  ... ({} entries elided) ...",
            entries.len() - TIMELINE_CAP
        );
        for e in &entries[entries.len() - tail..] {
            out.push_str(e);
        }
    } else {
        for e in &entries {
            out.push_str(e);
        }
    }
    out
}

/// How long SLO breaches persisted after a violating decision at `at`.
fn recovery_note(
    breaches: &[(SimTime, SloMetric, f64, f64)],
    at: SimTime,
    records: &[TraceRecord],
) -> String {
    let next_decision_at = records
        .iter()
        .find(|r| r.at > at && matches!(r.event, Event::ControllerDecision { .. }))
        .map(|r| r.at);
    let window_end = next_decision_at.unwrap_or(SimTime::MAX);
    let last_breach_in_window = breaches.iter().rfind(|(t, ..)| *t > at && *t <= window_end);
    match last_breach_in_window {
        None => " \u{2014} no further breaches before next decision".to_owned(),
        Some((t, ..)) => format!(
            " \u{2014} breaches persisted {:.1}s after the action",
            secs(*t) - secs(at)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum_sim::SimDuration;

    fn rec(at_secs: f64, event: Event) -> TraceRecord {
        TraceRecord {
            at: SimTime::ZERO + SimDuration::from_secs_f64(at_secs),
            event,
        }
    }

    #[test]
    fn summary_contains_counts_stats_and_timeline() {
        let records = vec![
            rec(
                0.5,
                Event::SloBreach {
                    metric: SloMetric::Tpot,
                    observed_secs: 0.142,
                    budget_secs: 0.120,
                },
            ),
            rec(
                1.0,
                Event::ControllerDecision {
                    kind: DecisionKind::Return,
                    action: "Return(cfg 3\u{2192}2)".into(),
                    verdict: SlackVerdict::Violating,
                    lag_secs: -0.02,
                    deviation: 1.1,
                    collision: false,
                    reason: "TPOT p50 0.142s > SLO_L 0.120s".into(),
                },
            ),
            rec(
                1.5,
                Event::SloBreach {
                    metric: SloMetric::Tpot,
                    observed_secs: 0.131,
                    budget_secs: 0.120,
                },
            ),
            rec(
                3.0,
                Event::ControllerDecision {
                    kind: DecisionKind::Harvest,
                    action: "Harvest(cfg 2\u{2192}3)".into(),
                    verdict: SlackVerdict::Meeting,
                    lag_secs: 0.4,
                    deviation: 0.3,
                    collision: false,
                    reason: "slack positive".into(),
                },
            ),
        ];
        let s = summarize(&records);
        assert!(s.contains("event counts"), "{s}");
        assert!(s.contains("ControllerDecision  2"), "{s}");
        assert!(s.contains("total 2  (harvest 1, return 1)"), "{s}");
        assert!(s.contains("SLO breach intervals: TPOT 2"), "{s}");
        assert!(s.contains("TPOT p50 0.142s > SLO_L 0.120s"), "{s}");
        assert!(s.contains("1 breach intervals led here"), "{s}");
        assert!(s.contains("breaches persisted 0.5s"), "{s}");
    }

    #[test]
    fn empty_trace_is_reported_not_crashed() {
        assert!(summarize(&[]).contains("empty trace"));
    }

    #[test]
    fn attribution_samples_get_their_own_section() {
        use aum_sim::attrib::{Cause, CauseVec, Region};
        let mut time = CauseVec::zero();
        time.add(Cause::Compute, 0.3);
        time.add(Cause::MemDram, 0.2);
        let records = vec![rec(
            0.5,
            Event::AttributionSample {
                region: Region::AuLow,
                dt_secs: 0.5,
                time,
                energy: time,
            },
        )];
        let s = summarize(&records);
        assert!(s.contains("attribution (time share"), "{s}");
        assert!(s.contains("compute 60.0%"), "{s}");
        assert!(s.contains("dominant loss: mem-dram (40.0%"), "{s}");
        // Traces without samples omit the section entirely.
        assert!(!summarize(&[rec(
            1.0,
            Event::RequestFinished {
                id: 1,
                generated: 1,
                mean_tpot_secs: 0.01
            }
        )])
        .contains("attribution"));
    }

    #[test]
    fn violating_decision_with_clean_aftermath_notes_recovery() {
        let records = vec![
            rec(
                1.0,
                Event::ControllerDecision {
                    kind: DecisionKind::Switch,
                    action: "Switch(div 0\u{2192}1)".into(),
                    verdict: SlackVerdict::Violating,
                    lag_secs: -0.1,
                    deviation: 2.5,
                    collision: true,
                    reason: "collision: tuning deemed insufficient".into(),
                },
            ),
            rec(
                2.0,
                Event::RequestFinished {
                    id: 7,
                    generated: 12,
                    mean_tpot_secs: 0.05,
                },
            ),
        ];
        let s = summarize(&records);
        assert!(s.contains("no further breaches"), "{s}");
        assert!(s.contains("collisions 1"), "{s}");
    }
}
