//! Post-hoc analysis of telemetry traces: turns a JSONL event stream into
//! a causal timeline (breach → controller action with its reason →
//! recovery), per-event-type counts, and controller decision statistics.
//!
//! Consumed by `repro trace-summary <file.jsonl>`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use aum_sim::hist::LogHistogram;
use aum_sim::span::{collect_spans, SpanId, SpanKind};
use aum_sim::telemetry::{
    DecisionKind, Event, MetricsSnapshot, NodeHealth, SlackVerdict, SloMetric, TraceRecord,
};
use aum_sim::SimTime;

/// Timeline entries beyond this count are elided from the middle so a
/// long run stays readable.
const TIMELINE_CAP: usize = 60;

fn secs(at: SimTime) -> f64 {
    at.as_secs_f64()
}

fn metric_name(metric: SloMetric) -> &'static str {
    match metric {
        SloMetric::Ttft => "TTFT",
        SloMetric::Tpot => "TPOT",
    }
}

fn kind_name(kind: DecisionKind) -> &'static str {
    match kind {
        DecisionKind::Harvest => "harvest",
        DecisionKind::Return => "return",
        DecisionKind::Switch => "switch",
    }
}

/// Renders the full summary for a parsed trace.
#[must_use]
pub fn summarize(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("empty trace: no records\n");
        return out;
    }
    // A trace may concatenate several runs (each restarting its sim
    // clock), so span over min/max rather than first/last.
    let lo = records.iter().map(|r| r.at).min().unwrap_or(SimTime::ZERO);
    let hi = records.iter().map(|r| r.at).max().unwrap_or(SimTime::ZERO);
    let _ = writeln!(
        out,
        "trace: {} events spanning t={:.1}s .. t={:.1}s",
        records.len(),
        secs(lo),
        secs(hi)
    );

    out.push_str(&event_counts(records));
    out.push_str(&decision_stats(records));
    out.push_str(&attribution_stats(records));
    out.push_str(&slo_digest(records));
    out.push_str(&fleet_digest(records));
    out.push_str(&worst_request_drilldown(records));
    out.push_str(&timeline(records));
    out
}

/// How many health transitions a node's timeline row prints before
/// eliding the rest.
const HEALTH_TIMELINE_CAP: usize = 8;

/// The fleet health digest: per-node health timeline table, redispatch
/// hop-chain depth distribution, shed-by-class breakdown, and a
/// worst-node drill-down carrying the node's last metric snapshot.
/// Absent when the trace holds no fleet events (single-node traces).
fn fleet_digest(records: &[TraceRecord]) -> String {
    let mut timelines: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut down_count: BTreeMap<usize, usize> = BTreeMap::new();
    let mut strands: BTreeMap<usize, u64> = BTreeMap::new();
    let mut depth: BTreeMap<u32, u64> = BTreeMap::new();
    let mut shed_by_class: BTreeMap<&str, u64> = BTreeMap::new();
    let mut snapshots: BTreeMap<usize, (&String, &MetricsSnapshot)> = BTreeMap::new();
    let mut fleet_events = 0usize;
    for r in records {
        match &r.event {
            Event::NodeHealthTransition { node, from, to, .. } => {
                fleet_events += 1;
                timelines
                    .entry(*node)
                    .or_default()
                    .push(format!("t={:.0}s {from:?}\u{2192}{to:?}", secs(r.at)));
                if *to == NodeHealth::Down {
                    *down_count.entry(*node).or_insert(0) += 1;
                }
            }
            Event::RequestRedispatch {
                node,
                count,
                attempt,
                ..
            } => {
                fleet_events += 1;
                *strands.entry(*node).or_insert(0) += count;
                *depth.entry(*attempt).or_insert(0) += count;
            }
            Event::LoadShed { class, count, .. } => {
                fleet_events += 1;
                *shed_by_class.entry(class.as_str()).or_insert(0) += count;
            }
            Event::NodeMetricsSnapshot {
                node,
                label,
                snapshot,
            } => {
                fleet_events += 1;
                // Later snapshots overwrite earlier ones: the drill-down
                // wants each node's freshest state.
                snapshots.insert(*node, (label, snapshot));
            }
            Event::NodeFault { .. } => fleet_events += 1,
            _ => {}
        }
    }
    if fleet_events == 0 {
        return String::new();
    }
    let mut out = String::from("\nfleet health digest:\n");
    if timelines.is_empty() {
        out.push_str("  per-node health timeline: no transitions recorded\n");
    } else {
        out.push_str("  per-node health timeline:\n");
        for (node, entries) in &timelines {
            let shown = entries
                .iter()
                .take(HEALTH_TIMELINE_CAP)
                .cloned()
                .collect::<Vec<_>>()
                .join("  ");
            let elided = entries.len().saturating_sub(HEALTH_TIMELINE_CAP);
            let tail = if elided > 0 {
                format!("  \u{2026} {elided} more")
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "    node {node}: {} transition(s)  {shown}{tail}",
                entries.len()
            );
        }
    }
    if depth.is_empty() {
        out.push_str("  hop chains: none (no requests stranded)\n");
    } else {
        let total: u64 = depth.values().sum();
        let deepest = depth.keys().max().copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "  hop-chain depth distribution ({total} stranded dispatches, deepest chain \
             attempt {deepest}):"
        );
        for (attempt, n) in &depth {
            let _ = writeln!(out, "    attempt {attempt}: {n} request(s)");
        }
    }
    if !shed_by_class.is_empty() {
        let total: u64 = shed_by_class.values().sum();
        let line = shed_by_class
            .iter()
            .map(|(c, n)| format!("{c} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  shed by class: {total} total ({line})");
    }
    // Worst node: most stranded requests, ties to the most Down
    // transitions, then the lowest index.
    let mut candidates: Vec<usize> = timelines.keys().copied().collect();
    for n in strands.keys() {
        if !candidates.contains(n) {
            candidates.push(*n);
        }
    }
    if let Some(&worst) = candidates.iter().max_by_key(|n| {
        (
            strands.get(n).copied().unwrap_or(0),
            down_count.get(n).copied().unwrap_or(0),
            std::cmp::Reverse(**n),
        )
    }) {
        let _ = writeln!(
            out,
            "  worst-node drill-down: node {worst} ({} stranded request(s), {} Down \
             transition(s))",
            strands.get(&worst).copied().unwrap_or(0),
            down_count.get(&worst).copied().unwrap_or(0)
        );
        match snapshots.get(&worst) {
            Some((label, snap)) => {
                let counters = snap
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k} {v}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "    last snapshot [{label}] at t={:.0}s: {}",
                    secs(snap.at),
                    if counters.is_empty() {
                        "no counters yet".to_string()
                    } else {
                        counters
                    }
                );
            }
            None => out.push_str("    no metric snapshot in trace\n"),
        }
    }
    out
}

/// Fraction of requests an SLO allows to miss their deadline before the
/// error budget is spent — burn rate 1.0× means "exactly on budget".
const ERROR_BUDGET: f64 = 0.01;

/// Tumbling-window lengths (seconds) of the multi-window burn-rate check:
/// the short window catches fast burns, the long one filters blips. Both
/// burning simultaneously is the page-worthy condition.
const BURN_WINDOWS: [f64; 2] = [10.0, 60.0];

/// One metric's windowed burn rates against its target.
fn burn_lines(out: &mut String, samples: &[(f64, f64)], target: f64) -> bool {
    let mut all_burning = true;
    for w in BURN_WINDOWS {
        let mut windows: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
        for &(at, v) in samples {
            let e = windows.entry((at / w) as u64).or_insert((0, 0));
            e.1 += 1;
            e.0 += usize::from(v > target);
        }
        let burns: Vec<(u64, f64)> = windows
            .iter()
            .map(|(idx, (bad, n))| (*idx, *bad as f64 / *n as f64 / ERROR_BUDGET))
            .collect();
        let burning = burns.iter().filter(|(_, b)| *b > 1.0).count();
        let peak = burns
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
        match peak {
            Some((idx, b)) => {
                let _ = writeln!(
                    out,
                    "    {w:>4.0}s windows: {burning}/{} burning, peak {b:.1}x at t={:.0}s",
                    burns.len(),
                    idx as f64 * w
                );
            }
            None => {
                let _ = writeln!(out, "    {w:>4.0}s windows: no samples");
            }
        }
        all_burning &= burning > 0;
    }
    all_burning
}

/// The SLO burn-rate digest: per-metric percentiles (from the same
/// log-linear histograms the reports use), total violations against the
/// trace's recorded targets, and multi-window burn rates. Absent when the
/// trace carries no [`Event::SloTargets`] (pre-span traces).
fn slo_digest(records: &[TraceRecord]) -> String {
    let Some((ttft_target, tpot_target)) = records.iter().find_map(|r| match r.event {
        Event::SloTargets {
            ttft_secs,
            tpot_secs,
        } => Some((ttft_secs, tpot_secs)),
        _ => None,
    }) else {
        return String::new();
    };
    let mut ttft: Vec<(f64, f64)> = Vec::new();
    let mut tpot: Vec<(f64, f64)> = Vec::new();
    for r in records {
        if let Event::RequestFinished {
            generated,
            mean_tpot_secs,
            ttft_secs,
            ..
        } = r.event
        {
            ttft.push((secs(r.at), ttft_secs));
            if generated > 0 {
                tpot.push((secs(r.at), mean_tpot_secs));
            }
        }
    }
    let mut out = format!(
        "\nSLO burn-rate digest (error budget {:.1}% of requests):\n",
        ERROR_BUDGET * 100.0
    );
    if ttft.is_empty() {
        out.push_str("  no finished requests in trace\n");
        return out;
    }
    let mut alerts = Vec::new();
    for (name, target, samples) in [
        ("TTFT", ttft_target, &ttft),
        ("TPOT (per-request mean)", tpot_target, &tpot),
    ] {
        if samples.is_empty() {
            let _ = writeln!(out, "  {name} (target {target:.3}s): no samples");
            continue;
        }
        let hist: LogHistogram = samples.iter().map(|&(_, v)| v).collect();
        let bad = samples.iter().filter(|&&(_, v)| v > target).count();
        let _ = writeln!(
            out,
            "  {name} (target {target:.3}s): {} requests, p50 {:.3}s p99 {:.3}s, \
             violations {bad} ({:.1}%)",
            hist.count(),
            hist.quantile(0.5),
            hist.quantile(0.99),
            bad as f64 / samples.len() as f64 * 100.0
        );
        if burn_lines(&mut out, samples, target) {
            alerts.push(name);
        }
    }
    let _ = match alerts.as_slice() {
        [] => writeln!(out, "  alert: none (no metric burns in both windows)"),
        names => writeln!(
            out,
            "  alert: PAGE — {} burning in both the {:.0}s and {:.0}s windows",
            names.join(" and "),
            BURN_WINDOWS[0],
            BURN_WINDOWS[1]
        ),
    };
    out
}

/// How many child spans the drill-down prints before eliding.
const DRILLDOWN_CHILD_CAP: usize = 6;

/// Finds the worst-TTFT request in the trace and walks its lifecycle span:
/// open/close interval, nested prefill steps, and the decode iterations
/// that overlapped it on the same track. Absent when the trace carries no
/// spans for the worst request (pre-span traces).
fn worst_request_drilldown(records: &[TraceRecord]) -> String {
    let worst = records
        .iter()
        .filter_map(|r| match r.event {
            Event::RequestFinished { id, ttft_secs, .. } => Some((id, ttft_secs)),
            _ => None,
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
    let Some((id, ttft)) = worst else {
        return String::new();
    };
    let Ok(forest) = collect_spans(records) else {
        return String::new();
    };
    let span_id = SpanId::derive(SpanKind::RequestLifecycle, id).0;
    let Some(node) = forest
        .nodes
        .iter()
        .find(|n| n.id == span_id && n.kind == SpanKind::RequestLifecycle)
    else {
        return String::new();
    };
    let mut out = format!(
        "\nworst-TTFT request drill-down (request {id}, TTFT {ttft:.3}s, track {:?}):\n",
        node.track
    );
    let _ = writeln!(
        out,
        "  lifecycle t={:.3}s .. t={:.3}s ({:.3}s, {} child span(s))",
        secs(node.open),
        secs(node.close),
        node.duration_secs(),
        node.children.len()
    );
    for &c in node.children.iter().take(DRILLDOWN_CHILD_CAP) {
        let child = &forest.nodes[c];
        let _ = writeln!(
            out,
            "    {} t={:.3}s .. t={:.3}s ({:.4}s)",
            child.label,
            secs(child.open),
            secs(child.close),
            child.duration_secs()
        );
    }
    if node.children.len() > DRILLDOWN_CHILD_CAP {
        let _ = writeln!(
            out,
            "    … {} more elided",
            node.children.len() - DRILLDOWN_CHILD_CAP
        );
    }
    let decode_overlap = forest
        .of_kind(SpanKind::DecodeIteration)
        .filter(|d| d.track == node.track && d.open < node.close && d.close > node.open)
        .count();
    let _ = writeln!(
        out,
        "  decode iterations overlapping on this track: {decode_overlap}"
    );
    out
}

/// Aggregate attribution over `AttributionSample` events: total time share
/// per cause across every sampled region, plus the dominant loss. Absent
/// when the trace carries no samples (pre-ledger traces).
fn attribution_stats(records: &[TraceRecord]) -> String {
    use aum_sim::attrib::CauseVec;

    let mut total = CauseVec::zero();
    let mut samples = 0usize;
    for r in records {
        if let Event::AttributionSample { time, .. } = &r.event {
            total.accumulate(time);
            samples += 1;
        }
    }
    if samples == 0 {
        return String::new();
    }
    let sum = total.sum();
    let mut out = String::from("\nattribution (time share across sampled regions):\n");
    let mut shares: Vec<_> = total.iter().filter(|(_, v)| *v > 0.0).collect();
    shares.sort_by(|a, b| b.1.total_cmp(&a.1));
    let line = shares
        .iter()
        .map(|(c, v)| {
            format!(
                "{} {:.1}%",
                c.label(),
                v / sum.max(f64::MIN_POSITIVE) * 100.0
            )
        })
        .collect::<Vec<_>>()
        .join(" | ");
    let _ = writeln!(out, "  {samples} samples: {line}");
    if let Some((cause, v)) = total.dominant_loss(sum) {
        let _ = writeln!(
            out,
            "  dominant loss: {} ({:.1}% of attributed time)",
            cause.label(),
            v / sum.max(f64::MIN_POSITIVE) * 100.0
        );
    }
    out
}

/// Per-event-type counts, alphabetical by label.
fn event_counts(records: &[TraceRecord]) -> String {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in records {
        *counts.entry(r.event.kind_label()).or_insert(0) += 1;
    }
    let mut out = String::from("\nevent counts:\n");
    let width = counts.keys().map(|k| k.len()).max().unwrap_or(0);
    for (label, n) in &counts {
        let _ = writeln!(out, "  {label:width$}  {n}");
    }
    out
}

/// Aggregate statistics over `ControllerDecision` events.
fn decision_stats(records: &[TraceRecord]) -> String {
    let mut total = 0usize;
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut collisions = 0usize;
    let mut violating = 0usize;
    let mut lag_sum = 0.0f64;
    let mut dev_sum = 0.0f64;
    let mut breach_by_metric: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in records {
        match &r.event {
            Event::ControllerDecision {
                kind,
                verdict,
                lag_secs,
                deviation,
                collision,
                ..
            } => {
                total += 1;
                *by_kind.entry(kind_name(*kind)).or_insert(0) += 1;
                collisions += usize::from(*collision);
                violating += usize::from(*verdict == SlackVerdict::Violating);
                lag_sum += lag_secs;
                dev_sum += deviation;
            }
            Event::SloBreach { metric, .. } => {
                *breach_by_metric.entry(metric_name(*metric)).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    let mut out = String::from("\ncontroller decisions:\n");
    if total == 0 {
        out.push_str("  none recorded\n");
    } else {
        let kinds = by_kind
            .iter()
            .map(|(k, n)| format!("{k} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  total {total}  ({kinds})");
        let _ = writeln!(
            out,
            "  verdicts: meeting {}  violating {violating}  collisions {collisions}",
            total - violating
        );
        let n = total as f64;
        let _ = writeln!(
            out,
            "  mean LAG slack {:+.3}s  mean \u{3b4}_AU {:.2}",
            lag_sum / n,
            dev_sum / n
        );
    }
    if !breach_by_metric.is_empty() {
        let breaches = breach_by_metric
            .iter()
            .map(|(m, n)| format!("{m} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  SLO breach intervals: {breaches}");
    }
    out
}

/// One rendered timeline entry.
fn entry_line(at: SimTime, body: &str) -> String {
    format!("  t={:8.1}s  {body}\n", secs(at))
}

/// The causal timeline: controller decisions annotated with the breach
/// pressure that preceded them and how long breaches persisted afterwards,
/// interleaved with platform events (frequency, thermal, RDT moves) and a
/// collapsed profiler line.
fn timeline(records: &[TraceRecord]) -> String {
    let mut entries: Vec<String> = Vec::new();

    // Collapse profiler progress to a single line.
    let profiler: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| matches!(r.event, Event::ProfilerProgress { .. }))
        .collect();
    if let Some(last) = profiler.last() {
        if let Event::ProfilerProgress {
            completed, total, ..
        } = last.event
        {
            entries.push(entry_line(
                last.at,
                &format!("profiler swept {completed}/{total} grid cells (offline)"),
            ));
        }
    }

    // Breach timestamps drive the "recovered" annotations.
    let breaches: Vec<(SimTime, SloMetric, f64, f64)> = records
        .iter()
        .filter_map(|r| match r.event {
            Event::SloBreach {
                metric,
                observed_secs,
                budget_secs,
            } => Some((r.at, metric, observed_secs, budget_secs)),
            _ => None,
        })
        .collect();

    let mut prev_decision_at = SimTime::ZERO;
    for r in records {
        match &r.event {
            Event::FreqTransition {
                region,
                from_ghz,
                to_ghz,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!("freq[{region:?}] {from_ghz:.2} \u{2192} {to_ghz:.2} GHz"),
                ));
            }
            Event::ThermalThrottle { region, drop_ghz } => {
                entries.push(entry_line(
                    r.at,
                    &format!("thermal throttle[{region:?}] -{drop_ghz:.2} GHz"),
                ));
            }
            Event::RdtReallocation {
                llc_ways_from,
                llc_ways_to,
                mem_bw_from,
                mem_bw_to,
                ..
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!(
                        "RDT move: LLC {llc_ways_from}\u{2192}{llc_ways_to} ways, \
                         mem-bw {:.0}%\u{2192}{:.0}%",
                        mem_bw_from * 100.0,
                        mem_bw_to * 100.0
                    ),
                ));
            }
            Event::FaultInjected { kind, detail } => {
                entries.push(entry_line(
                    r.at,
                    &format!("FAULT injected: {kind} ({detail})"),
                ));
            }
            Event::FaultRecovered { kind } => {
                entries.push(entry_line(r.at, &format!("FAULT recovered: {kind}")));
            }
            Event::FaultOutsideWindow {
                kind,
                at_secs,
                duration_secs,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!(
                        "WARNING: fault {kind} scheduled at t={at_secs:.1}s \
                         never fires (run ends at {duration_secs:.1}s)"
                    ),
                ));
            }
            Event::NodeFault {
                node,
                kind,
                detail,
                active,
            } => {
                let verb = if *active { "struck" } else { "recovered" };
                entries.push(entry_line(
                    r.at,
                    &format!("NODE FAULT {verb}: node {node} {kind} ({detail})"),
                ));
            }
            Event::NodeHealthTransition {
                node,
                from,
                to,
                reason,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!("node {node} health {from:?} \u{2192} {to:?}: {reason}"),
                ));
            }
            Event::RequestRedispatch {
                node,
                count,
                attempt,
                backoff_epochs,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!(
                        "re-dispatch: {count} stranded on node {node}, \
                         attempt {attempt} after {backoff_epochs}-epoch backoff"
                    ),
                ));
            }
            Event::LoadShed {
                class,
                count,
                epoch,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!("load shed: {count} {class} request(s) at epoch {epoch}"),
                ));
            }
            Event::SensorRejected {
                sensor,
                observed,
                substituted,
                reason,
            } => {
                entries.push(entry_line(
                    r.at,
                    &format!(
                        "sensor distrust[{sensor}]: {observed:.4} rejected ({reason}), \
                         using {substituted:.4}"
                    ),
                ));
            }
            Event::SafeModeTransition { from, to, reason } => {
                entries.push(entry_line(
                    r.at,
                    &format!("resilience {from:?} \u{2192} {to:?}: {reason}"),
                ));
            }
            Event::ControllerDecision {
                action,
                verdict,
                reason,
                ..
            } => {
                let since_prev = breaches
                    .iter()
                    .filter(|(t, ..)| *t > prev_decision_at && *t <= r.at)
                    .count();
                let pressure = if since_prev > 0 {
                    format!(" [{since_prev} breach intervals led here]")
                } else {
                    String::new()
                };
                let mut body = format!("{reason} \u{2192} {action}{pressure}");
                if *verdict == SlackVerdict::Violating {
                    body.push_str(&recovery_note(&breaches, r.at, records));
                }
                entries.push(entry_line(r.at, &body));
                prev_decision_at = r.at;
            }
            _ => {}
        }
    }

    let mut out = String::from("\ncausal timeline:\n");
    if entries.is_empty() {
        out.push_str("  no controller or platform events recorded\n");
        return out;
    }
    if entries.len() > TIMELINE_CAP {
        let head = TIMELINE_CAP * 2 / 3;
        let tail = TIMELINE_CAP - head;
        for e in &entries[..head] {
            out.push_str(e);
        }
        let _ = writeln!(
            out,
            "  ... ({} entries elided) ...",
            entries.len() - TIMELINE_CAP
        );
        for e in &entries[entries.len() - tail..] {
            out.push_str(e);
        }
    } else {
        for e in &entries {
            out.push_str(e);
        }
    }
    out
}

/// How long SLO breaches persisted after a violating decision at `at`.
fn recovery_note(
    breaches: &[(SimTime, SloMetric, f64, f64)],
    at: SimTime,
    records: &[TraceRecord],
) -> String {
    let next_decision_at = records
        .iter()
        .find(|r| r.at > at && matches!(r.event, Event::ControllerDecision { .. }))
        .map(|r| r.at);
    let window_end = next_decision_at.unwrap_or(SimTime::MAX);
    let last_breach_in_window = breaches.iter().rfind(|(t, ..)| *t > at && *t <= window_end);
    match last_breach_in_window {
        None => " \u{2014} no further breaches before next decision".to_owned(),
        Some((t, ..)) => format!(
            " \u{2014} breaches persisted {:.1}s after the action",
            secs(*t) - secs(at)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum_sim::SimDuration;

    fn rec(at_secs: f64, event: Event) -> TraceRecord {
        TraceRecord {
            at: SimTime::ZERO + SimDuration::from_secs_f64(at_secs),
            event,
        }
    }

    #[test]
    fn summary_contains_counts_stats_and_timeline() {
        let records = vec![
            rec(
                0.5,
                Event::SloBreach {
                    metric: SloMetric::Tpot,
                    observed_secs: 0.142,
                    budget_secs: 0.120,
                },
            ),
            rec(
                1.0,
                Event::ControllerDecision {
                    kind: DecisionKind::Return,
                    action: "Return(cfg 3\u{2192}2)".into(),
                    verdict: SlackVerdict::Violating,
                    lag_secs: -0.02,
                    deviation: 1.1,
                    collision: false,
                    reason: "TPOT p50 0.142s > SLO_L 0.120s".into(),
                },
            ),
            rec(
                1.5,
                Event::SloBreach {
                    metric: SloMetric::Tpot,
                    observed_secs: 0.131,
                    budget_secs: 0.120,
                },
            ),
            rec(
                3.0,
                Event::ControllerDecision {
                    kind: DecisionKind::Harvest,
                    action: "Harvest(cfg 2\u{2192}3)".into(),
                    verdict: SlackVerdict::Meeting,
                    lag_secs: 0.4,
                    deviation: 0.3,
                    collision: false,
                    reason: "slack positive".into(),
                },
            ),
        ];
        let s = summarize(&records);
        assert!(s.contains("event counts"), "{s}");
        assert!(s.contains("ControllerDecision  2"), "{s}");
        assert!(s.contains("total 2  (harvest 1, return 1)"), "{s}");
        assert!(s.contains("SLO breach intervals: TPOT 2"), "{s}");
        assert!(s.contains("TPOT p50 0.142s > SLO_L 0.120s"), "{s}");
        assert!(s.contains("1 breach intervals led here"), "{s}");
        assert!(s.contains("breaches persisted 0.5s"), "{s}");
    }

    #[test]
    fn empty_trace_is_reported_not_crashed() {
        assert!(summarize(&[]).contains("empty trace"));
    }

    #[test]
    fn attribution_samples_get_their_own_section() {
        use aum_sim::attrib::{Cause, CauseVec, Region};
        let mut time = CauseVec::zero();
        time.add(Cause::Compute, 0.3);
        time.add(Cause::MemDram, 0.2);
        let records = vec![rec(
            0.5,
            Event::AttributionSample {
                region: Region::AuLow,
                dt_secs: 0.5,
                time,
                energy: time,
            },
        )];
        let s = summarize(&records);
        assert!(s.contains("attribution (time share"), "{s}");
        assert!(s.contains("compute 60.0%"), "{s}");
        assert!(s.contains("dominant loss: mem-dram (40.0%"), "{s}");
        // Traces without samples omit the section entirely.
        assert!(!summarize(&[rec(
            1.0,
            Event::RequestFinished {
                id: 1,
                generated: 1,
                mean_tpot_secs: 0.01,
                ttft_secs: 0.2,
            }
        )])
        .contains("attribution"));
    }

    #[test]
    fn slo_digest_reports_burn_rates_and_page_alert() {
        let mut records = vec![rec(
            0.0,
            Event::SloTargets {
                ttft_secs: 0.5,
                tpot_secs: 0.1,
            },
        )];
        // 20 requests over 100 s; every fifth TTFT violates (20% ≫ the 1%
        // budget, so every occupied window burns in both lengths).
        for i in 0..20u64 {
            records.push(rec(
                i as f64 * 5.0,
                Event::RequestFinished {
                    id: i,
                    generated: 10,
                    mean_tpot_secs: 0.05,
                    ttft_secs: if i % 5 == 0 { 1.2 } else { 0.2 },
                },
            ));
        }
        let s = summarize(&records);
        assert!(s.contains("SLO burn-rate digest"), "{s}");
        assert!(s.contains("TTFT (target 0.500s): 20 requests"), "{s}");
        assert!(s.contains("violations 4 (20.0%)"), "{s}");
        assert!(s.contains("10s windows:"), "{s}");
        assert!(s.contains("60s windows:"), "{s}");
        assert!(s.contains("alert: PAGE"), "{s}");
        assert!(s.contains("TTFT burning in both"), "{s}");
    }

    #[test]
    fn digest_without_targets_or_violations_stays_quiet() {
        // No SloTargets event → no digest section at all.
        let s = summarize(&[rec(
            1.0,
            Event::RequestFinished {
                id: 1,
                generated: 5,
                mean_tpot_secs: 0.01,
                ttft_secs: 0.1,
            },
        )]);
        assert!(!s.contains("burn-rate digest"), "{s}");
        // Targets present, nothing violating → digest renders, alert none.
        let s = summarize(&[
            rec(
                0.0,
                Event::SloTargets {
                    ttft_secs: 3.0,
                    tpot_secs: 0.12,
                },
            ),
            rec(
                1.0,
                Event::RequestFinished {
                    id: 1,
                    generated: 5,
                    mean_tpot_secs: 0.01,
                    ttft_secs: 0.1,
                },
            ),
        ]);
        assert!(s.contains("burn-rate digest"), "{s}");
        assert!(s.contains("violations 0 (0.0%)"), "{s}");
        assert!(s.contains("alert: none"), "{s}");
    }

    #[test]
    fn worst_ttft_request_gets_a_span_drilldown() {
        let req = |id: u64| SpanId::derive(SpanKind::RequestLifecycle, id);
        let pre = SpanId::derive(SpanKind::Prefill, 0);
        let span_open = |id: SpanId, parent: Option<SpanId>, kind: SpanKind, at: f64| {
            rec(
                at,
                Event::SpanOpen {
                    id: id.0,
                    parent: parent.map(|p| p.0),
                    kind,
                    track: "cell".to_string(),
                    label: match kind {
                        SpanKind::Prefill => "prefill 0".to_string(),
                        _ => format!("req {}", id.payload()),
                    },
                },
            )
        };
        let span_close = |id: SpanId, kind: SpanKind, at: f64| {
            rec(
                at,
                Event::SpanClose {
                    id: id.0,
                    kind,
                    track: "cell".to_string(),
                },
            )
        };
        let records = vec![
            span_open(req(3), None, SpanKind::RequestLifecycle, 0.0),
            span_open(req(9), None, SpanKind::RequestLifecycle, 0.5),
            span_open(pre, Some(req(9)), SpanKind::Prefill, 1.0),
            span_close(pre, SpanKind::Prefill, 1.4),
            rec(
                2.0,
                Event::RequestFinished {
                    id: 3,
                    generated: 4,
                    mean_tpot_secs: 0.02,
                    ttft_secs: 0.3,
                },
            ),
            span_close(req(3), SpanKind::RequestLifecycle, 2.0),
            rec(
                4.0,
                Event::RequestFinished {
                    id: 9,
                    generated: 4,
                    mean_tpot_secs: 0.02,
                    ttft_secs: 0.9,
                },
            ),
            span_close(req(9), SpanKind::RequestLifecycle, 4.0),
        ];
        let s = summarize(&records);
        assert!(
            s.contains("worst-TTFT request drill-down (request 9, TTFT 0.900s"),
            "{s}"
        );
        assert!(s.contains("lifecycle t=0.500s .. t=4.000s"), "{s}");
        assert!(s.contains("prefill 0 t=1.000s"), "{s}");
    }

    #[test]
    fn fleet_events_get_a_health_digest() {
        use std::sync::Arc;
        let snapshot = MetricsSnapshot {
            at: SimTime::ZERO + SimDuration::from_secs_f64(32.0),
            counters: Arc::new([("redispatched".to_string(), 52u64)].into_iter().collect()),
            gauges: Arc::new(std::collections::BTreeMap::new()),
        };
        let records = vec![
            rec(
                30.0,
                Event::NodeHealthTransition {
                    node: 0,
                    from: NodeHealth::Healthy,
                    to: NodeHealth::Suspect,
                    reason: "1 missed heartbeat(s)".into(),
                },
            ),
            rec(
                32.0,
                Event::NodeHealthTransition {
                    node: 0,
                    from: NodeHealth::Suspect,
                    to: NodeHealth::Down,
                    reason: "3 missed heartbeats".into(),
                },
            ),
            rec(
                30.0,
                Event::RequestRedispatch {
                    node: 0,
                    count: 40,
                    attempt: 2,
                    backoff_epochs: 1,
                },
            ),
            rec(
                31.0,
                Event::RequestRedispatch {
                    node: 0,
                    count: 12,
                    attempt: 3,
                    backoff_epochs: 2,
                },
            ),
            rec(
                33.0,
                Event::LoadShed {
                    class: "best-effort".into(),
                    count: 9,
                    epoch: 33,
                },
            ),
            rec(
                32.0,
                Event::NodeMetricsSnapshot {
                    node: 0,
                    label: "node0/GenA-SPR-HBM".into(),
                    snapshot,
                },
            ),
        ];
        let s = summarize(&records);
        assert!(s.contains("fleet health digest"), "{s}");
        assert!(s.contains("node 0: 2 transition(s)"), "{s}");
        assert!(s.contains("Healthy\u{2192}Suspect"), "{s}");
        assert!(
            s.contains(
                "hop-chain depth distribution (52 stranded dispatches, deepest chain \
                 attempt 3)"
            ),
            "{s}"
        );
        assert!(s.contains("attempt 2: 40 request(s)"), "{s}");
        assert!(s.contains("shed by class: 9 total (best-effort 9)"), "{s}");
        assert!(
            s.contains(
                "worst-node drill-down: node 0 (52 stranded request(s), 1 Down transition(s))"
            ),
            "{s}"
        );
        assert!(
            s.contains("last snapshot [node0/GenA-SPR-HBM] at t=32s: redispatched 52"),
            "{s}"
        );
        // Traces without fleet events omit the section entirely.
        let plain = summarize(&[rec(
            1.0,
            Event::RequestFinished {
                id: 1,
                generated: 1,
                mean_tpot_secs: 0.01,
                ttft_secs: 0.1,
            },
        )]);
        assert!(!plain.contains("fleet health digest"), "{plain}");
    }

    #[test]
    fn violating_decision_with_clean_aftermath_notes_recovery() {
        let records = vec![
            rec(
                1.0,
                Event::ControllerDecision {
                    kind: DecisionKind::Switch,
                    action: "Switch(div 0\u{2192}1)".into(),
                    verdict: SlackVerdict::Violating,
                    lag_secs: -0.1,
                    deviation: 2.5,
                    collision: true,
                    reason: "collision: tuning deemed insufficient".into(),
                },
            ),
            rec(
                2.0,
                Event::RequestFinished {
                    id: 7,
                    generated: 12,
                    mean_tpot_secs: 0.05,
                    ttft_secs: 0.3,
                },
            ),
        ];
        let s = summarize(&records);
        assert!(s.contains("no further breaches"), "{s}");
        assert!(s.contains("collisions 1"), "{s}");
    }
}
