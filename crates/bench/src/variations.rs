//! AUV characterization experiments: Fig 6 (frequency), Fig 7 (top-down),
//! Fig 8 (backend decomposition).

use aum_au::topdown::{signature, SignatureKind};
use aum_platform::power::ActivityClass;
use aum_platform::spec::PlatformSpec;
use aum_platform::state::{PlatformSim, RegionLoad};
use aum_platform::topology::AuUsageLevel;
use aum_platform::units::GbPerSec;
use aum_sim::report::TextTable;
use aum_sim::time::SimDuration;
use aum_workloads::be::{BeKind, BeProfile};

/// Fig 6a: frequency of AU cores vs AU core count, with and without power
/// stressors on the remaining cores; Fig 6b: average frequency of shared
/// cores vs sharing pressure for three application types.
#[must_use]
pub fn fig6() -> String {
    let spec = PlatformSpec::gen_a();
    let mut out = String::from("Fig 6a: frequency reduction due to AU utilization (GenA)\n");
    let mut t = TextTable::new([
        "AU cores",
        "prefill GHz",
        "prefill+stress GHz",
        "decode GHz",
        "decode+stress GHz",
        "idle-rest GHz",
    ]);
    for au_cores in [8usize, 16, 24, 32, 48, 64, 96] {
        let rest = 96 - au_cores;
        let run = |class: ActivityClass, level: AuUsageLevel, stress: bool| -> (f64, f64) {
            let mut sim = PlatformSim::new(spec.clone());
            let mut loads = vec![RegionLoad {
                level,
                cores: au_cores,
                class,
                duty: 1.0,
                bw_demand: GbPerSec(if class == ActivityClass::Amx {
                    60.0
                } else {
                    180.0
                }),
                bw_cap: 1.0,
                smt_sibling: None,
            }];
            if stress && rest > 0 {
                loads.push(RegionLoad::new(
                    AuUsageLevel::None,
                    rest,
                    ActivityClass::ScalarCompute,
                    1.0,
                    GbPerSec(4.0),
                ));
            } else if rest > 0 {
                loads.push(RegionLoad::idle(AuUsageLevel::None, rest));
            }
            let mut snap = sim.step(SimDuration::from_millis(500), &loads);
            for _ in 0..20 {
                snap = sim.step(SimDuration::from_millis(500), &loads);
            }
            let rest_freq = if rest > 0 {
                snap.freqs[1].value()
            } else {
                f64::NAN
            };
            (snap.freqs[0].value(), rest_freq)
        };
        let (prefill, idle_rest) = run(ActivityClass::Amx, AuUsageLevel::High, false);
        let (prefill_s, _) = run(ActivityClass::Amx, AuUsageLevel::High, true);
        let (decode, _) = run(ActivityClass::Avx, AuUsageLevel::Low, false);
        let (decode_s, _) = run(ActivityClass::Avx, AuUsageLevel::Low, true);
        t.row([
            au_cores.to_string(),
            format!("{prefill:.2}"),
            format!("{prefill_s:.2}"),
            format!("{decode:.2}"),
            format!("{decode_s:.2}"),
            if idle_rest.is_nan() {
                "-".into()
            } else {
                format!("{idle_rest:.2}")
            },
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFig 6b: average frequency of shared cores vs sharing pressure\n");
    out.push_str("(decode on the remaining cores; abrupt drops on clustered shared cores come from heat accumulation)\n");
    let mut t = TextTable::new(["shared cores", "Compute GHz", "OLAP GHz", "OLTP(jbb) GHz"]);
    for shared in [12usize, 24, 36, 48] {
        let mut cells = vec![shared.to_string()];
        for be in [BeKind::Compute, BeKind::Olap, BeKind::SpecJbb] {
            let p = BeProfile::of(be);
            let mut sim = PlatformSim::new(spec.clone());
            let loads = [
                RegionLoad {
                    level: AuUsageLevel::Low,
                    cores: 96 - shared,
                    class: ActivityClass::Avx,
                    duty: 0.9,
                    bw_demand: GbPerSec(170.0),
                    bw_cap: 1.0,
                    smt_sibling: None,
                },
                RegionLoad {
                    level: AuUsageLevel::None,
                    cores: shared,
                    class: p.activity,
                    duty: 1.0,
                    bw_demand: p.bw_demand(&spec, shared, 8),
                    bw_cap: 1.0,
                    smt_sibling: None,
                },
            ];
            // Let the thermal reservoir settle (the Fig 6b effect is
            // time-accumulated).
            let mut freq_sum = 0.0;
            let mut n = 0.0;
            for step in 0..120 {
                let snap = sim.step(SimDuration::from_millis(500), &loads);
                if step >= 60 {
                    freq_sum += snap.freqs[1].value();
                    n += 1.0;
                }
            }
            cells.push(format!("{:.2}", freq_sum / n));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}

/// Fig 7: top-down cycle distributions of AU and non-AU applications on
/// the three platforms.
#[must_use]
pub fn fig7() -> String {
    let mut out =
        String::from("Fig 7: cycle distributions (retiring / bad-spec / frontend / backend, %)\n");
    for spec in PlatformSpec::presets() {
        let mut t = TextTable::new(["workload", "retiring", "bad spec", "frontend", "backend"]);
        for kind in [
            SignatureKind::Mcf,
            SignatureKind::Ads,
            SignatureKind::Gemm,
            SignatureKind::Prefill,
            SignatureKind::Decode,
        ] {
            let s = signature(kind, &spec);
            t.row([
                kind.to_string(),
                format!("{:.1}", s.cycles.retiring * 100.0),
                format!("{:.1}", s.cycles.bad_speculation * 100.0),
                format!("{:.1}", s.cycles.frontend_bound * 100.0),
                format!("{:.1}", s.cycles.backend_bound * 100.0),
            ]);
        }
        out.push_str(&format!("\n[{}]\n{}", spec.name, t.render()));
    }
    out
}

/// Fig 8: decomposed backend demands of the two phases on GenA.
#[must_use]
pub fn fig8() -> String {
    let spec = PlatformSpec::gen_a();
    let mut out = String::from("Fig 8a: core-bound breakdown (fraction of core-bound slots)\n");
    let mut t = TextTable::new(["phase", "serializing", "ports", "other"]);
    for kind in [SignatureKind::Prefill, SignatureKind::Decode] {
        let s = signature(kind, &spec);
        t.row([
            kind.to_string(),
            format!("{:.2}", s.core.serializing),
            format!("{:.2}", s.core.ports),
            format!("{:.2}", s.core.other),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nFig 8b: memory-bound breakdown (fraction of memory-bound slots)\n");
    let mut t = TextTable::new(["phase", "L1", "L2", "LLC", "DRAM"]);
    for kind in [SignatureKind::Prefill, SignatureKind::Decode] {
        let s = signature(kind, &spec);
        t.row([
            kind.to_string(),
            format!("{:.2}", s.memory.l1),
            format!("{:.2}", s.memory.l2),
            format!("{:.2}", s.memory.llc),
            format!("{:.2}", s.memory.dram),
        ]);
    }
    out.push_str(&t.render());
    out
}
