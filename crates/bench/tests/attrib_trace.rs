//! End-to-end attribution acceptance: same-seed traces self-diff to zero,
//! an injected bandwidth fault shifts attribution toward memory-bound
//! causes past the default regression threshold, and `repro attrib`
//! studies render conservation verdicts, blame lines and Prometheus
//! output.

use aum::baselines::RpAu;
use aum::experiment::{try_run_experiment_traced, ExperimentConfig, Fault, FaultEvent, FaultPlan};
use aum_bench::attribution::{run_study, trace_diff, DEFAULT_THRESHOLD_PP};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::telemetry::{Event, MemorySink, OrderingSink, TraceRecord, Tracer};
use aum_sim::SimDuration;
use aum_workloads::be::BeKind;

/// A short traced co-location under a model-free manager (no profiler
/// sweep), returning the full ordered record stream.
fn traced_run(fault: FaultPlan) -> Vec<TraceRecord> {
    let spec = PlatformSpec::gen_a();
    let mut cfg =
        ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, Some(BeKind::Olap));
    cfg.duration = SimDuration::from_secs(30);
    cfg.fault = fault;
    let mut mgr = RpAu::new(&spec);
    let (tracer, sink) = Tracer::shared(OrderingSink::new(MemorySink::new()));
    try_run_experiment_traced(&cfg, &mut mgr, tracer).expect("conservation must hold");
    let records = sink
        .lock()
        .expect("trace sink lock")
        .inner()
        .records()
        .to_vec();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, Event::AttributionSample { .. })),
        "traced run must emit attribution samples"
    );
    records
}

#[test]
fn same_seed_traces_diff_to_exactly_zero() {
    let a = traced_run(FaultPlan::none());
    let b = traced_run(FaultPlan::none());
    let diff = trace_diff(&a, &b, DEFAULT_THRESHOLD_PP).expect("diff aligns");
    assert!(
        !diff.regression,
        "same seed must not regress:\n{}",
        diff.text
    );
    assert!(diff.text.contains("verdict: OK"), "{}", diff.text);
    assert!(
        diff.text.contains("max |Δ| 0.00 pp"),
        "same-seed delta must be exactly zero:\n{}",
        diff.text
    );
}

#[test]
fn bandwidth_fault_shifts_attribution_toward_memory() {
    let healthy = traced_run(FaultPlan::none());
    let degraded = traced_run(FaultPlan::single(FaultEvent::permanent(
        5.0,
        Fault::BandwidthDegrade { frac: 0.3 },
    )));
    let diff = trace_diff(&healthy, &degraded, DEFAULT_THRESHOLD_PP).expect("diff aligns");
    assert!(
        diff.regression,
        "a 45% bandwidth loss must shift attribution past {DEFAULT_THRESHOLD_PP} pp:\n{}",
        diff.text
    );
    assert!(diff.text.contains("REGRESSION"), "{}", diff.text);
    // The flagged causes include a memory-bound one growing under the fault.
    let flagged_memory_growth = diff.text.lines().any(|l| {
        l.contains("**")
            && l.contains('+')
            && (l.contains("mem-dram") || l.contains("mem-llc") || l.contains("be-contention"))
    });
    assert!(
        flagged_memory_growth,
        "expected a positive memory-bound shift flagged:\n{}",
        diff.text
    );
}

#[test]
fn attrib_study_reports_conservation_blame_and_prometheus() {
    let report = run_study("fig14", true).expect("fig14 quick study runs");
    assert!(report.text.contains("conservation: OK"), "{}", report.text);
    assert!(report.text.contains("perf/W blame"), "{}", report.text);
    assert!(report.text.contains("SLO breach"), "{}", report.text);
    assert!(
        report.text.contains("time attribution") && report.text.contains("energy attribution"),
        "{}",
        report.text
    );
    for needle in [
        "aum_attrib_wall_seconds",
        "aum_attrib_energy_joules",
        "aum_attrib_seconds_total{region=\"au-low\"",
        "aum_attrib_joules_total{region=\"uncore\"",
        "# TYPE aum_attrib_seconds_total counter",
    ] {
        assert!(report.prom.contains(needle), "prom missing {needle}");
    }
}
