//! Parallel-determinism gate: `--jobs 1` and `--jobs 8` must produce
//! identical outcome metrics and byte-identical traces.
//!
//! One test function on purpose: the executor's worker-count override and
//! the harness tracer are process globals, so the serial-vs-parallel
//! comparisons must not interleave with each other. Integration tests run
//! in their own process, so the rest of the suite is unaffected.
//!
//! The grids run at reduced scale (smoke profiler, short experiment
//! durations) through the *same* code paths the paper-scale studies use —
//! `build_model_traced`, `evaluation::scheme_grid_hists`, `chaos::run_with`,
//! `cluster::run_cluster_with`, `fleetchaos::run_with` — so the gate
//! exercises the real cell dispatch, cache latching and ordered trace
//! merge, not a test-only replica.

use aum::profiler::{build_model_traced, ProfilerConfig};
use aum_bench::common::{install_tracer, ModelCache, Scheme};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::exec;
use aum_sim::flight::{FlightConfig, FlightRecorder};
use aum_sim::telemetry::{MemorySink, OrderingSink, Tracer};
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

/// Installs a fresh capture tracer as the harness tracer, runs `f`, and
/// returns (result, serialized trace lines). The tracer is flushed (the
/// ordering sink sorts by `(time, seq)`) before readback and a disabled
/// tracer is reinstalled afterwards.
fn with_captured_trace<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    let (tracer, sink) = Tracer::shared(OrderingSink::new(MemorySink::new()));
    install_tracer(tracer.clone());
    let result = f();
    tracer.flush();
    install_tracer(Tracer::disabled());
    let lines = sink
        .lock()
        .expect("capture sink lock")
        .inner()
        .records()
        .iter()
        .map(|r| serde_json::to_string(r).expect("record serializes"))
        .collect();
    (result, lines)
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let spec = PlatformSpec::gen_a();

    // --- Profiler grid: identical buckets, byte-identical trace. ---
    let profile = |jobs: usize| {
        exec::set_jobs(jobs);
        let cfg = ProfilerConfig::smoke(spec.clone(), Scenario::Chatbot, BeKind::SpecJbb);
        let out =
            with_captured_trace(|| build_model_traced(&cfg, aum_bench::common::harness_tracer()));
        exec::set_jobs(0);
        out
    };
    let (model_serial, trace_serial) = profile(1);
    let (model_parallel, trace_parallel) = profile(8);
    assert_eq!(
        model_serial, model_parallel,
        "profiler buckets must not depend on the worker count"
    );
    assert!(
        !trace_serial.is_empty(),
        "profiler sweep must emit progress events"
    );
    assert_eq!(
        trace_serial, trace_parallel,
        "profiler trace must be byte-identical at jobs 1 vs 8"
    );

    // --- Fig 14 grid shape (reduced scale): identical Outcome metrics,
    // byte-identical trace, and byte-identical merged latency histograms.
    // Same scheme_grid_hists code path as the paper run; the smoke-profile
    // cache and 30 s cells keep debug runtime sane. ---
    let fig14_grid = |jobs: usize| {
        exec::set_jobs(jobs);
        let cache = ModelCache::with_profile(ProfilerConfig::smoke);
        let out = with_captured_trace(|| {
            let (grid, hists) = aum_bench::evaluation::scheme_grid_hists(
                &spec,
                &[Scenario::Chatbot],
                &[BeKind::SpecJbb],
                &Scheme::ALL,
                Some(SimDuration::from_secs(30)),
                &cache,
            );
            let outcomes = grid
                .iter()
                .map(|o| serde_json::to_string(o).expect("outcome serializes"))
                .collect::<Vec<_>>();
            let hist_state = hists
                .iter()
                .map(|(name, h)| {
                    format!(
                        "{name}: {} p99={}",
                        serde_json::to_string(h).expect("hist serializes"),
                        h.quantile(0.99).to_bits()
                    )
                })
                .collect::<Vec<_>>();
            (outcomes, hist_state)
        });
        exec::set_jobs(0);
        out
    };
    let ((outcomes_serial, hists_serial), fig14_trace_serial) = fig14_grid(1);
    let ((outcomes_parallel, hists_parallel), fig14_trace_parallel) = fig14_grid(8);
    assert_eq!(outcomes_serial.len(), Scheme::ALL.len());
    assert_eq!(
        outcomes_serial, outcomes_parallel,
        "scheme-grid outcomes must not depend on the worker count"
    );
    assert!(
        hists_serial.iter().any(|h| h.contains("ttft_seconds")),
        "grid must merge a TTFT histogram: {hists_serial:?}"
    );
    assert_eq!(
        hists_serial, hists_parallel,
        "merged histogram state and p99 must be byte-identical at jobs 1 vs 8"
    );
    assert!(
        !fig14_trace_serial.is_empty(),
        "the AUM cell and profiler must emit trace events"
    );
    assert_eq!(
        fig14_trace_serial, fig14_trace_parallel,
        "fig14-grid trace must be byte-identical at jobs 1 vs 8"
    );

    // --- Chaos quick matrix: identical report text, byte-identical trace,
    // and the trace-diff zero gate between the two runs. ---
    let chaos = |jobs: usize| {
        exec::set_jobs(jobs);
        let cache = ModelCache::with_profile(ProfilerConfig::smoke);
        let out = with_captured_trace(|| aum_bench::chaos::run_with(true, &cache));
        exec::set_jobs(0);
        out
    };
    let (chaos_serial, chaos_trace_serial) = chaos(1);
    let (chaos_parallel, chaos_trace_parallel) = chaos(8);
    assert!(!chaos_serial.degenerate, "{}", chaos_serial.text);
    assert_eq!(
        chaos_serial.text, chaos_parallel.text,
        "chaos report must not depend on the worker count"
    );
    assert_eq!(
        chaos_trace_serial, chaos_trace_parallel,
        "chaos trace must be byte-identical at jobs 1 vs 8"
    );

    // --- Cluster fan-out (reduced scale): identical ClusterOutcome and
    // byte-identical merged per-server trace. PR 4 gated profiler/fig14/
    // chaos but never the cluster path. ---
    let cluster = |jobs: usize| {
        exec::set_jobs(jobs);
        let cache = ModelCache::with_profile(ProfilerConfig::smoke);
        let mut cfg = aum::cluster::ClusterConfig::heterogeneous_demo(Scenario::Chatbot);
        cfg.duration = SimDuration::from_secs(20);
        let models: Vec<aum::profiler::AuvModel> = cfg
            .servers
            .iter()
            .map(|s| {
                (*cache.model(&s.platform, cfg.scenario, s.be.unwrap_or(BeKind::SpecJbb))).clone()
            })
            .collect();
        let out = with_captured_trace(|| {
            let outcome = aum::cluster::run_cluster_with(
                &cfg,
                aum::cluster::RoutingPolicy::AuvWeighted,
                &models,
                &aum_bench::common::harness_tracer(),
            );
            serde_json::to_string(&outcome).expect("cluster outcome serializes")
        });
        exec::set_jobs(0);
        out
    };
    let (cluster_serial, cluster_trace_serial) = cluster(1);
    let (cluster_parallel, cluster_trace_parallel) = cluster(8);
    assert_eq!(
        cluster_serial, cluster_parallel,
        "cluster outcome must not depend on the worker count"
    );
    assert!(
        !cluster_trace_serial.is_empty(),
        "per-server cells must emit trace events"
    );
    assert_eq!(
        cluster_trace_serial, cluster_trace_parallel,
        "cluster trace must be byte-identical at jobs 1 vs 8"
    );

    // --- Fleet-chaos quick matrix: identical report text, byte-identical
    // trace (health transitions, re-dispatches, sheds all ride the
    // canonical cell-merge order). ---
    let fleet = |jobs: usize| {
        exec::set_jobs(jobs);
        let cache = ModelCache::with_profile(ProfilerConfig::smoke);
        let out = with_captured_trace(|| aum_bench::fleetchaos::run_with(true, &cache));
        exec::set_jobs(0);
        out
    };
    let (fleet_serial, fleet_trace_serial) = fleet(1);
    let (fleet_parallel, fleet_trace_parallel) = fleet(8);
    assert!(!fleet_serial.degenerate, "{}", fleet_serial.text);
    assert_eq!(
        fleet_serial.text, fleet_parallel.text,
        "fleet-chaos report must not depend on the worker count"
    );
    assert!(
        fleet_trace_serial
            .iter()
            .any(|l| l.contains("NodeHealthTransition")),
        "fleet-chaos trace must carry health transitions"
    );
    // The fleet observability streams — epoch spans, per-node health
    // episodes, redispatch hop chains, and per-node metric snapshots — must
    // all be present and covered by the byte-identity gate below.
    for marker in [
        "\"FleetEpoch\"",
        "\"NodeHealthEpisode\"",
        "\"RedispatchHop\"",
        "NodeMetricsSnapshot",
    ] {
        assert!(
            fleet_trace_serial.iter().any(|l| l.contains(marker)),
            "fleet-chaos trace must carry {marker} events"
        );
    }
    assert_eq!(
        fleet_trace_serial, fleet_trace_parallel,
        "fleet-chaos trace must be byte-identical at jobs 1 vs 8"
    );
    // The per-node rollup itself rides the report's conservation column
    // (row() marks any cell whose node rollup fails to partition the fleet
    // totals as VIOLATED, which flips the degenerate flag checked above).
    assert!(
        fleet_serial.text.contains("exact"),
        "fleet report must confirm node-level conservation:\n{}",
        fleet_serial.text
    );

    // --- Flight recorder under chaos: the bounded ring's retained suffix,
    // the trigger count, and every incident dump (filenames and bytes)
    // must be identical at jobs 1 vs 8. The recorder is the outermost sink
    // so it observes the canonical cell-merge emission order live — the
    // same chain `repro --flight` installs. ---
    let flight = |jobs: usize| {
        exec::set_jobs(jobs);
        let dir =
            std::env::temp_dir().join(format!("aum-flight-det-{}-j{jobs}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = ModelCache::with_profile(ProfilerConfig::smoke);
        let (tracer, handle) = Tracer::shared(FlightRecorder::with_inner(
            FlightConfig::new(&dir),
            OrderingSink::new(MemorySink::new()),
        ));
        install_tracer(tracer.clone());
        let run = aum_bench::chaos::run_with(true, &cache);
        tracer.flush();
        install_tracer(Tracer::disabled());
        exec::set_jobs(0);
        assert!(!run.degenerate, "{}", run.text);
        let recorder = handle.lock().expect("flight lock");
        assert!(
            recorder.errors().is_empty(),
            "incident writes failed: {:?}",
            recorder.errors()
        );
        let stats = recorder.stats();
        let ring: Vec<String> = recorder
            .ring()
            .records()
            .map(|r| serde_json::to_string(r).expect("record serializes"))
            .collect();
        let dumps: Vec<(String, String)> = recorder
            .incidents()
            .iter()
            .map(|incident| {
                (
                    incident
                        .path
                        .file_name()
                        .expect("incident file name")
                        .to_string_lossy()
                        .into_owned(),
                    std::fs::read_to_string(&incident.path).expect("read incident dump"),
                )
            })
            .collect();
        drop(recorder);
        std::fs::remove_dir_all(&dir).ok();
        (stats, ring, dumps)
    };
    let (flight_stats_serial, ring_serial, dumps_serial) = flight(1);
    let (flight_stats_parallel, ring_parallel, dumps_parallel) = flight(8);
    assert!(
        flight_stats_serial.triggers > 0 && !dumps_serial.is_empty(),
        "chaos quick must trip at least one flight trigger"
    );
    assert!(
        flight_stats_serial.occupancy > 0,
        "the ring must retain a suffix of the stream"
    );
    assert_eq!(
        flight_stats_serial, flight_stats_parallel,
        "flight counters must not depend on the worker count"
    );
    assert_eq!(
        ring_serial, ring_parallel,
        "ring contents must be byte-identical at jobs 1 vs 8"
    );
    assert_eq!(
        dumps_serial, dumps_parallel,
        "incident dumps must be byte-identical at jobs 1 vs 8"
    );

    // Reuse the attribution trace-diff gate: parsing the serialized lines
    // back and diffing the two runs must come out exactly zero.
    let parse = |lines: &[String]| {
        aum_sim::telemetry::parse_jsonl(&lines.join("\n")).expect("captured trace parses")
    };
    let diff = aum_bench::attribution::trace_diff(
        &parse(&chaos_trace_serial),
        &parse(&chaos_trace_parallel),
        aum_bench::attribution::DEFAULT_THRESHOLD_PP,
    )
    .expect("chaos traces carry attribution samples");
    assert!(
        !diff.regression,
        "serial-vs-parallel self-diff must be zero:\n{}",
        diff.text
    );
    assert!(
        diff.text.contains("max |Δ| 0.00 pp"),
        "expected an exactly-zero diff:\n{}",
        diff.text
    );

    // --- Perf-report deterministic section: sweep/cell counts, model-cache
    // accounting, scope-tree shape and call counts must be byte-identical
    // at jobs 1 vs 8. Host timings live in the separate `timing` section,
    // which is deliberately absent from this comparison — the determinism
    // contract the self-profiler documents in DESIGN.md §15. ---
    let perf = |jobs: usize| {
        exec::set_jobs(jobs);
        let report = aum_bench::perfreport::collect("fig14", true).expect("fig14 quick profiles");
        exec::set_jobs(0);
        report
    };
    let report_serial = perf(1);
    let report_parallel = perf(8);
    assert_eq!(
        report_serial.deterministic, report_parallel.deterministic,
        "perf-report deterministic section must be byte-identical at jobs 1 vs 8"
    );
    assert!(
        report_serial
            .deterministic
            .contains("model cache: lookups="),
        "deterministic section must carry cache accounting:\n{}",
        report_serial.deterministic
    );
    assert!(
        report_serial.deterministic.contains("exec.cell"),
        "deterministic section must carry the scope tree:\n{}",
        report_serial.deterministic
    );
    // The timing section is where nondeterministic host figures live — it
    // must render, but nothing in it is identity-gated.
    assert!(
        report_serial.timing.contains("study wall")
            && !report_serial.deterministic.contains("cells/sec"),
        "host timings must stay out of the deterministic section"
    );
    // Flamegraph stack *paths* are part of the tree shape: the set of
    // folded stacks must match even though the sample weights differ.
    let stacks = |report: &aum_bench::perfreport::PerfReport| {
        let mut s: Vec<String> = report
            .folded
            .lines()
            .filter_map(|l| l.rsplit_once(' ').map(|(path, _)| path.to_string()))
            .collect();
        s.sort_unstable();
        s
    };
    let stacks_serial = stacks(&report_serial);
    assert!(
        !stacks_serial.is_empty(),
        "profiled run must emit folded stacks"
    );
    assert_eq!(
        stacks_serial,
        stacks(&report_parallel),
        "flamegraph stack set must not depend on the worker count"
    );

    // --- Nested sweeps must not double-count executor wall time. A serial
    // outer sweep whose cell runs an inner sweep sleeps ~10 ms of wall but
    // accrues ~15 ms of busy (the inner cell is inside the outer cell); if
    // the inner sweep also added its wall, wall would exceed busy. ---
    exec::set_jobs(1);
    let exec_before = exec::stats();
    let outer = exec::sweep_jobs(1, vec![0u64], |_, _| {
        std::thread::sleep(std::time::Duration::from_millis(5));
        exec::sweep_jobs(1, vec![0u64], |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            1u64
        })
    });
    exec::set_jobs(0);
    assert_eq!(outer, vec![vec![1u64]]);
    let nested = exec::stats().since(&exec_before);
    assert_eq!(nested.sweeps, 2, "both sweeps must be counted");
    assert_eq!(nested.cells, 2, "both cells must be counted");
    assert!(
        nested.wall < nested.busy,
        "outermost-only wall accounting: wall {:?} must stay below busy {:?}",
        nested.wall,
        nested.busy
    );
}
