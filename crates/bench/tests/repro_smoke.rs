//! Smoke tests of the reproduction harness: every experiment renders
//! non-trivial output containing its expected markers. The heavyweight
//! grids (fig14/fig15/cluster) are exercised once each to keep CI time
//! bounded — their content is checked through cheaper anchors.

use aum_bench::experiments;

fn run(id: &str) -> String {
    let (_, f) = experiments()
        .into_iter()
        .find(|(n, _)| *n == id)
        .unwrap_or_else(|| panic!("experiment {id} not registered"));
    f()
}

#[test]
fn all_experiments_are_registered_once() {
    let ids: Vec<&str> = experiments().iter().map(|(n, _)| *n).collect();
    let mut dedup = ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "duplicate experiment ids");
    for required in [
        "fig1",
        "table1",
        "fig4",
        "fig5",
        "table2",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig12",
        "fig13",
        "table3",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "sens",
        "overhead",
        "tco",
        "ablate",
        "adapt",
        "chunked",
        "cluster",
        "precision",
    ] {
        assert!(ids.contains(&required), "missing experiment {required}");
    }
}

#[test]
fn table1_lists_all_platforms() {
    let out = run("table1");
    for p in ["GenA", "GenB", "GenC", "Xeon 8475B", "233.8"] {
        assert!(out.contains(p), "table1 missing {p}:\n{out}");
    }
}

#[test]
fn table2_anchors_llama2_row() {
    let out = run("table2");
    assert!(out.contains("llama2-7b"));
    assert!(out.contains("92 / 96"), "llama2-7b BB anchor:\n{out}");
    assert!(out.contains("24 / 59"), "llama2-7b DB anchor:\n{out}");
}

#[test]
fn fig5_keeps_the_gpu_ahead_on_perf_per_watt_of_gen_a() {
    let out = run("fig5");
    assert!(out.contains("A100"));
    assert!(out.contains("GenA"));
}

#[test]
fn fig6_shows_the_license_frequencies() {
    let out = run("fig6");
    assert!(out.contains("3.20"), "turbo cores:\n{out}");
    assert!(out.contains("3.10"), "decode license:\n{out}");
}

#[test]
fn fig13_is_normalized() {
    let out = run("fig13");
    assert!(out.contains("1.000"));
    assert!(out.contains("LLC ways"));
}

#[test]
fn overhead_validates_the_paper_bounds() {
    // `overhead` itself asserts the <1 ms decision bound internally.
    let out = run("overhead");
    assert!(out.contains("450 pinned executions"));
    assert!(out.contains("decision latency"));
}

#[test]
fn tco_reaches_the_88_percent_anchor() {
    let out = run("tco");
    assert!(out.contains("perf/CapEx"));
    assert!(out.contains("0.8"), "≈88% anchor expected:\n{out}");
}

#[test]
fn fig16_decomposes_all_schemes() {
    let out = run("fig16");
    for scheme in [
        "ALL-AU", "SMT-AU", "RP-AU", "AU-UP", "AU-FI", "AU-RB", "AUM",
    ] {
        assert!(out.contains(scheme), "fig16 missing {scheme}");
    }
}

#[test]
fn chunked_prefill_bounds_stalls_in_the_table() {
    let out = run("chunked");
    assert!(out.contains("whole prompt"));
    assert!(out.contains("chunk 512"));
}
