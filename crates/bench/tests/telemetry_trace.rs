//! End-to-end telemetry integration: a short traced co-location streams
//! through a [`JsonlSink`], re-parses losslessly, and stays causally
//! consistent with the controller's own counters.

use std::fs;

use aum::controller::AumController;
use aum::experiment::{run_experiment_traced, ExperimentConfig};
use aum::profiler::{build_model, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::telemetry::{parse_jsonl, Event, JsonlSink, OrderingSink, Tracer};
use aum_sim::SimDuration;
use aum_workloads::be::BeKind;

#[test]
fn short_colocation_trace_is_consistent_and_lossless() {
    let spec = PlatformSpec::gen_a();
    let scenario = Scenario::Chatbot;
    let be = BeKind::SpecJbb;

    let model = build_model(&ProfilerConfig::smoke(spec.clone(), scenario, be));
    let mut controller = AumController::new(model);

    let mut cfg = ExperimentConfig::paper_default(spec, scenario, Some(be));
    cfg.duration = SimDuration::from_secs(60);

    let path =
        std::env::temp_dir().join(format!("aum-telemetry-trace-{}.jsonl", std::process::id()));
    let sink = OrderingSink::new(JsonlSink::create(&path).expect("create trace file"));
    // `run_experiment_traced` flushes the tracer before returning, so the
    // file is complete even while the sink is still alive.
    let outcome = run_experiment_traced(&cfg, &mut controller, Tracer::new(sink));

    let text = fs::read_to_string(&path).expect("read trace back");
    let _ = fs::remove_file(&path);
    let records = parse_jsonl(&text).expect("trace parses");
    assert!(!records.is_empty(), "traced run produced no events");

    // Sim time is monotonic (non-decreasing) across the whole stream.
    for pair in records.windows(2) {
        assert!(
            pair[0].at <= pair[1].at,
            "time went backwards: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }

    // Every controller action surfaced exactly once as a decision event.
    let decisions = records
        .iter()
        .filter(|r| matches!(r.event, Event::ControllerDecision { .. }))
        .count() as u64;
    assert_eq!(
        decisions,
        controller.switch_count() + controller.tune_count(),
        "decision events must match the controller's own counters"
    );
    assert!(
        decisions > 0,
        "a 60s co-location run should decide at least once"
    );

    // The run exercised every layer of the stack.
    for expected in [
        "RequestAdmitted",
        "IterationCompleted",
        "ControllerDecision",
    ] {
        assert!(
            records.iter().any(|r| r.event.kind_label() == expected),
            "missing {expected} events"
        );
    }

    // Decision reasons are populated, never empty strings.
    for r in &records {
        if let Event::ControllerDecision { reason, action, .. } = &r.event {
            assert!(!reason.is_empty() && !action.is_empty());
        }
    }

    // Lossless round-trip: serialize the parsed records again and compare.
    let rewritten: String = records
        .iter()
        .map(|r| serde_json::to_string(r).expect("serialize") + "\n")
        .collect();
    let reparsed = parse_jsonl(&rewritten).expect("re-serialized trace parses");
    assert_eq!(records, reparsed, "serde round-trip must be lossless");

    // The outcome's metrics time series covers the run.
    assert!(
        !outcome.metrics.is_empty(),
        "traced run should snapshot the metrics registry"
    );
    assert!(outcome.metrics.windows(2).all(|w| w[0].at < w[1].at));
}

/// `Tracer::emit` with no sink must short-circuit before constructing the
/// event, so a `NullSink`-free disabled tracer and an attached `NullSink`
/// both stay within noise of each other on the full hot loop. The bound is
/// deliberately generous (2×) — this is a correctness guard against
/// accidentally doing per-event work when tracing is off, not a precise
/// regression benchmark (that lives in `benches/telemetry_overhead.rs`).
#[test]
fn null_sink_tracing_stays_within_noise_of_disabled() {
    use std::time::Instant;

    use aum::baselines::AllAu;
    use aum_sim::telemetry::NullSink;

    let mut cfg = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, None);
    cfg.duration = SimDuration::from_secs(10);

    let run = |tracer: &Tracer| {
        let mut mgr = AllAu::new(&cfg.platform);
        run_experiment_traced(&cfg, &mut mgr, tracer.clone()).efficiency
    };
    let median = |tracer: &Tracer| -> f64 {
        let mut xs: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(run(tracer));
                t.elapsed().as_secs_f64()
            })
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs[xs.len() / 2]
    };

    let _warmup = median(&Tracer::disabled());
    let disabled = median(&Tracer::disabled());
    let null = median(&Tracer::new(NullSink));
    assert!(
        null <= disabled * 2.0 + 0.01,
        "NullSink run {null:.4}s vs disabled {disabled:.4}s exceeds the noise bound"
    );
}
