//! Trace-tooling integration tests: truncated-trace error reporting and
//! the Perfetto (Chrome Trace Event Format) exporter.
//!
//! These drive the same `parse_jsonl` → `perfetto::export` path as
//! `repro trace-export`, on synthetic traces small enough to assert on
//! exactly.

use aum_bench::perfetto;
use aum_sim::span::{SpanId, SpanKind};
use aum_sim::telemetry::{parse_jsonl, Event, TraceRecord};
use aum_sim::time::SimTime;

fn at(secs: f64) -> SimTime {
    SimTime::ZERO + aum_sim::time::SimDuration::from_secs_f64(secs)
}

fn open(id: u64, parent: Option<u64>, kind: SpanKind, label: &str, t: f64) -> TraceRecord {
    TraceRecord {
        at: at(t),
        event: Event::SpanOpen {
            id,
            parent,
            kind,
            track: "cell".to_string(),
            label: label.to_string(),
        },
    }
}

fn close(id: u64, kind: SpanKind, t: f64) -> TraceRecord {
    TraceRecord {
        at: at(t),
        event: Event::SpanClose {
            id,
            kind,
            track: "cell".to_string(),
        },
    }
}

/// A small well-formed span trace: one request lifecycle containing a
/// prefill and one decode iteration.
fn span_trace() -> Vec<TraceRecord> {
    let req = SpanId::derive(SpanKind::RequestLifecycle, 7).0;
    let pre = SpanId::derive(SpanKind::Prefill, 7).0;
    let dec = SpanId::derive(SpanKind::DecodeIteration, 1).0;
    vec![
        open(req, None, SpanKind::RequestLifecycle, "req 7", 0.0),
        open(pre, Some(req), SpanKind::Prefill, "prefill 7", 0.1),
        close(pre, SpanKind::Prefill, 0.4),
        open(dec, Some(req), SpanKind::DecodeIteration, "decode 1", 0.5),
        close(dec, SpanKind::DecodeIteration, 0.6),
        close(req, SpanKind::RequestLifecycle, 1.0),
    ]
}

fn to_jsonl(records: &[TraceRecord]) -> String {
    records
        .iter()
        .map(|r| serde_json::to_string(r).expect("record serializes"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn truncated_trace_reports_the_offending_line() {
    let jsonl = to_jsonl(&span_trace());
    // Simulate a crash mid-write: chop the last line in half.
    let cut = jsonl.len() - jsonl.lines().last().unwrap().len() / 2;
    let truncated = &jsonl[..cut];
    let err = parse_jsonl(truncated).expect_err("truncated trace must not parse");
    assert_eq!(err.line, 6, "the mid-line truncation is on line 6: {err}");
    assert!(
        err.to_string().starts_with("line 6: "),
        "display must carry the line number: {err}"
    );
    // Intact prefix still parses.
    let prefix = jsonl.lines().take(5).collect::<Vec<_>>().join("\n");
    assert_eq!(parse_jsonl(&prefix).expect("prefix parses").len(), 5);
}

#[test]
fn empty_and_blank_traces_parse_to_no_records() {
    assert!(parse_jsonl("")
        .expect("empty input is not malformed")
        .is_empty());
    assert!(parse_jsonl("\n  \n").expect("blank lines skip").is_empty());
}

#[test]
fn perfetto_export_round_trips_as_json_with_balanced_pairs() {
    let json = perfetto::export(&span_trace()).expect("well-formed trace exports");
    let value: serde_json::Value =
        serde_json::from_str(&json).expect("exported trace is valid JSON");
    drop(value);
    let begins = json.matches("\"ph\":\"B\"").count();
    let ends = json.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, 3, "three spans open");
    assert_eq!(begins, ends, "every B needs a matching E");
    for label in ["req 7", "prefill 7", "decode 1"] {
        assert!(json.contains(label), "span label {label:?} missing");
    }
}

#[test]
fn unbalanced_trace_is_refused_with_a_typed_error() {
    let mut records = span_trace();
    records.pop(); // drop the lifecycle close
    let err = perfetto::export(&records).expect_err("unbalanced stream must not export");
    assert!(
        err.contains("unbalanced span stream"),
        "unexpected error: {err}"
    );
}

#[test]
fn empty_trace_is_refused() {
    let err = perfetto::export(&[]).expect_err("empty trace must not export");
    assert!(err.contains("empty trace"), "unexpected error: {err}");
}
