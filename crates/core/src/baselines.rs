//! Baseline resource managers (paper Table V).
//!
//! Three families:
//!
//! - **AU-exclusive** — [`AllAu`]: the whole processor serves the LLM, no
//!   sharing (current industry practice, §III-B);
//! - **AUV-oblivious sharing** — [`SmtAu`] (Holmes-style SMT co-location)
//!   and [`RpAu`] (PARTIES-style feedback resource partitioning); both are
//!   blind to AU usage, frequency coupling and AU resource bounds;
//! - **single-dimension AUM variants** — [`AuUp`] (usage pattern only),
//!   [`AuFi`] (frequency-aware division only), [`AuRb`] (bound-aware
//!   partitioning only) — the paper's ablations of three-dimensional
//!   awareness (Fig 14/16).

use aum_llm::engine::EngineMode;
use aum_platform::rdt::{RdtAllocation, ResourceVector};
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::ProcessorDivision;

use crate::manager::{Decision, ResourceManager, SystemState};

fn au_favoring_alloc(spec: &PlatformSpec) -> RdtAllocation {
    RdtAllocation::new(
        ResourceVector::new(spec.l2_ways - 4, spec.llc_ways - 4, 0.9),
        ResourceVector::new(4, 4, 0.1),
    )
}

/// AU-exclusive deployment: all cores serve the LLM in the time-multiplexed
/// xFasterTransformer fashion, all resources belong to the AU class.
#[derive(Debug, Clone)]
pub struct AllAu {
    spec: PlatformSpec,
}

impl AllAu {
    /// Creates the scheme for a platform.
    #[must_use]
    pub fn new(spec: &PlatformSpec) -> Self {
        AllAu { spec: spec.clone() }
    }
}

impl ResourceManager for AllAu {
    fn name(&self) -> &'static str {
        "ALL-AU"
    }

    fn decide(&mut self, _state: &SystemState) -> Decision {
        let total = self.spec.total_cores();
        Decision {
            division: ProcessorDivision::exclusive(total, total / 3),
            allocation: RdtAllocation::new(
                ResourceVector::new(self.spec.l2_ways - 1, self.spec.llc_ways - 1, 1.0),
                ResourceVector::new(1, 1, 0.1),
            ),
            smt_sharing: false,
            engine_mode: EngineMode::TimeMultiplexed,
        }
    }
}

/// AUV-oblivious SMT sharing (Holmes-style): serving keeps every physical
/// core; the best-effort application rides the hyperthread siblings with no
/// cache/bandwidth partitioning.
#[derive(Debug, Clone)]
pub struct SmtAu {
    spec: PlatformSpec,
}

impl SmtAu {
    /// Creates the scheme for a platform.
    #[must_use]
    pub fn new(spec: &PlatformSpec) -> Self {
        SmtAu { spec: spec.clone() }
    }
}

impl ResourceManager for SmtAu {
    fn name(&self) -> &'static str {
        "SMT-AU"
    }

    fn decide(&mut self, _state: &SystemState) -> Decision {
        let total = self.spec.total_cores();
        Decision {
            division: ProcessorDivision::exclusive(total, total / 3),
            allocation: RdtAllocation::unpartitioned(&self.spec),
            smt_sharing: true,
            engine_mode: EngineMode::TimeMultiplexed,
        }
    }
}

/// AUV-oblivious workload-aware resource partitioning (PARTIES-style): a
/// static spatial split plus slow feedback that returns one resource step
/// to the latency-critical class on violation and harvests one step when
/// comfortable. Oblivious means: it cycles resources round-robin with no
/// notion of which resource the AU phases actually need, keeps a fixed
/// division, and never touches frequency regions.
#[derive(Debug, Clone)]
pub struct RpAu {
    spec: PlatformSpec,
    /// Harvest level 0..=4: how much has been given to the shared class.
    level: usize,
    /// Intervals to wait between adjustments (PARTIES settles slowly).
    cooldown: u32,
}

impl RpAu {
    /// Creates the scheme for a platform.
    #[must_use]
    pub fn new(spec: &PlatformSpec) -> Self {
        RpAu {
            spec: spec.clone(),
            level: 2,
            cooldown: 0,
        }
    }

    fn alloc_for_level(&self, level: usize) -> RdtAllocation {
        // Round-robin ladder over (llc, l2, bw) with equal-step treatment
        // of every resource — the oblivious part.
        let llc = [14, 12, 10, 8, 6][level];
        let l2 = [14, 12, 10, 8, 6][level];
        let bw = [0.9, 0.8, 0.7, 0.6, 0.5][level];
        RdtAllocation::new(
            ResourceVector::new(l2, llc, bw),
            ResourceVector::new(self.spec.l2_ways - l2, self.spec.llc_ways - llc, 1.0 - bw),
        )
    }
}

impl ResourceManager for RpAu {
    fn name(&self) -> &'static str {
        "RP-AU"
    }

    fn decide(&mut self, state: &SystemState) -> Decision {
        let slo = state.scenario.slo();
        let violated = state.recent_tpot_p90 > slo.tpot.as_secs_f64()
            || state.recent_ttft_p90 > slo.ttft.as_secs_f64();
        if self.cooldown > 0 {
            self.cooldown -= 1;
        } else if violated && self.level > 0 {
            self.level -= 1;
            self.cooldown = 4;
        } else if !violated && self.level < 4 {
            self.level += 1;
            self.cooldown = 4;
        }
        let total = self.spec.total_cores();
        let none = total / 4;
        let high = total / 3;
        Decision {
            division: ProcessorDivision::new(high, total - high - none, none),
            allocation: self.alloc_for_level(self.level),
            smt_sharing: false,
            engine_mode: EngineMode::Partitioned,
        }
    }
}

/// AUM variant with only Variation-1 (usage pattern) awareness: it sizes
/// the High/Low regions from observed phase pressure, but shares timidly
/// and keeps a static AU-favoring allocation — "AU-UP only optimizes
/// manipulation of AU applications rather than sharing" (§VII-B).
#[derive(Debug, Clone)]
pub struct AuUp {
    spec: PlatformSpec,
}

impl AuUp {
    /// Creates the scheme for a platform.
    #[must_use]
    pub fn new(spec: &PlatformSpec) -> Self {
        AuUp { spec: spec.clone() }
    }
}

impl ResourceManager for AuUp {
    fn name(&self) -> &'static str {
        "AU-UP"
    }

    fn decide(&mut self, state: &SystemState) -> Decision {
        let total = self.spec.total_cores();
        // Usage-aware split: queue pressure grows the High region; decode
        // batch sizes the Low region (it only needs enough cores to reach
        // the bandwidth ceiling).
        let high = if state.queue_len > 1 {
            total / 2
        } else {
            total * 2 / 5
        };
        let low = (total / 3).min(total - high);
        let none = total - high - low;
        Decision {
            division: ProcessorDivision::new(high, low, none),
            allocation: au_favoring_alloc(&self.spec),
            smt_sharing: false,
            engine_mode: EngineMode::Partitioned,
        }
    }
}

/// AUM variant with only Variation-2 (frequency interference) awareness:
/// it divides the processor into frequency regions and maximizes the
/// sharing region — "AU-FI splits the processor to mostly improve sharing
/// performance" (§VII-B) — with an unpartitioned-ish resource split.
#[derive(Debug, Clone)]
pub struct AuFi {
    spec: PlatformSpec,
}

impl AuFi {
    /// Creates the scheme for a platform.
    #[must_use]
    pub fn new(spec: &PlatformSpec) -> Self {
        AuFi { spec: spec.clone() }
    }
}

impl ResourceManager for AuFi {
    fn name(&self) -> &'static str {
        "AU-FI"
    }

    fn decide(&mut self, _state: &SystemState) -> Decision {
        let total = self.spec.total_cores();
        let none = total * 2 / 5;
        let high = total * 3 / 10;
        Decision {
            division: ProcessorDivision::new(high, total - high - none, none),
            allocation: RdtAllocation::new(
                ResourceVector::new(10, 10, 0.7),
                ResourceVector::new(6, 6, 0.3),
            ),
            smt_sharing: false,
            engine_mode: EngineMode::Partitioned,
        }
    }
}

/// AUM variant with only Variation-3 (resource bound) awareness: fixed
/// division, but the partition respects AU affinities — LLC is harvested
/// aggressively (decode barely needs it, Fig 13) while bandwidth is
/// protected, with feedback only on the bandwidth knob.
#[derive(Debug, Clone)]
pub struct AuRb {
    spec: PlatformSpec,
    shared_bw: f64,
    cooldown: u32,
}

impl AuRb {
    /// Creates the scheme for a platform.
    #[must_use]
    pub fn new(spec: &PlatformSpec) -> Self {
        AuRb {
            spec: spec.clone(),
            shared_bw: 0.2,
            cooldown: 0,
        }
    }
}

impl ResourceManager for AuRb {
    fn name(&self) -> &'static str {
        "AU-RB"
    }

    fn decide(&mut self, state: &SystemState) -> Decision {
        let slo = state.scenario.slo();
        let violated = state.recent_tpot_p90 > slo.tpot.as_secs_f64()
            || state.recent_ttft_p90 > slo.ttft.as_secs_f64();
        if self.cooldown > 0 {
            self.cooldown -= 1;
        } else if violated {
            self.shared_bw = (self.shared_bw - 0.05).max(0.05);
            self.cooldown = 2;
        } else {
            self.shared_bw = (self.shared_bw + 0.05).min(0.35);
            self.cooldown = 2;
        }
        let total = self.spec.total_cores();
        let none = total / 4;
        let high = total / 3;
        Decision {
            division: ProcessorDivision::new(high, total - high - none, none),
            allocation: RdtAllocation::new(
                // Bound-aware: AU keeps little LLC (it streams), most bw.
                ResourceVector::new(8, 4, 1.0 - self.shared_bw),
                ResourceVector::new(8, 12, self.shared_bw),
            ),
            smt_sharing: false,
            engine_mode: EngineMode::Partitioned,
        }
    }
}

/// Hindsight static-best: picks the single most efficient SLO-feasible
/// bucket from a profiled AUV model once and never adapts. The gap between
/// this scheme and AUM isolates the value of *runtime* adaptation (LAG
/// slack, collision response) from the value of offline profiling.
#[derive(Debug, Clone)]
pub struct StaticBest {
    decision: Decision,
}

impl StaticBest {
    /// Creates the scheme from a profiled model.
    #[must_use]
    pub fn new(model: &crate::profiler::AuvModel) -> Self {
        let slo = model.scenario.slo();
        let (d, c) = model.best_bucket(slo.ttft.as_secs_f64(), slo.tpot.as_secs_f64());
        let bucket = model.bucket(d, c);
        StaticBest {
            decision: Decision {
                division: bucket.division,
                allocation: bucket.allocation,
                smt_sharing: false,
                engine_mode: EngineMode::Partitioned,
            },
        }
    }
}

impl ResourceManager for StaticBest {
    fn name(&self) -> &'static str {
        "STATIC-BEST"
    }

    fn decide(&mut self, _state: &SystemState) -> Decision {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum_llm::traces::Scenario;
    use aum_sim::time::{SimDuration, SimTime};
    use aum_workloads::be::BeKind;

    fn state(tpot_p90: f64) -> SystemState {
        SystemState {
            now: SimTime::from_secs(10),
            scenario: Scenario::Chatbot,
            be: Some(BeKind::SpecJbb),
            queue_len: 0,
            head_wait: SimDuration::ZERO,
            decode_batch: 8,
            worst_lag_secs: 0.0,
            recent_ttft_p50: 0.1,
            recent_ttft_p90: 0.2,
            recent_tpot_p50: tpot_p90 * 0.9,
            recent_tpot_p90: tpot_p90,
            power_w: 220.0,
            bw_utilization: 0.9,
        }
    }

    #[test]
    fn all_au_takes_everything() {
        let spec = PlatformSpec::gen_a();
        let d = AllAu::new(&spec).decide(&state(0.08));
        assert_eq!(
            d.division.cores(aum_platform::topology::AuUsageLevel::None),
            0
        );
        assert!(!d.smt_sharing);
        assert_eq!(d.engine_mode, EngineMode::TimeMultiplexed);
    }

    #[test]
    fn smt_au_shares_hyperthreads_without_partitioning() {
        let spec = PlatformSpec::gen_a();
        let d = SmtAu::new(&spec).decide(&state(0.08));
        assert!(d.smt_sharing);
        assert_eq!(d.allocation.au.llc_ways, spec.llc_ways);
        assert_eq!(d.allocation.shared.llc_ways, spec.llc_ways);
    }

    #[test]
    fn rp_au_returns_resources_on_violation() {
        let spec = PlatformSpec::gen_a();
        let mut rp = RpAu::new(&spec);
        let comfortable = rp.decide(&state(0.05));
        // Drive several violated intervals (cooldown in between).
        let mut violated = comfortable;
        for _ in 0..12 {
            violated = rp.decide(&state(0.5));
        }
        assert!(
            violated.allocation.au.llc_ways > comfortable.allocation.au.llc_ways,
            "violation should win LLC back for the AU class"
        );
    }

    #[test]
    fn rp_au_harvests_when_comfortable() {
        let spec = PlatformSpec::gen_a();
        let mut rp = RpAu::new(&spec);
        let first = rp.decide(&state(0.05));
        let mut later = first;
        for _ in 0..12 {
            later = rp.decide(&state(0.05));
        }
        assert!(later.allocation.shared.llc_ways > first.allocation.shared.llc_ways);
    }

    #[test]
    fn au_up_grows_high_region_under_queue_pressure() {
        let spec = PlatformSpec::gen_a();
        let mut up = AuUp::new(&spec);
        let calm = up.decide(&state(0.08));
        let mut pressured_state = state(0.08);
        pressured_state.queue_len = 5;
        let pressured = up.decide(&pressured_state);
        use aum_platform::topology::AuUsageLevel::High;
        assert!(pressured.division.cores(High) > calm.division.cores(High));
    }

    #[test]
    fn au_fi_maximizes_sharing_region() {
        let spec = PlatformSpec::gen_a();
        let d = AuFi::new(&spec).decide(&state(0.08));
        use aum_platform::topology::AuUsageLevel::None;
        let others = [
            AuUp::new(&spec).decide(&state(0.08)),
            RpAu::new(&spec).decide(&state(0.08)),
        ];
        for o in others {
            assert!(d.division.cores(None) > o.division.cores(None));
        }
    }

    #[test]
    fn au_rb_harvests_llc_first() {
        let spec = PlatformSpec::gen_a();
        let d = AuRb::new(&spec).decide(&state(0.08));
        assert!(
            d.allocation.shared.llc_ways > d.allocation.au.llc_ways,
            "bound-aware: LLC goes to the shared class"
        );
        assert!(
            d.allocation.au.mem_bw_frac > 0.6,
            "bandwidth stays with the AU class"
        );
    }

    #[test]
    fn static_best_is_frozen() {
        let model = crate::profiler::build_model(&crate::profiler::ProfilerConfig::smoke(
            PlatformSpec::gen_a(),
            aum_llm::traces::Scenario::Chatbot,
            aum_workloads::be::BeKind::SpecJbb,
        ));
        let mut sb = StaticBest::new(&model);
        let a = sb.decide(&state(0.05));
        let b = sb.decide(&state(0.5));
        assert_eq!(a, b, "static-best never reacts to telemetry");
        assert_eq!(a.division.total_cores(), 96);
    }

    #[test]
    fn divisions_cover_all_platforms() {
        for spec in PlatformSpec::presets() {
            let total = spec.total_cores();
            let s = state(0.08);
            for d in [
                AllAu::new(&spec).decide(&s),
                SmtAu::new(&spec).decide(&s),
                RpAu::new(&spec).decide(&s),
                AuUp::new(&spec).decide(&s),
                AuFi::new(&spec).decide(&s),
                AuRb::new(&spec).decide(&s),
            ] {
                assert_eq!(d.division.total_cores(), total, "{}", spec.name);
            }
        }
    }
}
