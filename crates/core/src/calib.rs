//! Cache-affinity calibration of the AU application phases.
//!
//! Fig 13 of the paper sweeps LLC ways for different AU usages and
//! platforms: on GenA, high-AU (prefill/GEMM) operators lose some
//! performance below ~6 ways while low-AU (decode) operators are almost
//! insensitive — their working set is a weight stream that no LLC holds —
//! so LLC can be harvested from decode almost for free. These profiles
//! feed both the experiment harness (AU-side memory penalties) and the
//! Fig 13 reproduction.

use aum_platform::cache::{CacheProfile, MissRateCurve};
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::AuUsageLevel;

/// Cache profile of the prefill phase: activations and weight panels get
/// real reuse out of the LLC (Fig 8b: the whole hierarchy matters).
#[must_use]
pub fn prefill_cache_profile() -> CacheProfile {
    CacheProfile::new(
        MissRateCurve::new(0.35, 0.75, 35.0),
        MissRateCurve::new(0.25, 0.55, 1.0),
        0.30,
    )
}

/// Cache profile of the decode phase: a weight/KV stream with compulsory
/// misses; nearly flat in LLC capacity (Fig 13 decode on GenA).
#[must_use]
pub fn decode_cache_profile() -> CacheProfile {
    CacheProfile::new(
        MissRateCurve::new(0.88, 0.97, 25.0),
        MissRateCurve::new(0.80, 0.92, 1.0),
        0.10,
    )
}

/// Profile for a phase by its usage level (None has no AU working set).
#[must_use]
pub fn au_cache_profile(level: AuUsageLevel) -> CacheProfile {
    match level {
        AuUsageLevel::High => prefill_cache_profile(),
        AuUsageLevel::Low | AuUsageLevel::None => decode_cache_profile(),
    }
}

/// Memory-phase penalty (≥ 1) the AU application suffers when its class
/// holds `llc_ways` of `spec`'s LLC — the factor fed into the engine's
/// `memory_penalty`.
#[must_use]
pub fn au_llc_penalty(spec: &PlatformSpec, level: AuUsageLevel, llc_ways: u32) -> f64 {
    let profile = au_cache_profile(level);
    1.0 / profile
        .performance_factor(spec, llc_ways, spec.l2_ways)
        .max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_is_nearly_llc_insensitive() {
        // Fig 13: "we can harvest LLC resources for low-AU operators".
        let spec = PlatformSpec::gen_a();
        let pen = au_llc_penalty(&spec, AuUsageLevel::Low, 2);
        assert!(pen < 1.05, "decode with 2 ways should barely slow: {pen}");
    }

    #[test]
    fn prefill_cares_somewhat() {
        let spec = PlatformSpec::gen_a();
        let starved = au_llc_penalty(&spec, AuUsageLevel::High, 1);
        let full = au_llc_penalty(&spec, AuUsageLevel::High, 16);
        assert!((full - 1.0).abs() < 1e-9);
        assert!(starved > 1.05, "prefill with 1 way should slow: {starved}");
        assert!(starved < 1.4, "but not catastrophically: {starved}");
    }

    #[test]
    fn penalty_is_monotone_in_ways() {
        let spec = PlatformSpec::gen_a();
        let mut last = f64::INFINITY;
        for ways in 1..=16 {
            let p = au_llc_penalty(&spec, AuUsageLevel::High, ways);
            assert!(p <= last + 1e-12, "penalty must shrink with ways");
            last = p;
        }
    }

    #[test]
    fn gen_c_big_llc_softens_prefill_penalty() {
        // Fig 13: bigger-LLC platforms show different affinity.
        let a = au_llc_penalty(&PlatformSpec::gen_a(), AuUsageLevel::High, 4);
        let c = au_llc_penalty(&PlatformSpec::gen_c(), AuUsageLevel::High, 4);
        assert!(
            c < a,
            "GenC's 504MB LLC (4 ways = 126MB) hurts less: {c} vs {a}"
        );
    }
}
