//! Cluster-level scheduling (paper §VIII, "Large-scale cluster
//! scalability").
//!
//! The paper's machine-level methodology extends to scale-out clusters by
//! analyzing each processor's AUV and load-balancing across servers. This
//! module implements that sketch: a cluster of heterogeneous AU-enabled
//! servers, a routing policy that splits the offered request rate, and a
//! per-server AUM (or baseline) manager. Since one profiled AUV model
//! amortizes across every server of the same platform (§VII-D), the router
//! can weight servers by their *profiled* serving capacity — the
//! AUV-aware policy the paper anticipates.

use serde::{Deserialize, Serialize};

use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

use crate::baselines::AllAu;
use crate::controller::AumController;
use crate::experiment::{run_experiment, ExperimentConfig, Outcome};
use crate::prices::Prices;
use crate::profiler::{build_model, AuvModel, ProfilerConfig};

/// How the cluster router splits the offered load across servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Equal share to every server, blind to heterogeneity.
    Uniform,
    /// Shares proportional to each platform's peak memory bandwidth (a
    /// static hardware-spec heuristic).
    BandwidthProportional,
    /// Shares proportional to each server's *profiled* decode capacity —
    /// the AUV-aware policy: the same AUV models the runtime controllers
    /// use also inform routing.
    AuvWeighted,
}

impl core::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RoutingPolicy::Uniform => write!(f, "uniform"),
            RoutingPolicy::BandwidthProportional => write!(f, "bw-proportional"),
            RoutingPolicy::AuvWeighted => write!(f, "auv-weighted"),
        }
    }
}

/// One server of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// The server's platform.
    pub platform: PlatformSpec,
    /// Co-located best-effort application (None = exclusive serving).
    pub be: Option<BeKind>,
}

/// Cluster experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The servers.
    pub servers: Vec<ServerConfig>,
    /// Serving scenario (shared across the cluster).
    pub scenario: Scenario,
    /// Total offered request rate across the cluster, req/s.
    pub total_rate: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Base seed (each server derives its own).
    pub seed: u64,
    /// Efficiency prices.
    pub prices: Prices,
}

impl ClusterConfig {
    /// A heterogeneous demo cluster: one of each Table I platform, all
    /// sharing with SPECjbb, at a load proportional to the fleet size.
    #[must_use]
    pub fn heterogeneous_demo(scenario: Scenario) -> Self {
        ClusterConfig {
            servers: PlatformSpec::presets()
                .into_iter()
                .map(|platform| ServerConfig {
                    platform,
                    be: Some(BeKind::SpecJbb),
                })
                .collect(),
            scenario,
            total_rate: scenario.default_rate() * 3.0,
            duration: SimDuration::from_secs(180),
            seed: 4242,
            prices: Prices::paper_default(),
        }
    }
}

/// Outcome of one cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Routing policy used.
    pub policy: String,
    /// Per-server outcomes, in server order.
    pub per_server: Vec<Outcome>,
    /// Routing weights applied, in server order (sum = 1).
    pub weights: Vec<f64>,
    /// Cluster-wide weighted efficiency: total value / total power.
    pub efficiency: f64,
    /// Cluster-wide mean SLO violation rate (request-weighted).
    pub violation_rate: f64,
}

/// Profiles each server (AUM path) and returns its AUV model.
fn server_model(server: &ServerConfig, scenario: Scenario) -> AuvModel {
    build_model(&ProfilerConfig::paper_default(
        server.platform.clone(),
        scenario,
        server.be.unwrap_or(BeKind::SpecJbb),
    ))
}

/// Routing weights for a policy (normalized to sum 1).
///
/// # Panics
///
/// Panics if the cluster is empty.
#[must_use]
pub fn routing_weights(
    cfg: &ClusterConfig,
    policy: RoutingPolicy,
    models: &[AuvModel],
) -> Vec<f64> {
    assert!(!cfg.servers.is_empty(), "cluster needs servers");
    let raw: Vec<f64> = match policy {
        RoutingPolicy::Uniform => vec![1.0; cfg.servers.len()],
        RoutingPolicy::BandwidthProportional => cfg
            .servers
            .iter()
            .map(|s| s.platform.mem_bw.value())
            .collect(),
        RoutingPolicy::AuvWeighted => models
            .iter()
            .map(|m| {
                // Profiled decode capacity of the server's best bucket.
                m.buckets
                    .iter()
                    .map(|b| b.decode_tps)
                    .fold(0.0f64, f64::max)
                    .max(1e-6)
            })
            .collect(),
    };
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Runs the cluster under a routing policy with per-server AUM controllers
/// (or ALL-AU when a server has no co-runner). Servers run concurrently.
#[must_use]
pub fn run_cluster(cfg: &ClusterConfig, policy: RoutingPolicy) -> ClusterOutcome {
    let models: Vec<AuvModel> = cfg
        .servers
        .iter()
        .map(|s| server_model(s, cfg.scenario))
        .collect();
    let weights = routing_weights(cfg, policy, &models);

    // Each server's seed depends only on its index, so the sweep executor
    // reproduces the serial result bit-for-bit at any worker count (and
    // bounds concurrency by `--jobs` instead of one thread per server).
    let cells: Vec<(&ServerConfig, f64, AuvModel)> = cfg
        .servers
        .iter()
        .zip(&weights)
        .zip(&models)
        .map(|((server, &weight), model)| (server, weight, model.clone()))
        .collect();
    let outcomes: Vec<Outcome> = aum_sim::exec::sweep(cells, |i, (server, weight, model)| {
        let exp = ExperimentConfig {
            platform: server.platform.clone(),
            scenario: cfg.scenario,
            be: server.be,
            duration: cfg.duration,
            control_interval: SimDuration::from_millis(500),
            seed: cfg.seed.wrapping_add(i as u64 * 7919),
            rate: Some((cfg.total_rate * weight).max(1e-3)),
            rate_profile: aum_llm::traces::RateProfile::Constant,
            fault: crate::fault::FaultPlan::none(),
            prices: cfg.prices,
            model: aum_llm::config::ModelConfig::llama2_7b(),
        };
        match server.be {
            Some(_) => run_experiment(&exp, &mut AumController::new(model)),
            None => run_experiment(&exp, &mut AllAu::new(&server.platform)),
        }
    });

    let total_power: f64 = outcomes.iter().map(|o| o.avg_power_w).sum();
    let total_value: f64 = outcomes
        .iter()
        .zip(&cfg.servers)
        .map(|(o, s)| {
            let gamma = s.be.map_or(0.0, Prices::gamma);
            cfg.prices.alpha * o.prefill_tps + cfg.prices.beta * o.decode_tps + gamma * o.be_rate
        })
        .sum();
    let total_requests: f64 = outcomes.iter().map(|o| o.slo.prefills as f64).sum();
    let violation_rate = if total_requests == 0.0 {
        0.0
    } else {
        outcomes
            .iter()
            .map(|o| o.slo.violation_rate() * o.slo.prefills as f64)
            .sum::<f64>()
            / total_requests
    };
    ClusterOutcome {
        policy: policy.to_string(),
        per_server: outcomes,
        weights,
        efficiency: total_value / total_power.max(1e-9),
        violation_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> ClusterConfig {
        let mut cfg = ClusterConfig::heterogeneous_demo(Scenario::Chatbot);
        cfg.duration = SimDuration::from_secs(60);
        cfg
    }

    #[test]
    fn weights_normalize_for_every_policy() {
        let cfg = small_cluster();
        let models: Vec<AuvModel> = cfg
            .servers
            .iter()
            .map(|s| server_model(s, cfg.scenario))
            .collect();
        for policy in [
            RoutingPolicy::Uniform,
            RoutingPolicy::BandwidthProportional,
            RoutingPolicy::AuvWeighted,
        ] {
            let w = routing_weights(&cfg, policy, &models);
            assert_eq!(w.len(), cfg.servers.len());
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{policy}");
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn bandwidth_policy_prefers_fast_memory() {
        let cfg = small_cluster();
        let models: Vec<AuvModel> = cfg
            .servers
            .iter()
            .map(|s| server_model(s, cfg.scenario))
            .collect();
        let w = routing_weights(&cfg, RoutingPolicy::BandwidthProportional, &models);
        // GenA (233.8 GB/s) < GenB (588) ≈ GenC (600).
        assert!(w[0] < w[1]);
        assert!(w[0] < w[2]);
    }

    #[test]
    fn cluster_runs_and_aggregates() {
        let cfg = small_cluster();
        let out = run_cluster(&cfg, RoutingPolicy::AuvWeighted);
        assert_eq!(out.per_server.len(), 3);
        assert!(out.efficiency > 0.0);
        assert!((0.0..=1.0).contains(&out.violation_rate));
        for o in &out.per_server {
            assert!(
                o.decode_tps > 0.0,
                "{}: server starved by routing",
                o.scheme
            );
        }
    }

    #[test]
    fn auv_weighted_beats_uniform_on_heterogeneous_fleet() {
        // The §VIII claim: exploiting per-server AUV in load balancing
        // improves cluster efficiency over AUV-blind routing.
        let cfg = small_cluster();
        let uniform = run_cluster(&cfg, RoutingPolicy::Uniform);
        let auv = run_cluster(&cfg, RoutingPolicy::AuvWeighted);
        assert!(
            auv.efficiency > uniform.efficiency * 0.98,
            "AUV-aware routing must not lose to uniform: {} vs {}",
            auv.efficiency,
            uniform.efficiency
        );
    }
}
