//! Cluster-level scheduling (paper §VIII, "Large-scale cluster
//! scalability").
//!
//! The paper's machine-level methodology extends to scale-out clusters by
//! analyzing each processor's AUV and load-balancing across servers. This
//! module implements that sketch: a cluster of heterogeneous AU-enabled
//! servers, a routing policy that splits the offered request rate, and a
//! per-server AUM (or baseline) manager. Since one profiled AUV model
//! amortizes across every server of the same platform (§VII-D), the router
//! can weight servers by their *profiled* serving capacity — the
//! AUV-aware policy the paper anticipates.
//!
//! The split here is the *steady-state* one: each server simulates its
//! share independently. The dynamic side — node faults, health-checked
//! failover, retry/backoff and load shedding — lives in [`crate::fleet`],
//! which replays the same [`ClusterConfig`] (plus its
//! [`NodeFaultPlan`]/[`FleetParams`] fields) through an epoch-based
//! router loop.

use serde::{Deserialize, Serialize};

use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::telemetry::Tracer;
use aum_sim::time::SimDuration;
use aum_workloads::be::BeKind;

use crate::baselines::AllAu;
use crate::controller::AumController;
use crate::experiment::{run_experiment_traced, ExperimentConfig, Outcome};
use crate::fleet::{FleetParams, NodeFaultPlan};
use crate::prices::Prices;
use crate::profiler::{build_model, AuvModel, ProfilerConfig};

/// How the cluster router splits the offered load across servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Equal share to every server, blind to heterogeneity.
    Uniform,
    /// Shares proportional to each platform's peak memory bandwidth (a
    /// static hardware-spec heuristic).
    BandwidthProportional,
    /// Shares proportional to each server's *profiled* decode capacity —
    /// the AUV-aware policy: the same AUV models the runtime controllers
    /// use also inform routing.
    AuvWeighted,
    /// AUV-weighted shares, re-weighted every epoch from node health by
    /// the fleet router ([`crate::fleet::run_fleet`]): a failed node's
    /// share redistributes to survivors. In the steady-state split of
    /// [`run_cluster`] (no faults, no epochs) it is identical to
    /// [`RoutingPolicy::AuvWeighted`].
    Failover,
}

impl core::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RoutingPolicy::Uniform => write!(f, "uniform"),
            RoutingPolicy::BandwidthProportional => write!(f, "bw-proportional"),
            RoutingPolicy::AuvWeighted => write!(f, "auv-weighted"),
            RoutingPolicy::Failover => write!(f, "failover"),
        }
    }
}

/// One server of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// The server's platform.
    pub platform: PlatformSpec,
    /// Co-located best-effort application (None = exclusive serving).
    pub be: Option<BeKind>,
}

/// Cluster experiment configuration.
///
/// The fleet fields (`fault_plan`, `fleet`) are declared last and carry
/// serde defaults, so legacy cluster JSON written before the fleet
/// resilience plane keeps deserializing (a missing plan means a healthy
/// fleet, missing params mean the documented defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The servers.
    pub servers: Vec<ServerConfig>,
    /// Serving scenario (shared across the cluster).
    pub scenario: Scenario,
    /// Total offered request rate across the cluster, req/s.
    pub total_rate: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Base seed (each server derives its own).
    pub seed: u64,
    /// Efficiency prices.
    pub prices: Prices,
    /// Scripted node faults ([`crate::fleet::run_fleet`] replays them;
    /// the steady-state [`run_cluster`] split ignores them).
    #[serde(default)]
    pub fault_plan: NodeFaultPlan,
    /// Epoch router tunables for the fleet resilience plane.
    #[serde(default)]
    pub fleet: FleetParams,
}

impl ClusterConfig {
    /// A heterogeneous demo cluster: one of each Table I platform, all
    /// sharing with SPECjbb, at a load proportional to the fleet size.
    #[must_use]
    pub fn heterogeneous_demo(scenario: Scenario) -> Self {
        ClusterConfig {
            servers: PlatformSpec::presets()
                .into_iter()
                .map(|platform| ServerConfig {
                    platform,
                    be: Some(BeKind::SpecJbb),
                })
                .collect(),
            scenario,
            total_rate: scenario.default_rate() * 3.0,
            duration: SimDuration::from_secs(180),
            seed: 4242,
            prices: Prices::paper_default(),
            fault_plan: NodeFaultPlan::none(),
            fleet: FleetParams::default(),
        }
    }

    /// Stable per-node labels for fleet telemetry and node-labeled
    /// Prometheus series: `node<i>/<platform name>`, in server order.
    /// Platform names are config strings, so consumers must escape them
    /// before embedding in exposition labels.
    #[must_use]
    pub fn node_labels(&self) -> Vec<String> {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, s)| format!("node{i}/{}", s.platform.name))
            .collect()
    }
}

/// Outcome of one cluster run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Routing policy used.
    pub policy: String,
    /// Outcomes of the servers that received traffic, in server order
    /// (parallel to [`ClusterOutcome::served`]).
    pub per_server: Vec<Outcome>,
    /// Indices of the servers that received traffic. Zero-weight servers
    /// are skipped entirely — no synthetic trickle rate, no cell.
    pub served: Vec<usize>,
    /// Routing weights applied, in server order (sum = 1).
    pub weights: Vec<f64>,
    /// Cluster-wide weighted efficiency: total value / total power.
    pub efficiency: f64,
    /// Cluster-wide mean SLO violation rate, weighted by each server's
    /// SLO-tracked requests (TTFT-tracked prefills plus TPOT-tracked
    /// requests — see [`weighted_violation_rate`]).
    pub violation_rate: f64,
}

/// Profiles each server (AUM path) and returns its AUV model.
fn server_model(server: &ServerConfig, scenario: Scenario) -> AuvModel {
    build_model(&ProfilerConfig::paper_default(
        server.platform.clone(),
        scenario,
        server.be.unwrap_or(BeKind::SpecJbb),
    ))
}

/// Routing weights for a policy (normalized to sum 1).
///
/// # Panics
///
/// Panics if the cluster is empty.
#[must_use]
pub fn routing_weights(
    cfg: &ClusterConfig,
    policy: RoutingPolicy,
    models: &[AuvModel],
) -> Vec<f64> {
    assert!(!cfg.servers.is_empty(), "cluster needs servers");
    let raw: Vec<f64> = match policy {
        RoutingPolicy::Uniform => vec![1.0; cfg.servers.len()],
        RoutingPolicy::BandwidthProportional => cfg
            .servers
            .iter()
            .map(|s| s.platform.mem_bw.value())
            .collect(),
        // Failover starts from the same profiled-capacity split; the
        // epoch loop is what re-weights it when health changes.
        RoutingPolicy::AuvWeighted | RoutingPolicy::Failover => models
            .iter()
            .map(|m| {
                // Profiled decode capacity of the server's best bucket.
                m.buckets
                    .iter()
                    .map(|b| b.decode_tps)
                    .fold(0.0f64, f64::max)
                    .max(1e-6)
            })
            .collect(),
    };
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Aggregates per-server violation rates into a cluster-wide one,
/// weighting each server by its count of SLO-tracked requests. `per`
/// holds `(violation_rate, tracked_requests)` pairs; servers with no
/// tracked requests contribute nothing, and an idle cluster reports 0.
#[must_use]
pub fn weighted_violation_rate(per: &[(f64, f64)]) -> f64 {
    let tracked: f64 = per.iter().map(|(_, n)| n).sum();
    if tracked <= 0.0 {
        return 0.0;
    }
    per.iter().map(|(v, n)| v * n).sum::<f64>() / tracked
}

/// Requests an [`Outcome`]'s SLO report actually tracked: TTFT-tracked
/// prefills plus TPOT-tracked requests. Weighting by `prefills` alone
/// would under-count decode-heavy servers whose violations are TPOT-side.
fn slo_tracked(outcome: &Outcome) -> f64 {
    outcome.slo.prefills as f64 + outcome.slo.tpot_req_hist.count() as f64
}

/// Runs the cluster under a routing policy with per-server AUM controllers
/// (or ALL-AU when a server has no co-runner). Servers run concurrently.
#[must_use]
pub fn run_cluster(cfg: &ClusterConfig, policy: RoutingPolicy) -> ClusterOutcome {
    let models: Vec<AuvModel> = cfg
        .servers
        .iter()
        .map(|s| server_model(s, cfg.scenario))
        .collect();
    run_cluster_with(cfg, policy, &models, &Tracer::disabled())
}

/// [`run_cluster`] with pre-built AUV models (one per server) and a
/// harness tracer. Per-server simulation traces merge into `tracer` in
/// canonical server order via the sweep executor, so the merged trace is
/// byte-identical at any `--jobs` setting.
///
/// # Panics
///
/// Panics if `models` does not provide one model per server.
#[must_use]
pub fn run_cluster_with(
    cfg: &ClusterConfig,
    policy: RoutingPolicy,
    models: &[AuvModel],
    tracer: &Tracer,
) -> ClusterOutcome {
    assert_eq!(models.len(), cfg.servers.len(), "one model per server");
    let weights = routing_weights(cfg, policy, models);
    run_cluster_weighted(cfg, policy.to_string(), &weights, models, tracer)
}

/// The shared cluster fan-out: splits `cfg.total_rate` by `weights`,
/// skipping zero-weight servers, and simulates every served server.
fn run_cluster_weighted(
    cfg: &ClusterConfig,
    policy: String,
    weights: &[f64],
    models: &[AuvModel],
    tracer: &Tracer,
) -> ClusterOutcome {
    // A zero-weight server receives no traffic: skip the cell instead of
    // flooring its rate to a synthetic trickle that would pollute the
    // fleet aggregates with a near-idle simulation.
    let cells: Vec<(usize, &ServerConfig, f64, AuvModel)> = cfg
        .servers
        .iter()
        .zip(weights)
        .zip(models)
        .enumerate()
        .filter(|(_, ((_, &weight), _))| weight > 0.0)
        .map(|(i, ((server, &weight), model))| (i, server, weight, model.clone()))
        .collect();
    let served: Vec<usize> = cells.iter().map(|(i, ..)| *i).collect();
    // Each server's seed depends only on its index, so the sweep executor
    // reproduces the serial result bit-for-bit at any worker count (and
    // bounds concurrency by `--jobs` instead of one thread per server).
    let outcomes: Vec<Outcome> = aum_sim::exec::sweep_traced(
        tracer,
        cells,
        |_, (i, server, weight, model), cell_tracer| {
            let exp = ExperimentConfig {
                platform: server.platform.clone(),
                scenario: cfg.scenario,
                be: server.be,
                duration: cfg.duration,
                control_interval: SimDuration::from_millis(500),
                seed: cfg.seed.wrapping_add(i as u64 * 7919),
                rate: Some(cfg.total_rate * weight),
                rate_profile: aum_llm::traces::RateProfile::Constant,
                fault: crate::fault::FaultPlan::none(),
                prices: cfg.prices,
                model: aum_llm::config::ModelConfig::llama2_7b(),
            };
            match server.be {
                Some(_) => run_experiment_traced(&exp, &mut AumController::new(model), cell_tracer),
                None => run_experiment_traced(&exp, &mut AllAu::new(&server.platform), cell_tracer),
            }
        },
    );

    let total_power: f64 = outcomes.iter().map(|o| o.avg_power_w).sum();
    let total_value: f64 = outcomes
        .iter()
        .zip(&served)
        .map(|(o, &i)| {
            let gamma = cfg.servers[i].be.map_or(0.0, Prices::gamma);
            cfg.prices.alpha * o.prefill_tps + cfg.prices.beta * o.decode_tps + gamma * o.be_rate
        })
        .sum();
    let per_violation: Vec<(f64, f64)> = outcomes
        .iter()
        .map(|o| (o.slo.violation_rate(), slo_tracked(o)))
        .collect();
    ClusterOutcome {
        policy,
        per_server: outcomes,
        served,
        weights: weights.to_vec(),
        efficiency: total_value / total_power.max(1e-9),
        violation_rate: weighted_violation_rate(&per_violation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> ClusterConfig {
        let mut cfg = ClusterConfig::heterogeneous_demo(Scenario::Chatbot);
        cfg.duration = SimDuration::from_secs(60);
        cfg
    }

    #[test]
    fn weights_normalize_for_every_policy() {
        let cfg = small_cluster();
        let models: Vec<AuvModel> = cfg
            .servers
            .iter()
            .map(|s| server_model(s, cfg.scenario))
            .collect();
        for policy in [
            RoutingPolicy::Uniform,
            RoutingPolicy::BandwidthProportional,
            RoutingPolicy::AuvWeighted,
            RoutingPolicy::Failover,
        ] {
            let w = routing_weights(&cfg, policy, &models);
            assert_eq!(w.len(), cfg.servers.len());
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{policy}");
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn failover_starts_from_the_auv_split() {
        let cfg = small_cluster();
        let models: Vec<AuvModel> = cfg
            .servers
            .iter()
            .map(|s| server_model(s, cfg.scenario))
            .collect();
        assert_eq!(
            routing_weights(&cfg, RoutingPolicy::Failover, &models),
            routing_weights(&cfg, RoutingPolicy::AuvWeighted, &models),
        );
    }

    #[test]
    fn bandwidth_policy_prefers_fast_memory() {
        let cfg = small_cluster();
        let models: Vec<AuvModel> = cfg
            .servers
            .iter()
            .map(|s| server_model(s, cfg.scenario))
            .collect();
        let w = routing_weights(&cfg, RoutingPolicy::BandwidthProportional, &models);
        // GenA (233.8 GB/s) < GenB (588) ≈ GenC (600).
        assert!(w[0] < w[1]);
        assert!(w[0] < w[2]);
    }

    #[test]
    fn cluster_runs_and_aggregates() {
        let cfg = small_cluster();
        let out = run_cluster(&cfg, RoutingPolicy::AuvWeighted);
        assert_eq!(out.per_server.len(), 3);
        assert_eq!(out.served, vec![0, 1, 2]);
        assert!(out.efficiency > 0.0);
        assert!((0.0..=1.0).contains(&out.violation_rate));
        for o in &out.per_server {
            assert!(
                o.decode_tps > 0.0,
                "{}: server starved by routing",
                o.scheme
            );
        }
    }

    #[test]
    fn zero_weight_servers_are_skipped_not_trickled() {
        let cfg = small_cluster();
        let models: Vec<AuvModel> = cfg
            .servers
            .iter()
            .map(|s| server_model(s, cfg.scenario))
            .collect();
        let weights = [0.0, 0.6, 0.4];
        let out = run_cluster_weighted(
            &cfg,
            "hand-weighted".to_string(),
            &weights,
            &models,
            &Tracer::disabled(),
        );
        assert_eq!(out.served, vec![1, 2], "zero-weight server gets no cell");
        assert_eq!(out.per_server.len(), 2);
        assert_eq!(out.weights, weights);
        assert!(out.per_server.iter().all(|o| o.decode_tps > 0.0));
    }

    #[test]
    fn violation_rate_weights_by_tracked_requests() {
        // Hand-computed: (0.1 * 30 + 0.5 * 10) / (30 + 10) = 8 / 40 = 0.2.
        let agg = weighted_violation_rate(&[(0.1, 30.0), (0.5, 10.0)]);
        assert!((agg - 0.2).abs() < 1e-12, "got {agg}");
        // Prefill-only weighting would have said 0.1; a server with no
        // tracked requests must contribute nothing.
        let with_idle = weighted_violation_rate(&[(0.1, 30.0), (0.5, 10.0), (1.0, 0.0)]);
        assert!((with_idle - 0.2).abs() < 1e-12, "got {with_idle}");
        assert_eq!(weighted_violation_rate(&[]), 0.0);
        assert_eq!(weighted_violation_rate(&[(0.7, 0.0)]), 0.0);
    }

    #[test]
    fn auv_weighted_beats_uniform_on_heterogeneous_fleet() {
        // The §VIII claim: exploiting per-server AUV in load balancing
        // improves cluster efficiency over AUV-blind routing.
        let cfg = small_cluster();
        let uniform = run_cluster(&cfg, RoutingPolicy::Uniform);
        let auv = run_cluster(&cfg, RoutingPolicy::AuvWeighted);
        assert!(
            auv.efficiency > uniform.efficiency * 0.98,
            "AUV-aware routing must not lose to uniform: {} vs {}",
            auv.efficiency,
            uniform.efficiency
        );
    }
}
