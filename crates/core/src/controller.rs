//! The Runtime AU Controller (paper §VI-C, Algorithm 1).
//!
//! Three cooperating stages run at every control interval:
//!
//! 1. **Slack-aware SLO analyzer** — converts the static deadlines into
//!    runtime budgets: `SLO_H = d_TTFT − t_wait` for prefill and
//!    `SLO_L = d_TPOT + LAG_i` for decode, where LAG measures how far each
//!    request runs ahead (+) or behind (−) an ideal schedule;
//! 2. **Efficiency-aware core switcher** — picks the AUV-model bucket that
//!    maximizes `E_CPU = (α·P_H + β·P_L + γ·P_N)/W_CPU` subject to the tail
//!    predictions satisfying the runtime budgets;
//! 3. **Collision-aware allocation tuner** — monitors measured tails:
//!    with SLO headroom it harvests one more step along the bound-aware
//!    resource ladder (LLC first, bandwidth last) using *average*
//!    predictions; on violation it returns a step using *tail* predictions.
//!    When the usage-weighted deviation `δ_AU` exceeds the threshold,
//!    tuning is deemed insufficient and the switcher re-selects the
//!    processor division (Algorithm 1 line 17).

use std::collections::VecDeque;
use std::sync::Arc;

use aum_au::ari::{qkv_ari_decode, qkv_ari_prefill, usage_from_ari};
use aum_llm::engine::EngineMode;
use aum_sim::telemetry::{DecisionKind, Event, ResilienceMode, SlackVerdict, SloMetric, Tracer};
use aum_sim::time::SimTime;

use crate::manager::{Decision, ResourceManager, SystemState};
use crate::profiler::AuvModel;

/// What the controller did at a control boundary — the decision trail a
/// production daemon would emit for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerAction {
    /// One harvesting step along the bound-aware resource ladder.
    Harvest,
    /// One conservative step returning resources to the AU class.
    Return,
    /// A processor-division switch (Algorithm 1 line 17).
    Switch,
}

/// Deviation threshold above which the controller switches the processor
/// division rather than tuning allocations (paper §VII-A1: 2).
pub const DEFAULT_DELTA_THRESHOLD: f64 = 2.0;

/// Intervals the controller waits after a change before acting again, so
/// the measured percentiles reflect the new configuration.
const COOLDOWN_INTERVALS: u32 = 6;

// --- Resilience layer tuning. ---

/// Sliding window (control intervals) over which breach pressure — the
/// fraction of intervals violating an SLO budget — is measured.
const PRESSURE_WINDOW: usize = 16;
/// Minimum samples before the pressure estimate drives mode transitions.
const MIN_PRESSURE_SAMPLES: usize = 8;
/// Pressure at which Normal degrades (harvesting frozen).
const DEGRADE_PRESSURE: f64 = 0.25;
/// Pressure at which Degraded escalates to safe mode (BE shed, fall back
/// to the profiler's conservative division).
const SAFE_PRESSURE: f64 = 0.5;
/// Pressure under which a degraded/recovering controller is calm again.
const CALM_PRESSURE: f64 = 1.0 / 16.0;
/// Pressure under which safe mode starts probing recovery, and above which
/// a recovery probe aborts back to safe mode.
const RECOVER_PRESSURE: f64 = 0.25;
/// Base safe-mode dwell (intervals) before a recovery probe is allowed;
/// doubled per recent relapse.
const SAFE_DWELL_INTERVALS: u32 = 8;
/// A safe-mode re-entry within this many intervals of the last exit is a
/// relapse: the fault evidently persists, so probe exponentially less
/// often — under a permanent fault, every optimistic probe is paid for in
/// fresh SLO damage.
const RELAPSE_WINDOW: u32 = 64;
/// Cap on the relapse backoff shift (dwell caps at `8 << 3` intervals).
const MAX_RELAPSE_LEVEL: u32 = 3;
/// Consecutive meeting intervals that relax the harvest ceiling by one
/// step. The ceiling is the hysteresis memory of the ladder: a violating
/// action clamps it at the rung below the one that just burned us, so a
/// persistent fault cannot bait the controller into re-climbing to the
/// same collapse over and over — the ladder re-opens one rung per calm
/// stretch instead.
const CEILING_DECAY_INTERVALS: u32 = 16;
/// Plausibility-filter history length (median-of-last-k).
const SENSOR_WINDOW: usize = 5;
/// A reading further than this factor from the running median is rejected
/// and the median substituted.
const PLAUSIBLE_FACTOR: f64 = 4.0;
/// Bit-identical readback streak that flags a suspected sensor dropout.
const STALE_INTERVALS: u32 = 3;
/// Bit-identical readback streak after which the controller stops acting
/// on the frozen frames entirely and holds its current bucket: every
/// downstream signal (slack, deviation, breach pressure) computed from a
/// frozen sensor path is fiction, and acting on fiction is how a healthy
/// harvest turns into an SLO collapse nobody can see.
const STALE_HOLD_INTERVALS: u32 = 24;
/// Exponential-backoff cap: cooldown doubles per direction flip up to
/// `COOLDOWN_INTERVALS << MAX_BACKOFF_LEVEL`.
const MAX_BACKOFF_LEVEL: u32 = 3;

/// The AUM runtime controller.
///
/// # Examples
///
/// ```no_run
/// use aum::controller::AumController;
/// use aum::profiler::{build_model, ProfilerConfig};
/// use aum_llm::traces::Scenario;
/// use aum_platform::spec::PlatformSpec;
/// use aum_workloads::be::BeKind;
///
/// let cfg = ProfilerConfig::paper_default(
///     PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
/// let model = build_model(&cfg);
/// let controller = AumController::new(model);
/// assert_eq!(controller.current_bucket().0 < 5, true);
/// ```
#[derive(Debug, Clone)]
pub struct AumController {
    /// Shared, mostly-read-only AUV model. Kept behind an `Arc` so many
    /// controllers (parallel sweep cells) share one profiled model without
    /// cloning its buckets; online refinement copies-on-write.
    model: Arc<AuvModel>,
    delta_threshold: f64,
    current: (usize, usize),
    cooldown: u32,
    /// Normalized AU usage of the two phases (`U_AU`), precomputed from the
    /// §VI-B1 arithmetic-intensity formulas.
    u_high: f64,
    u_low: f64,
    /// Best tail latencies any profiled bucket achieves. When a deadline is
    /// *structurally* unattainable (e.g. the cc TTFT even under exclusive
    /// prefill, §VII-C), the controller treats that axis as best-effort
    /// against the achievable floor instead of freezing all harvesting.
    ttft_floor: f64,
    tpot_floor: f64,
    /// Consecutive comfortable decisions (harvest patience).
    calm_streak: u32,
    /// Online-refinement EWMA weight; `None` disables refinement. The
    /// paper names its reliance on pure runtime control (no online model
    /// complement) as AUM's limitation (§VII-D); this implements the
    /// complement: measured tails continuously fold back into the current
    /// bucket, so a drifting environment re-ranks the model.
    refine_alpha: Option<f64>,
    /// Telemetry: division switches and tuning steps taken.
    switches: u64,
    tunes: u64,
    /// Timestamped decision trail: one [`Event::ControllerDecision`] per
    /// non-trivial action, carrying the full reasoning behind it.
    decisions: Vec<(SimTime, Event)>,
    /// Trace handle; decisions and SLO breaches stream here when attached.
    tracer: Tracer,
    // --- Resilience layer (sensor distrust, backoff, safe mode). ---
    /// Graceful-degradation state machine position.
    mode: ResilienceMode,
    /// Intervals spent in the current mode (hysteresis clock).
    mode_age: u32,
    /// Last `PRESSURE_WINDOW` intervals' breach verdicts (true = violating).
    breach_window: VecDeque<bool>,
    /// Plausibility-filter histories for the two decision-driving sensors.
    ttft_hist: VecDeque<f64>,
    tpot_hist: VecDeque<f64>,
    /// Bit patterns of the previous observation, for stale-readback
    /// detection (a dropped-out sensor repeats frames exactly).
    last_sensor_bits: Option<[u64; 6]>,
    stale_streak: u32,
    /// Exponential-backoff level: direction flips (harvest↔return) double
    /// the post-action cooldown, calm same-direction actions decay it.
    backoff_level: u32,
    /// Direction of the last action (true = conservative/violating).
    last_violating: Option<bool>,
    /// Times safe mode was entered (including re-entries from Recovering).
    safe_entries: u64,
    /// Recent quick re-entries into safe mode; each one doubles the dwell
    /// required before the next recovery probe (capped).
    safe_relapses: u32,
    /// Intervals since safe mode was last exited (saturating; `u32::MAX`
    /// until the first exit).
    since_safe_exit: u32,
    /// Highest harvest cfg the ladder may currently climb to (hysteresis
    /// memory; clamped by violating actions, relaxed by calm stretches).
    harvest_ceiling: usize,
    /// Consecutive meeting intervals counted toward a ceiling relaxation.
    ceiling_calm: u32,
    /// Sensor readings rejected or distrusted by the plausibility filter.
    sensor_rejections: u64,
}

/// Comfortable intervals required before one more harvesting step — the
/// asymmetric response (return immediately, harvest slowly) that keeps the
/// controller from thrashing across the SLO boundary.
const HARVEST_PATIENCE: u32 = 4;

impl AumController {
    /// Creates a controller from a profiled AUV model, starting at the
    /// bucket the efficiency-aware switcher picks for the static SLOs.
    ///
    /// Accepts either an owned [`AuvModel`] or an `Arc<AuvModel>`; passing
    /// the `Arc` (e.g. straight from the bench harness model cache) shares
    /// the profiled buckets instead of cloning them per controller.
    #[must_use]
    pub fn new(model: impl Into<Arc<AuvModel>>) -> Self {
        Self::with_threshold(model, DEFAULT_DELTA_THRESHOLD)
    }

    /// Creates a controller with a custom δ threshold (sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive.
    #[must_use]
    pub fn with_threshold(model: impl Into<Arc<AuvModel>>, delta_threshold: f64) -> Self {
        let model = model.into();
        assert!(delta_threshold > 0.0, "delta threshold must be positive");
        let slo = model.scenario.slo();
        let current = model.best_bucket(slo.ttft.as_secs_f64(), slo.tpot.as_secs_f64());
        // Representative operator intensities: QKV mapping at d=4096 with
        // the scenario's mean prompt length and batch 16 (§VI-B1).
        let mean_input = model.scenario.mean_input();
        let u_high = usage_from_ari(qkv_ari_prefill(4096, 16, mean_input));
        let u_low = usage_from_ari(qkv_ari_decode(4096, 16));
        let ttft_floor = model
            .buckets
            .iter()
            .map(|b| b.ttft_p90)
            .fold(f64::INFINITY, f64::min);
        let tpot_floor = model
            .buckets
            .iter()
            .map(|b| b.tpot_p90)
            .fold(f64::INFINITY, f64::min);
        let harvest_ceiling = model.cfg_count.saturating_sub(1);
        AumController {
            model,
            delta_threshold,
            current,
            cooldown: 0,
            u_high,
            u_low,
            ttft_floor,
            tpot_floor,
            calm_streak: 0,
            refine_alpha: None,
            switches: 0,
            tunes: 0,
            decisions: Vec::new(),
            tracer: Tracer::disabled(),
            mode: ResilienceMode::Normal,
            mode_age: 0,
            breach_window: VecDeque::new(),
            ttft_hist: VecDeque::new(),
            tpot_hist: VecDeque::new(),
            last_sensor_bits: None,
            stale_streak: 0,
            backoff_level: 0,
            last_violating: None,
            safe_entries: 0,
            safe_relapses: 0,
            since_safe_exit: u32::MAX,
            harvest_ceiling,
            ceiling_calm: 0,
            sensor_rejections: 0,
        }
    }

    /// Enables online model refinement with EWMA weight `alpha` — the
    /// complement the paper lists as future work (§VII-D limitation).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    #[must_use]
    pub fn with_online_refinement(mut self, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "refinement weight must be in (0,1]"
        );
        self.refine_alpha = Some(alpha);
        self
    }

    /// The profiled model backing the controller.
    #[must_use]
    pub fn model(&self) -> &AuvModel {
        &self.model
    }

    /// Current `(division, configuration)` bucket indices.
    #[must_use]
    pub fn current_bucket(&self) -> (usize, usize) {
        self.current
    }

    /// Division switches performed so far.
    #[must_use]
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Allocation tuning steps performed so far.
    #[must_use]
    pub fn tune_count(&self) -> u64 {
        self.tunes
    }

    /// Current graceful-degradation mode of the resilience layer.
    #[must_use]
    pub fn resilience_mode(&self) -> ResilienceMode {
        self.mode
    }

    /// Times safe mode was entered (including re-entries after a failed
    /// recovery probe).
    #[must_use]
    pub fn safe_mode_entries(&self) -> u64 {
        self.safe_entries
    }

    /// Sensor readings the plausibility filter rejected or flagged stale.
    #[must_use]
    pub fn sensor_rejections(&self) -> u64 {
        self.sensor_rejections
    }

    /// Timestamped trail of non-trivial actions (harvest/return/switch) —
    /// a thin compatibility view over [`AumController::decision_log`].
    #[must_use]
    pub fn action_log(&self) -> Vec<(SimTime, ControllerAction)> {
        self.decisions
            .iter()
            .map(|(at, event)| {
                let kind = match event {
                    Event::ControllerDecision { kind, .. } => *kind,
                    _ => unreachable!("decision log only holds ControllerDecision events"),
                };
                let action = match kind {
                    DecisionKind::Harvest => ControllerAction::Harvest,
                    DecisionKind::Return => ControllerAction::Return,
                    DecisionKind::Switch => ControllerAction::Switch,
                };
                (*at, action)
            })
            .collect()
    }

    /// The full decision trail: one [`Event::ControllerDecision`] per
    /// non-trivial action, with the verdict, deviation and stated reason.
    #[must_use]
    pub fn decision_log(&self) -> &[(SimTime, Event)] {
        &self.decisions
    }

    /// Records a decision in the trail and streams it to the tracer.
    fn push_decision(&mut self, at: SimTime, event: Event) {
        self.tracer.emit(at, || event.clone());
        self.decisions.push((at, event));
    }

    fn decision_for(&self, bucket: (usize, usize)) -> Decision {
        let b = self.model.bucket(bucket.0, bucket.1);
        Decision {
            division: b.division,
            allocation: b.allocation,
            smt_sharing: false,
            engine_mode: EngineMode::Partitioned,
        }
    }

    /// Algorithm 1 lines 9/13: usage-weighted deviation between measured
    /// performance and the runtime SLOs. `ratios` are `SLO/P^m` (headroom,
    /// when meeting) or `P^m/SLO` (shortfall, when violating).
    fn deviation(&self, ttft_ratio: f64, tpot_ratio: f64) -> f64 {
        self.u_high * ttft_ratio + self.u_low * tpot_ratio
    }

    /// Plausibility filter: a reading further than [`PLAUSIBLE_FACTOR`]
    /// from the median of the last [`SENSOR_WINDOW`] readings is rejected
    /// and the median substituted. The raw reading still enters the
    /// history, so a genuine level shift becomes the new median within a
    /// few intervals and is trusted again — only isolated spikes (noise
    /// faults, torn reads) are suppressed.
    fn plausible(&mut self, sensor: &'static str, observed: f64, now: SimTime) -> f64 {
        let hist = if sensor == "recent_ttft_p90" {
            &mut self.ttft_hist
        } else {
            &mut self.tpot_hist
        };
        let median = if hist.len() >= 3 {
            let mut sorted: Vec<f64> = hist.iter().copied().collect();
            sorted.sort_by(f64::total_cmp);
            Some(sorted[sorted.len() / 2])
        } else {
            None
        };
        if hist.len() == SENSOR_WINDOW {
            hist.pop_front();
        }
        hist.push_back(observed);
        if let Some(med) = median {
            let implausible = med > 1e-6
                && (observed > med * PLAUSIBLE_FACTOR || observed < med / PLAUSIBLE_FACTOR);
            if implausible {
                self.sensor_rejections += 1;
                self.tracer.emit(now, || Event::SensorRejected {
                    sensor: sensor.to_string(),
                    observed,
                    substituted: med,
                    reason: format!(
                        "outside {PLAUSIBLE_FACTOR}x band around \
                         median-of-last-{SENSOR_WINDOW} {med:.4}"
                    ),
                });
                return med;
            }
        }
        observed
    }

    /// Stale-readback detection: a dropped-out sensor path repeats frames
    /// bit-for-bit. Flagged once per streak (telemetry + counter); the
    /// frozen values are internally consistent, so decisions continue on
    /// them for a grace period — past [`STALE_HOLD_INTERVALS`] the
    /// controller holds its bucket instead (see `decide`).
    fn detect_stale(&mut self, state: &SystemState) {
        let bits = [
            state.recent_ttft_p50.to_bits(),
            state.recent_ttft_p90.to_bits(),
            state.recent_tpot_p50.to_bits(),
            state.recent_tpot_p90.to_bits(),
            state.power_w.to_bits(),
            state.bw_utilization.to_bits(),
        ];
        if self.last_sensor_bits == Some(bits) {
            self.stale_streak += 1;
            if self.stale_streak == STALE_INTERVALS {
                self.sensor_rejections += 1;
                self.tracer.emit(state.now, || Event::SensorRejected {
                    sensor: "all".to_string(),
                    observed: state.recent_ttft_p90,
                    substituted: state.recent_ttft_p90,
                    reason: format!(
                        "bit-identical readback for {STALE_INTERVALS} intervals: \
                         sensor dropout suspected"
                    ),
                });
            }
        } else {
            self.stale_streak = 0;
            self.last_sensor_bits = Some(bits);
        }
    }

    /// Arms the post-action cooldown with exponential backoff: a direction
    /// flip (harvest↔return) doubles the wait — oscillation under faulted
    /// sensors burns exponentially fewer actions — while calm
    /// same-direction actions decay the level back toward the base.
    fn arm_cooldown(&mut self, violating: bool) {
        if self.last_violating == Some(!violating) {
            self.backoff_level = (self.backoff_level + 1).min(MAX_BACKOFF_LEVEL);
        } else if !violating && self.backoff_level > 0 {
            self.backoff_level -= 1;
        }
        self.last_violating = Some(violating);
        self.cooldown = COOLDOWN_INTERVALS << self.backoff_level;
    }

    /// Advances the graceful-degradation state machine on the current
    /// breach pressure and performs entry actions on transition
    /// (safe mode: shed BE by falling back to the profiler's conservative
    /// division with zero harvesting).
    fn step_resilience(&mut self, now: SimTime, d_ttft: f64, d_tpot: f64) {
        self.mode_age = self.mode_age.saturating_add(1);
        if self.mode != ResilienceMode::SafeMode {
            self.since_safe_exit = self.since_safe_exit.saturating_add(1);
        }
        let n = self.breach_window.len();
        if n < MIN_PRESSURE_SAMPLES {
            return;
        }
        let pressure = self.breach_window.iter().filter(|b| **b).count() as f64 / n as f64;
        use ResilienceMode as M;
        let next = match self.mode {
            M::Normal if pressure >= DEGRADE_PRESSURE => Some((
                M::Degraded,
                format!("breach pressure {pressure:.2} >= {DEGRADE_PRESSURE}: harvesting frozen"),
            )),
            M::Degraded if pressure >= SAFE_PRESSURE => Some((
                M::SafeMode,
                format!(
                    "breach pressure {pressure:.2} >= {SAFE_PRESSURE}: shedding BE, \
                     falling back to the profiler's conservative division"
                ),
            )),
            M::Degraded if pressure <= CALM_PRESSURE && self.mode_age >= 4 => {
                Some((M::Normal, format!("breach pressure {pressure:.2} subsided")))
            }
            M::SafeMode
                if pressure <= RECOVER_PRESSURE
                    && self.mode_age >= (SAFE_DWELL_INTERVALS << self.safe_relapses) =>
            {
                Some((
                    M::Recovering,
                    format!(
                        "breach pressure {pressure:.2} <= {RECOVER_PRESSURE}: \
                         probing harvest capacity (dwell {} intervals)",
                        SAFE_DWELL_INTERVALS << self.safe_relapses
                    ),
                ))
            }
            M::Recovering if pressure > RECOVER_PRESSURE => Some((
                M::SafeMode,
                format!("renewed breach pressure {pressure:.2} during recovery probe"),
            )),
            M::Recovering if pressure <= CALM_PRESSURE && self.mode_age >= 16 => Some((
                M::Normal,
                format!("recovery held for {} intervals", self.mode_age),
            )),
            _ => None,
        };
        if let Some((to, reason)) = next {
            let from = self.mode;
            self.mode = to;
            self.mode_age = 0;
            self.tracer
                .emit(now, || Event::SafeModeTransition { from, to, reason });
            match to {
                M::SafeMode => {
                    self.safe_entries += 1;
                    self.safe_relapses = if self.since_safe_exit <= RELAPSE_WINDOW {
                        (self.safe_relapses + 1).min(MAX_RELAPSE_LEVEL)
                    } else {
                        0
                    };
                    self.current = (self.model.conservative_division(d_ttft, d_tpot), 0);
                    self.harvest_ceiling = 0;
                    self.ceiling_calm = 0;
                    self.cooldown = 0;
                    self.calm_streak = 0;
                    self.backoff_level = MAX_BACKOFF_LEVEL;
                }
                M::Recovering => {
                    self.since_safe_exit = 0;
                    self.backoff_level = 2;
                    self.calm_streak = 0;
                }
                _ => {}
            }
        }
    }
}

impl ResourceManager for AumController {
    fn name(&self) -> &'static str {
        "AUM"
    }

    fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn resilience(&self) -> Option<ResilienceMode> {
        Some(self.resilience_mode())
    }

    fn decide(&mut self, state: &SystemState) -> Decision {
        let slo = state.scenario.slo();
        let d_ttft = slo.ttft.as_secs_f64();
        let d_tpot = slo.tpot.as_secs_f64();

        // --- Stage 1: slack-aware SLO analysis. ---
        let slo_h = (d_ttft - state.head_wait.as_secs_f64()).max(0.25 * d_ttft);
        let lag = if state.worst_lag_secs.is_finite() {
            state.worst_lag_secs.clamp(-0.5 * d_tpot, d_tpot)
        } else {
            d_tpot // idle decode: fully relaxed
        };
        let slo_l = (d_tpot + lag).clamp(0.5 * d_tpot, 2.0 * d_tpot);
        // Only a *structurally unattainable* deadline (no profiled bucket
        // can reach it, e.g. the cc TTFT, §VII-C) degrades to a best-effort
        // budget anchored at the profiled floor; attainable deadlines are
        // enforced as-is.
        let slo_h = if self.ttft_floor > d_ttft {
            slo_h.max(self.ttft_floor * 1.2)
        } else {
            slo_h
        };
        let slo_l = if self.tpot_floor > d_tpot {
            slo_l.max(self.tpot_floor * 1.2)
        } else {
            slo_l
        };

        let cooling = self.cooldown > 0;
        if cooling {
            self.cooldown -= 1;
        }
        // No measurements yet: stay on the switcher's initial choice.
        if state.recent_tpot_p90 <= 0.0 && state.recent_ttft_p90 <= 0.0 {
            return self.decision_for(self.current);
        }

        // --- Resilience: sensor distrust. ---
        self.detect_stale(state);
        if self.stale_streak >= STALE_HOLD_INTERVALS {
            return self.decision_for(self.current);
        }
        let ttft_m = self
            .plausible("recent_ttft_p90", state.recent_ttft_p90, state.now)
            .max(1e-4);
        // The TPOT SLO constrains per-request *averages*; the recent token
        // median is the robust online proxy for that average.
        let tpot_m = self
            .plausible("recent_tpot_p50", state.recent_tpot_p50, state.now)
            .max(1e-4);

        // --- Stage 3: collision-aware monitoring. ---
        let meeting = ttft_m <= slo_h && tpot_m <= slo_l;
        if ttft_m > slo_h {
            self.tracer.emit(state.now, || Event::SloBreach {
                metric: SloMetric::Ttft,
                observed_secs: ttft_m,
                budget_secs: slo_h,
            });
        }
        if tpot_m > slo_l {
            self.tracer.emit(state.now, || Event::SloBreach {
                metric: SloMetric::Tpot,
                observed_secs: tpot_m,
                budget_secs: slo_l,
            });
        }

        // --- Resilience: breach-pressure state machine. ---
        if self.breach_window.len() == PRESSURE_WINDOW {
            self.breach_window.pop_front();
        }
        self.breach_window.push_back(!meeting);
        self.step_resilience(state.now, d_ttft, d_tpot);
        if self.mode == ResilienceMode::SafeMode {
            // Safe mode holds the conservative fallback: no tuning, no
            // switching, BE shed, until pressure subsides.
            return self.decision_for(self.current);
        }
        if cooling {
            return self.decision_for(self.current);
        }

        // Online refinement: fold measurements into the current bucket.
        // The model is shared (`Arc`) across controllers; refinement
        // copies-on-write so other holders keep the pristine profile.
        if let Some(alpha) = self.refine_alpha {
            let idx = self.current.0 * self.model.cfg_count + self.current.1;
            if Arc::strong_count(&self.model) > 1 {
                // `make_mut` below will clone the whole profile for this
                // controller — the copy-on-write event the perf report
                // counts against `ModelCache` savings.
                aum_sim::prof::count("model.cow_clone", 1);
            }
            aum_sim::prof::count("model.refine", 1);
            let b = &mut Arc::make_mut(&mut self.model).buckets[idx];
            if state.recent_ttft_p90 > 0.0 {
                b.ttft_p90 = (1.0 - alpha) * b.ttft_p90 + alpha * state.recent_ttft_p90;
                b.ttft_p50 = (1.0 - alpha) * b.ttft_p50 + alpha * state.recent_ttft_p50;
            }
            if state.recent_tpot_p90 > 0.0 {
                b.tpot_p90 = (1.0 - alpha) * b.tpot_p90 + alpha * state.recent_tpot_p90;
                b.tpot_p50 = (1.0 - alpha) * b.tpot_p50 + alpha * state.recent_tpot_p50;
            }
        }

        if meeting {
            self.calm_streak += 1;
            // A calm stretch slowly re-opens the harvest ceiling, one rung
            // per CEILING_DECAY_INTERVALS — the slow half of the hysteresis.
            if self.harvest_ceiling + 1 < self.model.cfg_count {
                self.ceiling_calm += 1;
                if self.ceiling_calm >= CEILING_DECAY_INTERVALS {
                    self.harvest_ceiling += 1;
                    self.ceiling_calm = 0;
                }
            }
            if self.calm_streak < HARVEST_PATIENCE {
                return self.decision_for(self.current);
            }
            if self.mode == ResilienceMode::Degraded {
                // Degraded: recent breach pressure says the headroom is not
                // trustworthy — hold position instead of harvesting into it.
                return self.decision_for(self.current);
            }
            // Aggressive direction: harvest using average predictions.
            let delta = self.deviation(slo_h / ttft_m, slo_l / tpot_m);
            let mut switched = false;
            if delta > self.delta_threshold {
                // Large headroom: re-run the switcher. Algorithm 1 line 5
                // constrains the switcher with the *static* `d_TPOT`: LAG
                // slack is transient and must not admit divisions whose
                // steady state violates the deadline. A 5% margin keeps the
                // settled point off the knife edge.
                // The switcher's cfg is clamped to the harvest ceiling so a
                // headroom-driven switch cannot leapfrog the ladder's
                // hysteresis straight back into a config that just burned us.
                let next = {
                    let (d, c) = self.model.best_bucket(slo_h, 0.95 * d_tpot);
                    (d, c.min(self.harvest_ceiling))
                };
                if next != self.current {
                    let from = self.current;
                    self.current = next;
                    self.switches += 1;
                    self.push_decision(
                        state.now,
                        Event::ControllerDecision {
                            kind: DecisionKind::Switch,
                            action: format!(
                                "Switch(div {}\u{2192}{}, cfg {}\u{2192}{})",
                                from.0, next.0, from.1, next.1
                            ),
                            verdict: SlackVerdict::Meeting,
                            lag_secs: lag,
                            deviation: delta,
                            collision: true,
                            reason: format!(
                                "headroom \u{3b4}={delta:.2} > {:.2}: switcher re-selects the \
                             division for SLO_H {slo_h:.3}s / d_TPOT {d_tpot:.3}s",
                                self.delta_threshold
                            ),
                        },
                    );
                    self.arm_cooldown(false);
                    switched = true;
                }
            }
            if !switched
                && self.current.1 + 1 < self.model.cfg_count
                && self.current.1 < self.harvest_ceiling
            {
                // One ladder step, admitted on *average* predictions.
                let candidate = (self.current.0, self.current.1 + 1);
                let b = self.model.bucket(candidate.0, candidate.1);
                // Admit with a 10% safety margin on the decode axis, which
                // reacts fastest to bandwidth harvesting.
                if b.ttft_p50 <= slo_h && b.tpot_p50 <= 0.88 * slo_l {
                    let (ttft_p50, tpot_p50) = (b.ttft_p50, b.tpot_p50);
                    let from_cfg = self.current.1;
                    self.current = candidate;
                    self.tunes += 1;
                    self.push_decision(
                        state.now,
                        Event::ControllerDecision {
                            kind: DecisionKind::Harvest,
                            action: format!("Harvest(cfg {from_cfg}\u{2192}{})", candidate.1),
                            verdict: SlackVerdict::Meeting,
                            lag_secs: lag,
                            deviation: delta,
                            collision: false,
                            reason: format!(
                                "meeting SLOs {HARVEST_PATIENCE}+ intervals; avg predictions \
                             fit (TTFT p50 {ttft_p50:.3}s \u{2264} SLO_H {slo_h:.3}s, \
                             TPOT p50 {tpot_p50:.3}s \u{2264} 0.88\u{b7}SLO_L {slo_l:.3}s)"
                            ),
                        },
                    );
                    self.arm_cooldown(false);
                }
            }
        } else {
            self.calm_streak = 0;
            self.ceiling_calm = 0;
            // Conservative direction: return resources using tail predictions.
            let delta = self.deviation(ttft_m / slo_h, tpot_m / slo_l);
            let cur = self.model.bucket(self.current.0, self.current.1);
            // Switch when the deviation exceeds the threshold (Algorithm 1
            // line 16) or when the current bucket is *structurally* unable
            // to meet the deadline — no amount of ladder tuning fixes a
            // division whose profiled tail already violates.
            let structurally_bad = cur.tpot_p90 > d_tpot.max(self.tpot_floor * 1.2) * 1.05;
            if delta > self.delta_threshold || structurally_bad {
                let next = self.model.best_bucket(slo_h, d_tpot);
                if next != self.current {
                    let from = self.current;
                    self.current = next;
                    // Violating action: remember that harvesting past the
                    // destination rung just failed.
                    self.harvest_ceiling = self.harvest_ceiling.min(next.1);
                    self.switches += 1;
                    let reason = if structurally_bad {
                        format!(
                            "current division structurally violates: profiled TPOT p90 \
                             {:.3}s cannot meet d_TPOT {d_tpot:.3}s",
                            cur.tpot_p90
                        )
                    } else {
                        format!(
                            "collision: \u{3b4}={delta:.2} > {:.2}, tuning deemed \
                             insufficient (TTFT p90 {ttft_m:.3}s vs SLO_H {slo_h:.3}s, \
                             TPOT p50 {tpot_m:.3}s vs SLO_L {slo_l:.3}s)",
                            self.delta_threshold
                        )
                    };
                    self.push_decision(
                        state.now,
                        Event::ControllerDecision {
                            kind: DecisionKind::Switch,
                            action: format!(
                                "Switch(div {}\u{2192}{}, cfg {}\u{2192}{})",
                                from.0, next.0, from.1, next.1
                            ),
                            verdict: SlackVerdict::Violating,
                            lag_secs: lag,
                            deviation: delta,
                            collision: delta > self.delta_threshold,
                            reason,
                        },
                    );
                    self.arm_cooldown(true);
                    return self.decision_for(self.current);
                }
            }
            if self.current.1 > 0 {
                // Stepping down the bound-aware ladder is by construction
                // the conservative direction: the AU regains the resource
                // whose loss hurt it most recently.
                let from_cfg = self.current.1;
                self.current = (self.current.0, self.current.1 - 1);
                // Violating action: the rung we just stepped off burned us —
                // cap the ladder at the rung below it.
                self.harvest_ceiling = self.harvest_ceiling.min(self.current.1);
                self.tunes += 1;
                let reason = if ttft_m > slo_h {
                    format!("TTFT p90 {ttft_m:.3}s > SLO_H {slo_h:.3}s")
                } else {
                    format!("TPOT p50 {tpot_m:.3}s > SLO_L {slo_l:.3}s")
                };
                self.push_decision(
                    state.now,
                    Event::ControllerDecision {
                        kind: DecisionKind::Return,
                        action: format!("Return(cfg {from_cfg}\u{2192}{})", self.current.1),
                        verdict: SlackVerdict::Violating,
                        lag_secs: lag,
                        deviation: delta,
                        collision: false,
                        reason,
                    },
                );
                self.arm_cooldown(true);
            }
        }
        self.decision_for(self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{build_model, ProfilerConfig};
    use aum_llm::traces::Scenario;
    use aum_platform::spec::PlatformSpec;
    use aum_sim::time::{SimDuration, SimTime};
    use aum_workloads::be::BeKind;

    fn model() -> AuvModel {
        let cfg = ProfilerConfig::smoke(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
        build_model(&cfg)
    }

    fn state(ttft_p90: f64, tpot_p90: f64, lag: f64) -> SystemState {
        SystemState {
            now: SimTime::from_secs(20),
            scenario: Scenario::Chatbot,
            be: Some(BeKind::SpecJbb),
            queue_len: 0,
            head_wait: SimDuration::ZERO,
            decode_batch: 10,
            worst_lag_secs: lag,
            recent_ttft_p50: ttft_p90 * 0.7,
            recent_ttft_p90: ttft_p90,
            recent_tpot_p50: tpot_p90 * 0.9,
            recent_tpot_p90: tpot_p90,
            power_w: 220.0,
            bw_utilization: 0.9,
        }
    }

    #[test]
    fn usage_weights_order_high_over_low() {
        let c = AumController::new(model());
        assert!(c.u_high > 0.8, "prefill usage {}", c.u_high);
        assert!(c.u_low < 0.25, "decode usage {}", c.u_low);
    }

    #[test]
    fn cold_controller_returns_switcher_choice() {
        let mut c = AumController::new(model());
        let init = c.current_bucket();
        let d = c.decide(&state(0.0, 0.0, 0.0));
        assert_eq!(c.current_bucket(), init);
        assert_eq!(d.division, c.model().bucket(init.0, init.1).division);
    }

    #[test]
    fn comfortable_serving_settles_on_most_efficient_bucket() {
        let mut c = AumController::new(model());
        // Far within SLO, positive LAG → the controller converges on the
        // highest-efficiency bucket that remains feasible.
        for _ in 0..20 {
            let _ = c.decide(&state(0.05, 0.04, 0.05));
        }
        let (di, ci) = c.current_bucket();
        let eff = c.model().bucket(di, ci).efficiency;
        let max_eff = c
            .model()
            .buckets
            .iter()
            .map(|b| b.efficiency)
            .fold(0.0, f64::max);
        assert!(
            eff >= 0.95 * max_eff,
            "settled efficiency {eff} should be near the model maximum {max_eff}"
        );
    }

    #[test]
    fn violations_return_resources() {
        let mut c = AumController::new(model());
        // First settle comfortably.
        for _ in 0..20 {
            let _ = c.decide(&state(0.05, 0.04, 0.05));
        }
        let harvested = c.current_bucket().1;
        assert!(
            harvested > 0,
            "comfortable serving should sit on a harvesting config"
        );
        // Then violate TPOT (below the δ switch threshold).
        for _ in 0..12 {
            let _ = c.decide(&state(0.10, 0.115, -0.01));
        }
        assert!(
            c.current_bucket().1 < harvested,
            "violation must tune resources back: {} -> {}",
            harvested,
            c.current_bucket().1
        );
        assert!(c.tune_count() > 0);
    }

    #[test]
    fn large_deviation_switches_division() {
        let mut c = AumController::new(model());
        let before = c.switch_count();
        // Extreme violation: δ = u_h·(ttft/slo) + u_l·(tpot/slo) > 2.
        for _ in 0..10 {
            let _ = c.decide(&state(0.9, 0.5, -0.05));
        }
        // Either a switch happened, or the model's best bucket for tight
        // budgets was already current — accept both but require the
        // controller to have considered it (no panic, valid decision).
        let _ = before;
        let d = c.decide(&state(0.9, 0.5, -0.05));
        assert_eq!(d.division.total_cores(), 96);
    }

    #[test]
    fn decision_always_covers_platform() {
        let mut c = AumController::new(model());
        for (ttft, tpot, lag) in [
            (0.01, 0.01, 0.1),
            (0.5, 0.3, -0.2),
            (0.2, 0.09, 0.0),
            (0.0, 0.0, 0.0),
        ] {
            let d = c.decide(&state(ttft, tpot, lag));
            assert_eq!(d.division.total_cores(), 96);
            assert!(!d.smt_sharing);
        }
    }

    #[test]
    fn idle_decode_relaxes_tpot_budget() {
        let mut c = AumController::new(model());
        // Infinite LAG (idle) with mediocre measured TPOT: treated as
        // relaxed, so no panic and no forced return of resources.
        let d = c.decide(&state(0.05, 0.15, f64::INFINITY));
        assert_eq!(d.division.total_cores(), 96);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = AumController::with_threshold(model(), 0.0);
    }

    #[test]
    fn action_log_records_the_decision_trail() {
        let mut c = AumController::new(model());
        for _ in 0..20 {
            let _ = c.decide(&state(0.05, 0.04, 0.05));
        }
        for _ in 0..12 {
            let _ = c.decide(&state(0.10, 0.115, -0.01));
        }
        let log = c.action_log();
        assert_eq!(log.len() as u64, c.switch_count() + c.tune_count());
        assert!(log.iter().any(|(_, a)| *a == ControllerAction::Return));
        // Timestamps are non-decreasing.
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn decisions_stream_to_the_tracer_with_reasons() {
        use aum_sim::telemetry::MemorySink;
        let (tracer, sink) = Tracer::shared(MemorySink::new());
        let mut c = AumController::new(model());
        c.attach_tracer(tracer);
        for _ in 0..20 {
            let _ = c.decide(&state(0.05, 0.04, 0.05));
        }
        for _ in 0..12 {
            let _ = c.decide(&state(0.10, 0.115, -0.01));
        }
        let records = sink.lock().expect("sink lock").records().to_vec();
        let decisions: Vec<_> = records
            .iter()
            .filter(|r| matches!(r.event, Event::ControllerDecision { .. }))
            .collect();
        // Every non-trivial action appears exactly once in the stream.
        assert_eq!(decisions.len() as u64, c.switch_count() + c.tune_count());
        assert_eq!(decisions.len(), c.decision_log().len());
        for r in &decisions {
            if let Event::ControllerDecision { reason, action, .. } = &r.event {
                assert!(!reason.is_empty(), "decision must state its reason");
                assert!(!action.is_empty());
            }
        }
        // The violating stretch produced SLO-breach events too.
        assert!(records
            .iter()
            .any(|r| matches!(r.event, Event::SloBreach { .. })));
    }

    #[test]
    fn online_refinement_folds_measurements_into_the_model() {
        let mut c = AumController::new(model()).with_online_refinement(0.3);
        let (d, cf) = c.current_bucket();
        let before = c.model().bucket(d, cf).tpot_p90;
        // Persistently worse decode than profiled.
        for _ in 0..10 {
            let _ = c.decide(&state(0.3, 0.2, -0.02));
        }
        let (d2, cf2) = c.current_bucket();
        // Either the current bucket's tail drifted toward the measurement,
        // or the controller already fled the bucket because refinement
        // re-ranked it.
        if (d2, cf2) == (d, cf) {
            assert!(
                c.model().bucket(d, cf).tpot_p90 > before,
                "refinement must raise the bucket's tail toward 0.2 s"
            );
        } else {
            assert!(c.switch_count() + c.tune_count() > 0);
        }
    }

    #[test]
    fn refinement_disabled_keeps_the_model_frozen() {
        let mut c = AumController::new(model());
        let snapshot = c.model().clone();
        for _ in 0..10 {
            let _ = c.decide(&state(0.3, 0.2, -0.02));
        }
        assert_eq!(
            c.model(),
            &snapshot,
            "without refinement the model is read-only"
        );
    }

    #[test]
    #[should_panic(expected = "refinement weight")]
    fn bad_refinement_weight_rejected() {
        let _ = AumController::new(model()).with_online_refinement(0.0);
    }
}
