//! Crate error type.

use core::fmt;

/// Errors returned by AUM's fallible APIs (AUV-model persistence,
/// fault-plan validation, attribution-ledger conservation).
#[derive(Debug)]
pub enum AumError {
    /// Filesystem error while reading or writing a model artifact.
    Io(std::io::Error),
    /// The model artifact could not be (de)serialized.
    Serde(serde_json::Error),
    /// A fault plan is malformed (bad parameters or timing) — experiments
    /// reject it cleanly instead of aborting the process.
    FaultPlan(String),
    /// The run's attribution ledger failed a conservation invariant
    /// (attributed time ≠ wall time or attributed joules ≠ modeled energy
    /// beyond [`aum_sim::attrib::EPSILON`]).
    Attribution(aum_sim::attrib::ConservationError),
}

impl fmt::Display for AumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AumError::Io(e) => write!(f, "model artifact io error: {e}"),
            AumError::Serde(e) => write!(f, "model artifact encoding error: {e}"),
            AumError::FaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            AumError::Attribution(e) => write!(f, "attribution ledger violation: {e}"),
        }
    }
}

impl std::error::Error for AumError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AumError::Io(e) => Some(e),
            AumError::Serde(e) => Some(e),
            AumError::FaultPlan(_) => None,
            AumError::Attribution(e) => Some(e),
        }
    }
}

impl From<aum_sim::attrib::ConservationError> for AumError {
    fn from(e: aum_sim::attrib::ConservationError) -> Self {
        AumError::Attribution(e)
    }
}

impl From<aum_platform::state::BandwidthDegradeError> for AumError {
    fn from(e: aum_platform::state::BandwidthDegradeError) -> Self {
        AumError::FaultPlan(e.to_string())
    }
}

impl From<std::io::Error> for AumError {
    fn from(e: std::io::Error) -> Self {
        AumError::Io(e)
    }
}

impl From<serde_json::Error> for AumError {
    fn from(e: serde_json::Error) -> Self {
        AumError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AumError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(format!("{e}").contains("io error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
