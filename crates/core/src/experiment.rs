//! The co-location experiment harness.
//!
//! Runs an AU-accelerated LLM serving workload (optionally sharing the
//! platform with one best-effort application) under a given resource
//! manager, coupling the substrates each control interval:
//!
//! 1. the manager observes serving/platform telemetry and decides a
//!    [`crate::manager::Decision`] (division, RDT allocation, SMT sharing,
//!    engine mode);
//! 2. the platform model resolves frequencies, bandwidth grants and power
//!    for the described loads (including SMT sibling power);
//! 3. the serving engine advances with the granted resources, and the BE
//!    throughput model integrates its progress;
//! 4. telemetry feeds back into the next decision.
//!
//! This is the reproduction's equivalent of the paper's testbed runs behind
//! Figures 14-18.
//!
//! One harness run simulates one server. Cluster-scale composition lives
//! in [`crate::cluster`] (steady-state split across servers) and
//! [`crate::fleet`] (the epoch-based resilient router above those
//! servers); both reuse this harness per node.

use serde::{Deserialize, Serialize};

use aum_au::topdown::{signature, SignatureKind};
use aum_au::unit::Precision;
use aum_llm::config::ModelConfig;
use aum_llm::engine::{
    EngineConfig, EngineMode, EngineResources, IntervalStats, LlmEngine, RegionResources,
};
use aum_llm::slo::SloReport;
use aum_llm::traces::{RateProfile, Scenario, TraceGenerator};
use aum_platform::power::ActivityClass;
use aum_platform::smt::smt_impact;
use aum_platform::spec::PlatformSpec;
use aum_platform::state::{PlatformSim, RegionLoad, SmtSibling, SMT_POWER_FACTOR};
use aum_platform::topology::{AuUsageLevel, ProcessorDivision};
use aum_platform::units::GbPerSec;
use aum_sim::attrib::{self, IntervalLedger, Ledger, RegionSample, WorkFractions};
use aum_sim::rng::DetRng;
use aum_sim::series::TimeSeries;
use aum_sim::span::{SpanId, SpanKind};
use aum_sim::stats::Samples;
use aum_sim::telemetry::{Event, MetricsRegistry, MetricsSnapshot, ResilienceMode, Tracer};
use aum_sim::time::{SimDuration, SimTime};
use aum_workloads::be::{BeKind, BeProfile};

use crate::error::AumError;
use crate::manager::{ResourceManager, SystemState};
use crate::prices::{e_cpu, Prices};

pub use crate::fault::{Fault, FaultEvent, FaultPlan};

/// Load indices in the platform step.
const IDX_HIGH: usize = 0;
const IDX_LOW: usize = 1;
const IDX_NONE: usize = 2;
const IDX_SIBLING: usize = 3;

/// Configuration of one co-location experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Platform under test.
    pub platform: PlatformSpec,
    /// Serving scenario.
    pub scenario: Scenario,
    /// Co-located best-effort application (None = exclusive).
    pub be: Option<BeKind>,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Control interval of the manager.
    pub control_interval: SimDuration,
    /// Experiment seed (trace + any stochastic components).
    pub seed: u64,
    /// Request rate override (req/s); scenario default when `None`.
    pub rate: Option<f64>,
    /// Time profile of the offered rate (diurnal/step studies).
    #[serde(default)]
    pub rate_profile: RateProfile,
    /// Scripted platform faults injected mid-run (empty = healthy run).
    /// Legacy single-`fault` JSON configs deserialize into a one-event
    /// plan; see [`FaultPlan`].
    #[serde(default)]
    pub fault: FaultPlan,
    /// Efficiency prices.
    pub prices: Prices,
    /// Served model.
    pub model: ModelConfig,
}

impl ExperimentConfig {
    /// The paper's default setup: llama2-7b on the given platform and
    /// scenario for 120 simulated seconds, 500 ms control interval.
    #[must_use]
    pub fn paper_default(platform: PlatformSpec, scenario: Scenario, be: Option<BeKind>) -> Self {
        ExperimentConfig {
            platform,
            scenario,
            be,
            duration: SimDuration::from_secs(300),
            control_interval: SimDuration::from_millis(500),
            seed: 42,
            rate: None,
            rate_profile: RateProfile::Constant,
            fault: FaultPlan::none(),
            prices: Prices::paper_default(),
            model: ModelConfig::llama2_7b(),
        }
    }
}

/// Aggregated result of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// Manager scheme name.
    pub scheme: String,
    /// SLO guarantee report (Fig 17 inputs).
    pub slo: SloReport,
    /// Prefill tokens per second (`P_H`).
    pub prefill_tps: f64,
    /// Decode tokens per second (`P_L`).
    pub decode_tps: f64,
    /// Best-effort throughput units per second (`P_N`).
    pub be_rate: f64,
    /// Average package power, W.
    pub avg_power_w: f64,
    /// Weighted performance-per-watt (`E_CPU`).
    pub efficiency: f64,
    /// Completed requests.
    pub completed: u64,
    /// Per-interval samples of the shared class's LLC ways (Fig 18 CDF).
    pub shared_llc_samples: Samples,
    /// Per-interval samples of the shared class's bandwidth fraction ×100.
    pub shared_bw_samples: Samples,
    /// Per-interval samples of the None-region core count.
    pub none_core_samples: Samples,
    /// Low-region frequency telemetry.
    pub freq_low: TimeSeries,
    /// Package power telemetry.
    pub power: TimeSeries,
    /// Metrics-registry snapshots, one per control interval: counters
    /// (tokens, completions), gauges (power, utilization, queue depth) and
    /// per-interval latency quantiles.
    #[serde(default)]
    pub metrics: Vec<MetricsSnapshot>,
    /// Per-interval, per-region time/energy attribution (see
    /// [`aum_sim::attrib`]). Verified against the conservation invariants
    /// before the run returns; pre-ledger outcomes deserialize empty.
    #[serde(default)]
    pub ledger: Ledger,
}

impl Outcome {
    /// Normalized efficiency against a baseline outcome.
    #[must_use]
    pub fn efficiency_vs(&self, baseline: &Outcome) -> f64 {
        self.efficiency / baseline.efficiency.max(1e-12)
    }

    /// Serializes the full outcome (metrics, CDF samples, telemetry
    /// series) as pretty-printed JSON — the machine-readable artifact for
    /// external plotting.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::AumError`] on encoding failure.
    pub fn to_json_pretty(&self) -> Result<String, crate::error::AumError> {
        Ok(serde_json::to_string_pretty(self)?)
    }
}

/// Splits overlapping CAT masks into effective capacities: when the two
/// classes' ways oversubscribe the cache (overlapping masks, as in the
/// unpartitioned SMT-AU setup), each class effectively holds a
/// proportional share.
fn effective_ways(au: u32, shared: u32, total: u32, be_present: bool) -> (u32, u32) {
    if !be_present {
        return (au.min(total), 0);
    }
    let sum = au + shared;
    if sum <= total {
        (au, shared)
    } else {
        let au_eff = ((f64::from(au) * f64::from(total)) / f64::from(sum)).round() as u32;
        (
            au_eff.clamp(1, total - 1),
            total - au_eff.clamp(1, total - 1),
        )
    }
}

/// Runs one experiment under `manager`.
///
/// # Panics
///
/// Panics if the manager returns a division that does not cover the
/// platform's cores, or if the config's fault plan is malformed (use
/// [`try_run_experiment`] for a clean error).
pub fn run_experiment(cfg: &ExperimentConfig, manager: &mut dyn ResourceManager) -> Outcome {
    run_experiment_traced(cfg, manager, Tracer::disabled())
}

/// Fallible variant of [`run_experiment`]: a malformed [`FaultPlan`]
/// surfaces as [`AumError::FaultPlan`] instead of a panic.
///
/// # Errors
///
/// Returns [`AumError::FaultPlan`] when the config's fault plan fails
/// validation.
pub fn try_run_experiment(
    cfg: &ExperimentConfig,
    manager: &mut dyn ResourceManager,
) -> Result<Outcome, AumError> {
    try_run_experiment_traced(cfg, manager, Tracer::disabled())
}

/// Runs one experiment under `manager` with a trace handle threaded through
/// the whole stack: the engine (request lifecycle, iterations), the
/// platform (frequency/thermal transitions), the manager (decisions with
/// reasons) and this harness itself (RDT reallocations, fault injection).
/// With `Tracer::disabled()` this is exactly [`run_experiment`].
///
/// # Panics
///
/// Panics if the manager returns a division that does not cover the
/// platform's cores, or if the config's fault plan is malformed (use
/// [`try_run_experiment_traced`] for a clean error).
pub fn run_experiment_traced(
    cfg: &ExperimentConfig,
    manager: &mut dyn ResourceManager,
    tracer: Tracer,
) -> Outcome {
    try_run_experiment_traced(cfg, manager, tracer)
        .unwrap_or_else(|e| panic!("experiment failed: {e}"))
}

/// Fallible variant of [`run_experiment_traced`].
///
/// # Errors
///
/// Returns [`AumError::FaultPlan`] when the config's fault plan fails
/// validation (e.g. a bandwidth fraction outside `(0, 1]` from malformed
/// JSON).
///
/// # Panics
///
/// Panics if the manager returns a division that does not cover the
/// platform's cores.
pub fn try_run_experiment_traced(
    cfg: &ExperimentConfig,
    manager: &mut dyn ResourceManager,
    tracer: Tracer,
) -> Result<Outcome, AumError> {
    let spec = &cfg.platform;
    let total_cores = spec.total_cores();
    let rate = cfg.rate.unwrap_or_else(|| cfg.scenario.default_rate());
    let rng = DetRng::from_seed(cfg.seed);
    let trace = TraceGenerator::new(cfg.scenario, rate)
        .with_profile(cfg.rate_profile)
        .generate(&rng, cfg.duration);
    let engine_cfg = EngineConfig {
        model: cfg.model.clone(),
        precision: Precision::Bf16,
        max_batch: 16,
        prefill_batch: 1,
        scenario: cfg.scenario,
        kv_budget: Some(aum_llm::kv::KvBudget::for_platform(
            spec,
            &cfg.model,
            Precision::Bf16,
        )),
        prefill_chunk: None,
    };
    let mut engine = LlmEngine::new(engine_cfg, spec, trace);
    let mut platform = PlatformSim::new(spec.clone());
    engine.set_tracer(tracer.clone());
    platform.attach_tracer(tracer.clone());
    manager.attach_tracer(tracer.clone());
    // The span track names this run; every distinguishing knob is folded
    // in so concurrent cells sharing one sink never collide on span ids
    // (ids are unique per track only).
    let span_track = format!(
        "{}/{}+{} c{} r{} s{} d{} f{}",
        manager.name(),
        cfg.scenario.code(),
        cfg.be.map_or_else(|| "none".to_string(), |b| b.to_string()),
        total_cores,
        rate,
        cfg.seed,
        cfg.duration.as_secs_f64(),
        cfg.fault.events.len(),
    );
    engine.set_span_track(span_track.clone());
    // The run's SLO deadlines, once, so the trace is self-contained for
    // burn-rate analysis in `trace-summary`.
    let slo = cfg.scenario.slo();
    tracer.emit(SimTime::ZERO, || Event::SloTargets {
        ttft_secs: slo.ttft.as_secs_f64(),
        tpot_secs: slo.tpot.as_secs_f64(),
    });
    let be_profile = cfg.be.map(BeProfile::of);

    // Feedback state from the previous interval.
    let mut last_stats = IntervalStats {
        prefill_busy: 0.5,
        decode_busy: 0.8,
        prefill_bw_demand: GbPerSec(90.0),
        decode_bw_demand: GbPerSec(spec.mem_bw.value() * 1.2),
        ..Default::default()
    };
    let mut last_power = 120.0;
    let mut last_bw_util = 0.5;

    // Accumulators.
    let mut energy_j = 0.0;
    let mut be_units = 0.0;
    let mut prefill_tokens = 0u64;
    let mut decode_tokens = 0u64;
    let mut shared_llc_samples = Samples::new();
    let mut shared_bw_samples = Samples::new();
    let mut none_core_samples = Samples::new();
    let mut freq_low = TimeSeries::new("freq_low_ghz");
    let mut power_series = TimeSeries::new("power_w");

    let dt = cfg.control_interval;
    let dt_secs = dt.as_secs_f64();
    let steps = (cfg.duration.as_nanos() / dt.as_nanos().max(1)) as usize;

    let mut registry = MetricsRegistry::new();
    let mut last_alloc: Option<aum_platform::rdt::RdtAllocation> = None;
    let mut ledger = Ledger::new();
    let mut stall_intervals: u32 = 0;

    // --- Fault plane. ---
    // The plan is validated up front so a malformed script (e.g. from
    // hand-edited JSON) fails the run cleanly before any work happens, and
    // events scheduled past the run window are warned about rather than
    // silently dropped.
    cfg.fault.validate().map_err(AumError::FaultPlan)?;
    let duration_secs = cfg.duration.as_secs_f64();
    #[derive(Clone, Copy)]
    enum FaultEdge {
        Apply,
        Revert,
    }
    let mut fault_schedule: Vec<(f64, usize, FaultEdge)> = Vec::new();
    for (i, ev) in cfg.fault.events.iter().enumerate() {
        if ev.at_secs >= duration_secs {
            tracer.emit(SimTime::ZERO, || Event::FaultOutsideWindow {
                kind: ev.fault.kind_label().to_string(),
                at_secs: ev.at_secs,
                duration_secs,
            });
            continue;
        }
        fault_schedule.push((ev.at_secs, i, FaultEdge::Apply));
        if let Some(rec) = ev.recover_at_secs {
            if rec < duration_secs {
                fault_schedule.push((rec, i, FaultEdge::Revert));
            }
        }
    }
    // Stable sort: same-instant edges keep script order.
    fault_schedule.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(core::cmp::Ordering::Equal));
    let mut fault_cursor = 0usize;
    let mut fault_active = vec![false; cfg.fault.events.len()];
    let mut sensor_rng = rng.stream("sensor-faults");
    let mut frozen_sensors: Option<SystemState> = None;
    // What the RDT MSRs actually hold vs. what the manager last requested:
    // under an RdtWriteFailure the two diverge.
    let mut applied_alloc: Option<aum_platform::rdt::RdtAllocation> = None;
    let mut rdt_pending: std::collections::VecDeque<(usize, aum_platform::rdt::RdtAllocation)> =
        std::collections::VecDeque::new();

    for step in 0..steps {
        let _prof = aum_sim::prof::scope("ctrl.interval");
        let now = SimTime::ZERO + dt * step as u64;
        let until = now + dt;
        tracer.emit(now, || Event::SpanOpen {
            id: SpanId::derive(SpanKind::ControllerInterval, step as u64).0,
            parent: None,
            kind: SpanKind::ControllerInterval,
            track: span_track.clone(),
            label: format!("interval {step}"),
        });

        // --- 0. Fault plane: fire every edge due at this boundary, in
        // script order (multi-event exactness: nothing is skipped, nothing
        // fires twice). ---
        let now_secs = now.as_secs_f64();
        let mut faults_changed = false;
        while fault_cursor < fault_schedule.len() && fault_schedule[fault_cursor].0 <= now_secs {
            let (_, idx, edge) = fault_schedule[fault_cursor];
            fault_cursor += 1;
            faults_changed = true;
            let ev = &cfg.fault.events[idx];
            match edge {
                FaultEdge::Apply => {
                    fault_active[idx] = true;
                    tracer.emit(now, || Event::FaultInjected {
                        kind: ev.fault.kind_label().to_string(),
                        detail: ev.fault.detail(),
                    });
                    tracer.emit(now, || Event::SpanOpen {
                        id: SpanId::derive(SpanKind::FaultWindow, idx as u64).0,
                        parent: None,
                        kind: SpanKind::FaultWindow,
                        track: span_track.clone(),
                        label: format!("fault {}", ev.fault.kind_label()),
                    });
                }
                FaultEdge::Revert => {
                    fault_active[idx] = false;
                    tracer.emit(now, || Event::FaultRecovered {
                        kind: ev.fault.kind_label().to_string(),
                    });
                    tracer.emit(now, || Event::SpanClose {
                        id: SpanId::derive(SpanKind::FaultWindow, idx as u64).0,
                        kind: SpanKind::FaultWindow,
                        track: span_track.clone(),
                    });
                }
            }
        }
        if faults_changed {
            // Recompose platform-side effects from what is active now;
            // overlapping faults combine by worst effect per subsystem.
            let mut bw_frac = 1.0f64;
            let mut cooling = 0.0f64;
            let mut lock: Option<AuUsageLevel> = None;
            for (ev, active) in cfg.fault.events.iter().zip(&fault_active) {
                if !*active {
                    continue;
                }
                match ev.fault {
                    Fault::BandwidthDegrade { frac } => bw_frac = bw_frac.min(frac),
                    Fault::ThermalRunaway { severity } => cooling = cooling.max(severity),
                    Fault::FrequencyLicenseLock { level } => {
                        lock = Some(worse_license(lock, level));
                    }
                    _ => {}
                }
            }
            platform.degrade_bandwidth(bw_frac)?;
            platform.set_cooling_loss(cooling);
            platform.set_license_lock(lock);
        }
        // Harness-side fault state for this interval.
        let mut offline_cores = 0usize;
        let mut be_surge = 1.0f64;
        let mut sensor_sigma = 0.0f64;
        let mut sensor_dropout = false;
        let mut rdt_failure: Option<u32> = None;
        for (ev, active) in cfg.fault.events.iter().zip(&fault_active) {
            if !*active {
                continue;
            }
            match ev.fault {
                Fault::CoreOffline { count } => offline_cores += count,
                Fault::BeSurge { factor } => be_surge *= factor,
                Fault::SensorNoise { sigma } => sensor_sigma = sensor_sigma.max(sigma),
                Fault::SensorDropout => sensor_dropout = true,
                Fault::RdtWriteFailure { delay_intervals } => {
                    rdt_failure =
                        Some(rdt_failure.map_or(delay_intervals, |d| d.min(delay_intervals)));
                }
                _ => {}
            }
        }

        // --- 1. Manager observes and decides. ---
        let (ttft_p50, ttft_p90) = recent_quantiles(
            engine.ttft_records().iter().map(|r| r.ttft.as_secs_f64()),
            engine.ttft_records().len(),
            30,
        );
        let (tpot_p50, tpot_p90) = recent_quantiles(
            engine.token_records().iter().map(|r| r.exec.as_secs_f64()),
            engine.token_records().len(),
            300,
        );
        let state = SystemState {
            now,
            scenario: cfg.scenario,
            be: cfg.be,
            queue_len: engine.queue_len(),
            head_wait: engine.head_wait(),
            decode_batch: engine.decode_batch(),
            worst_lag_secs: engine.worst_lag_secs(),
            recent_ttft_p50: ttft_p50,
            recent_ttft_p90: ttft_p90,
            recent_tpot_p50: tpot_p50,
            recent_tpot_p90: tpot_p90,
            power_w: last_power,
            bw_utilization: last_bw_util,
        };
        // --- 1b. Sensor faults corrupt what the manager observes (the
        // ground truth driving the engine/platform stays intact). ---
        let state = if sensor_dropout {
            // Stale readback: the manager keeps seeing the last frame from
            // before the dropout, only the clock advances.
            let frozen = frozen_sensors.get_or_insert_with(|| state.clone());
            let mut stale = frozen.clone();
            stale.now = now;
            stale
        } else {
            frozen_sensors = None;
            let mut state = state;
            if sensor_sigma > 0.0 {
                // Multiplicative lognormal noise on the continuous sensors:
                // stays positive, is unbiased in log space, and scales with
                // the reading's magnitude like real measurement jitter.
                let mut jitter = |v: f64| v * sensor_rng.normal(0.0, sensor_sigma).exp();
                state.recent_ttft_p50 = jitter(state.recent_ttft_p50);
                state.recent_ttft_p90 = jitter(state.recent_ttft_p90);
                state.recent_tpot_p50 = jitter(state.recent_tpot_p50);
                state.recent_tpot_p90 = jitter(state.recent_tpot_p90);
                state.power_w = jitter(state.power_w);
                state.bw_utilization = jitter(state.bw_utilization);
            }
            state
        };
        let decision = {
            let _prof = aum_sim::prof::scope("ctrl.decide");
            manager.decide(&state)
        };
        let div = decision.division;
        assert_eq!(
            div.total_cores(),
            total_cores,
            "{}: division {div} does not cover the {total_cores}-core platform",
            manager.name()
        );
        // CoreOffline shadows the division the platform actually runs: the
        // manager's view stays full-width (it cannot see the dead cores),
        // the hardware comes up short.
        let div = apply_core_offline(div, offline_cores);
        // --- 1c. RDT write path: under an RdtWriteFailure the requested
        // allocation is silently dropped (delay 0) or lands late; the
        // hardware keeps its previous programming meanwhile. ---
        let requested = decision.allocation;
        let alloc = match rdt_failure {
            None => {
                rdt_pending.clear();
                applied_alloc = Some(requested);
                requested
            }
            Some(0) => applied_alloc.unwrap_or(requested),
            Some(delay) => {
                let due = step + delay as usize;
                if rdt_pending.back().map(|&(_, a)| a) != Some(requested) {
                    rdt_pending.push_back((due, requested));
                }
                while rdt_pending.front().is_some_and(|&(d, _)| d <= step) {
                    let (_, a) = rdt_pending.pop_front().expect("front exists");
                    applied_alloc = Some(a);
                }
                applied_alloc.unwrap_or(requested)
            }
        };
        if let Some(prev) = last_alloc {
            if prev != alloc {
                tracer.emit(now, || Event::RdtReallocation {
                    llc_ways_from: prev.au.llc_ways,
                    llc_ways_to: alloc.au.llc_ways,
                    l2_ways_from: prev.au.l2_ways,
                    l2_ways_to: alloc.au.l2_ways,
                    mem_bw_from: prev.au.mem_bw_frac,
                    mem_bw_to: alloc.au.mem_bw_frac,
                });
            }
        }
        last_alloc = Some(alloc);
        let be_present = be_profile.is_some();
        let (au_llc, shared_llc) = effective_ways(
            alloc.au.llc_ways,
            alloc.shared.llc_ways,
            spec.llc_ways,
            be_present,
        );
        let (_au_l2, shared_l2) = effective_ways(
            alloc.au.l2_ways,
            alloc.shared.l2_ways,
            spec.l2_ways,
            be_present,
        );

        // --- 2. Describe platform loads. ---
        let prefill_amp = crate::calib::au_cache_profile(AuUsageLevel::High)
            .bandwidth_amplification(spec, au_llc);
        let decode_amp =
            crate::calib::au_cache_profile(AuUsageLevel::Low).bandwidth_amplification(spec, au_llc);
        let sibling = |duty: f64| -> Option<SmtSibling> {
            match (&be_profile, decision.smt_sharing) {
                (Some(p), true) => Some(SmtSibling {
                    class: p.activity,
                    duty,
                }),
                _ => None,
            }
        };
        // Demands are duty-weighted: a phase that is busy 20% of the time
        // draws 20% of its running bandwidth on average — in the
        // time-multiplexed mode this is exactly what makes prefill and
        // decode share the pool correctly (they never run simultaneously).
        let prefill_duty = last_stats.prefill_busy.clamp(0.05, 1.0);
        let decode_duty = last_stats.decode_busy.clamp(0.05, 1.0);
        let mut loads = [
            RegionLoad {
                level: AuUsageLevel::High,
                cores: div.cores(AuUsageLevel::High),
                class: ActivityClass::Amx,
                duty: prefill_duty,
                bw_demand: GbPerSec(
                    last_stats.prefill_bw_demand.value() * prefill_amp * prefill_duty,
                ),
                bw_cap: alloc.au.mem_bw_frac,
                smt_sibling: sibling(0.9),
            },
            RegionLoad {
                level: AuUsageLevel::Low,
                cores: div.cores(AuUsageLevel::Low),
                class: ActivityClass::Avx,
                duty: decode_duty,
                bw_demand: GbPerSec(last_stats.decode_bw_demand.value() * decode_amp * decode_duty),
                bw_cap: alloc.au.mem_bw_frac,
                smt_sibling: sibling(0.9),
            },
            RegionLoad::idle(AuUsageLevel::None, div.cores(AuUsageLevel::None)),
            // Bandwidth placeholder for an SMT-sibling BE (no physical cores).
            RegionLoad::idle(AuUsageLevel::None, 0),
        ];
        if let Some(be) = &be_profile {
            let fluct = be.demand_multiplier(now_secs, be_surge);
            if div.cores(AuUsageLevel::None) > 0 {
                let cores = div.cores(AuUsageLevel::None);
                loads[IDX_NONE] = RegionLoad {
                    level: AuUsageLevel::None,
                    cores,
                    class: be.activity,
                    duty: 1.0,
                    bw_demand: GbPerSec(be.bw_demand(spec, cores, shared_llc).value() * fluct),
                    bw_cap: alloc.shared.mem_bw_frac,
                    smt_sibling: None,
                };
            }
            if decision.smt_sharing {
                // Sibling threads run at SMT efficiency: their achievable
                // bandwidth demand shrinks with their own slowdown.
                let smt_cores = div.au_cores();
                loads[IDX_SIBLING].bw_demand =
                    GbPerSec(be.bw_demand(spec, smt_cores, shared_llc).value() * fluct * 0.6);
                loads[IDX_SIBLING].bw_cap = alloc.shared.mem_bw_frac;
            }
        }
        // Thermal drops must be read *before* the step: `PlatformSim::step`
        // resolves this interval's frequencies against the pre-advance
        // thermal state, and the attribution ledger charges the same drop.
        let pre_drop = [
            platform.thermal().drop_for(AuUsageLevel::High).value(),
            platform.thermal().drop_for(AuUsageLevel::Low).value(),
            platform.thermal().drop_for(AuUsageLevel::None).value(),
        ];
        let snap = {
            let _prof = aum_sim::prof::scope("platform.step");
            platform.step(dt, &loads)
        };

        // --- 3. Advance the serving engine with granted resources. ---
        let smt = be_profile
            .as_ref()
            .filter(|_| decision.smt_sharing)
            .map(|p| {
                (
                    smt_impact(p.smt, AuUsageLevel::High, 1.0),
                    smt_impact(p.smt, AuUsageLevel::Low, 1.0),
                )
            });
        let (high_smt_c, high_smt_m) = smt.map_or((1.0, 1.0), |(h, _)| {
            (h.au_compute_slowdown, h.au_memory_slowdown)
        });
        let (low_smt_c, low_smt_m) = smt.map_or((1.0, 1.0), |(_, l)| {
            (l.au_compute_slowdown, l.au_memory_slowdown)
        });
        let engine_cores = |own: usize| match decision.engine_mode {
            EngineMode::TimeMultiplexed => div.au_cores(),
            EngineMode::Partitioned => own,
        };
        // While a phase actually runs it gets its time-averaged grant
        // compressed into its busy window, capped by the pool.
        let sustainable = platform.pool().sustainable().value();
        let grant_bw = |idx: usize, duty: f64, min_gbs: f64| -> GbPerSec {
            let g = snap.bw_grants[idx].granted.value() / duty.max(0.05);
            GbPerSec(g.clamp(min_gbs, sustainable))
        };
        let prefill_llc_pen = crate::calib::au_llc_penalty(spec, AuUsageLevel::High, au_llc);
        let decode_llc_pen = crate::calib::au_llc_penalty(spec, AuUsageLevel::Low, au_llc);
        let res = EngineResources {
            prefill: RegionResources {
                cores: engine_cores(div.cores(AuUsageLevel::High)),
                freq_ghz: snap.freqs[IDX_HIGH].value(),
                bandwidth: grant_bw(IDX_HIGH, prefill_duty, 2.0),
                memory_penalty: prefill_llc_pen * high_smt_m,
                compute_penalty: high_smt_c,
            },
            decode: RegionResources {
                cores: engine_cores(div.cores(AuUsageLevel::Low)),
                freq_ghz: snap.freqs[IDX_LOW].value(),
                bandwidth: grant_bw(IDX_LOW, decode_duty, 2.0),
                memory_penalty: decode_llc_pen * low_smt_m,
                compute_penalty: low_smt_c,
            },
            mode: decision.engine_mode,
        };
        let stats = engine.run_interval(until, &res);
        // Wall-clock heartbeat for the run-health watchdog: a long single
        // cell still counts as progress once per control interval.
        aum_sim::live::heartbeat();
        // Sim-time stall detection: work queued but zero tokens served for
        // WATCHDOG_STALL_INTERVALS consecutive intervals is a stall —
        // reported as a typed event (and a flight-recorder trigger) once
        // per episode, re-arming when progress resumes.
        if engine.queue_len() > 0 && stats.prefill_tokens == 0 && stats.decode_tokens == 0 {
            stall_intervals += 1;
            if stall_intervals == WATCHDOG_STALL_INTERVALS {
                let queue_len = engine.queue_len();
                let detail = format!(
                    "no serving progress for {:.1}s with {queue_len} request(s) queued",
                    f64::from(WATCHDOG_STALL_INTERVALS) * dt_secs
                );
                tracer.emit(until, || Event::WatchdogStall {
                    intervals: WATCHDOG_STALL_INTERVALS,
                    queue_len,
                    detail,
                });
            }
        } else {
            stall_intervals = 0;
        }

        // --- 4. Integrate BE progress. ---
        if let Some(be) = &be_profile {
            let mut units = 0.0;
            if div.cores(AuUsageLevel::None) > 0 {
                let slowdown = snap.bw_grants[IDX_NONE].slowdown.max(1.0);
                units += be.throughput(
                    spec,
                    div.cores(AuUsageLevel::None),
                    snap.freqs[IDX_NONE].value(),
                    shared_llc,
                    shared_l2,
                    slowdown,
                    1.0,
                ) * dt_secs;
            }
            if decision.smt_sharing {
                let slowdown = snap.bw_grants[IDX_SIBLING].slowdown.max(1.0);
                let (high_i, low_i) = smt.expect("smt impacts exist when smt_sharing");
                units += be.throughput(
                    spec,
                    div.cores(AuUsageLevel::High),
                    snap.freqs[IDX_HIGH].value(),
                    shared_llc,
                    shared_l2,
                    slowdown,
                    high_i.be_slowdown,
                ) * dt_secs;
                units += be.throughput(
                    spec,
                    div.cores(AuUsageLevel::Low),
                    snap.freqs[IDX_LOW].value(),
                    shared_llc,
                    shared_l2,
                    slowdown,
                    low_i.be_slowdown,
                ) * dt_secs;
            }
            be_units += units;
        }

        // --- Attribution ledger. ---
        // Decompose this interval's package power into per-region static
        // and dynamic watts, mirroring `PlatformSim`'s power closure term
        // by term: the ledger rows must re-derive `snap.power` so the
        // energy-conservation check cross-validates two independent
        // summations of the same model.
        let pm = platform.power_model();
        let idle_w = pm.idle_core_power().value();
        // Indexed AuHigh / AuLow / Shared / Uncore.
        let mut static_w = [0.0f64; 4];
        let mut dynamic_w = [0.0f64; 4];
        let mut claimed = 0usize;
        for (i, l) in loads.iter().enumerate() {
            let r = match i {
                IDX_HIGH => 0,
                IDX_LOW => 1,
                _ => 2,
            };
            claimed += l.cores;
            let core_w = pm.core_power(snap.freqs[i], l.class, l.duty).value();
            static_w[r] += idle_w * l.cores as f64;
            dynamic_w[r] += (core_w - idle_w) * l.cores as f64;
            if let Some(sib) = l.smt_sibling {
                // Sibling-thread BE work runs on AU cores but belongs to
                // the shared class's account.
                dynamic_w[2] += (pm.core_power(snap.freqs[i], sib.class, sib.duty).value()
                    - idle_w)
                    * SMT_POWER_FACTOR
                    * l.cores as f64;
            }
        }
        // Cores no load claims (e.g. offlined by a fault) idle on the
        // shared account; the uncore splits into its static floor plus the
        // bandwidth-proportional remainder.
        static_w[2] += idle_w * total_cores.saturating_sub(claimed) as f64;
        static_w[3] += pm.uncore_power(0.0).value();
        dynamic_w[3] += pm.uncore_power(snap.bw_utilization).value() - pm.uncore_power(0.0).value();

        let turbo = platform.governor().turbo().value();
        let to_fractions = |w: aum_au::topdown::WorkSplit| WorkFractions {
            compute: w.compute,
            l1: w.l1,
            l2: w.l2,
            llc: w.llc,
            dram: w.dram,
            contention: w.contention,
        };
        let au_work = |kind: SignatureKind, idx: usize, amp: f64| -> WorkFractions {
            let split =
                signature(kind, spec).work_split(snap.bw_grants[idx].slowdown.max(1.0), amp);
            let mut w = to_fractions(split);
            if !be_present {
                // No co-runner: pool pressure is self-inflicted (prefill
                // and decode competing), not contention.
                w.dram += w.contention;
                w.contention = 0.0;
            }
            w
        };
        let (shared_busy, shared_work) = match &be_profile {
            Some(be) if div.cores(AuUsageLevel::None) > 0 || decision.smt_sharing => {
                let (duty, idx) = if div.cores(AuUsageLevel::None) > 0 {
                    (1.0, IDX_NONE)
                } else {
                    (0.9, IDX_SIBLING)
                };
                let kind = match be.activity {
                    ActivityClass::MemoryBound => SignatureKind::Mcf,
                    _ => SignatureKind::Ads,
                };
                let split =
                    signature(kind, spec).work_split(snap.bw_grants[idx].slowdown.max(1.0), 1.0);
                (duty, to_fractions(split))
            }
            _ => (0.0, WorkFractions::all_compute()),
        };
        let shed = manager.resilience() == Some(ResilienceMode::SafeMode);
        let region_samples = [
            RegionSample {
                region: attrib::Region::AuHigh,
                busy_frac: prefill_duty,
                freq_ghz: snap.freqs[IDX_HIGH].value(),
                unlicensed_ghz: turbo,
                thermal_drop_ghz: pre_drop[0],
                work: au_work(SignatureKind::Prefill, IDX_HIGH, prefill_amp),
                static_j: static_w[0] * dt_secs,
                dynamic_j: dynamic_w[0] * dt_secs,
                shed: false,
            },
            RegionSample {
                region: attrib::Region::AuLow,
                busy_frac: decode_duty,
                freq_ghz: snap.freqs[IDX_LOW].value(),
                unlicensed_ghz: turbo,
                thermal_drop_ghz: pre_drop[1],
                work: au_work(SignatureKind::Decode, IDX_LOW, decode_amp),
                static_j: static_w[1] * dt_secs,
                dynamic_j: dynamic_w[1] * dt_secs,
                shed: false,
            },
            RegionSample {
                region: attrib::Region::Shared,
                busy_frac: shared_busy,
                freq_ghz: snap.freqs[IDX_NONE].value(),
                unlicensed_ghz: turbo,
                thermal_drop_ghz: pre_drop[2],
                work: shared_work,
                static_j: static_w[2] * dt_secs,
                dynamic_j: dynamic_w[2] * dt_secs,
                shed,
            },
            RegionSample {
                region: attrib::Region::Uncore,
                busy_frac: snap.bw_utilization.clamp(0.0, 1.0),
                freq_ghz: 1.0,
                unlicensed_ghz: 1.0,
                thermal_drop_ghz: 0.0,
                work: WorkFractions::all_dram(),
                static_j: static_w[3] * dt_secs,
                dynamic_j: dynamic_w[3] * dt_secs,
                shed: false,
            },
        ];
        let interval =
            IntervalLedger::build(now, dt_secs, snap.power.value() * dt_secs, &region_samples);
        if tracer.is_enabled() {
            for row in &interval.regions {
                let (region, time, energy) = (row.region, row.time, row.energy);
                tracer.emit(now, || Event::AttributionSample {
                    region,
                    dt_secs,
                    time,
                    energy,
                });
            }
        }
        ledger.intervals.push(interval);

        // --- Accounting. ---
        energy_j += snap.power.value() * dt_secs;
        prefill_tokens += stats.prefill_tokens;
        decode_tokens += stats.decode_tokens;
        shared_llc_samples.record(f64::from(shared_llc));
        shared_bw_samples.record(alloc.shared.mem_bw_frac * 100.0);
        none_core_samples.record(div.cores(AuUsageLevel::None) as f64);
        freq_low.push(now, snap.freqs[IDX_LOW].value());
        power_series.push(now, snap.power.value());

        // Metrics registry: one snapshot per control interval.
        registry.counter_add("prefill_tokens", stats.prefill_tokens);
        registry.counter_add("decode_tokens", stats.decode_tokens);
        registry.counter_add("requests_completed", stats.completed);
        registry.gauge_set("power_w", snap.power.value());
        registry.gauge_set("bw_utilization", snap.bw_utilization);
        registry.gauge_set("queue_len", state.queue_len as f64);
        registry.gauge_set("decode_batch", state.decode_batch as f64);
        registry.gauge_set("freq_low_ghz", snap.freqs[IDX_LOW].value());
        registry.gauge_set("shared_llc_ways", f64::from(shared_llc));
        registry.gauge_set("recent_ttft_p90", state.recent_ttft_p90);
        registry.gauge_set("recent_tpot_p50", state.recent_tpot_p50);
        let _ = registry.snapshot(until);
        tracer.emit(until, || Event::SpanClose {
            id: SpanId::derive(SpanKind::ControllerInterval, step as u64).0,
            kind: SpanKind::ControllerInterval,
            track: span_track.clone(),
        });

        // Feedback for the next interval: demands observed while busy.
        if stats.prefill_bw_demand.value() > 0.0 {
            last_stats.prefill_bw_demand = stats.prefill_bw_demand;
        }
        if stats.decode_bw_demand.value() > 0.0 {
            last_stats.decode_bw_demand = stats.decode_bw_demand;
        }
        last_stats.prefill_busy = stats.prefill_busy;
        last_stats.decode_busy = stats.decode_busy;
        last_power = snap.power.value();
        last_bw_util = snap.bw_utilization;
    }

    let secs = cfg.duration.as_secs_f64();
    let p_h = prefill_tokens as f64 / secs;
    let p_l = decode_tokens as f64 / secs;
    let p_n = be_units / secs;
    let avg_power = energy_j / secs;
    let gamma = cfg.be.map_or(0.0, Prices::gamma);
    // Conservation gate: a ledger that does not close is a modeling bug,
    // not a reporting nuisance — fail the run with the typed violation.
    ledger.verify(attrib::EPSILON)?;
    // Balance the span ledger: requests still in flight and fault windows
    // that never recovered close at the end of the run window, so every
    // trace yields a well-formed span forest.
    let end = SimTime::ZERO + dt * steps as u64;
    engine.close_open_spans(end);
    for (idx, active) in fault_active.iter().enumerate() {
        if *active {
            tracer.emit(end, || Event::SpanClose {
                id: SpanId::derive(SpanKind::FaultWindow, idx as u64).0,
                kind: SpanKind::FaultWindow,
                track: span_track.clone(),
            });
        }
    }
    tracer.flush();
    let outcome = Outcome {
        scheme: manager.name().to_owned(),
        slo: engine.slo_report(),
        prefill_tps: p_h,
        decode_tps: p_l,
        be_rate: p_n,
        avg_power_w: avg_power,
        efficiency: e_cpu(cfg.prices, p_h, p_l, gamma, p_n, avg_power),
        completed: engine.completed(),
        shared_llc_samples,
        shared_bw_samples,
        none_core_samples,
        freq_low,
        power: power_series,
        metrics: registry.into_history(),
        ledger,
    };
    publish_live(&outcome);
    Ok(outcome)
}

/// Consecutive zero-progress control intervals (with work queued) before
/// the sim-time watchdog reports a stall. At the default 500 ms interval
/// this is 8 s of simulated dead air — far beyond any healthy pause.
const WATCHDOG_STALL_INTERVALS: u32 = 16;

/// Publishes this run's final Prometheus exposition — the last registry
/// snapshot plus the SLO latency histograms — to the live `/metrics`
/// endpoint, when one is installed ([`aum_sim::live`]). Runs executed as
/// sweep cells call this on completion, which is exactly the "refresh per
/// completed cell" contract of the live plane. Wall-clock observability
/// only: the published text never feeds back into the simulation.
fn publish_live(outcome: &Outcome) {
    let Some(live) = aum_sim::live::installed() else {
        return;
    };
    let mut text = String::new();
    if let Some(last) = outcome.metrics.last() {
        text.push_str(&aum_sim::prom::render_registry(last));
    }
    text.push_str(&aum_sim::prom::render_histogram(
        "aum_ttft_seconds",
        "Time-to-first-token distribution of the last completed cell.",
        &[("scheme", &outcome.scheme)],
        &outcome.slo.ttft_hist,
    ));
    text.push_str(&aum_sim::prom::render_histogram(
        "aum_tpot_request_seconds",
        "Per-request mean token-time distribution of the last completed cell.",
        &[("scheme", &outcome.scheme)],
        &outcome.slo.tpot_req_hist,
    ));
    live.publish_exposition(text);
}

/// Picks the worse of two license locks: a High lock caps frequency lower
/// than a Low lock, so overlapping lock faults pin to the slowest class.
fn worse_license(current: Option<AuUsageLevel>, new: AuUsageLevel) -> AuUsageLevel {
    fn rank(l: AuUsageLevel) -> u8 {
        match l {
            AuUsageLevel::None => 0,
            AuUsageLevel::Low => 1,
            AuUsageLevel::High => 2,
        }
    }
    match current {
        Some(c) if rank(c) >= rank(new) => c,
        _ => new,
    }
}

/// Removes `count` cores from a division: spare (None) cores go first,
/// then decode (Low), then prefill (High); each AU region keeps at least
/// one core so serving degrades instead of disappearing outright.
fn apply_core_offline(div: ProcessorDivision, count: usize) -> ProcessorDivision {
    if count == 0 {
        return div;
    }
    let mut high = div.cores(AuUsageLevel::High);
    let mut low = div.cores(AuUsageLevel::Low);
    let mut none = div.cores(AuUsageLevel::None);
    let mut remaining = count;
    let take = |region: &mut usize, floor: usize, remaining: &mut usize| {
        let taken = region.saturating_sub(floor).min(*remaining);
        *region -= taken;
        *remaining -= taken;
    };
    take(&mut none, 0, &mut remaining);
    take(&mut low, 1, &mut remaining);
    take(&mut high, 1, &mut remaining);
    ProcessorDivision::new(high, low, none)
}

/// Quantiles over the most recent `window` of an iterator of length `len`.
fn recent_quantiles(values: impl Iterator<Item = f64>, len: usize, window: usize) -> (f64, f64) {
    let skip = len.saturating_sub(window);
    let recent: Samples = values.skip(skip).collect();
    if recent.is_empty() {
        (0.0, 0.0)
    } else {
        (recent.quantile(0.5), recent.quantile(0.9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Decision;
    use aum_llm::engine::EngineMode;
    use aum_platform::rdt::{RdtAllocation, ResourceVector};

    /// A static manager for harness tests.
    struct Static {
        name: &'static str,
        decision: Decision,
    }

    impl ResourceManager for Static {
        fn name(&self) -> &'static str {
            self.name
        }
        fn decide(&mut self, _: &SystemState) -> Decision {
            self.decision
        }
    }

    fn exclusive_manager(total: usize) -> Static {
        Static {
            name: "exclusive",
            decision: Decision {
                division: ProcessorDivision::exclusive(total, total / 3),
                allocation: RdtAllocation::new(
                    ResourceVector::new(15, 15, 1.0),
                    ResourceVector::new(1, 1, 0.1),
                ),
                smt_sharing: false,
                engine_mode: EngineMode::TimeMultiplexed,
            },
        }
    }

    fn shared_manager(total: usize) -> Static {
        Static {
            name: "shared",
            decision: Decision {
                division: ProcessorDivision::new(
                    total / 3,
                    total / 4,
                    total - total / 3 - total / 4,
                ),
                allocation: RdtAllocation::new(
                    ResourceVector::new(10, 10, 0.8),
                    ResourceVector::new(6, 6, 0.3),
                ),
                smt_sharing: false,
                engine_mode: EngineMode::Partitioned,
            },
        }
    }

    fn short_cfg(be: Option<BeKind>) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, be);
        cfg.duration = SimDuration::from_secs(60);
        cfg
    }

    #[test]
    fn exclusive_run_produces_serving_metrics() {
        let cfg = short_cfg(None);
        let mut mgr = exclusive_manager(cfg.platform.total_cores());
        let out = run_experiment(&cfg, &mut mgr);
        // 60 s window at 0.4 req/s × 200 tokens includes ramp-up, so the
        // emitted-token rate sits below the 80 tokens/s offered load.
        assert!(out.decode_tps > 40.0, "decode tps {}", out.decode_tps);
        assert!(out.prefill_tps > 200.0, "prefill tps {}", out.prefill_tps);
        assert!(
            (150.0..=350.0).contains(&out.avg_power_w),
            "power {}",
            out.avg_power_w
        );
        assert!(out.efficiency > 0.0);
        assert_eq!(out.be_rate, 0.0);
        assert_eq!(out.scheme, "exclusive");
    }

    #[test]
    fn sharing_adds_be_throughput() {
        let cfg = short_cfg(Some(BeKind::SpecJbb));
        let mut mgr = shared_manager(cfg.platform.total_cores());
        let out = run_experiment(&cfg, &mut mgr);
        assert!(out.be_rate > 0.0, "BE work should progress");
        assert!(out.decode_tps > 35.0, "serving continues under sharing");
    }

    #[test]
    fn sharing_with_spatial_partition_can_beat_exclusive_efficiency() {
        // The paper's core claim: harvesting idle resources for BE work
        // improves performance-per-watt despite a small serving hit.
        let excl_cfg = short_cfg(None);
        let excl = run_experiment(&excl_cfg, &mut exclusive_manager(96));
        let share_cfg = short_cfg(Some(BeKind::SpecJbb));
        let shared = run_experiment(&share_cfg, &mut shared_manager(96));
        let gain = shared.efficiency_vs(&excl);
        assert!(
            gain > 1.0,
            "static sharing should already improve efficiency somewhat, got {gain}"
        );
        assert!(gain < 1.5, "gain should be moderate, got {gain}");
    }

    #[test]
    fn smt_sharing_degrades_slos_more_than_partitioned() {
        let total = 96;
        let smt = Static {
            name: "smt",
            decision: Decision {
                division: ProcessorDivision::exclusive(total, total / 3),
                allocation: RdtAllocation::unpartitioned(&PlatformSpec::gen_a()),
                smt_sharing: true,
                engine_mode: EngineMode::TimeMultiplexed,
            },
        };
        let cfg = short_cfg(Some(BeKind::Olap));
        let mut smt = smt;
        let smt_out = run_experiment(&cfg, &mut smt);
        let part_out = run_experiment(&cfg, &mut shared_manager(total));
        assert!(
            smt_out.slo.tpot_guarantee < part_out.slo.tpot_guarantee,
            "OLAP on hyperthreads should hurt decode more: smt={} part={}",
            smt_out.slo.tpot_guarantee,
            part_out.slo.tpot_guarantee
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let cfg = short_cfg(Some(BeKind::SpecJbb));
        let a = run_experiment(&cfg, &mut shared_manager(96));
        let b = run_experiment(&cfg, &mut shared_manager(96));
        assert_eq!(a.decode_tps.to_bits(), b.decode_tps.to_bits());
        assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits());
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn effective_ways_handles_overlap() {
        assert_eq!(effective_ways(8, 8, 16, true), (8, 8));
        assert_eq!(effective_ways(16, 16, 16, true), (8, 8));
        assert_eq!(effective_ways(12, 4, 16, true), (12, 4));
        assert_eq!(effective_ways(16, 16, 16, false), (16, 0));
    }

    #[test]
    fn outcome_exports_json() {
        let cfg = short_cfg(None);
        let out = run_experiment(&cfg, &mut exclusive_manager(96));
        let json = out.to_json_pretty().expect("encode");
        assert!(json.contains("\"efficiency\""));
        assert!(json.contains("\"freq_low\""));
        let back: Outcome = serde_json::from_str(&json).expect("decode");
        assert_eq!(back.scheme, out.scheme);
        assert_eq!(back.completed, out.completed);
    }

    #[test]
    fn telemetry_series_are_recorded() {
        let cfg = short_cfg(Some(BeKind::SpecJbb));
        let out = run_experiment(&cfg, &mut shared_manager(96));
        assert_eq!(out.freq_low.len(), 120); // 60 s / 500 ms
        assert_eq!(out.shared_llc_samples.len(), 120);
        assert!(out.power.value_summary().mean() > 100.0);
    }
}
