//! Scripted fault-injection plane.
//!
//! The paper's promise (§VI–VII) is a controller that keeps SLOs intact
//! when the platform misbehaves. This module scripts that misbehaviour: a
//! [`FaultPlan`] is an ordered list of timed [`FaultEvent`]s, each naming a
//! [`Fault`] with an activation time and an optional recovery time. The
//! experiment harness (`crate::experiment`) replays the plan exactly at
//! control-interval boundaries, emitting `FaultInjected` / `FaultRecovered`
//! telemetry, and warns (`FaultOutsideWindow`) about events scheduled past
//! the run window instead of silently dropping them.
//!
//! The taxonomy covers every failure mode the platform model already
//! simulates — memory RAS events, cooling loss, stuck license firmware,
//! dead cores, failed RDT MSR writes, best-effort load spikes, and lying
//! or frozen sensors. Faults against the same subsystem compose by taking
//! the *worst* active effect (minimum bandwidth fraction, maximum cooling
//! loss, lowest license class), so overlapping chaos scripts stay
//! physically meaningful.
//!
//! This plane stops at the node boundary: every fault here degrades *one*
//! server from the inside. Node-scoped failures — whole-node crashes,
//! stragglers, router partitions, rolling-restart drains — live in the
//! fleet resilience plane ([`crate::fleet::NodeFaultPlan`]), which reuses
//! this module's scripting conventions (deterministic activation times,
//! optional recovery, `null`-tolerant serde) at cluster granularity.
//!
//! Serde back-compat: older configs carried
//! `"fault": {"BandwidthDegrade": {"at_secs": 120.0, "frac": 0.6}}` or
//! `"fault": null`. [`FaultPlan`]'s hand-written `Deserialize` accepts both
//! legacy shapes alongside the new `{"events": [...]}` form, so existing
//! experiment JSON keeps loading.

use serde::{content_get, Content, DeError, Deserialize, Serialize};

use aum_platform::topology::AuUsageLevel;

/// One platform failure mode the fault plane can inject.
///
/// Parameters describe the fault's magnitude only; *when* it strikes and
/// heals lives on the enclosing [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Memory bandwidth collapses to `frac` of the platform spec — a DIMM
    /// failure or memory-RAS throttling event. Recovery restores the full
    /// pool.
    BandwidthDegrade {
        /// Remaining bandwidth fraction, `(0, 1]`.
        frac: f64,
    },
    /// Package cooling loss (failed fan / blocked airflow): every region
    /// accumulates ambient heat regardless of load and — unlike the healthy
    /// Fig 6b hotspot — AU license caps no longer protect High/Low regions
    /// from thermal throttling.
    ThermalRunaway {
        /// Cooling-loss severity: 1.0 alone holds a reservoir exactly at
        /// the throttle-on threshold; above 1 throttles even idle regions.
        severity: f64,
    },
    /// PCU/firmware bug pins every AU core's license class, so e.g. AVX
    /// decode cores run at the AMX license frequency. None-AU cores hold no
    /// license and are unaffected.
    FrequencyLicenseLock {
        /// The stuck license level.
        level: AuUsageLevel,
    },
    /// Physical cores drop out of the schedulable set (MCE offlining).
    /// Cores are removed from the None region first, then Low, then High,
    /// always leaving at least one core per serving region.
    CoreOffline {
        /// Number of cores taken offline.
        count: usize,
    },
    /// CAT/MBA reconfiguration writes fail: the manager's allocation
    /// requests either vanish silently (`delay_intervals = 0`) or take
    /// effect late. The platform keeps running on the last allocation that
    /// actually landed.
    RdtWriteFailure {
        /// Control intervals a write is delayed by; `0` = writes are
        /// silently dropped for the fault's duration.
        delay_intervals: u32,
    },
    /// The best-effort co-runner's offered load spikes, multiplying its
    /// duty/bandwidth demand.
    BeSurge {
        /// Demand multiplier; `> 1` is a surge.
        factor: f64,
    },
    /// Multiplicative noise on the manager's sensor readings (latency
    /// percentiles, power, bandwidth utilization) — a flaky PMU. Noise is
    /// drawn from the experiment's deterministic RNG.
    SensorNoise {
        /// Standard deviation of the log-normal multiplicative noise.
        sigma: f64,
    },
    /// Sensor readback freezes: the manager keeps seeing the last values
    /// observed before the fault struck.
    SensorDropout,
}

impl Fault {
    /// Stable label for telemetry and reports.
    #[must_use]
    pub fn kind_label(&self) -> &'static str {
        match self {
            Fault::BandwidthDegrade { .. } => "BandwidthDegrade",
            Fault::ThermalRunaway { .. } => "ThermalRunaway",
            Fault::FrequencyLicenseLock { .. } => "FrequencyLicenseLock",
            Fault::CoreOffline { .. } => "CoreOffline",
            Fault::RdtWriteFailure { .. } => "RdtWriteFailure",
            Fault::BeSurge { .. } => "BeSurge",
            Fault::SensorNoise { .. } => "SensorNoise",
            Fault::SensorDropout => "SensorDropout",
        }
    }

    /// Human-readable parameter summary for telemetry.
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            Fault::BandwidthDegrade { frac } => {
                format!("bandwidth to {:.0}% of spec", frac * 100.0)
            }
            Fault::ThermalRunaway { severity } => format!("cooling loss severity {severity:.2}"),
            Fault::FrequencyLicenseLock { level } => format!("AU license pinned to {level:?}"),
            Fault::CoreOffline { count } => format!("{count} cores offline"),
            Fault::RdtWriteFailure { delay_intervals: 0 } => "RDT writes silently dropped".into(),
            Fault::RdtWriteFailure { delay_intervals } => {
                format!("RDT writes delayed {delay_intervals} intervals")
            }
            Fault::BeSurge { factor } => format!("BE load x{factor:.2}"),
            Fault::SensorNoise { sigma } => format!("sensor noise sigma {sigma:.2}"),
            Fault::SensorDropout => "sensor readback frozen".into(),
        }
    }

    /// Checks the fault's parameters are physically meaningful.
    fn validate(&self) -> Result<(), String> {
        match *self {
            Fault::BandwidthDegrade { frac } => {
                if frac > 0.0 && frac <= 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "BandwidthDegrade frac must be in (0, 1], got {frac}"
                    ))
                }
            }
            Fault::ThermalRunaway { severity } => {
                if severity.is_finite() && severity >= 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "ThermalRunaway severity must be finite and >= 0, got {severity}"
                    ))
                }
            }
            Fault::BeSurge { factor } => {
                if factor.is_finite() && factor > 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "BeSurge factor must be finite and positive, got {factor}"
                    ))
                }
            }
            Fault::SensorNoise { sigma } => {
                if sigma.is_finite() && sigma >= 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "SensorNoise sigma must be finite and >= 0, got {sigma}"
                    ))
                }
            }
            Fault::CoreOffline { count: 0 } => Err("CoreOffline count must be > 0".into()),
            Fault::FrequencyLicenseLock { .. }
            | Fault::CoreOffline { .. }
            | Fault::RdtWriteFailure { .. }
            | Fault::SensorDropout => Ok(()),
        }
    }
}

/// One scheduled fault: what, when, and (optionally) until when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Activation time, seconds from run start. The harness applies the
    /// fault at the first control-interval boundary `t >= at_secs`.
    pub at_secs: f64,
    /// The failure mode.
    pub fault: Fault,
    /// Recovery time, seconds; the fault's effect is reversed at the first
    /// boundary `t >= recover_at_secs`. `None` = permanent.
    #[serde(default)]
    pub recover_at_secs: Option<f64>,
}

impl FaultEvent {
    /// A permanent fault striking at `at_secs`.
    #[must_use]
    pub fn permanent(at_secs: f64, fault: Fault) -> Self {
        FaultEvent {
            at_secs,
            fault,
            recover_at_secs: None,
        }
    }

    /// A fault active over `[at_secs, recover_at_secs)`.
    #[must_use]
    pub fn windowed(at_secs: f64, recover_at_secs: f64, fault: Fault) -> Self {
        FaultEvent {
            at_secs,
            fault,
            recover_at_secs: Some(recover_at_secs),
        }
    }
}

/// An ordered script of timed fault events — the chaos run's screenplay.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The scripted events, sorted by activation time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A healthy run: no faults.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan of the given events, sorted by activation time (stable for
    /// ties, so same-instant events apply in authoring order).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| {
            a.at_secs
                .partial_cmp(&b.at_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        FaultPlan { events }
    }

    /// A single-event plan.
    #[must_use]
    pub fn single(event: FaultEvent) -> Self {
        FaultPlan {
            events: vec![event],
        }
    }

    /// Whether the plan schedules anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event for physically meaningful parameters and sane
    /// timing.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed event.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if !(ev.at_secs.is_finite() && ev.at_secs >= 0.0) {
                return Err(format!(
                    "event {i}: at_secs must be finite and >= 0, got {}",
                    ev.at_secs
                ));
            }
            if let Some(rec) = ev.recover_at_secs {
                if !(rec.is_finite() && rec > ev.at_secs) {
                    return Err(format!(
                        "event {i}: recover_at_secs must be finite and > at_secs ({}), got {rec}",
                        ev.at_secs
                    ));
                }
            }
            ev.fault.validate().map_err(|e| format!("event {i}: {e}"))?;
        }
        Ok(())
    }
}

impl Serialize for FaultPlan {
    fn to_content(&self) -> Content {
        if self.events.is_empty() {
            // Keep the healthy default rendering as `"fault": null`, the
            // shape pre-FaultPlan configs used.
            return Content::Null;
        }
        Content::Map(vec![(
            "events".to_string(),
            Content::Seq(self.events.iter().map(Serialize::to_content).collect()),
        )])
    }
}

/// Variant names of [`Fault`] recognized in the legacy single-fault shape.
const FAULT_VARIANTS: [&str; 8] = [
    "BandwidthDegrade",
    "ThermalRunaway",
    "FrequencyLicenseLock",
    "CoreOffline",
    "RdtWriteFailure",
    "BeSurge",
    "SensorNoise",
    "SensorDropout",
];

impl Deserialize for FaultPlan {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let events: Vec<FaultEvent> = match content {
            // Old configs: `"fault": null`.
            Content::Null => Vec::new(),
            // New shape: `{"events": [...]}`.
            Content::Map(entries) if content_get(entries, "events").is_some() => {
                let seq = content_get(entries, "events").expect("checked");
                match seq {
                    Content::Seq(items) => items
                        .iter()
                        .map(FaultEvent::from_content)
                        .collect::<Result<_, _>>()?,
                    other => return Err(DeError::expected("sequence", "FaultPlan.events", other)),
                }
            }
            // Bare list of events.
            Content::Seq(items) => items
                .iter()
                .map(FaultEvent::from_content)
                .collect::<Result<_, _>>()?,
            // Legacy single-fault shape, externally tagged:
            // `{"BandwidthDegrade": {"at_secs": 120.0, "frac": 0.6}}`.
            // The timing field lived inside the variant body back then, so
            // it is lifted out here; the Fault derive ignores the extra key.
            Content::Map(entries)
                if entries.len() == 1 && FAULT_VARIANTS.contains(&entries[0].0.as_str()) =>
            {
                let fault = Fault::from_content(content)?;
                let at_secs = match &entries[0].1 {
                    Content::Map(body) => match content_get(body, "at_secs") {
                        Some(v) => f64::from_content(v)?,
                        None => 0.0,
                    },
                    _ => 0.0,
                };
                vec![FaultEvent::permanent(at_secs, fault)]
            }
            // Legacy unit-variant string (future-proofing the same shape).
            Content::Str(_) => vec![FaultEvent::permanent(0.0, Fault::from_content(content)?)],
            other => return Err(DeError::expected("fault plan", "FaultPlan", other)),
        };
        let plan = FaultPlan::new(events);
        plan.validate()
            .map_err(|e| DeError::custom(format!("invalid FaultPlan: {e}")))?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_sort_events_by_time() {
        let plan = FaultPlan::new(vec![
            FaultEvent::permanent(200.0, Fault::SensorDropout),
            FaultEvent::windowed(50.0, 80.0, Fault::BeSurge { factor: 2.0 }),
        ]);
        assert_eq!(plan.events[0].at_secs, 50.0);
        assert_eq!(plan.events[1].at_secs, 200.0);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let bad = [
            Fault::BandwidthDegrade { frac: 0.0 },
            Fault::BandwidthDegrade { frac: 1.5 },
            Fault::ThermalRunaway { severity: -1.0 },
            Fault::BeSurge { factor: 0.0 },
            Fault::SensorNoise { sigma: f64::NAN },
            Fault::CoreOffline { count: 0 },
        ];
        for fault in bad {
            let plan = FaultPlan::single(FaultEvent::permanent(1.0, fault));
            assert!(plan.validate().is_err(), "{fault:?} must be rejected");
        }
        let ok = FaultPlan::single(FaultEvent::permanent(
            1.0,
            Fault::BandwidthDegrade { frac: 0.5 },
        ));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_timing() {
        let negative = FaultPlan::single(FaultEvent::permanent(-1.0, Fault::SensorDropout));
        assert!(negative.validate().is_err());
        let inverted = FaultPlan::single(FaultEvent::windowed(10.0, 5.0, Fault::SensorDropout));
        assert!(inverted.validate().is_err());
    }

    #[test]
    fn labels_and_details_cover_every_kind() {
        let all = [
            Fault::BandwidthDegrade { frac: 0.6 },
            Fault::ThermalRunaway { severity: 1.2 },
            Fault::FrequencyLicenseLock {
                level: AuUsageLevel::High,
            },
            Fault::CoreOffline { count: 8 },
            Fault::RdtWriteFailure { delay_intervals: 0 },
            Fault::RdtWriteFailure { delay_intervals: 4 },
            Fault::BeSurge { factor: 2.5 },
            Fault::SensorNoise { sigma: 0.4 },
            Fault::SensorDropout,
        ];
        for f in all {
            assert!(!f.kind_label().is_empty());
            assert!(!f.detail().is_empty());
        }
    }
}
