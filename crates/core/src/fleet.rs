//! Fleet resilience plane: node-level fault injection, health-checked
//! failover routing, and graceful load shedding.
//!
//! The §VIII cluster sketch ([`crate::cluster`]) splits the offered rate
//! once and never looks back — servers cannot fail and the router cannot
//! react. This module models the cluster as a *dynamic* system at router
//! granularity: a [`NodeFaultPlan`] scripts node-scoped failures
//! (crash/restart, sustained straggler slowdown, network partition from
//! the router, rolling-restart drain) with deterministic timing, and
//! [`run_fleet`] replays them through an epoch-based router loop:
//!
//! - **Health state machine** — per epoch, every node is Healthy →
//!   Suspect → Down (heartbeat misses), or Draining/Recovering (scripted
//!   drains and fault recoveries), driven by heartbeat and violation-rate
//!   signals ([`aum_sim::telemetry::NodeHealth`]).
//! - **Failover re-weighting** — under [`RoutingPolicy::Failover`] the
//!   router recomputes shares each epoch from health states, so a failed
//!   node's share redistributes to survivors. Every other policy keeps
//!   its t=0 split (the static-router baseline).
//! - **Retry with exponential backoff** — requests assigned to a node
//!   that cannot serve them strand; each stranded batch re-enters the
//!   dispatch pool after a capped exponential backoff, until its retry
//!   budget is exhausted and it is dropped against the SLO.
//! - **Graceful degradation** — an admission controller sheds
//!   best-effort and low-priority load first whenever the pool exceeds
//!   the live fleet capacity, recording shed counts per class.
//!
//! All request accounting is integer (`u64`) flow arithmetic, so the
//! conservation identity `dispatched == completed + redispatched + shed
//! + dropped` holds **exactly**, not within a tolerance — the
//! `repro fleet-chaos` study asserts it per cell. The loop emits
//! [`Event::NodeFault`], [`Event::NodeHealthTransition`],
//! [`Event::RequestRedispatch`] and [`Event::LoadShed`] telemetry; a
//! `NodeHealthTransition` into `Down` also trips the flight recorder
//! (`aum_sim::flight::TriggerKind::NodeDown`).
//!
//! ## Fleet observability
//!
//! Beyond the flat events, [`run_fleet_traced`] emits a span stream
//! (`aum_sim::span`): one [`SpanKind::FleetEpoch`] span per router epoch
//! on the fleet track, [`SpanKind::NodeHealthEpisode`] spans covering
//! each contiguous unhealthy window on per-node tracks
//! (`<track>/node<i>`), and [`SpanKind::RedispatchHop`] spans covering
//! each stranded batch's backoff window, labeled with the merged
//! request-batch id (`batch r<ready-epoch>a<attempt>`) that links the
//! hops of one retry chain. Every node also owns a
//! [`MetricsRegistry`] (completions, redispatches, sheds,
//! violation-tracked requests) plus a [`LogHistogram`] per-epoch latency
//! proxy; their final snapshots roll up into
//! [`FleetOutcome::node_metrics`], whose per-node counters sum back to
//! the fleet totals exactly ([`FleetOutcome::node_conservation_ok`]).
//! Health transitions additionally emit
//! [`Event::NodeMetricsSnapshot`] so `node-down` incident dumps carry
//! the offending node's state. All ids derive from (node, epoch,
//! sequence-within-epoch) — no global counters — so the stream is
//! byte-identical at any `--jobs` level.

use serde::{content_get, Content, DeError, Deserialize, Serialize};

use aum_sim::hist::LogHistogram;
use aum_sim::span::{SpanId, SpanKind};
use aum_sim::telemetry::{Event, MetricsRegistry, MetricsSnapshot, NodeHealth, Tracer};
use aum_sim::time::SimTime;
use aum_workloads::gpu::CpuAnchor;

use crate::cluster::{ClusterConfig, RoutingPolicy};

/// One node-scoped failure mode the fleet fault plane can inject.
///
/// Parameters describe magnitude only; *which node* and *when* live on the
/// enclosing [`NodeFaultEvent`] (mirroring [`crate::fault::Fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeFault {
    /// The node crashes: heartbeats stop, assigned requests strand.
    /// Recovery models a restart (the node ramps back via Recovering).
    Crash,
    /// Sustained slowdown: the node keeps serving and heartbeating but at
    /// `1/factor` of its profiled capacity — excess assignments complete
    /// late, raising its violation-rate signal.
    Straggler {
        /// Capacity division factor, `> 1`.
        factor: f64,
    },
    /// Network partition from the router: the node is healthy but
    /// unreachable — heartbeats are lost and assigned requests strand,
    /// indistinguishable from a crash until the partition heals.
    Partition,
    /// Rolling-restart drain: the node *cooperatively* stops accepting
    /// new work (the router is told, so failover reacts immediately
    /// instead of waiting for missed heartbeats).
    Drain,
}

impl NodeFault {
    /// Stable label for telemetry and reports.
    #[must_use]
    pub fn kind_label(&self) -> &'static str {
        match self {
            NodeFault::Crash => "Crash",
            NodeFault::Straggler { .. } => "Straggler",
            NodeFault::Partition => "Partition",
            NodeFault::Drain => "Drain",
        }
    }

    /// Human-readable parameter summary for telemetry.
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            NodeFault::Crash => "node crashed".into(),
            NodeFault::Straggler { factor } => format!("capacity /{factor:.1}"),
            NodeFault::Partition => "partitioned from router".into(),
            NodeFault::Drain => "rolling-restart drain".into(),
        }
    }

    fn validate(&self) -> Result<(), String> {
        match *self {
            NodeFault::Straggler { factor } => {
                if factor.is_finite() && factor > 1.0 {
                    Ok(())
                } else {
                    Err(format!("Straggler factor must be > 1, got {factor}"))
                }
            }
            NodeFault::Crash | NodeFault::Partition | NodeFault::Drain => Ok(()),
        }
    }
}

/// One scheduled node fault: which node, what, when, and until when.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFaultEvent {
    /// Index of the target node in fleet (server) order.
    pub node: usize,
    /// Activation time, seconds from run start; applied at the first
    /// epoch boundary `t >= at_secs`.
    pub at_secs: f64,
    /// The failure mode.
    pub fault: NodeFault,
    /// Recovery time, seconds; reverted at the first boundary
    /// `t >= recover_at_secs`. `None` = permanent.
    #[serde(default)]
    pub recover_at_secs: Option<f64>,
}

impl NodeFaultEvent {
    /// A permanent node fault striking at `at_secs`.
    #[must_use]
    pub fn permanent(node: usize, at_secs: f64, fault: NodeFault) -> Self {
        NodeFaultEvent {
            node,
            at_secs,
            fault,
            recover_at_secs: None,
        }
    }

    /// A node fault active over `[at_secs, recover_at_secs)`.
    #[must_use]
    pub fn windowed(node: usize, at_secs: f64, recover_at_secs: f64, fault: NodeFault) -> Self {
        NodeFaultEvent {
            node,
            at_secs,
            fault,
            recover_at_secs: Some(recover_at_secs),
        }
    }
}

/// An ordered script of timed node faults — the fleet chaos screenplay.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeFaultPlan {
    /// The scripted events, sorted by activation time.
    pub events: Vec<NodeFaultEvent>,
}

impl NodeFaultPlan {
    /// A healthy fleet: no node faults.
    #[must_use]
    pub fn none() -> Self {
        NodeFaultPlan::default()
    }

    /// A plan of the given events, sorted by activation time (stable for
    /// ties, so same-instant events apply in authoring order).
    #[must_use]
    pub fn new(mut events: Vec<NodeFaultEvent>) -> Self {
        events.sort_by(|a, b| {
            a.at_secs
                .partial_cmp(&b.at_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        NodeFaultPlan { events }
    }

    /// A single-event plan.
    #[must_use]
    pub fn single(event: NodeFaultEvent) -> Self {
        NodeFaultPlan {
            events: vec![event],
        }
    }

    /// Whether the plan schedules anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks every event for meaningful parameters and sane timing.
    /// Node indices are checked against the fleet size at run time via
    /// [`NodeFaultPlan::validate_for`] (the plan alone does not know it).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed event.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if !(ev.at_secs.is_finite() && ev.at_secs >= 0.0) {
                return Err(format!(
                    "event {i}: at_secs must be finite and >= 0, got {}",
                    ev.at_secs
                ));
            }
            if let Some(rec) = ev.recover_at_secs {
                if !(rec.is_finite() && rec > ev.at_secs) {
                    return Err(format!(
                        "event {i}: recover_at_secs must be finite and > at_secs ({}), got {rec}",
                        ev.at_secs
                    ));
                }
            }
            ev.fault.validate().map_err(|e| format!("event {i}: {e}"))?;
        }
        Ok(())
    }

    /// [`NodeFaultPlan::validate`] plus node-index bounds for a fleet of
    /// `nodes` servers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed event.
    pub fn validate_for(&self, nodes: usize) -> Result<(), String> {
        self.validate()?;
        for (i, ev) in self.events.iter().enumerate() {
            if ev.node >= nodes {
                return Err(format!(
                    "event {i}: node {} out of range for a {nodes}-node fleet",
                    ev.node
                ));
            }
        }
        Ok(())
    }
}

impl Serialize for NodeFaultPlan {
    fn to_content(&self) -> Content {
        if self.events.is_empty() {
            // Healthy default renders as `null`, the shape legacy
            // ClusterConfig JSON (no fleet fields at all) degrades to.
            return Content::Null;
        }
        Content::Map(vec![(
            "events".to_string(),
            Content::Seq(self.events.iter().map(Serialize::to_content).collect()),
        )])
    }
}

impl Deserialize for NodeFaultPlan {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let events: Vec<NodeFaultEvent> = match content {
            Content::Null => Vec::new(),
            Content::Map(entries) if content_get(entries, "events").is_some() => {
                match content_get(entries, "events").expect("checked") {
                    Content::Seq(items) => items
                        .iter()
                        .map(NodeFaultEvent::from_content)
                        .collect::<Result<_, _>>()?,
                    other => {
                        return Err(DeError::expected("sequence", "NodeFaultPlan.events", other))
                    }
                }
            }
            Content::Seq(items) => items
                .iter()
                .map(NodeFaultEvent::from_content)
                .collect::<Result<_, _>>()?,
            other => return Err(DeError::expected("node fault plan", "NodeFaultPlan", other)),
        };
        let plan = NodeFaultPlan::new(events);
        plan.validate()
            .map_err(|e| DeError::custom(format!("invalid NodeFaultPlan: {e}")))?;
        Ok(plan)
    }
}

/// Tunables of the epoch router loop. Every field has a serde default,
/// so legacy `ClusterConfig` JSON without a `fleet` object (and partial
/// objects from hand-edited configs) keeps loading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetParams {
    /// Router epoch length, seconds (health checks, re-weighting and
    /// dispatch all happen at epoch boundaries).
    #[serde(default)]
    pub epoch_secs: f64,
    /// Fleet capacity provisioned as a multiple of the offered rate;
    /// distributed across nodes by profiled capacity weight.
    #[serde(default)]
    pub capacity_margin: f64,
    /// Consecutive missed heartbeats before Healthy → Suspect.
    #[serde(default)]
    pub suspect_after_misses: u32,
    /// Consecutive missed heartbeats before Suspect → Down.
    #[serde(default)]
    pub down_after_misses: u32,
    /// Per-epoch violation rate above which a live node turns Suspect.
    #[serde(default)]
    pub violation_suspect: f64,
    /// Re-dispatch budget: a stranded request is retried at most this
    /// many times before it is dropped against the SLO.
    #[serde(default)]
    pub max_retries: u32,
    /// Backoff of the first retry, epochs; doubles per attempt.
    #[serde(default)]
    pub backoff_base_epochs: u32,
    /// Backoff ceiling, epochs.
    #[serde(default)]
    pub backoff_cap_epochs: u32,
    /// Admission headroom: the pool is shed down to `headroom ×` the
    /// live (routable) capacity each epoch.
    #[serde(default)]
    pub shed_headroom: f64,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            epoch_secs: 1.0,
            capacity_margin: 1.3,
            suspect_after_misses: 1,
            down_after_misses: 3,
            violation_suspect: 0.5,
            max_retries: 3,
            backoff_base_epochs: 1,
            backoff_cap_epochs: 8,
            shed_headroom: 1.05,
        }
    }
}

impl FleetParams {
    /// Zero-valued serde defaults (a field missing from JSON) are
    /// replaced by the documented defaults, so partially-specified
    /// `fleet` objects behave sanely.
    #[must_use]
    pub fn normalized(mut self) -> Self {
        let d = FleetParams::default();
        if !(self.epoch_secs.is_finite() && self.epoch_secs > 0.0) {
            self.epoch_secs = d.epoch_secs;
        }
        if !(self.capacity_margin.is_finite() && self.capacity_margin > 0.0) {
            self.capacity_margin = d.capacity_margin;
        }
        if self.suspect_after_misses == 0 {
            self.suspect_after_misses = d.suspect_after_misses;
        }
        if self.down_after_misses == 0 {
            self.down_after_misses = d.down_after_misses;
        }
        if !(self.violation_suspect.is_finite() && self.violation_suspect > 0.0) {
            self.violation_suspect = d.violation_suspect;
        }
        if self.backoff_base_epochs == 0 {
            self.backoff_base_epochs = d.backoff_base_epochs;
        }
        if self.backoff_cap_epochs == 0 {
            self.backoff_cap_epochs = d.backoff_cap_epochs;
        }
        if !(self.shed_headroom.is_finite() && self.shed_headroom > 0.0) {
            self.shed_headroom = d.shed_headroom;
        }
        self
    }
}

/// Admission priority classes, shed-first order, with their shares of the
/// arrival stream (percent; sums to 100).
const CLASSES: [(&str, u64); 3] = [("best-effort", 20), ("standard", 30), ("interactive", 50)];

/// Stable labels of the admission classes, in shed-first order.
#[must_use]
pub fn class_labels() -> [&'static str; 3] {
    [CLASSES[0].0, CLASSES[1].0, CLASSES[2].0]
}

/// One node's metrics rollup at run end: the final registry snapshot
/// (counters `assigned`/`completed`/`on_time`/`redispatched`/`dropped`/
/// `shed`/`violation_tracked`, plus latency-proxy quantile gauges) and
/// the whole-run per-epoch latency-proxy histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMetricsRollup {
    /// Stable node label from config strings, `node<i>/<platform name>`.
    pub label: String,
    /// Final [`MetricsRegistry`] snapshot of the node.
    pub snapshot: MetricsSnapshot,
    /// Per-epoch latency proxy (`epoch_secs × served / capacity`) over
    /// every epoch the node served traffic; mergeable across runs.
    pub latency_proxy: LogHistogram,
}

impl NodeMetricsRollup {
    /// A counter from the final snapshot (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.snapshot.counters.get(name).copied().unwrap_or(0)
    }
}

/// Outcome of one fleet run: exact integer request-flow accounting plus
/// derived SLO attainment and cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Routing policy used.
    pub policy: String,
    /// Router epochs simulated.
    pub epochs: u64,
    /// New requests offered to the fleet over the run.
    pub offered: u64,
    /// Requests entering the admission/dispatch pipeline, counting each
    /// re-dispatch re-entry — the left side of the conservation identity.
    pub dispatched: u64,
    /// Requests completed by a live node.
    pub completed: u64,
    /// Completed requests that were served in capacity on their first
    /// dispatch (never stranded, never beyond a node's epoch capacity).
    pub on_time: u64,
    /// Stranded requests re-queued for a later epoch.
    pub redispatched: u64,
    /// Stranded requests whose retry budget ran out.
    pub dropped: u64,
    /// Requests shed by the admission controller.
    pub shed: u64,
    /// Shed counts by class, in [`class_labels`] order.
    pub shed_by_class: Vec<u64>,
    /// Requests still waiting in the retry queue at run end.
    pub pending: u64,
    /// Node health transitions observed.
    pub health_transitions: u64,
    /// SLO attainment: `on_time / offered`.
    pub attainment: f64,
    /// Serving cost per million generated tokens, USD (amortized CapEx
    /// plus energy over the whole provisioned fleet — dead nodes still
    /// cost money, which is what makes resilience a TCO question).
    pub usd_per_mtok: f64,
    /// Per-node metric rollups in fleet (server) order; every counter is
    /// a partition of the matching fleet total
    /// ([`FleetOutcome::node_conservation_ok`]).
    #[serde(default)]
    pub node_metrics: Vec<NodeMetricsRollup>,
}

impl FleetOutcome {
    /// The stranded-request conservation identity, which holds exactly
    /// (integer flow accounting): every request entering the pipeline
    /// leaves it as exactly one of completed / re-queued / shed / dropped.
    #[must_use]
    pub fn conservation_ok(&self) -> bool {
        self.dispatched == self.completed + self.redispatched + self.shed + self.dropped
    }

    /// The per-node rollup partitions the fleet totals exactly: summing
    /// any flow counter over [`FleetOutcome::node_metrics`] reproduces
    /// the matching fleet field, and per-node assignments plus sheds
    /// cover everything dispatched. Trivially true when the rollup is
    /// absent (legacy outcomes decoded without `node_metrics`).
    #[must_use]
    pub fn node_conservation_ok(&self) -> bool {
        if self.node_metrics.is_empty() {
            return true;
        }
        let sum = |name: &str| -> u64 { self.node_metrics.iter().map(|m| m.counter(name)).sum() };
        sum("completed") == self.completed
            && sum("on_time") == self.on_time
            && sum("redispatched") == self.redispatched
            && sum("dropped") == self.dropped
            && sum("shed") == self.shed
            && sum("assigned") + self.shed == self.dispatched
    }
}

/// Per-node physical + router-visible state inside the epoch loop.
struct NodeState {
    crashed: bool,
    partitioned: bool,
    draining: bool,
    straggle: f64,
    health: NodeHealth,
    missed: u32,
    /// Violation rate the router observed from this node last epoch.
    last_violation: f64,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            crashed: false,
            partitioned: false,
            draining: false,
            straggle: 1.0,
            health: NodeHealth::Healthy,
            missed: 0,
            last_violation: 0.0,
        }
    }

    /// Heartbeats reach the router (drain is cooperative — it keeps
    /// heartbeating).
    fn responsive(&self) -> bool {
        !self.crashed && !self.partitioned
    }

    /// Physically able to serve newly assigned requests this epoch.
    fn serves(&self) -> bool {
        !self.crashed && !self.partitioned && !self.draining
    }
}

/// Routing share multiplier per health state under the failover policy.
fn health_factor(health: NodeHealth) -> f64 {
    match health {
        NodeHealth::Healthy => 1.0,
        // Suspect and Recovering carry a half share: enough traffic to
        // observe them, not enough to bet the SLO on them.
        NodeHealth::Suspect | NodeHealth::Recovering => 0.5,
        NodeHealth::Down | NodeHealth::Draining => 0.0,
    }
}

/// Splits `count` requests across nodes proportionally to `weights`
/// using largest-remainder rounding — deterministic (ties break by node
/// index) and exactly conserving (`sum == count`).
fn split_requests(count: u64, weights: &[f64]) -> Vec<u64> {
    let total: f64 = weights.iter().sum();
    if count == 0 || total <= 0.0 {
        return vec![0; weights.len()];
    }
    let mut out: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, w) in weights.iter().enumerate() {
        let quota = count as f64 * (w / total);
        let base = quota.floor() as u64;
        out.push(base);
        assigned += base;
        fracs.push((i, quota - quota.floor()));
    }
    // Largest fractional parts get the remainder, node index breaks ties.
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(a.0.cmp(&b.0)));
    let mut rest = count - assigned;
    for (i, _) in fracs {
        if rest == 0 {
            break;
        }
        out[i] += 1;
        rest -= 1;
    }
    out
}

/// A batch of stranded requests waiting out its backoff.
struct RetryBatch {
    ready_epoch: u64,
    attempt: u32,
    count: u64,
}

/// Runs the fleet flow model for `cfg` under `policy`.
///
/// `capacity_weights` is each node's share of the fleet's physical
/// serving capacity (the AUV-profiled weights from
/// [`crate::cluster::routing_weights`]); it is normalized internally and
/// is independent of the routing policy — routing *shares* follow the
/// policy, capacity follows the hardware.
///
/// Telemetry ([`Event::NodeFault`], [`Event::NodeHealthTransition`],
/// [`Event::RequestRedispatch`], [`Event::LoadShed`],
/// [`Event::FaultOutsideWindow`]) is emitted into `tracer` at epoch
/// boundaries; pass [`Tracer::disabled`] to skip it.
///
/// # Panics
///
/// Panics if the cluster is empty, if `capacity_weights` disagrees with
/// the server count, or if the fault plan is invalid for this fleet.
#[must_use]
pub fn run_fleet(
    cfg: &ClusterConfig,
    policy: RoutingPolicy,
    capacity_weights: &[f64],
    tracer: &Tracer,
) -> FleetOutcome {
    run_fleet_traced(
        cfg,
        policy,
        capacity_weights,
        tracer,
        &format!("fleet/{policy}"),
    )
}

/// [`run_fleet`] with an explicit span track name.
///
/// The flat events land on no track, but the span stream
/// ([`SpanKind::FleetEpoch`] on `track`, [`SpanKind::NodeHealthEpisode`]
/// and [`SpanKind::RedispatchHop`] on `<track>/node<i>`) keys span ids
/// per track — callers merging several traced fleet runs into one sink
/// (e.g. the fleet-chaos matrix) must pass a distinct track per run or
/// the streams collide as duplicate opens.
///
/// # Panics
///
/// Same as [`run_fleet`].
#[must_use]
pub fn run_fleet_traced(
    cfg: &ClusterConfig,
    policy: RoutingPolicy,
    capacity_weights: &[f64],
    tracer: &Tracer,
    track: &str,
) -> FleetOutcome {
    let n = cfg.servers.len();
    assert!(n > 0, "fleet needs servers");
    assert_eq!(capacity_weights.len(), n, "one capacity weight per server");
    cfg.fault_plan
        .validate_for(n)
        .expect("invalid NodeFaultPlan");
    let params = cfg.fleet.normalized();
    let duration_secs = cfg.duration.as_secs_f64();
    let epochs = (duration_secs / params.epoch_secs).ceil().max(1.0) as u64;
    let at_of = |e: u64| SimTime::from_secs_f64(e as f64 * params.epoch_secs);
    let epoch_at_or_after =
        |secs: f64| -> u64 { (secs / params.epoch_secs).ceil().max(0.0) as u64 };

    let cap_sum: f64 = capacity_weights.iter().sum();
    let cap_share: Vec<f64> = capacity_weights.iter().map(|w| w / cap_sum).collect();
    // Physical per-node capacity, requests per epoch.
    let node_cap: Vec<f64> = cap_share
        .iter()
        .map(|share| params.capacity_margin * cfg.total_rate * params.epoch_secs * share)
        .collect();
    // The static split the non-failover policies hold for the whole run.
    let base_weights: Vec<f64> = match policy {
        RoutingPolicy::Uniform => vec![1.0; n],
        RoutingPolicy::BandwidthProportional => cfg
            .servers
            .iter()
            .map(|s| s.platform.mem_bw.value())
            .collect(),
        RoutingPolicy::AuvWeighted | RoutingPolicy::Failover => cap_share.clone(),
    };

    // Fault schedule: (epoch, seq, event index, apply?) sorted so edges at
    // one boundary replay in plan order, apply edges before revert edges
    // scheduled for the same instant by a later event.
    let mut schedule: Vec<(u64, usize, usize, bool)> = Vec::new();
    for (i, ev) in cfg.fault_plan.events.iter().enumerate() {
        let at = epoch_at_or_after(ev.at_secs);
        if at >= epochs {
            tracer.emit(at_of(epochs.saturating_sub(1)), || {
                Event::FaultOutsideWindow {
                    kind: ev.fault.kind_label().to_string(),
                    at_secs: ev.at_secs,
                    duration_secs,
                }
            });
            continue;
        }
        schedule.push((at, i, i, true));
        if let Some(rec) = ev.recover_at_secs {
            let rec_at = epoch_at_or_after(rec);
            if rec_at < epochs {
                schedule.push((rec_at, i, i, false));
            }
        }
    }
    schedule.sort_by_key(|&(e, seq, _, apply)| (e, seq, apply));
    let mut schedule_iter = schedule.into_iter().peekable();

    let mut nodes: Vec<NodeState> = (0..n).map(|_| NodeState::new()).collect();
    // Per-node observability: labels/tracks from config strings, one
    // metrics registry and latency-proxy histogram per node, the payload
    // of each node's currently-open health-episode span, and a per-epoch
    // hop-span sequence number (ids derive from (node, epoch, seq) — no
    // global counters, so the stream is identical at any --jobs level).
    let node_labels = cfg.node_labels();
    let node_tracks: Vec<String> = (0..n).map(|i| format!("{track}/node{i}")).collect();
    let mut node_regs: Vec<MetricsRegistry> = (0..n).map(|_| MetricsRegistry::new()).collect();
    let mut node_hist: Vec<LogHistogram> = vec![LogHistogram::default(); n];
    let mut episode_open: Vec<Option<u64>> = vec![None; n];
    let mut retry_queue: Vec<RetryBatch> = Vec::new();
    let mut arrival_acc = 0.0f64;
    let mut class_acc = [0.0f64; 3];

    let mut offered = 0u64;
    let mut dispatched = 0u64;
    let mut completed = 0u64;
    let mut on_time = 0u64;
    let mut redispatched = 0u64;
    let mut dropped = 0u64;
    let mut shed = 0u64;
    let mut shed_by_class = vec![0u64; CLASSES.len()];
    let mut health_transitions = 0u64;

    for e in 0..epochs {
        let at = at_of(e);

        // 0. One FleetEpoch span per router epoch on the fleet track
        // (the close lands on the next boundary; OrderingSink time-sorts
        // at flush, so emitting it now is safe).
        let epoch_span = SpanId::derive(SpanKind::FleetEpoch, e).0;
        tracer.emit(at, || Event::SpanOpen {
            id: epoch_span,
            parent: None,
            kind: SpanKind::FleetEpoch,
            track: track.to_string(),
            label: format!("epoch {e}"),
        });
        tracer.emit(at_of(e + 1), || Event::SpanClose {
            id: epoch_span,
            kind: SpanKind::FleetEpoch,
            track: track.to_string(),
        });

        // 1. Replay scripted fault edges landing on this boundary.
        while let Some(&(edge_epoch, _, idx, apply)) = schedule_iter.peek() {
            if edge_epoch != e {
                break;
            }
            schedule_iter.next();
            let ev = &cfg.fault_plan.events[idx];
            let node = &mut nodes[ev.node];
            match (ev.fault, apply) {
                (NodeFault::Crash, a) => node.crashed = a,
                (NodeFault::Straggler { factor }, true) => node.straggle = factor,
                (NodeFault::Straggler { .. }, false) => node.straggle = 1.0,
                (NodeFault::Partition, a) => node.partitioned = a,
                (NodeFault::Drain, a) => node.draining = a,
            }
            tracer.emit(at, || Event::NodeFault {
                node: ev.node,
                kind: ev.fault.kind_label().to_string(),
                detail: ev.fault.detail(),
                active: apply,
            });
        }

        // 2. Heartbeats and the health state machine.
        for (i, node) in nodes.iter_mut().enumerate() {
            if node.responsive() {
                node.missed = 0;
            } else {
                node.missed = node.missed.saturating_add(1);
            }
            let (next, reason): (NodeHealth, String) = if node.draining {
                (NodeHealth::Draining, "rolling-restart drain".to_string())
            } else if !node.responsive() {
                if node.missed >= params.down_after_misses {
                    (
                        NodeHealth::Down,
                        format!("{} missed heartbeats", node.missed),
                    )
                } else if node.missed >= params.suspect_after_misses {
                    (
                        NodeHealth::Suspect,
                        format!("{} missed heartbeat(s)", node.missed),
                    )
                } else {
                    (node.health, String::new())
                }
            } else {
                match node.health {
                    NodeHealth::Down | NodeHealth::Draining => {
                        (NodeHealth::Recovering, "heartbeat restored".to_string())
                    }
                    NodeHealth::Recovering => (NodeHealth::Healthy, "clean epoch".to_string()),
                    NodeHealth::Suspect if node.last_violation <= params.violation_suspect => {
                        (NodeHealth::Healthy, "signal cleared".to_string())
                    }
                    NodeHealth::Healthy if node.last_violation > params.violation_suspect => (
                        NodeHealth::Suspect,
                        format!("violation rate {:.2}", node.last_violation),
                    ),
                    current => (current, String::new()),
                }
            };
            if next != node.health {
                let from = node.health;
                node.health = next;
                health_transitions += 1;
                tracer.emit(at, || Event::NodeHealthTransition {
                    node: i,
                    from,
                    to: next,
                    reason: reason.clone(),
                });
                // Health-episode spans on the node's track: close the
                // running episode (if any), open a new one unless the
                // node just turned Healthy. Payload packs (node, epoch).
                if let Some(payload) = episode_open[i].take() {
                    let id = SpanId::derive(SpanKind::NodeHealthEpisode, payload).0;
                    tracer.emit(at, || Event::SpanClose {
                        id,
                        kind: SpanKind::NodeHealthEpisode,
                        track: node_tracks[i].clone(),
                    });
                }
                if next != NodeHealth::Healthy {
                    let payload = ((i as u64) << 40) | e;
                    episode_open[i] = Some(payload);
                    let id = SpanId::derive(SpanKind::NodeHealthEpisode, payload).0;
                    tracer.emit(at, || Event::SpanOpen {
                        id,
                        parent: None,
                        kind: SpanKind::NodeHealthEpisode,
                        track: node_tracks[i].clone(),
                        label: format!("{next:?}"),
                    });
                }
                // Snapshot unconditionally (registry state must not
                // depend on whether the tracer is enabled) so node-down
                // incident dumps carry the offending node's metrics.
                let snap = node_regs[i].snapshot(at).clone();
                tracer.emit(at, || Event::NodeMetricsSnapshot {
                    node: i,
                    label: node_labels[i].clone(),
                    snapshot: snap,
                });
            }
        }

        // 3. Routing weights for this epoch: failover re-weights from
        // health, every other policy keeps the t=0 split.
        let weights: Vec<f64> = match policy {
            RoutingPolicy::Failover => base_weights
                .iter()
                .zip(&nodes)
                .map(|(w, s)| w * health_factor(s.health))
                .collect(),
            _ => base_weights.clone(),
        };

        // 4. Assemble the dispatch pool: fresh arrivals (exact integer
        // accumulation of the offered rate, split into priority classes)
        // plus retry batches whose backoff expired.
        arrival_acc += cfg.total_rate * params.epoch_secs;
        let arrivals = arrival_acc.floor() as u64;
        arrival_acc -= arrivals as f64;
        let mut fresh = [0u64; 3];
        for (c, (_, share)) in CLASSES.iter().enumerate() {
            class_acc[c] += arrivals as f64 * (*share as f64 / 100.0);
            fresh[c] = class_acc[c].floor() as u64;
            class_acc[c] -= fresh[c] as f64;
        }
        offered += fresh.iter().sum::<u64>();
        let mut ready: Vec<RetryBatch> = Vec::new();
        retry_queue.retain_mut(|b| {
            if b.ready_epoch <= e {
                ready.push(RetryBatch {
                    ready_epoch: b.ready_epoch,
                    attempt: b.attempt,
                    count: b.count,
                });
                false
            } else {
                true
            }
        });
        let fresh_total: u64 = fresh.iter().sum();
        let ready_total: u64 = ready.iter().map(|b| b.count).sum();
        dispatched += fresh_total + ready_total;

        // 5. Admission control: shed down to the live capacity the router
        // believes it has, lowest class first. Retries are already
        // admitted work and are never shed.
        let live_cap: f64 = node_cap
            .iter()
            .zip(&weights)
            .zip(&nodes)
            .map(|((cap, w), s)| if *w > 0.0 { cap / s.straggle } else { 0.0 })
            .sum();
        let budget = (params.shed_headroom * live_cap).floor() as u64;
        let pool_total = fresh_total + ready_total;
        let mut shed_this_epoch = 0u64;
        if pool_total > budget {
            let mut excess = pool_total - budget;
            for (c, count) in fresh.iter_mut().enumerate() {
                if excess == 0 {
                    break;
                }
                let cut = (*count).min(excess);
                if cut > 0 {
                    *count -= cut;
                    excess -= cut;
                    shed += cut;
                    shed_this_epoch += cut;
                    shed_by_class[c] += cut;
                    tracer.emit(at, || Event::LoadShed {
                        class: CLASSES[c].0.to_string(),
                        count: cut,
                        epoch: e,
                    });
                }
            }
            // Excess beyond all fresh arrivals stays in the pool: retries
            // ride through admission unconditionally.
        }
        // Attribute the shed work to the nodes whose (un)availability
        // forced it, by this epoch's routing shares — split_requests
        // conserves exactly, keeping the per-node rollup a partition of
        // the fleet totals. With nothing routable the router itself shed,
        // which the rollup books on node 0 (like router-level strands).
        if shed_this_epoch > 0 {
            if weights.iter().sum::<f64>() > 0.0 {
                for (i, part) in split_requests(shed_this_epoch, &weights)
                    .into_iter()
                    .enumerate()
                {
                    if part > 0 {
                        node_regs[i].counter_add("shed", part);
                    }
                }
            } else {
                node_regs[0].counter_add("shed", shed_this_epoch);
            }
        }
        let admitted_fresh: u64 = fresh.iter().sum();

        // 6. Dispatch: split every pool component across nodes by this
        // epoch's weights (retries first — they are the oldest work).
        let fresh_assigned = split_requests(admitted_fresh, &weights);
        let ready_assigned: Vec<Vec<u64>> = ready
            .iter()
            .map(|b| split_requests(b.count, &weights))
            .collect();
        let total_weight: f64 = weights.iter().sum();

        // 7. Service and stranding, with exact flow accounting. Hop-span
        // ids derive from (per-node sequence, epoch); the sequence resets
        // every epoch so ids are a pure function of simulation state.
        let mut hop_seq: Vec<u64> = vec![0; n];
        let strand = |node_idx: usize,
                      attempt: u32,
                      count: u64,
                      reg: &mut MetricsRegistry,
                      hop: &mut u64,
                      redispatched: &mut u64,
                      dropped: &mut u64,
                      retry_queue: &mut Vec<RetryBatch>| {
            if count == 0 {
                return;
            }
            if attempt > params.max_retries {
                *dropped += count;
                reg.counter_add("dropped", count);
                return;
            }
            let backoff = params
                .backoff_base_epochs
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(params.backoff_cap_epochs)
                .max(1);
            *redispatched += count;
            reg.counter_add("redispatched", count);
            let ready_epoch = e + 1 + u64::from(backoff);
            retry_queue.push(RetryBatch {
                ready_epoch,
                attempt: attempt + 1,
                count,
            });
            tracer.emit(at, || Event::RequestRedispatch {
                node: node_idx,
                count,
                attempt: attempt + 1,
                backoff_epochs: backoff,
            });
            // One RedispatchHop span per stranded batch on the failing
            // node's track, covering the backoff window. The label is the
            // merged batch id (`r<ready>a<attempt>`) the batch carries
            // when it re-enters dispatch — the link tying consecutive
            // hops of one retry chain together.
            let seq = *hop;
            *hop += 1;
            let id = SpanId::derive(SpanKind::RedispatchHop, (seq << 40) | e).0;
            tracer.emit(at, || Event::SpanOpen {
                id,
                parent: None,
                kind: SpanKind::RedispatchHop,
                track: node_tracks[node_idx].clone(),
                label: format!("batch r{ready_epoch}a{} x{count}", attempt + 1),
            });
            tracer.emit(at_of(ready_epoch.min(epochs)), || Event::SpanClose {
                id,
                kind: SpanKind::RedispatchHop,
                track: node_tracks[node_idx].clone(),
            });
        };

        if total_weight <= 0.0 {
            // Nothing routable: the whole pool strands at the router,
            // booked on node 0 (like the router-level shed above).
            let pool = admitted_fresh + ready_total;
            if pool > 0 {
                node_regs[0].counter_add("assigned", pool);
            }
            strand(
                0,
                1,
                admitted_fresh,
                &mut node_regs[0],
                &mut hop_seq[0],
                &mut redispatched,
                &mut dropped,
                &mut retry_queue,
            );
            for b in &ready {
                strand(
                    0,
                    b.attempt,
                    b.count,
                    &mut node_regs[0],
                    &mut hop_seq[0],
                    &mut redispatched,
                    &mut dropped,
                    &mut retry_queue,
                );
            }
        } else {
            for (i, node) in nodes.iter_mut().enumerate() {
                let fresh_i = fresh_assigned[i];
                let retry_i: u64 = ready_assigned.iter().map(|v| v[i]).sum();
                if fresh_i + retry_i > 0 {
                    node_regs[i].counter_add("assigned", fresh_i + retry_i);
                }
                if node.serves() {
                    let cap = (node_cap[i] / node.straggle).floor() as u64;
                    let served = fresh_i + retry_i;
                    // Retries complete but are late by construction (they
                    // blew TTFT stranded on a dead node); fresh work
                    // beyond the node's epoch capacity completes late too.
                    let on_time_i = fresh_i.min(cap.saturating_sub(retry_i));
                    completed += served;
                    on_time += on_time_i;
                    node.last_violation = if served == 0 {
                        0.0
                    } else {
                        (served - on_time_i) as f64 / served as f64
                    };
                    if served > 0 {
                        let reg = &mut node_regs[i];
                        reg.counter_add("completed", served);
                        if on_time_i > 0 {
                            reg.counter_add("on_time", on_time_i);
                        }
                        if served > on_time_i {
                            reg.counter_add("violation_tracked", served - on_time_i);
                        }
                        reg.gauge_set("violation_rate", node.last_violation);
                        if cap > 0 {
                            // Latency proxy: the fraction of the epoch the
                            // node's capacity was busy on this load.
                            node_hist[i].record(params.epoch_secs * served as f64 / cap as f64);
                        }
                    }
                } else {
                    // Stranded: re-queue with backoff or drop when the
                    // retry budget is spent.
                    strand(
                        i,
                        1,
                        fresh_i,
                        &mut node_regs[i],
                        &mut hop_seq[i],
                        &mut redispatched,
                        &mut dropped,
                        &mut retry_queue,
                    );
                    for (b, assigned) in ready.iter().zip(&ready_assigned) {
                        strand(
                            i,
                            b.attempt,
                            assigned[i],
                            &mut node_regs[i],
                            &mut hop_seq[i],
                            &mut redispatched,
                            &mut dropped,
                            &mut retry_queue,
                        );
                    }
                    node.last_violation = 0.0;
                }
            }
        }

        // Coalesce retry batches sharing (ready, attempt) so the queue
        // stays bounded regardless of run length.
        retry_queue.sort_by_key(|b| (b.ready_epoch, b.attempt));
        retry_queue.dedup_by(|b, a| {
            if a.ready_epoch == b.ready_epoch && a.attempt == b.attempt {
                a.count += b.count;
                true
            } else {
                false
            }
        });
    }

    // Close health episodes still open at run end (balanced span streams
    // export cleanly) and roll each node's registry up into the outcome.
    let end = at_of(epochs);
    for (i, open) in episode_open.iter_mut().enumerate() {
        if let Some(payload) = open.take() {
            let id = SpanId::derive(SpanKind::NodeHealthEpisode, payload).0;
            tracer.emit(end, || Event::SpanClose {
                id,
                kind: SpanKind::NodeHealthEpisode,
                track: node_tracks[i].clone(),
            });
        }
    }
    let mut node_metrics: Vec<NodeMetricsRollup> = Vec::with_capacity(n);
    for (i, mut reg) in node_regs.into_iter().enumerate() {
        let h = &node_hist[i];
        if h.count() > 0 {
            reg.gauge_set("epoch_latency_proxy_secs/p50", h.quantile(0.5));
            reg.gauge_set("epoch_latency_proxy_secs/p90", h.quantile(0.9));
            reg.gauge_set("epoch_latency_proxy_secs/p99", h.quantile(0.99));
        }
        let snapshot = reg.snapshot(end).clone();
        node_metrics.push(NodeMetricsRollup {
            label: node_labels[i].clone(),
            snapshot,
            latency_proxy: h.clone(),
        });
    }

    let pending: u64 = retry_queue.iter().map(|b| b.count).sum();
    let attainment = if offered == 0 {
        1.0
    } else {
        on_time as f64 / offered as f64
    };
    // Cost: amortized CapEx plus energy over the whole provisioned fleet
    // for the whole run (a crashed node still costs money).
    let anchor = CpuAnchor::gen_a_paper();
    let node_usd_per_sec =
        anchor.cost_usd / AMORTIZATION_SECS + anchor.power_w / 1000.0 * USD_PER_KWH / 3600.0;
    let fleet_cost = node_usd_per_sec * n as f64 * duration_secs;
    let tokens = completed as f64 * cfg.scenario.mean_output() as f64;
    let usd_per_mtok = fleet_cost / (tokens.max(1.0) / 1e6);

    FleetOutcome {
        policy: policy.to_string(),
        epochs,
        offered,
        dispatched,
        completed,
        on_time,
        redispatched,
        dropped,
        shed,
        shed_by_class,
        pending,
        health_transitions,
        attainment,
        usd_per_mtok,
        node_metrics,
    }
}

/// CapEx amortization horizon: 3 years of seconds.
const AMORTIZATION_SECS: f64 = 3.0 * 365.0 * 24.0 * 3600.0;
/// Electricity price, USD per kWh.
const USD_PER_KWH: f64 = 0.10;

#[cfg(test)]
mod tests {
    use super::*;
    use aum_llm::traces::Scenario;
    use aum_sim::telemetry::{MemorySink, TraceRecord};

    fn fleet_cfg(plan: NodeFaultPlan) -> ClusterConfig {
        let mut cfg = ClusterConfig::heterogeneous_demo(Scenario::Chatbot);
        cfg.duration = aum_sim::time::SimDuration::from_secs(120);
        cfg.total_rate = 30.0;
        cfg.fault_plan = plan;
        cfg
    }

    fn even_weights(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    fn crash_plan() -> NodeFaultPlan {
        NodeFaultPlan::single(NodeFaultEvent::permanent(0, 20.0, NodeFault::Crash))
    }

    fn captured(
        cfg: &ClusterConfig,
        policy: RoutingPolicy,
        weights: &[f64],
    ) -> (FleetOutcome, Vec<TraceRecord>) {
        let (tracer, sink) = Tracer::shared(MemorySink::new());
        let out = run_fleet(cfg, policy, weights, &tracer);
        let records = sink.lock().expect("sink lock").records().to_vec();
        (out, records)
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let bad_factor = NodeFaultPlan::single(NodeFaultEvent::permanent(
            0,
            1.0,
            NodeFault::Straggler { factor: 1.0 },
        ));
        assert!(bad_factor.validate().is_err());
        let negative = NodeFaultPlan::single(NodeFaultEvent::permanent(0, -1.0, NodeFault::Crash));
        assert!(negative.validate().is_err());
        let inverted =
            NodeFaultPlan::single(NodeFaultEvent::windowed(0, 10.0, 5.0, NodeFault::Partition));
        assert!(inverted.validate().is_err());
        let out_of_range =
            NodeFaultPlan::single(NodeFaultEvent::permanent(7, 1.0, NodeFault::Crash));
        assert!(out_of_range.validate().is_ok());
        assert!(out_of_range.validate_for(3).is_err());
    }

    #[test]
    fn healthy_fleet_attains_everything_and_conserves() {
        let cfg = fleet_cfg(NodeFaultPlan::none());
        for policy in [
            RoutingPolicy::Uniform,
            RoutingPolicy::AuvWeighted,
            RoutingPolicy::Failover,
        ] {
            let out = run_fleet(&cfg, policy, &even_weights(3), &Tracer::disabled());
            assert!(out.conservation_ok(), "{policy}: {out:?}");
            assert_eq!(out.dropped, 0, "{policy}");
            assert_eq!(out.shed, 0, "{policy}");
            assert!(out.attainment > 0.999, "{policy}: {}", out.attainment);
        }
    }

    #[test]
    fn conservation_is_exact_under_every_fault_kind() {
        let plans = [
            crash_plan(),
            NodeFaultPlan::single(NodeFaultEvent::windowed(
                1,
                20.0,
                70.0,
                NodeFault::Partition,
            )),
            NodeFaultPlan::single(NodeFaultEvent::windowed(
                2,
                20.0,
                70.0,
                NodeFault::Straggler { factor: 3.0 },
            )),
            NodeFaultPlan::new(vec![
                NodeFaultEvent::windowed(0, 20.0, 40.0, NodeFault::Drain),
                NodeFaultEvent::windowed(1, 40.0, 60.0, NodeFault::Drain),
                NodeFaultEvent::windowed(2, 60.0, 80.0, NodeFault::Drain),
            ]),
        ];
        for plan in plans {
            for policy in [RoutingPolicy::AuvWeighted, RoutingPolicy::Failover] {
                let cfg = fleet_cfg(plan.clone());
                let out = run_fleet(&cfg, policy, &even_weights(3), &Tracer::disabled());
                assert!(
                    out.conservation_ok(),
                    "{policy}: dispatched {} != completed {} + redispatched {} + shed {} + dropped {}",
                    out.dispatched,
                    out.completed,
                    out.redispatched,
                    out.shed,
                    out.dropped
                );
            }
        }
    }

    #[test]
    fn failover_beats_static_routing_under_a_crash() {
        let cfg = fleet_cfg(crash_plan());
        let failover = run_fleet(
            &cfg,
            RoutingPolicy::Failover,
            &even_weights(3),
            &Tracer::disabled(),
        );
        let stat = run_fleet(
            &cfg,
            RoutingPolicy::AuvWeighted,
            &even_weights(3),
            &Tracer::disabled(),
        );
        assert!(
            failover.attainment >= 0.8,
            "failover must retain >= 80%: {}",
            failover.attainment
        );
        assert!(
            stat.attainment < failover.attainment,
            "static {} must be strictly worse than failover {}",
            stat.attainment,
            failover.attainment
        );
        // The static router keeps feeding the dead node, so it drops
        // requests once retry budgets run out; failover stops after the
        // detection lag and drops nothing.
        assert!(stat.dropped > 0);
        assert_eq!(failover.dropped, 0);
    }

    #[test]
    fn crash_walks_the_health_machine_and_emits_redispatches() {
        let cfg = fleet_cfg(NodeFaultPlan::single(NodeFaultEvent::windowed(
            0,
            20.0,
            60.0,
            NodeFault::Crash,
        )));
        let (out, records) = captured(&cfg, RoutingPolicy::Failover, &even_weights(3));
        assert!(out.conservation_ok());
        let transitions: Vec<(NodeHealth, NodeHealth)> = records
            .iter()
            .filter_map(|r| match &r.event {
                Event::NodeHealthTransition {
                    node: 0, from, to, ..
                } => Some((*from, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            transitions,
            vec![
                (NodeHealth::Healthy, NodeHealth::Suspect),
                (NodeHealth::Suspect, NodeHealth::Down),
                (NodeHealth::Down, NodeHealth::Recovering),
                (NodeHealth::Recovering, NodeHealth::Healthy),
            ],
            "crash/restart must walk the full machine"
        );
        assert!(
            records
                .iter()
                .any(|r| matches!(r.event, Event::RequestRedispatch { node: 0, .. })),
            "detection-lag strands must be re-dispatched"
        );
        assert!(
            records
                .iter()
                .any(|r| matches!(&r.event, Event::NodeFault { node: 0, active, .. } if !active)),
            "recovery edge must be traced"
        );
    }

    #[test]
    fn cooperative_drain_strands_nothing_under_failover() {
        let cfg = fleet_cfg(NodeFaultPlan::single(NodeFaultEvent::windowed(
            1,
            20.0,
            50.0,
            NodeFault::Drain,
        )));
        let failover = run_fleet(
            &cfg,
            RoutingPolicy::Failover,
            &even_weights(3),
            &Tracer::disabled(),
        );
        assert_eq!(
            failover.redispatched, 0,
            "the router is told about drains before traffic strands"
        );
        let stat = run_fleet(
            &cfg,
            RoutingPolicy::AuvWeighted,
            &even_weights(3),
            &Tracer::disabled(),
        );
        assert!(
            stat.redispatched > 0,
            "a static router keeps routing into the draining node"
        );
    }

    #[test]
    fn overload_sheds_best_effort_first() {
        let mut cfg = fleet_cfg(NodeFaultPlan::none());
        // Offered load 1.6x the provisioned capacity margin: the admission
        // controller must shed, and must exhaust best-effort before
        // touching the standard class.
        cfg.total_rate = 30.0 * 1.6;
        cfg.fleet.capacity_margin = 1.3 / 1.6;
        let (out, records) = captured(&cfg, RoutingPolicy::Failover, &even_weights(3));
        assert!(out.conservation_ok());
        assert!(out.shed > 0, "overload must shed");
        assert!(
            out.shed_by_class[0] >= out.shed_by_class[1],
            "best-effort sheds first: {:?}",
            out.shed_by_class
        );
        assert_eq!(
            out.shed_by_class[2], 0,
            "interactive is shed last and should survive this overload: {:?}",
            out.shed_by_class
        );
        assert!(records
            .iter()
            .any(|r| matches!(&r.event, Event::LoadShed { class, .. } if class == "best-effort")));
    }

    #[test]
    fn straggler_raises_violations_and_failover_reacts() {
        let cfg = fleet_cfg(NodeFaultPlan::single(NodeFaultEvent::windowed(
            2,
            20.0,
            80.0,
            NodeFault::Straggler { factor: 4.0 },
        )));
        let (_, records) = captured(&cfg, RoutingPolicy::Failover, &even_weights(3));
        assert!(
            records.iter().any(|r| matches!(
                &r.event,
                Event::NodeHealthTransition {
                    node: 2,
                    to: NodeHealth::Suspect,
                    ..
                }
            )),
            "sustained slowdown must surface through the violation signal"
        );
        let failover = run_fleet(
            &cfg,
            RoutingPolicy::Failover,
            &even_weights(3),
            &Tracer::disabled(),
        );
        let stat = run_fleet(
            &cfg,
            RoutingPolicy::AuvWeighted,
            &even_weights(3),
            &Tracer::disabled(),
        );
        assert!(
            failover.attainment > stat.attainment,
            "down-weighting the straggler must pay: {} vs {}",
            failover.attainment,
            stat.attainment
        );
    }

    #[test]
    fn events_past_the_run_window_warn_instead_of_firing() {
        let cfg = fleet_cfg(NodeFaultPlan::single(NodeFaultEvent::permanent(
            0,
            10_000.0,
            NodeFault::Crash,
        )));
        let (out, records) = captured(&cfg, RoutingPolicy::Failover, &even_weights(3));
        assert!(out.attainment > 0.999, "the fault never fires");
        assert!(records.iter().any(
            |r| matches!(&r.event, Event::FaultOutsideWindow { kind, .. } if kind == "Crash")
        ));
    }

    #[test]
    fn split_requests_conserves_and_is_deterministic() {
        for count in [0u64, 1, 7, 100, 1001] {
            for weights in [vec![0.2, 0.3, 0.5], vec![1.0, 0.0, 0.0], vec![0.5, 0.5]] {
                let split = split_requests(count, &weights);
                assert_eq!(split.iter().sum::<u64>(), count, "{count} {weights:?}");
                assert_eq!(split, split_requests(count, &weights));
            }
        }
        assert_eq!(split_requests(10, &[0.0, 0.0]), vec![0, 0]);
    }

    #[test]
    fn validate_for_boundary_cases() {
        // A node index exactly equal to the fleet size is the first
        // out-of-range value.
        let at_edge = NodeFaultPlan::single(NodeFaultEvent::permanent(3, 1.0, NodeFault::Crash));
        assert!(at_edge.validate_for(3).is_err());
        assert!(at_edge.validate_for(4).is_ok());
        // An empty plan is valid for any fleet, including a nonzero one.
        assert!(NodeFaultPlan::none().validate_for(5).is_ok());
        assert!(NodeFaultPlan::none().validate_for(0).is_ok());
        // Duplicate (node, time) entries are legal: same-instant edges
        // replay in authoring order and simply reapply the state.
        let dup = NodeFaultPlan::new(vec![
            NodeFaultEvent::permanent(1, 10.0, NodeFault::Crash),
            NodeFaultEvent::permanent(1, 10.0, NodeFault::Crash),
        ]);
        assert!(dup.validate_for(3).is_ok());
        let cfg = fleet_cfg(dup);
        let out = run_fleet(
            &cfg,
            RoutingPolicy::Failover,
            &even_weights(3),
            &Tracer::disabled(),
        );
        assert!(out.conservation_ok());
    }

    #[test]
    fn forced_shed_plus_drop_mix_conserves_exactly() {
        // Overload (forces shedding) plus a permanent crash (forces drops
        // under static routing): both leak paths active at once.
        let mut cfg = fleet_cfg(crash_plan());
        cfg.total_rate = 30.0 * 1.6;
        cfg.fleet.capacity_margin = 1.3 / 1.6;
        for policy in [RoutingPolicy::AuvWeighted, RoutingPolicy::Failover] {
            let out = run_fleet(&cfg, policy, &even_weights(3), &Tracer::disabled());
            assert!(out.shed > 0, "{policy} must shed under overload");
            assert!(out.conservation_ok(), "{policy}: {out:?}");
            assert!(out.node_conservation_ok(), "{policy}: {out:?}");
        }
        let stat = run_fleet(
            &cfg,
            RoutingPolicy::AuvWeighted,
            &even_weights(3),
            &Tracer::disabled(),
        );
        assert!(stat.dropped > 0, "static routing must also drop");
        // The identity is falsifiable: any single-counter perturbation
        // breaks it.
        let mut leak = stat.clone();
        leak.completed += 1;
        assert!(!leak.conservation_ok());
        let mut ghost = stat;
        ghost.dispatched += 1;
        assert!(!ghost.conservation_ok());
    }

    #[test]
    fn node_rollup_partitions_fleet_totals() {
        let cfg = fleet_cfg(crash_plan());
        for policy in [RoutingPolicy::AuvWeighted, RoutingPolicy::Failover] {
            let out = run_fleet(&cfg, policy, &even_weights(3), &Tracer::disabled());
            assert_eq!(out.node_metrics.len(), 3, "{policy}");
            assert!(out.node_conservation_ok(), "{policy}: {out:?}");
            assert!(
                out.node_metrics[0].label.starts_with("node0/"),
                "labels come from config strings: {}",
                out.node_metrics[0].label
            );
            assert!(
                out.node_metrics[0].counter("redispatched") > 0,
                "{policy}: the crashed node books its strands"
            );
            let survivor = &out.node_metrics[1];
            assert!(survivor.counter("completed") > 0, "{policy}");
            assert!(
                survivor.latency_proxy.count() > 0,
                "{policy}: serving epochs feed the latency proxy"
            );
            assert!(
                survivor
                    .snapshot
                    .gauges
                    .contains_key("epoch_latency_proxy_secs/p50"),
                "{policy}: quantile gauges materialize at rollup"
            );
        }
    }

    #[test]
    fn fleet_spans_fold_into_balanced_per_node_tracks() {
        let cfg = fleet_cfg(crash_plan());
        let (out, records) = captured(&cfg, RoutingPolicy::Failover, &even_weights(3));
        let forest = aum_sim::span::collect_spans(&records).expect("balanced span stream");
        let track = format!("fleet/{}", RoutingPolicy::Failover);
        let epochs: Vec<_> = forest.of_kind(SpanKind::FleetEpoch).collect();
        assert_eq!(epochs.len() as u64, out.epochs, "one span per router epoch");
        assert!(epochs.iter().all(|s| s.track == track));
        let health: Vec<_> = forest.of_kind(SpanKind::NodeHealthEpisode).collect();
        assert!(
            health.iter().any(|s| s.track == format!("{track}/node0")),
            "a crash must open health episodes on the node's own track"
        );
        // The crash is permanent, so node 0's last episode only closes at
        // the run-end boundary.
        let run_end = cfg.duration.as_secs_f64();
        assert!(health.iter().any(|s| s.track == format!("{track}/node0")
            && (s.close.as_secs_f64() - run_end).abs() < 1e-9));
        let hops: Vec<_> = forest.of_kind(SpanKind::RedispatchHop).collect();
        assert!(!hops.is_empty(), "detection-lag strands must emit hops");
        assert!(hops
            .iter()
            .all(|s| s.duration_secs() > 0.0 && s.label.starts_with("batch r")));
        assert!(
            records
                .iter()
                .any(|r| matches!(r.event, Event::NodeMetricsSnapshot { node: 0, .. })),
            "health transitions must carry the node's metric snapshot"
        );
    }

    #[test]
    fn plan_serde_round_trips_and_accepts_null() {
        let plan = NodeFaultPlan::new(vec![
            NodeFaultEvent::windowed(0, 20.0, 60.0, NodeFault::Crash),
            NodeFaultEvent::permanent(1, 30.0, NodeFault::Straggler { factor: 2.5 }),
            NodeFaultEvent::windowed(2, 40.0, 50.0, NodeFault::Partition),
            NodeFaultEvent::permanent(0, 90.0, NodeFault::Drain),
        ]);
        let json = serde_json::to_string(&plan).expect("encode");
        let back: NodeFaultPlan = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, plan);
        let empty: NodeFaultPlan = serde_json::from_str("null").expect("null decodes");
        assert!(empty.is_empty());
        assert_eq!(serde_json::to_string(&empty).expect("encode"), "null");
    }
}
