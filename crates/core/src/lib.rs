//! # aum — AU-aware resource management for shared processors
//!
//! Reproduction of **"AUM: Unleashing the Efficiency Potential of Shared
//! Processors with Accelerator Units for LLM Serving"** (HPCA 2026). Modern
//! Xeons embed accelerator units (Intel AMX) whose *three-dimensional
//! variations* — usage patterns, compulsory frequency interference, and
//! dissimilar resource bounds — defeat AUV-oblivious resource managers.
//! AUM profiles those variations offline into a discrete AUV model and
//! drives an SLO-aware runtime controller that harvests unexploited
//! resources for co-located best-effort work while protecting LLM serving.
//!
//! The crate provides:
//!
//! - [`profiler`]: the Background AU Profiler and the bucketized
//!   [`profiler::AuvModel`] (§VI-B, Table III);
//! - [`controller`]: the Runtime AU Controller — slack-aware SLO analysis
//!   with LAG, efficiency-aware core switching, collision-aware allocation
//!   tuning (§VI-C, Algorithm 1);
//! - [`baselines`]: ALL-AU, SMT-AU, RP-AU and the single-dimension AUM
//!   variants AU-UP / AU-FI / AU-RB (Table V);
//! - [`experiment`]: the co-location harness coupling the platform, AU,
//!   LLM-serving and co-runner substrates;
//! - [`fault`]: the scripted fault-injection plane ([`fault::FaultPlan`])
//!   driving chaos runs through that harness;
//! - [`prices`] / [`tco`]: the weighted efficiency objective and the
//!   §VII-E total-cost-of-ownership analysis;
//! - [`manager`]: the [`manager::ResourceManager`] trait every scheme
//!   implements;
//! - [`calib`]: AU cache-affinity calibration (Fig 13);
//! - [`cluster`]: the §VIII scale-out extension — AUV-aware load balancing
//!   across heterogeneous AU-enabled servers;
//! - [`fleet`]: the fleet resilience plane — node-scoped fault injection
//!   ([`fleet::NodeFaultPlan`]), an epoch-based router with health-checked
//!   failover, capped retry/backoff re-dispatch, and graceful load
//!   shedding.
//!
//! ## Quickstart
//!
//! ```no_run
//! use aum::baselines::AllAu;
//! use aum::controller::AumController;
//! use aum::experiment::{run_experiment, ExperimentConfig};
//! use aum::profiler::{build_model, ProfilerConfig};
//! use aum_llm::traces::Scenario;
//! use aum_platform::spec::PlatformSpec;
//! use aum_workloads::be::BeKind;
//!
//! let spec = PlatformSpec::gen_a();
//!
//! // 1. Profile offline (the paper's ≈450-execution sweep).
//! let model = build_model(&ProfilerConfig::paper_default(
//!     spec.clone(), Scenario::Chatbot, BeKind::SpecJbb));
//!
//! // 2. Serve with AUM and compare against the exclusive baseline.
//! let shared = ExperimentConfig::paper_default(
//!     spec.clone(), Scenario::Chatbot, Some(BeKind::SpecJbb));
//! let exclusive = ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, None);
//! let aum = run_experiment(&shared, &mut AumController::new(model));
//! let all_au = run_experiment(&exclusive, &mut AllAu::new(&spec));
//! println!("efficiency gain: {:.1}%", (aum.efficiency_vs(&all_au) - 1.0) * 100.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod calib;
pub mod cluster;
pub mod controller;
pub mod error;
pub mod experiment;
pub mod fault;
pub mod fleet;
pub mod manager;
pub mod prices;
pub mod profiler;
pub mod tco;

pub use controller::AumController;
pub use error::AumError;
pub use experiment::{run_experiment, try_run_experiment, ExperimentConfig, Outcome};
pub use fault::{Fault, FaultEvent, FaultPlan};
pub use fleet::{
    run_fleet, run_fleet_traced, FleetOutcome, FleetParams, NodeFault, NodeFaultEvent,
    NodeFaultPlan, NodeMetricsRollup,
};
pub use manager::{Decision, ResourceManager, StaticManager, SystemState};
pub use prices::{e_cpu, Prices};
pub use profiler::{build_model, AuvModel, Bucket, ProfilerConfig};
