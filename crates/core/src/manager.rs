//! The resource-manager interface all schemes implement.
//!
//! A manager observes the [`SystemState`] each control interval and returns
//! a [`Decision`]: processor division, RDT allocation, SMT sharing and
//! engine mode. AUM, the AUV-oblivious baselines (SMT-AU, RP-AU) and the
//! single-dimension AUM variants (AU-UP/AU-FI/AU-RB) all speak this
//! interface, so the experiment harness treats them identically.

use aum_llm::engine::EngineMode;
use aum_llm::traces::Scenario;
use aum_platform::rdt::RdtAllocation;
use aum_platform::topology::ProcessorDivision;
use aum_sim::telemetry::{ResilienceMode, Tracer};
use aum_sim::time::{SimDuration, SimTime};
use aum_workloads::be::BeKind;

/// Everything a manager may observe at a control boundary.
///
/// Mirrors what the paper's runtime controller reads in production:
/// lightweight serving telemetry (queue, LAG, recent latency percentiles)
/// plus platform telemetry (power, bandwidth utilization). No ground-truth
/// simulator internals are exposed.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemState {
    /// Current time.
    pub now: SimTime,
    /// Serving scenario (SLOs).
    pub scenario: Scenario,
    /// Co-located application, if sharing.
    pub be: Option<BeKind>,
    /// Requests waiting for prefill.
    pub queue_len: usize,
    /// Waiting time of the oldest queued request (`t_wait`).
    pub head_wait: SimDuration,
    /// Active decode batch size.
    pub decode_batch: usize,
    /// Worst LAG across decode requests, seconds (+∞ when idle).
    pub worst_lag_secs: f64,
    /// Recent-window median TTFT, seconds (0 if no data yet).
    pub recent_ttft_p50: f64,
    /// Recent-window 90th-percentile TTFT, seconds.
    pub recent_ttft_p90: f64,
    /// Recent-window median token time, seconds.
    pub recent_tpot_p50: f64,
    /// Recent-window 90th-percentile token time, seconds.
    pub recent_tpot_p90: f64,
    /// Package power of the last interval, W.
    pub power_w: f64,
    /// Memory-pool utilization of the last interval.
    pub bw_utilization: f64,
}

/// A manager's resource decision for the next control interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Core division into High/Low/None regions (must cover the platform).
    pub division: ProcessorDivision,
    /// CAT/MBA allocation for the AU and shared classes. Overlapping masks
    /// (e.g. [`RdtAllocation::unpartitioned`]) are allowed and modeled as
    /// capacity contention.
    pub allocation: RdtAllocation,
    /// Whether the best-effort application also runs on the hyperthread
    /// siblings of AU cores (the SMT-AU deployment).
    pub smt_sharing: bool,
    /// How the serving engine uses its cores.
    pub engine_mode: EngineMode,
}

/// A resource manager scheme (Table V).
pub trait ResourceManager {
    /// Scheme name as printed in tables (e.g. "AUM", "SMT-AU").
    fn name(&self) -> &'static str;

    /// Produces the decision for the next control interval.
    fn decide(&mut self, state: &SystemState) -> Decision;

    /// Attaches a trace handle so the manager can explain its decisions
    /// ([`aum_sim::telemetry::Event::ControllerDecision`]). Managers without
    /// internal reasoning worth tracing keep this default no-op.
    fn attach_tracer(&mut self, _tracer: Tracer) {}

    /// The manager's current resilience state, if it has one. The
    /// attribution ledger uses this to label deliberately shed capacity
    /// as [`aum_sim::attrib::Cause::SafeModeShed`] rather than plain idle.
    /// Managers without a resilience layer keep this default.
    fn resilience(&self) -> Option<ResilienceMode> {
        None
    }
}

/// A manager that always returns the same decision — used by the background
/// profiler to pin one configuration per profiling run, and handy in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticManager {
    name: &'static str,
    decision: Decision,
}

impl StaticManager {
    /// Creates a static manager.
    #[must_use]
    pub fn new(name: &'static str, decision: Decision) -> Self {
        StaticManager { name, decision }
    }

    /// The pinned decision.
    #[must_use]
    pub fn decision(&self) -> Decision {
        self.decision
    }
}

impl ResourceManager for StaticManager {
    fn name(&self) -> &'static str {
        self.name
    }

    fn decide(&mut self, _state: &SystemState) -> Decision {
        self.decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum_platform::rdt::ResourceVector;

    struct Fixed(Decision);
    impl ResourceManager for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn decide(&mut self, _state: &SystemState) -> Decision {
            self.0
        }
    }

    #[test]
    fn trait_objects_work() {
        let d = Decision {
            division: ProcessorDivision::new(32, 32, 32),
            allocation: RdtAllocation::new(
                ResourceVector::new(8, 8, 0.8),
                ResourceVector::new(8, 8, 0.2),
            ),
            smt_sharing: false,
            engine_mode: EngineMode::Partitioned,
        };
        let mut mgr: Box<dyn ResourceManager> = Box::new(Fixed(d));
        let state = SystemState {
            now: SimTime::ZERO,
            scenario: Scenario::Chatbot,
            be: Some(BeKind::SpecJbb),
            queue_len: 0,
            head_wait: SimDuration::ZERO,
            decode_batch: 0,
            worst_lag_secs: f64::INFINITY,
            recent_ttft_p50: 0.0,
            recent_ttft_p90: 0.0,
            recent_tpot_p50: 0.0,
            recent_tpot_p90: 0.0,
            power_w: 100.0,
            bw_utilization: 0.0,
        };
        let got = mgr.decide(&state);
        assert_eq!(got, d);
        assert_eq!(mgr.name(), "fixed");
    }
}
