//! Output prices for the weighted efficiency objective.
//!
//! The paper normalizes application performance in the three regions with
//! prices α (high-AU prefill tokens), β (low-AU decode tokens) and γ (one
//! shared-application query), chosen from the CPU time each output costs on
//! the evaluated platform (§VII-A1): α = 1.8, β = 0.2, and γ = 1e-3 /
//! 1e-6 / 3e-5 for Compute / OLAP / SPECjbb (carried by
//! [`aum_workloads::be::BeProfile::unit_price`]).

use serde::{Deserialize, Serialize};

use aum_workloads::be::{BeKind, BeProfile};

/// Price vector of the efficiency objective.
///
/// # Examples
///
/// ```
/// use aum::prices::Prices;
///
/// let p = Prices::paper_default();
/// assert_eq!(p.alpha, 1.8);
/// assert_eq!(p.beta, 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prices {
    /// Price of one prefill token (`α`).
    pub alpha: f64,
    /// Price of one decode token (`β`).
    pub beta: f64,
}

impl Prices {
    /// The paper's default 1.8 / 0.2 setting.
    #[must_use]
    pub fn paper_default() -> Self {
        Prices {
            alpha: 1.8,
            beta: 0.2,
        }
    }

    /// The sensitivity-study setting where token prices halve (§VII-D).
    #[must_use]
    pub fn cheap_tokens() -> Self {
        Prices {
            alpha: 0.9,
            beta: 0.1,
        }
    }

    /// Creates a price vector.
    ///
    /// # Panics
    ///
    /// Panics if a price is not positive and finite.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        Prices { alpha, beta }
    }

    /// Price `γ` of one query of the given co-runner.
    #[must_use]
    pub fn gamma(be: BeKind) -> f64 {
        BeProfile::of(be).unit_price
    }
}

impl Default for Prices {
    fn default() -> Self {
        Prices::paper_default()
    }
}

/// The paper's CPU performance-per-watt efficiency (Algorithm 1 line 4):
/// `E_CPU = (α·P_H + β·P_L + γ·P_N) / W_CPU`.
///
/// `p_h`/`p_l` are prefill/decode tokens per second, `p_n` is the shared
/// application's throughput (0 when running exclusively), `power_w` the
/// average package power.
///
/// # Panics
///
/// Panics if `power_w` is not positive.
#[must_use]
pub fn e_cpu(prices: Prices, p_h: f64, p_l: f64, gamma: f64, p_n: f64, power_w: f64) -> f64 {
    assert!(power_w > 0.0, "power must be positive, got {power_w}");
    (prices.alpha * p_h + prices.beta * p_l + gamma * p_n) / power_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_prices_match_paper() {
        let p = Prices::default();
        assert_eq!(p.alpha, 1.8);
        assert_eq!(p.beta, 0.2);
        assert_eq!(Prices::cheap_tokens().alpha, 0.9);
    }

    #[test]
    fn gammas_match_section_7a1() {
        assert_eq!(Prices::gamma(BeKind::Compute), 1e-3);
        assert_eq!(Prices::gamma(BeKind::Olap), 1e-6);
        assert_eq!(Prices::gamma(BeKind::SpecJbb), 3e-5);
    }

    #[test]
    fn e_cpu_is_weighted_sum_over_power() {
        let e = e_cpu(
            Prices::paper_default(),
            500.0,
            140.0,
            3e-5,
            800_000.0,
            270.0,
        );
        let expect = (1.8 * 500.0 + 0.2 * 140.0 + 3e-5 * 800_000.0) / 270.0;
        assert!((e - expect).abs() < 1e-12);
    }

    #[test]
    fn sharing_value_is_modest_relative_to_serving() {
        // With paper prices, a fully-loaded BE region adds a few percent of
        // the serving value — the Fig 14 gains are in the 4-9% range, not
        // multiples.
        let serving = 1.8 * 500.0 + 0.2 * 140.0;
        let sharing = Prices::gamma(BeKind::SpecJbb)
            * (BeProfile::of(BeKind::SpecJbb).base_rate_per_core * 24.0);
        assert!(
            sharing / serving < 0.15,
            "sharing/serving value ratio {}",
            sharing / serving
        );
        assert!(sharing / serving > 0.01);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_power_rejected() {
        let _ = e_cpu(Prices::paper_default(), 1.0, 1.0, 1.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn bad_alpha_rejected() {
        let _ = Prices::new(0.0, 0.2);
    }
}
