//! The Background AU Profiler and the discrete AUV Model (paper §VI-B).
//!
//! The profiler characterizes the three-dimensional accelerator-unit
//! variations offline: for every candidate processor division
//! (frequency-aware, Variation-2) and resource configuration (bound-aware,
//! Variation-3) it runs repeated pinned co-location executions and records
//! per-region performance, tail latency and power into *AU Buckets* — the
//! discretization the paper introduces to keep profiling tractable
//! (3 divisions × 3 sharings × 5 configurations × 10 repetitions ≈ 450
//! executions). The resulting [`AuvModel`] is the lookup table the runtime
//! controller consults in O(1).

use std::path::Path;

use serde::{Deserialize, Serialize};

use aum_llm::engine::EngineMode;
use aum_llm::traces::Scenario;
use aum_platform::rdt::{RdtAllocation, ResourceVector};
use aum_platform::spec::PlatformSpec;
use aum_platform::topology::ProcessorDivision;
use aum_sim::telemetry::{Event, Tracer};
use aum_sim::time::{SimDuration, SimTime};
use aum_workloads::be::BeKind;

use crate::error::AumError;
use crate::experiment::{run_experiment, ExperimentConfig};
use crate::manager::{Decision, StaticManager};
use crate::prices::Prices;

/// One discretized AUV bucket: a (division, allocation) cell with its
/// profiled performance, tail behaviour and power (Table III row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Processor division of the cell.
    pub division: ProcessorDivision,
    /// Resource allocation of the cell.
    pub allocation: RdtAllocation,
    /// Prefill tokens/s (`P_H`, average over repetitions).
    pub prefill_tps: f64,
    /// Decode tokens/s (`P_L`).
    pub decode_tps: f64,
    /// Shared application throughput (`P_N`).
    pub be_rate: f64,
    /// Median TTFT, seconds (`P^a` analogue for the High region).
    pub ttft_p50: f64,
    /// Tail (90th percentile) TTFT, seconds (`P^t`).
    pub ttft_p90: f64,
    /// Median per-request average token time, seconds (`P^a`).
    pub tpot_p50: f64,
    /// Tail (90th percentile) per-request average token time, seconds
    /// (`P^t`) — the distribution the TPOT SLO constrains.
    pub tpot_p90: f64,
    /// Average package power, W (`W_CPU`).
    pub power_w: f64,
    /// Weighted performance-per-watt of the cell.
    pub efficiency: f64,
}

/// The discrete AUV model: a division-major grid of buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuvModel {
    /// Platform the model was profiled on.
    pub platform: String,
    /// Serving scenario.
    pub scenario: Scenario,
    /// Co-located application.
    pub be: BeKind,
    /// Number of profiled divisions.
    pub div_count: usize,
    /// Number of profiled resource configurations per division.
    pub cfg_count: usize,
    /// Buckets, indexed `div_idx * cfg_count + cfg_idx`.
    pub buckets: Vec<Bucket>,
    /// Total pinned executions the profiler performed.
    pub profiling_runs: usize,
}

impl AuvModel {
    /// The bucket at `(div_idx, cfg_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn bucket(&self, div_idx: usize, cfg_idx: usize) -> &Bucket {
        assert!(
            div_idx < self.div_count && cfg_idx < self.cfg_count,
            "bucket index out of range"
        );
        &self.buckets[div_idx * self.cfg_count + cfg_idx]
    }

    /// Indices of buckets whose *tail* latencies satisfy the budgets.
    pub fn feasible(
        &self,
        ttft_budget: f64,
        tpot_budget: f64,
    ) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cfgs = self.cfg_count;
        self.buckets.iter().enumerate().filter_map(move |(i, b)| {
            if b.ttft_p90 <= ttft_budget && b.tpot_p90 <= tpot_budget {
                Some((i / cfgs, i % cfgs))
            } else {
                None
            }
        })
    }

    /// Smallest tail TTFT any bucket achieves.
    #[must_use]
    pub fn ttft_floor(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.ttft_p90)
            .fold(f64::INFINITY, f64::min)
    }

    /// Smallest tail TPOT any bucket achieves.
    #[must_use]
    pub fn tpot_floor(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.tpot_p90)
            .fold(f64::INFINITY, f64::min)
    }

    /// The feasible bucket with the best profiled efficiency. An axis whose
    /// deadline no bucket can reach (e.g. the cc TTFT, §VII-C) is relaxed
    /// to 1.2× its achievable floor — crucially *without* sacrificing the
    /// other, attainable axis. If the budgets are jointly infeasible even
    /// then, the bucket minimizing the worst normalized tail wins.
    #[must_use]
    pub fn best_bucket(&self, ttft_budget: f64, tpot_budget: f64) -> (usize, usize) {
        let tb = if self.ttft_floor() > ttft_budget {
            self.ttft_floor() * 1.2
        } else {
            ttft_budget
        };
        let pb = if self.tpot_floor() > tpot_budget {
            self.tpot_floor() * 1.2
        } else {
            tpot_budget
        };
        let best = self.feasible(tb, pb).max_by(|a, b| {
            let ea = self.bucket(a.0, a.1).efficiency;
            let eb = self.bucket(b.0, b.1).efficiency;
            ea.partial_cmp(&eb).expect("efficiencies are finite")
        });
        best.unwrap_or_else(|| {
            // Jointly infeasible: minimize the worst normalized tail.
            let (i, _) = self
                .buckets
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let sa = (a.ttft_p90 / tb).max(a.tpot_p90 / pb);
                    let sb = (b.ttft_p90 / tb).max(b.tpot_p90 / pb);
                    sa.partial_cmp(&sb).expect("finite")
                })
                .expect("model has buckets");
            (i / self.cfg_count, i % self.cfg_count)
        })
    }

    /// The most SLO-defensive division: at the un-harvested configuration
    /// (`cfg 0`, everything to the LLM), the division minimizing the worst
    /// normalized profiled tail. This is the safe-mode fallback — it
    /// deliberately ignores efficiency, because a controller that no longer
    /// trusts its telemetry or its platform must optimize for survival.
    #[must_use]
    pub fn conservative_division(&self, ttft_budget: f64, tpot_budget: f64) -> usize {
        // An unattainable budget (e.g. the cc TTFT, §VII-C) is relaxed to
        // 1.2× its achievable floor, exactly as in [`Self::best_bucket`] —
        // otherwise the hopeless axis dominates the normalized score and
        // the attainable one gets sacrificed for nothing.
        let tb = ttft_budget.max(self.ttft_floor() * 1.2);
        let pb = tpot_budget.max(self.tpot_floor() * 1.2);
        (0..self.div_count)
            .min_by(|&a, &b| {
                let score = |d: usize| {
                    let bk = self.bucket(d, 0);
                    (bk.ttft_p90 / tb).max(bk.tpot_p90 / pb)
                };
                score(a).partial_cmp(&score(b)).expect("finite tails")
            })
            .expect("model has divisions")
    }

    /// Serializes the model to a JSON file (the paper's ≈15 MB artifact).
    ///
    /// # Errors
    ///
    /// Returns [`AumError`] on IO or encoding failure.
    pub fn save(&self, path: &Path) -> Result<(), AumError> {
        let json = serde_json::to_string_pretty(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a model from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`AumError`] on IO or decoding failure.
    pub fn load(path: &Path) -> Result<Self, AumError> {
        let json = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Approximate in-memory footprint, bytes.
    #[must_use]
    pub fn approx_size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buckets.len() * std::mem::size_of::<Bucket>()
    }
}

/// Profiler sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Platform to profile.
    pub platform: PlatformSpec,
    /// Serving scenario.
    pub scenario: Scenario,
    /// Co-located application.
    pub be: BeKind,
    /// Candidate processor divisions.
    pub divisions: Vec<ProcessorDivision>,
    /// Candidate resource configurations.
    pub allocations: Vec<RdtAllocation>,
    /// Repetitions per cell (paper: 10; different seeds).
    pub repetitions: usize,
    /// Simulated duration of one pinned execution.
    pub run_duration: SimDuration,
    /// Base seed.
    pub seed: u64,
    /// Efficiency prices.
    pub prices: Prices,
    /// Request-rate override.
    pub rate: Option<f64>,
}

/// The paper's five "performance-sensitive resource configurations": a
/// ladder from AU-favoring to aggressive harvesting, ordered *bound-aware*
/// (§VI-C3): the resource whose loss degrades the AU least — LLC capacity,
/// which the decode phase streams through (Fig 13) — is harvested first;
/// the critical memory bandwidth is surrendered last.
#[must_use]
pub fn default_allocations(spec: &PlatformSpec) -> Vec<RdtAllocation> {
    [
        (14u32, 0.90f64), // conservative: AU keeps almost everything
        (8, 0.90),        // harvest LLC first (low AU affinity)
        (4, 0.85),        // finish LLC, nibble bandwidth
        (4, 0.70),        // now harvest bandwidth
        (4, 0.55),        // aggressive harvesting
    ]
    .iter()
    .map(|&(au_ways, au_bw)| {
        let au_l2 = au_ways.min(spec.l2_ways - 2).max(2);
        RdtAllocation::new(
            ResourceVector::new(au_l2, au_ways, au_bw),
            ResourceVector::new(spec.l2_ways - au_l2, spec.llc_ways - au_ways, 1.0 - au_bw),
        )
    })
    .collect()
}

/// Default division candidates for a platform: from TTFT-protecting
/// (prefill is core-hungry, so the High region can take two thirds of the
/// machine) to aggressively harvesting (decode needs bandwidth rather than
/// cores, so the Low region shrinks toward the per-core-bandwidth floor).
#[must_use]
pub fn default_divisions(spec: &PlatformSpec) -> Vec<ProcessorDivision> {
    let t = spec.total_cores();
    vec![
        ProcessorDivision::new(t * 2 / 3, t / 6, t - t * 2 / 3 - t / 6),
        ProcessorDivision::new(t * 7 / 12, t / 4, t - t * 7 / 12 - t / 4),
        ProcessorDivision::new(t / 2, t / 3, t - t / 2 - t / 3),
        ProcessorDivision::new(t / 2, t / 4, t - t / 2 - t / 4),
        ProcessorDivision::new(t * 5 / 12, t / 3, t - t * 5 / 12 - t / 3),
        ProcessorDivision::new(t / 3, t / 4, t - t / 3 - t / 4),
    ]
}

impl ProfilerConfig {
    /// The paper-equivalent sweep: 5 divisions × 5 configurations ×
    /// 3 repetitions per (scenario, co-runner) pair.
    #[must_use]
    pub fn paper_default(platform: PlatformSpec, scenario: Scenario, be: BeKind) -> Self {
        let divisions = default_divisions(&platform);
        let allocations = default_allocations(&platform);
        ProfilerConfig {
            platform,
            scenario,
            be,
            divisions,
            allocations,
            repetitions: 3,
            run_duration: SimDuration::from_secs(60),
            seed: 7_777,
            prices: Prices::paper_default(),
            rate: None,
        }
    }

    /// A reduced sweep for unit tests (2 × 2 × 1).
    #[must_use]
    pub fn smoke(platform: PlatformSpec, scenario: Scenario, be: BeKind) -> Self {
        let mut cfg = Self::paper_default(platform, scenario, be);
        cfg.divisions.truncate(2);
        cfg.allocations.truncate(2);
        cfg.repetitions = 1;
        cfg.run_duration = SimDuration::from_secs(15);
        cfg
    }
}

/// Runs the offline profiling sweep and builds the AUV model.
#[must_use]
pub fn build_model(cfg: &ProfilerConfig) -> AuvModel {
    build_model_traced(cfg, Tracer::disabled())
}

/// Like [`build_model`], emitting one [`Event::ProfilerProgress`] per grid
/// cell through `tracer`. Events are stamped with the cumulative simulated
/// time the sweep has consumed so far.
///
/// The (division × allocation) cells are independent — each repetition's
/// seed is `cfg.seed + rep * 101`, identical across cells — so they run
/// concurrently on the [`aum_sim::exec`] sweep executor. Determinism is
/// preserved by construction: every cell's bucket and progress event are
/// pure functions of its grid index, and [`aum_sim::exec::sweep_traced`]
/// merges the per-cell trace streams back in grid order, so the emitted
/// `ProfilerProgress` stream (timestamps, `completed` counters, ordering)
/// is byte-identical to the historical serial sweep for any worker count.
#[must_use]
pub fn build_model_traced(cfg: &ProfilerConfig, tracer: Tracer) -> AuvModel {
    // Name the profiling phase on the live endpoint (restored below) —
    // the profiler runs nested inside whichever study warmed the cache.
    let live_phase = aum_sim::live::installed().map(|live| {
        let prev = live.set_phase(&format!(
            "profiling {}/{}+{}",
            cfg.platform.name,
            cfg.scenario.code(),
            cfg.be
        ));
        (live, prev)
    });
    let total_cells = cfg.divisions.len() * cfg.allocations.len();
    let cells: Vec<(usize, usize)> = (0..cfg.divisions.len())
        .flat_map(|d| (0..cfg.allocations.len()).map(move |c| (d, c)))
        .collect();
    // Span ids are only unique per track, and one trace can carry several
    // profiler sweeps (one per cached model), so the track folds in the
    // profiled model's identity and grid shape.
    let span_track = format!(
        "profiler {}/{}+{} d{}a{}",
        cfg.platform.name,
        cfg.scenario.code(),
        cfg.be,
        cfg.divisions.len(),
        cfg.allocations.len(),
    );
    let buckets = aum_sim::exec::sweep_traced(&tracer, cells, |cell_idx, (div_idx, cfg_idx), t| {
        let _prof = aum_sim::prof::scope("profiler.cell");
        let division = cfg.divisions[div_idx];
        let allocation = cfg.allocations[cfg_idx];
        // One ProfilerCell span per grid cell on the synthetic cumulative
        // clock (same convention as the ProfilerProgress timestamps), so
        // Perfetto shows the sweep as a contiguous lane of cells.
        let span_id =
            aum_sim::span::SpanId::derive(aum_sim::span::SpanKind::ProfilerCell, cell_idx as u64).0;
        let cell_open = SimTime::ZERO + cfg.run_duration * (cell_idx * cfg.repetitions) as u64;
        t.emit(cell_open, || Event::SpanOpen {
            id: span_id,
            parent: None,
            kind: aum_sim::span::SpanKind::ProfilerCell,
            track: span_track.clone(),
            label: format!("cell d{div_idx} c{cfg_idx}"),
        });
        let decision = Decision {
            division,
            allocation,
            smt_sharing: false,
            engine_mode: EngineMode::Partitioned,
        };
        let mut acc = Bucket {
            division,
            allocation,
            prefill_tps: 0.0,
            decode_tps: 0.0,
            be_rate: 0.0,
            ttft_p50: 0.0,
            ttft_p90: 0.0,
            tpot_p50: 0.0,
            tpot_p90: 0.0,
            power_w: 0.0,
            efficiency: 0.0,
        };
        for rep in 0..cfg.repetitions {
            let exp = ExperimentConfig {
                platform: cfg.platform.clone(),
                scenario: cfg.scenario,
                be: Some(cfg.be),
                duration: cfg.run_duration,
                control_interval: SimDuration::from_millis(500),
                seed: cfg.seed.wrapping_add(rep as u64 * 101),
                rate: cfg.rate,
                rate_profile: aum_llm::traces::RateProfile::Constant,
                fault: crate::fault::FaultPlan::none(),
                prices: cfg.prices,
                model: aum_llm::config::ModelConfig::llama2_7b(),
            };
            let mut mgr = StaticManager::new("profiler", decision);
            let out = run_experiment(&exp, &mut mgr);
            let n = cfg.repetitions as f64;
            acc.prefill_tps += out.prefill_tps / n;
            acc.decode_tps += out.decode_tps / n;
            acc.be_rate += out.be_rate / n;
            acc.ttft_p50 += out.slo.ttft_p50 / n;
            acc.ttft_p90 += out.slo.ttft_p90 / n;
            acc.tpot_p50 += out.slo.tpot_req_p50 / n;
            acc.tpot_p90 += out.slo.tpot_req_p90 / n;
            acc.power_w += out.avg_power_w / n;
            acc.efficiency += out.efficiency / n;
        }
        // The cumulative run counter a serial sweep would have reached
        // after this cell — a pure function of the cell index, so the
        // event stream is independent of execution order.
        let runs_after = (cell_idx + 1) * cfg.repetitions;
        let cell_close = SimTime::ZERO + cfg.run_duration * runs_after as u64;
        t.emit(cell_close, || Event::ProfilerProgress {
            completed: cell_idx + 1,
            total: total_cells,
            division: div_idx,
            config: cfg_idx,
        });
        t.emit(cell_close, || Event::SpanClose {
            id: span_id,
            kind: aum_sim::span::SpanKind::ProfilerCell,
            track: span_track.clone(),
        });
        acc
    });
    let runs = total_cells * cfg.repetitions;
    if let Some((live, prev)) = live_phase {
        live.set_phase(&prev);
    }
    AuvModel {
        platform: cfg.platform.name.clone(),
        scenario: cfg.scenario,
        be: cfg.be,
        div_count: cfg.divisions.len(),
        cfg_count: cfg.allocations.len(),
        buckets,
        profiling_runs: runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_model() -> AuvModel {
        let cfg = ProfilerConfig::smoke(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::SpecJbb);
        build_model(&cfg)
    }

    #[test]
    fn builds_grid_of_buckets() {
        let m = smoke_model();
        assert_eq!(m.div_count, 2);
        assert_eq!(m.cfg_count, 2);
        assert_eq!(m.buckets.len(), 4);
        assert_eq!(m.profiling_runs, 4);
        for b in &m.buckets {
            assert!(b.power_w > 100.0);
            assert!(b.efficiency > 0.0);
            assert!(b.tpot_p90 >= b.tpot_p50);
            assert!(b.be_rate > 0.0);
        }
    }

    #[test]
    fn paper_default_matches_450_run_scale() {
        let cfg =
            ProfilerConfig::paper_default(PlatformSpec::gen_a(), Scenario::Chatbot, BeKind::Olap);
        let runs = cfg.divisions.len() * cfg.allocations.len() * cfg.repetitions;
        assert_eq!(
            runs, 90,
            "one (scenario, co-runner) pair costs 90 executions"
        );
        // Across the 3×(further scenarios/co-runners) grid the paper-scale
        // ≈450 executions are reached: 90 × 5 = 450.
        assert_eq!(runs * 5, 450);
    }

    #[test]
    fn best_bucket_prefers_efficiency_within_slo() {
        let m = smoke_model();
        let (d, c) = m.best_bucket(10.0, 10.0); // everything feasible
        let chosen = m.bucket(d, c).efficiency;
        for b in &m.buckets {
            assert!(chosen >= b.efficiency - 1e-12);
        }
    }

    #[test]
    fn impossible_slos_fall_back_to_achievable_floor() {
        let m = smoke_model();
        let (d, c) = m.best_bucket(1e-6, 1e-6);
        let chosen = m.bucket(d, c);
        // Both axes relax to 1.2× their achievable floors; the chosen
        // bucket must live near those floors rather than chasing an
        // impossible deadline.
        assert!(
            chosen.ttft_p90 <= m.ttft_floor() * 1.25,
            "ttft {}",
            chosen.ttft_p90
        );
        assert!(
            chosen.tpot_p90 <= m.tpot_floor() * 1.25,
            "tpot {}",
            chosen.tpot_p90
        );
    }

    #[test]
    fn model_round_trips_through_json() {
        let m = smoke_model();
        let dir = std::env::temp_dir().join("aum_model_test.json");
        m.save(&dir).expect("save");
        let loaded = AuvModel::load(&dir).expect("load");
        // JSON float encoding is value-preserving only to ~1e-15 relative;
        // compare structure exactly and metrics with tolerance.
        assert_eq!(loaded.div_count, m.div_count);
        assert_eq!(loaded.cfg_count, m.cfg_count);
        assert_eq!(loaded.profiling_runs, m.profiling_runs);
        for (a, b) in m.buckets.iter().zip(&loaded.buckets) {
            assert_eq!(a.division, b.division);
            assert!((a.efficiency - b.efficiency).abs() < 1e-9);
            assert!((a.ttft_p90 - b.ttft_p90).abs() < 1e-9);
        }
        assert!(m.approx_size_bytes() > 0);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = AuvModel::load(Path::new("/nonexistent/aum.json")).unwrap_err();
        assert!(format!("{err}").contains("io error"));
    }

    #[test]
    fn default_sweeps_are_valid() {
        for spec in PlatformSpec::presets() {
            for d in default_divisions(&spec) {
                assert_eq!(d.total_cores(), spec.total_cores(), "{}", spec.name);
            }
            for a in default_allocations(&spec) {
                assert!(a.validate(&spec).is_ok(), "{}: {a:?}", spec.name);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_index_checked() {
        let m = smoke_model();
        let _ = m.bucket(9, 9);
    }
}
