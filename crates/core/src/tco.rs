//! Total-cost-of-ownership analysis (paper §VII-E).
//!
//! Combines the Fig 5 GPU reference with the Fig 14 efficiency improvement:
//! with GPU at ≈1.3× the performance-per-CapEx of GenA and AUM adding
//! ≈15% on high-end platforms, an AUM-managed CPU reaches ≈88% of the
//! GPU's performance-per-CapEx while retaining lower OpEx (cooling,
//! maintenance) — close enough to cede scarce GPUs to critical scenarios.

use serde::{Deserialize, Serialize};

use aum_workloads::gpu::{CpuAnchor, GpuReference};

/// Inputs of the TCO comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoInputs {
    /// CPU serving throughput (tokens/s) under the manager.
    pub cpu_tokens_per_sec: f64,
    /// CPU package power, W.
    pub cpu_power_w: f64,
    /// CPU acquisition cost, USD.
    pub cpu_cost_usd: f64,
    /// Relative efficiency gain from the manager (e.g. 1.15 for +15%).
    pub manager_gain: f64,
}

impl TcoInputs {
    /// The paper's GenA anchor with a given manager gain.
    #[must_use]
    pub fn gen_a_with_gain(manager_gain: f64) -> Self {
        let a = CpuAnchor::gen_a_paper();
        TcoInputs {
            cpu_tokens_per_sec: a.tokens_per_sec,
            cpu_power_w: a.power_w,
            cpu_cost_usd: a.cost_usd,
            manager_gain,
        }
    }
}

/// TCO comparison output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoReport {
    /// CPU performance-per-CapEx relative to the GPU reference (1.0 = parity).
    pub perf_per_capex_vs_gpu: f64,
    /// CPU performance-per-watt relative to the GPU reference.
    pub perf_per_watt_vs_gpu: f64,
    /// Effective CPU tokens/s after the manager gain.
    pub effective_tokens_per_sec: f64,
}

/// Computes the §VII-E comparison against the A100/FlexGen reference.
///
/// # Examples
///
/// ```
/// use aum::tco::{tco_report, TcoInputs};
///
/// let report = tco_report(&TcoInputs::gen_a_with_gain(1.15));
/// // §VII-E: "CPU with AUM achieves 88% performance-per-CapEx compared
/// // with GPU solutions."
/// assert!((0.80..=0.95).contains(&report.perf_per_capex_vs_gpu));
/// ```
#[must_use]
pub fn tco_report(inputs: &TcoInputs) -> TcoReport {
    let gpu = GpuReference::a100_flexgen();
    let effective = inputs.cpu_tokens_per_sec * inputs.manager_gain;
    let cpu_ppc = effective / inputs.cpu_cost_usd;
    let cpu_ppw = effective / inputs.cpu_power_w;
    TcoReport {
        perf_per_capex_vs_gpu: cpu_ppc / gpu.perf_per_cost(),
        perf_per_watt_vs_gpu: cpu_ppw / gpu.perf_per_watt(),
        effective_tokens_per_sec: effective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aum_reaches_about_88_percent_of_gpu_capex() {
        let r = tco_report(&TcoInputs::gen_a_with_gain(1.15));
        assert!(
            (0.80..=0.95).contains(&r.perf_per_capex_vs_gpu),
            "§VII-E: ≈88%, got {}",
            r.perf_per_capex_vs_gpu
        );
    }

    #[test]
    fn without_manager_gpu_leads_by_1_3x() {
        let r = tco_report(&TcoInputs::gen_a_with_gain(1.0));
        let gpu_lead = 1.0 / r.perf_per_capex_vs_gpu;
        assert!(
            (1.1..=1.5).contains(&gpu_lead),
            "Fig 5: ≈1.3×, got {gpu_lead}"
        );
    }

    #[test]
    fn gain_scales_linearly() {
        let base = tco_report(&TcoInputs::gen_a_with_gain(1.0));
        let boosted = tco_report(&TcoInputs::gen_a_with_gain(1.2));
        let ratio = boosted.perf_per_capex_vs_gpu / base.perf_per_capex_vs_gpu;
        assert!((ratio - 1.2).abs() < 1e-9);
    }
}
