//! Property-based tests of AUM itself: the controller must emit valid
//! decisions for *any* telemetry the harness could produce, and the
//! efficiency objective must behave like a proper objective.

use proptest::prelude::*;

use aum::baselines::AllAu;
use aum::controller::AumController;
use aum::experiment::{run_experiment, ExperimentConfig, Fault, FaultEvent, FaultPlan};
use aum::manager::{ResourceManager, SystemState};
use aum::prices::{e_cpu, Prices};
use aum::profiler::{build_model, AuvModel, ProfilerConfig};
use aum_llm::traces::Scenario;
use aum_platform::spec::PlatformSpec;
use aum_sim::time::{SimDuration, SimTime};
use aum_workloads::be::BeKind;

fn smoke_model() -> AuvModel {
    build_model(&ProfilerConfig::smoke(
        PlatformSpec::gen_a(),
        Scenario::Chatbot,
        BeKind::SpecJbb,
    ))
}

fn arbitrary_state() -> impl Strategy<Value = SystemState> {
    (
        0u64..10_000,    // now (ms)
        0usize..50,      // queue_len
        0u64..5_000,     // head_wait (ms)
        0usize..17,      // decode_batch
        -10.0f64..10.0,  // worst_lag
        0.0f64..10.0,    // ttft p50
        0.0f64..10.0,    // ttft p90 extra
        0.0f64..1.0,     // tpot p50
        0.0f64..1.0,     // tpot p90 extra
        100.0f64..400.0, // power
        0.0f64..1.0,     // bw util
    )
        .prop_map(
            |(now, q, wait, batch, lag, t50, t90x, p50, p90x, power, bw)| SystemState {
                now: SimTime::from_millis(now),
                scenario: Scenario::Chatbot,
                be: Some(BeKind::SpecJbb),
                queue_len: q,
                head_wait: SimDuration::from_millis(wait),
                decode_batch: batch,
                worst_lag_secs: lag,
                recent_ttft_p50: t50,
                recent_ttft_p90: t50 + t90x,
                recent_tpot_p50: p50,
                recent_tpot_p90: p50 + p90x,
                power_w: power,
                bw_utilization: bw,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn controller_survives_arbitrary_telemetry(states in prop::collection::vec(arbitrary_state(), 1..40)) {
        let mut controller = AumController::new(smoke_model());
        let spec = PlatformSpec::gen_a();
        for state in &states {
            let d = controller.decide(state);
            prop_assert_eq!(d.division.total_cores(), spec.total_cores());
            prop_assert!(d.allocation.au.llc_ways >= 1);
            prop_assert!(d.allocation.shared.llc_ways >= 1);
            prop_assert!(d.allocation.au.mem_bw_frac > 0.0 && d.allocation.au.mem_bw_frac <= 1.0);
            prop_assert!(!d.smt_sharing, "AUM partitions spatially");
        }
    }

    #[test]
    fn e_cpu_is_monotone_in_performance_and_antitone_in_power(
        p_h in 0.0f64..2000.0,
        p_l in 0.0f64..500.0,
        p_n in 0.0f64..1e7,
        w1 in 100.0f64..500.0,
        w2 in 100.0f64..500.0,
    ) {
        let prices = Prices::paper_default();
        let gamma = Prices::gamma(BeKind::SpecJbb);
        let base = e_cpu(prices, p_h, p_l, gamma, p_n, w1);
        prop_assert!(e_cpu(prices, p_h + 1.0, p_l, gamma, p_n, w1) > base);
        prop_assert!(e_cpu(prices, p_h, p_l + 1.0, gamma, p_n, w1) > base);
        prop_assert!(e_cpu(prices, p_h, p_l, gamma, p_n + 1.0, w1) > base);
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(e_cpu(prices, p_h, p_l, gamma, p_n, hi) <= e_cpu(prices, p_h, p_l, gamma, p_n, lo));
    }

    #[test]
    fn best_bucket_is_always_in_range(ttft in 1e-4f64..100.0, tpot in 1e-4f64..10.0) {
        let model = smoke_model();
        let (d, c) = model.best_bucket(ttft, tpot);
        prop_assert!(d < model.div_count);
        prop_assert!(c < model.cfg_count);
        // And the pick is never strictly dominated on all three axes by
        // another bucket (Pareto sanity of the switcher).
        let chosen = model.bucket(d, c);
        for b in &model.buckets {
            let dominates = b.efficiency > chosen.efficiency + 1e-12
                && b.ttft_p90 < chosen.ttft_p90 - 1e-12
                && b.tpot_p90 < chosen.tpot_p90 - 1e-12;
            prop_assert!(!dominates, "switcher picked a dominated bucket");
        }
    }

    #[test]
    fn deeper_bandwidth_faults_never_improve_slos(seed in 0u64..4, frac_hi in 0.70f64..0.95) {
        // Monotonicity of the fault plane: a strictly worse bandwidth
        // collapse (well-separated fractions, same injection time) must not
        // yield a better decode SLO under a static manager. Short runs and
        // few cases keep this affordable.
        let spec = PlatformSpec::gen_a();
        let frac_lo = frac_hi - 0.35;
        let faulted = |frac: f64| {
            let mut cfg = ExperimentConfig::paper_default(spec.clone(), Scenario::Chatbot, None);
            cfg.duration = SimDuration::from_secs(60);
            cfg.seed = 42 + seed;
            cfg.fault = FaultPlan::single(FaultEvent::permanent(
                15.0,
                Fault::BandwidthDegrade { frac },
            ));
            run_experiment(&cfg, &mut AllAu::new(&spec))
        };
        let milder = faulted(frac_hi);
        let deeper = faulted(frac_lo);
        prop_assert!(
            deeper.slo.tpot_guarantee <= milder.slo.tpot_guarantee + 1e-9,
            "deeper fault {} must not beat milder {} on TPOT guarantee: {} vs {}",
            frac_lo, frac_hi, deeper.slo.tpot_guarantee, milder.slo.tpot_guarantee
        );
        prop_assert!(
            deeper.decode_tps <= milder.decode_tps * 1.02 + 1e-9,
            "deeper fault must not serve meaningfully more decode tokens: {} vs {}",
            deeper.decode_tps, milder.decode_tps
        );
    }

    #[test]
    fn feasible_set_shrinks_with_budgets(t1 in 0.01f64..10.0, t2 in 0.01f64..10.0, p in 0.01f64..1.0) {
        let model = smoke_model();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let tight: Vec<_> = model.feasible(lo, p).collect();
        let loose: Vec<_> = model.feasible(hi, p).collect();
        prop_assert!(tight.len() <= loose.len());
        for cell in &tight {
            prop_assert!(loose.contains(cell));
        }
    }
}
