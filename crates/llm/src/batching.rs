//! Continuous-batching bookkeeping.
//!
//! xFasterTransformer-style serving: prompts wait in a FCFS prefill queue
//! (§VI-C1: "we simply use FCFS to schedule prompts"), and prefilled
//! requests join the decode pool, which emits one token per request per
//! iteration up to the configured batch size. Arrival-rate variations reach
//! the AU usage pattern through batch-size variations (§IV-A3).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use aum_sim::time::{SimDuration, SimTime};

use crate::request::{Request, RequestId};

/// FCFS queue of requests awaiting prefill.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefillQueue {
    waiting: VecDeque<Request>,
}

impl PrefillQueue {
    /// Empty queue.
    #[must_use]
    pub fn new() -> Self {
        PrefillQueue::default()
    }

    /// Enqueues an arrived request.
    pub fn push(&mut self, request: Request) {
        self.waiting.push_back(request);
    }

    /// Requests waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// True when nothing waits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Waiting time of the head request at `now` (the paper's `t_wait`),
    /// zero when empty.
    #[must_use]
    pub fn head_wait(&self, now: SimTime) -> SimDuration {
        self.waiting
            .front()
            .map(|r| now.saturating_since(r.arrival))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Pops up to `max` requests FCFS for one prefill batch.
    pub fn pop_batch(&mut self, max: usize) -> Vec<Request> {
        let _prof = aum_sim::prof::scope("batch.pop");
        let n = max.min(self.waiting.len());
        self.waiting.drain(..n).collect()
    }
}

/// A request actively decoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveRequest {
    /// Request id.
    pub id: RequestId,
    /// Current context length (prompt + generated so far).
    pub context: usize,
    /// Output tokens still to generate.
    pub remaining: usize,
    /// Tokens generated so far.
    pub generated: usize,
    /// Sum of token execution times, seconds (for LAG).
    pub exec_sum_secs: f64,
    /// Decode-pool admission instant, seconds (wall-clock TPOT accounting).
    pub admitted_secs: f64,
}

impl ActiveRequest {
    /// Starts decoding a prefilled request. The first token was produced by
    /// prefill, so `remaining` is `output_len − 1` (floored at zero).
    #[must_use]
    pub fn start(request: &Request) -> Self {
        ActiveRequest {
            id: request.id,
            context: request.input_len + 1,
            remaining: request.output_len.saturating_sub(1),
            generated: 0,
            exec_sum_secs: 0.0,
            admitted_secs: 0.0,
        }
    }

    /// Stamps the decode-pool admission instant.
    #[must_use]
    pub fn admitted_at(mut self, secs: f64) -> Self {
        self.admitted_secs = secs;
        self
    }

    /// The paper's `LAG_i = Σ_token (d_TPOT − e_token)`, in seconds:
    /// positive means the request is ahead of its deadline schedule.
    #[must_use]
    pub fn lag_secs(&self, d_tpot: SimDuration) -> f64 {
        self.generated as f64 * d_tpot.as_secs_f64() - self.exec_sum_secs
    }
}

/// The decode pool under continuous batching.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecodePool {
    active: Vec<ActiveRequest>,
    max_batch: usize,
}

impl DecodePool {
    /// Creates a pool with the given batch cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    #[must_use]
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch size must be positive");
        DecodePool {
            active: Vec::new(),
            max_batch,
        }
    }

    /// Number of requests that can still be admitted.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.max_batch.saturating_sub(self.active.len())
    }

    /// Active batch size.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.active.len()
    }

    /// True when no request is decoding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Admits a prefilled request.
    ///
    /// # Panics
    ///
    /// Panics if the pool is full.
    pub fn admit(&mut self, request: ActiveRequest) {
        assert!(self.free_slots() > 0, "decode pool is full");
        self.active.push(request);
    }

    /// Mean context length of active requests (1 when empty).
    #[must_use]
    pub fn mean_context(&self) -> usize {
        if self.active.is_empty() {
            return 1;
        }
        let sum: usize = self.active.iter().map(|r| r.context).sum();
        (sum / self.active.len()).max(1)
    }

    /// Completes one decode iteration of execution time `exec`: every
    /// active request emits one token; finished requests are retired and
    /// returned.
    pub fn step(&mut self, exec: SimDuration) -> Vec<ActiveRequest> {
        let _prof = aum_sim::prof::scope("batch.step");
        let secs = exec.as_secs_f64();
        for r in &mut self.active {
            r.context += 1;
            r.generated += 1;
            r.remaining -= 1;
            r.exec_sum_secs += secs;
        }
        let mut finished = Vec::new();
        self.active.retain(|r| {
            if r.remaining == 0 {
                finished.push(*r);
                false
            } else {
                true
            }
        });
        finished
    }

    /// Worst (most negative) LAG across active requests, or `+∞` when the
    /// pool is empty — the controller's "how far behind is decode" signal.
    #[must_use]
    pub fn worst_lag_secs(&self, d_tpot: SimDuration) -> f64 {
        self.active
            .iter()
            .map(|r| r.lag_secs(d_tpot))
            .fold(f64::INFINITY, f64::min)
    }

    /// View of the active requests.
    #[must_use]
    pub fn active(&self) -> &[ActiveRequest] {
        &self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ms: u64) -> Request {
        Request::new(id, SimTime::from_millis(arrival_ms), 100, 5)
    }

    #[test]
    fn fcfs_queue_pops_in_order() {
        let mut q = PrefillQueue::new();
        q.push(req(0, 0));
        q.push(req(1, 10));
        q.push(req(2, 20));
        let batch = q.pop_batch(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].id.0, 0);
        assert_eq!(batch[1].id.0, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn head_wait_measures_oldest() {
        let mut q = PrefillQueue::new();
        assert_eq!(q.head_wait(SimTime::from_secs(1)), SimDuration::ZERO);
        q.push(req(0, 100));
        q.push(req(1, 900));
        assert_eq!(
            q.head_wait(SimTime::from_millis(600)),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn active_request_counts_first_token_as_prefilled() {
        let a = ActiveRequest::start(&req(0, 0));
        assert_eq!(a.remaining, 4);
        assert_eq!(a.context, 101);
    }

    #[test]
    fn pool_steps_emit_and_retire() {
        let mut pool = DecodePool::new(16);
        pool.admit(ActiveRequest::start(&req(0, 0))); // 4 remaining
        let mut finished = Vec::new();
        for _ in 0..4 {
            finished.extend(pool.step(SimDuration::from_millis(80)));
        }
        assert_eq!(finished.len(), 1);
        assert!(pool.is_empty());
        let done = finished[0];
        assert_eq!(done.generated, 4);
        assert!((done.exec_sum_secs - 0.32).abs() < 1e-9);
    }

    #[test]
    fn lag_positive_when_ahead() {
        let mut pool = DecodePool::new(4);
        pool.admit(ActiveRequest::start(&req(0, 0)));
        let _ = pool.step(SimDuration::from_millis(50));
        let lag = pool.worst_lag_secs(SimDuration::from_millis(100));
        assert!(
            (lag - 0.05).abs() < 1e-9,
            "50ms token vs 100ms budget → +50ms lag"
        );
    }

    #[test]
    fn lag_negative_when_behind() {
        let mut pool = DecodePool::new(4);
        pool.admit(ActiveRequest::start(&req(0, 0)));
        let _ = pool.step(SimDuration::from_millis(180));
        let lag = pool.worst_lag_secs(SimDuration::from_millis(100));
        assert!((lag + 0.08).abs() < 1e-9);
    }

    #[test]
    fn empty_pool_lag_is_infinite() {
        let pool = DecodePool::new(4);
        assert!(pool
            .worst_lag_secs(SimDuration::from_millis(100))
            .is_infinite());
    }

    #[test]
    fn mean_context_averages() {
        let mut pool = DecodePool::new(4);
        let mut a = ActiveRequest::start(&req(0, 0));
        a.context = 100;
        let mut b = ActiveRequest::start(&req(1, 0));
        b.context = 300;
        pool.admit(a);
        pool.admit(b);
        assert_eq!(pool.mean_context(), 200);
        assert_eq!(DecodePool::new(4).mean_context(), 1);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn admit_over_capacity_panics() {
        let mut pool = DecodePool::new(1);
        pool.admit(ActiveRequest::start(&req(0, 0)));
        pool.admit(ActiveRequest::start(&req(1, 0)));
    }
}
