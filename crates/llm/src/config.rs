//! LLM architecture configurations.
//!
//! Presets for the six models the paper characterizes in Table II: Phi-3
//! Mini (3.8B), Llama2-7B, Llama3-8B, Gemma2-9B, Llama2-13B and the
//! Qwen3-30B-A3B mixture-of-experts model. Dimensions follow the public
//! model cards; parameter counts derived from them land within a few
//! percent of the marketing sizes, which is all the cost model needs.

use serde::{Deserialize, Serialize};

use aum_au::unit::Precision;

/// Mixture-of-experts configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Total routed experts per layer.
    pub experts: usize,
    /// Experts activated per token.
    pub active_experts: usize,
    /// Hidden dimension of one expert's FFN.
    pub expert_ffn_dim: usize,
}

/// Transformer architecture description.
///
/// # Examples
///
/// ```
/// use aum_llm::config::ModelConfig;
///
/// let m = ModelConfig::llama2_7b();
/// let params = m.param_count() / 1e9;
/// assert!((6.0..8.0).contains(&params));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Transformer layer count.
    pub layers: usize,
    /// Model (embedding) dimension `d`.
    pub d_model: usize,
    /// Attention query heads.
    pub n_heads: usize,
    /// Key/value heads (grouped-query attention when < `n_heads`).
    pub n_kv_heads: usize,
    /// FFN intermediate dimension (per expert for MoE models).
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Mixture-of-experts configuration, if any.
    pub moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// Phi-3-Mini-128K-Instruct, 3.8B (Table II row 1).
    #[must_use]
    pub fn phi3_mini() -> Self {
        ModelConfig {
            name: "phi3-3.8b".to_owned(),
            layers: 32,
            d_model: 3072,
            n_heads: 32,
            n_kv_heads: 32,
            ffn_dim: 8192,
            vocab: 32064,
            moe: None,
        }
    }

    /// Llama2-7B — the paper's primary serving model.
    #[must_use]
    pub fn llama2_7b() -> Self {
        ModelConfig {
            name: "llama2-7b".to_owned(),
            layers: 32,
            d_model: 4096,
            n_heads: 32,
            n_kv_heads: 32,
            ffn_dim: 11008,
            vocab: 32000,
            moe: None,
        }
    }

    /// Llama3-8B (Table II row 3).
    #[must_use]
    pub fn llama3_8b() -> Self {
        ModelConfig {
            name: "llama3-8b".to_owned(),
            layers: 32,
            d_model: 4096,
            n_heads: 32,
            n_kv_heads: 8,
            ffn_dim: 14336,
            vocab: 128256,
            moe: None,
        }
    }

    /// Gemma2-9B (Table II row 4).
    #[must_use]
    pub fn gemma2_9b() -> Self {
        ModelConfig {
            name: "gemma2-9b".to_owned(),
            layers: 42,
            d_model: 3584,
            n_heads: 16,
            n_kv_heads: 8,
            ffn_dim: 14336,
            vocab: 256000,
            moe: None,
        }
    }

    /// Llama2-13B (Table II "Llama2 14B" row).
    #[must_use]
    pub fn llama2_13b() -> Self {
        ModelConfig {
            name: "llama2-13b".to_owned(),
            layers: 40,
            d_model: 5120,
            n_heads: 40,
            n_kv_heads: 40,
            ffn_dim: 13824,
            vocab: 32000,
            moe: None,
        }
    }

    /// Qwen3-30B-A3B mixture-of-experts (Table II row 6).
    #[must_use]
    pub fn qwen3_30b_a3b() -> Self {
        ModelConfig {
            name: "qwen3-30b-a3b".to_owned(),
            layers: 48,
            d_model: 2048,
            n_heads: 32,
            n_kv_heads: 4,
            ffn_dim: 768,
            vocab: 151936,
            moe: Some(MoeConfig {
                experts: 128,
                active_experts: 8,
                expert_ffn_dim: 768,
            }),
        }
    }

    /// The six Table II models, in the table's order.
    #[must_use]
    pub fn table2_models() -> Vec<ModelConfig> {
        vec![
            Self::phi3_mini(),
            Self::llama2_7b(),
            Self::llama3_8b(),
            Self::gemma2_9b(),
            Self::llama2_13b(),
            Self::qwen3_30b_a3b(),
        ]
    }

    /// Attention head dimension.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Key+value projection width (`2 × kv_heads × head_dim`).
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        2 * self.n_kv_heads * self.head_dim()
    }

    /// Total parameter count (attention + FFN/experts + embeddings).
    #[must_use]
    pub fn param_count(&self) -> f64 {
        let d = self.d_model as f64;
        let attn = d * d + d * (self.kv_dim() as f64) + d * d; // QKV + out proj
        let ffn = match self.moe {
            None => 3.0 * d * self.ffn_dim as f64, // gate+up+down
            Some(m) => m.experts as f64 * 3.0 * d * m.expert_ffn_dim as f64,
        };
        let per_layer = attn + ffn;
        let embeddings = 2.0 * d * self.vocab as f64;
        per_layer * self.layers as f64 + embeddings
    }

    /// Parameters touched per token — for MoE only active experts stream.
    #[must_use]
    pub fn active_param_count(&self) -> f64 {
        match self.moe {
            None => self.param_count(),
            Some(m) => {
                let d = self.d_model as f64;
                let attn = 2.0 * d * d + d * self.kv_dim() as f64;
                let ffn = m.active_experts as f64 * 3.0 * d * m.expert_ffn_dim as f64;
                (attn + ffn) * self.layers as f64 + 2.0 * d * self.vocab as f64
            }
        }
    }

    /// Resident weight bytes at the given precision.
    #[must_use]
    pub fn weight_bytes(&self, prec: Precision) -> f64 {
        self.param_count() * prec.bytes() as f64
    }

    /// Weight bytes streamed from memory per forward pass (active experts
    /// only for MoE — §IV-A2: "sparse expert activation of the MoE
    /// architecture can relieve the memory pressure").
    #[must_use]
    pub fn streamed_weight_bytes(&self, prec: Precision) -> f64 {
        self.active_param_count() * prec.bytes() as f64
    }

    /// KV-cache bytes per token of context.
    #[must_use]
    pub fn kv_bytes_per_token(&self, prec: Precision) -> f64 {
        (self.layers * self.kv_dim()) as f64 * prec.bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_match_marketing_sizes() {
        let cases = [
            (ModelConfig::phi3_mini(), 3.8),
            (ModelConfig::llama2_7b(), 6.7),
            (ModelConfig::llama3_8b(), 8.0),
            (ModelConfig::gemma2_9b(), 9.2),
            (ModelConfig::llama2_13b(), 13.0),
            (ModelConfig::qwen3_30b_a3b(), 30.5),
        ];
        for (m, expect_b) in cases {
            let got = m.param_count() / 1e9;
            let err = (got - expect_b).abs() / expect_b;
            assert!(
                err < 0.25,
                "{}: expected ≈{expect_b}B params, got {got:.2}B",
                m.name
            );
        }
    }

    #[test]
    fn moe_streams_far_less_than_it_stores() {
        let q = ModelConfig::qwen3_30b_a3b();
        let total = q.param_count();
        let active = q.active_param_count();
        assert!(
            active < total / 5.0,
            "MoE streams a small fraction: {active} vs {total}"
        );
        assert!(
            (2.5e9..5.0e9).contains(&active),
            "≈3B active params, got {active}"
        );
    }

    #[test]
    fn dense_model_streams_everything() {
        let m = ModelConfig::llama2_7b();
        assert_eq!(m.param_count(), m.active_param_count());
        assert!((m.weight_bytes(Precision::Bf16) - m.param_count() * 2.0).abs() < 1.0);
    }

    #[test]
    fn gqa_shrinks_kv() {
        let l2 = ModelConfig::llama2_7b();
        let l3 = ModelConfig::llama3_8b();
        assert!(l3.kv_bytes_per_token(Precision::Bf16) < l2.kv_bytes_per_token(Precision::Bf16));
    }

    #[test]
    fn head_dims_divide() {
        for m in ModelConfig::table2_models() {
            assert_eq!(m.d_model % m.n_heads, 0, "{}", m.name);
            assert!(m.head_dim() >= 64);
        }
    }

    #[test]
    fn kv_bytes_formula() {
        let m = ModelConfig::llama2_7b();
        // 32 layers * 2 * 32 heads * 128 dim * 2 bytes = 524288
        assert!((m.kv_bytes_per_token(Precision::Bf16) - 524_288.0).abs() < 1.0);
    }

    #[test]
    fn table2_has_six_models() {
        assert_eq!(ModelConfig::table2_models().len(), 6);
    }
}
