//! Iteration cost evaluation.
//!
//! Folds an operator list ([`crate::ops::iteration_ops`]) through the
//! roofline cost model under a concrete execution context, picking the best
//! AU per operator and accumulating PMU counters — the serving-engine
//! analogue of running one xFasterTransformer step under `perf`.

use serde::{Deserialize, Serialize};

use aum_au::counters::PmuCounters;
use aum_au::gemm::{gemm_time, pick_unit, Bound, ExecContext};
use aum_au::unit::{AuKind, AuSpec, Precision};
use aum_platform::spec::PlatformSpec;
use aum_sim::time::SimDuration;

use crate::config::ModelConfig;
use crate::ops::{iteration_ops, IterOp, Phase};

/// Per-region AU kernel set for a platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuKernels {
    /// AMX spec of the platform.
    pub amx: AuSpec,
    /// AVX-512 spec of the platform.
    pub avx: AuSpec,
}

impl AuKernels {
    /// Derives both kernel specs from a platform.
    #[must_use]
    pub fn for_platform(spec: &PlatformSpec) -> Self {
        AuKernels {
            amx: AuSpec::for_platform(spec, AuKind::Amx),
            avx: AuSpec::for_platform(spec, AuKind::Avx512),
        }
    }
}

/// Cost-model output for one serving iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// Wall time of the iteration.
    pub time: SimDuration,
    /// Total floating-point work.
    pub flops: f64,
    /// Total DRAM traffic.
    pub bytes: f64,
    /// Bandwidth the iteration *could* consume if the memory leg were free —
    /// the demand reported to the platform's bandwidth pool.
    pub bw_demand_gbs: f64,
    /// Fraction of wall time spent on memory-bound operators.
    pub memory_bound_frac: f64,
    /// Fraction of flops executed on AMX.
    pub amx_flop_frac: f64,
}

/// Evaluates one iteration of `model` in `phase` with `tokens`/`context`
/// (see [`iteration_ops`]) under the execution context, and accumulates PMU
/// counters into `pmu`.
///
/// # Examples
///
/// ```
/// use aum_au::counters::PmuCounters;
/// use aum_au::gemm::ExecContext;
/// use aum_au::unit::Precision;
/// use aum_llm::config::ModelConfig;
/// use aum_llm::cost::{iteration_cost, AuKernels};
/// use aum_llm::ops::Phase;
/// use aum_platform::spec::PlatformSpec;
///
/// let spec = PlatformSpec::gen_a();
/// let kernels = AuKernels::for_platform(&spec);
/// let ctx = ExecContext::new(96, 3.1, spec.mem_bw);
/// let mut pmu = PmuCounters::new();
/// let cost = iteration_cost(
///     &ModelConfig::llama2_7b(), Phase::Decode, 16, 855,
///     Precision::Bf16, &kernels, &ctx, &mut pmu,
/// );
/// assert!(cost.time.as_millis_f64() > 10.0);
/// ```
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn iteration_cost(
    model: &ModelConfig,
    phase: Phase,
    tokens: usize,
    context: usize,
    prec: Precision,
    kernels: &AuKernels,
    ctx: &ExecContext,
    pmu: &mut PmuCounters,
) -> IterationCost {
    let _prof = aum_sim::prof::scope("cost.iteration");
    let ops = iteration_ops(model, phase, tokens, context);
    cost_of_ops(&ops, prec, kernels, ctx, pmu)
}

/// Evaluates an explicit operator list (used by the profiler's synthetic
/// sweeps as well as the engine).
#[must_use]
pub fn cost_of_ops(
    ops: &[IterOp],
    prec: Precision,
    kernels: &AuKernels,
    ctx: &ExecContext,
    pmu: &mut PmuCounters,
) -> IterationCost {
    let _prof = aum_sim::prof::scope("cost.eval_ops");
    let mut total = SimDuration::ZERO;
    let mut flops = 0.0;
    let mut bytes = 0.0;
    let mut compute_secs = 0.0;
    let mut memory_secs = 0.0;
    let mut memory_bound_secs = 0.0;
    let mut amx_flops = 0.0;
    for op in ops {
        let (unit, exec) = match op.unit {
            Some(AuKind::Avx512) => (&kernels.avx, gemm_time(op.shape, prec, &kernels.avx, ctx)),
            Some(AuKind::Amx) => (&kernels.amx, gemm_time(op.shape, prec, &kernels.amx, ctx)),
            Some(AuKind::Scalar) | None => {
                pick_unit(op.shape, prec, &kernels.amx, &kernels.avx, ctx)
            }
        };
        let repeat = op.repeat as f64;
        // Repeats share one launch; scale the steady-state legs.
        let op_time = SimDuration::from_secs_f64(exec.time.as_secs_f64() * repeat);
        total += op_time;
        let op_flops = op.shape.flops() * repeat;
        flops += op_flops;
        bytes += op.shape.bytes(prec) * repeat;
        compute_secs += exec.compute_time.as_secs_f64() * repeat;
        memory_secs += exec.memory_time.as_secs_f64() * repeat;
        if exec.bound == Bound::Memory {
            memory_bound_secs += op_time.as_secs_f64();
        }
        if unit.kind == AuKind::Amx {
            amx_flops += op_flops;
        }
        // PMU: record one scaled execution.
        let scaled = aum_au::gemm::GemmExecution {
            time: op_time,
            compute_time: SimDuration::from_secs_f64(compute_secs),
            memory_time: SimDuration::from_secs_f64(memory_secs),
            bound: exec.bound,
            achieved_tflops: exec.achieved_tflops,
            au_busy_cycles_per_core: exec.au_busy_cycles_per_core * repeat,
        };
        pmu.record_gemm(&scaled, unit.kind, ctx.cores, ctx.freq_ghz);
    }
    let wall = total.as_secs_f64().max(1e-12);
    IterationCost {
        time: total,
        flops,
        bytes,
        bw_demand_gbs: bytes / compute_secs.max(1e-9) / 1e9,
        memory_bound_frac: (memory_bound_secs / wall).clamp(0.0, 1.0),
        amx_flop_frac: if flops > 0.0 { amx_flops / flops } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum_platform::units::GbPerSec;

    fn setup() -> (ModelConfig, AuKernels, PlatformSpec) {
        let spec = PlatformSpec::gen_a();
        (
            ModelConfig::llama2_7b(),
            AuKernels::for_platform(&spec),
            spec,
        )
    }

    #[test]
    fn decode_iteration_time_is_realistic() {
        // §III-B: GenA serves ≈188 tokens/s at bs16 → iteration ≈85 ms.
        let (model, kernels, spec) = setup();
        let ctx = ExecContext::new(96, 3.1, spec.mem_bw);
        let mut pmu = PmuCounters::new();
        let cost = iteration_cost(
            &model,
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ctx,
            &mut pmu,
        );
        let ms = cost.time.as_millis_f64();
        assert!(
            (60.0..=140.0).contains(&ms),
            "decode iteration ≈85-100 ms, got {ms}"
        );
    }

    #[test]
    fn prefill_of_755_tokens_takes_fraction_of_second() {
        // TTFT for the chatbot scenario: ≈0.25-0.4 s on the full machine.
        let (model, kernels, spec) = setup();
        let ctx = ExecContext::new(96, 2.5, spec.mem_bw);
        let mut pmu = PmuCounters::new();
        let cost = iteration_cost(
            &model,
            Phase::Prefill,
            755,
            755,
            Precision::Bf16,
            &kernels,
            &ctx,
            &mut pmu,
        );
        let s = cost.time.as_secs_f64();
        assert!(
            (0.15..=0.6).contains(&s),
            "prefill of 755 tokens ≈0.25-0.4 s, got {s}"
        );
    }

    #[test]
    fn decode_is_memory_dominated_prefill_is_not() {
        let (model, kernels, spec) = setup();
        let mut pmu = PmuCounters::new();
        let decode = iteration_cost(
            &model,
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, 3.1, spec.mem_bw),
            &mut pmu,
        );
        let prefill = iteration_cost(
            &model,
            Phase::Prefill,
            8192,
            512,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, 2.5, spec.mem_bw),
            &mut pmu,
        );
        assert!(
            decode.memory_bound_frac > 0.8,
            "decode mem frac {}",
            decode.memory_bound_frac
        );
        assert!(
            prefill.memory_bound_frac < 0.4,
            "prefill mem frac {}",
            prefill.memory_bound_frac
        );
    }

    #[test]
    fn decode_demands_more_bandwidth_than_pool() {
        let (model, kernels, spec) = setup();
        let mut pmu = PmuCounters::new();
        let cost = iteration_cost(
            &model,
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, 3.1, spec.mem_bw),
            &mut pmu,
        );
        assert!(
            cost.bw_demand_gbs > spec.mem_bw.value(),
            "decode saturates the pool"
        );
    }

    #[test]
    fn prefill_flops_mostly_on_amx() {
        let (model, kernels, spec) = setup();
        let mut pmu = PmuCounters::new();
        let cost = iteration_cost(
            &model,
            Phase::Prefill,
            8192,
            512,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, 2.5, spec.mem_bw),
            &mut pmu,
        );
        assert!(
            cost.amx_flop_frac > 0.9,
            "prefill amx flop frac {}",
            cost.amx_flop_frac
        );
    }

    #[test]
    fn pmu_ratios_match_table2_shape() {
        // llama2-7b Table II: prefill amx cycle ratio 14.4%, decode 1.5%.
        let (model, kernels, spec) = setup();
        let mut prefill_pmu = PmuCounters::new();
        let _ = iteration_cost(
            &model,
            Phase::Prefill,
            8192,
            512,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, 2.5, spec.mem_bw),
            &mut prefill_pmu,
        );
        let mut decode_pmu = PmuCounters::new();
        let _ = iteration_cost(
            &model,
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, 3.1, spec.mem_bw),
            &mut decode_pmu,
        );
        let p = prefill_pmu.amx_cycle_ratio();
        let d = decode_pmu.amx_cycle_ratio();
        assert!((0.08..=0.25).contains(&p), "prefill cycle ratio {p}");
        assert!((0.004..=0.04).contains(&d), "decode cycle ratio {d}");
        assert!(p > 5.0 * d, "prefill uses AMX far more than decode");
        assert!(
            decode_pmu.avx_inst_ratio() > prefill_pmu.avx_inst_ratio(),
            "decode leans on AVX more (§IV-A1)"
        );
    }

    #[test]
    fn throttled_bandwidth_slows_decode() {
        let (model, kernels, spec) = setup();
        let mut pmu = PmuCounters::new();
        let full = iteration_cost(
            &model,
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, 3.1, spec.mem_bw),
            &mut pmu,
        );
        let half = iteration_cost(
            &model,
            Phase::Decode,
            16,
            855,
            Precision::Bf16,
            &kernels,
            &ExecContext::new(96, 3.1, GbPerSec(spec.mem_bw.value() / 2.0)),
            &mut pmu,
        );
        let ratio = half.time.as_secs_f64() / full.time.as_secs_f64();
        assert!(
            ratio > 1.6,
            "halving bandwidth nearly doubles decode, got {ratio}"
        );
    }

    #[test]
    fn fewer_cores_barely_hurt_decode_but_hurt_prefill() {
        let (model, kernels, spec) = setup();
        let mut pmu = PmuCounters::new();
        let run = |phase, tokens, ctx_len, cores| {
            iteration_cost(
                &model,
                phase,
                tokens,
                ctx_len,
                Precision::Bf16,
                &kernels,
                &ExecContext::new(cores, 2.8, spec.mem_bw),
                &mut PmuCounters::new(),
            )
            .time
            .as_secs_f64()
        };
        let _ = &mut pmu;
        let decode_ratio = run(Phase::Decode, 16, 855, 24) / run(Phase::Decode, 16, 855, 96);
        assert!(
            decode_ratio < 1.35,
            "decode is core-insensitive, got {decode_ratio}"
        );
        let prefill_ratio = run(Phase::Prefill, 755, 755, 24) / run(Phase::Prefill, 755, 755, 96);
        assert!(
            prefill_ratio > 2.0,
            "prefill is core-hungry, got {prefill_ratio}"
        );
    }
}
