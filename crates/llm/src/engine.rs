//! Continuous-batching LLM serving engine.
//!
//! Simulates an xFasterTransformer-style server iteration by iteration. The
//! engine supports both deployment shapes the evaluation needs:
//!
//! - **time-multiplexed** — one executor alternates between pending prefill
//!   batches (FCFS priority) and decode iterations on the same cores; this
//!   is how the exclusive ALL-AU baseline serves;
//! - **partitioned** — prefill and decode run concurrently on the High-AU
//!   and Low-AU core regions of AUM's processor division (§VI-B2).
//!
//! Each iteration's latency comes from the roofline cost model under the
//! resources (cores, frequency, bandwidth grant, contention penalties) the
//! experiment harness supplies per control interval, so every AUV channel
//! reaches token latency mechanistically.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use aum_au::counters::PmuCounters;
use aum_au::gemm::ExecContext;
use aum_au::unit::Precision;
use aum_platform::spec::PlatformSpec;
use aum_platform::units::GbPerSec;
use aum_sim::hist::LogHistogram;
use aum_sim::span::{SpanId, SpanKind};
use aum_sim::telemetry::{Event, PhaseKind, Tracer};
use aum_sim::time::{SimDuration, SimTime};

use crate::batching::{ActiveRequest, DecodePool, PrefillQueue};
use crate::config::ModelConfig;
use crate::cost::{iteration_cost, AuKernels};
use crate::ops::Phase;
use crate::request::{Request, TokenRecord, TtftRecord};
use crate::slo::{SloReport, SloSpec};
use crate::traces::Scenario;

/// Resources granted to one executor (core region) for an interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionResources {
    /// Cores available (0 stalls the executor).
    pub cores: usize,
    /// Operating frequency, GHz.
    pub freq_ghz: f64,
    /// Granted DRAM bandwidth.
    pub bandwidth: GbPerSec,
    /// Memory-phase contention multiplier (≥ 1).
    pub memory_penalty: f64,
    /// Compute-phase contention multiplier (≥ 1, SMT port pressure).
    pub compute_penalty: f64,
}

impl RegionResources {
    /// Clean resources with no contention.
    #[must_use]
    pub fn new(cores: usize, freq_ghz: f64, bandwidth: GbPerSec) -> Self {
        RegionResources {
            cores,
            freq_ghz,
            bandwidth,
            memory_penalty: 1.0,
            compute_penalty: 1.0,
        }
    }

    fn exec_context(&self) -> Option<ExecContext> {
        if self.cores == 0 || self.freq_ghz <= 0.0 || self.bandwidth.value() <= 0.0 {
            return None;
        }
        Some(
            ExecContext::new(self.cores, self.freq_ghz, self.bandwidth)
                .with_penalties(self.memory_penalty.max(1.0), self.compute_penalty.max(1.0)),
        )
    }
}

/// How the two phases share the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineMode {
    /// One executor, prefill-priority FCFS (exclusive xft deployment).
    TimeMultiplexed,
    /// Separate prefill/decode executors on disjoint core regions (AUM).
    Partitioned,
}

/// Per-interval resource grant for the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineResources {
    /// Resources for prefill work (the High-AU region).
    pub prefill: RegionResources,
    /// Resources for decode work (the Low-AU region).
    pub decode: RegionResources,
    /// Sharing mode.
    pub mode: EngineMode,
}

/// Static engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Model being served.
    pub model: ModelConfig,
    /// Serving precision (the paper serves BF16).
    pub precision: Precision,
    /// Decode batch cap (paper: 16).
    pub max_batch: usize,
    /// Prompts per prefill iteration.
    pub prefill_batch: usize,
    /// Scenario (SLOs and trace statistics).
    pub scenario: Scenario,
    /// KV-cache capacity budget; `None` means capacity never binds (the
    /// 1 TB GenA case). See [`crate::kv::KvBudget`].
    #[serde(default)]
    pub kv_budget: Option<crate::kv::KvBudget>,
    /// Chunked prefill (Sarathi/DistServe-style): process prompts in chunks
    /// of at most this many tokens so decode iterations interleave between
    /// chunks in the time-multiplexed mode, trading TTFT for TPOT
    /// stability. `None` processes each prompt in one shot.
    #[serde(default)]
    pub prefill_chunk: Option<usize>,
}

impl EngineConfig {
    /// The paper's default serving setup for a scenario: llama2-7b, BF16,
    /// batch 16.
    #[must_use]
    pub fn paper_default(scenario: Scenario) -> Self {
        EngineConfig {
            model: ModelConfig::llama2_7b(),
            precision: Precision::Bf16,
            max_batch: 16,
            prefill_batch: 1,
            scenario,
            kv_budget: None,
            prefill_chunk: None,
        }
    }

    /// Returns a copy with a KV budget derived from the platform's memory.
    #[must_use]
    pub fn with_platform_kv_budget(mut self, platform: &PlatformSpec) -> Self {
        self.kv_budget = Some(crate::kv::KvBudget::for_platform(
            platform,
            &self.model,
            self.precision,
        ));
        self
    }
}

/// Statistics of one `run_interval` call.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Fraction of the interval the prefill executor was busy.
    pub prefill_busy: f64,
    /// Fraction of the interval the decode executor was busy.
    pub decode_busy: f64,
    /// Prompt tokens prefilled during the interval.
    pub prefill_tokens: u64,
    /// Output tokens generated during the interval.
    pub decode_tokens: u64,
    /// Requests fully completed during the interval.
    pub completed: u64,
    /// Bandwidth demand of prefill while busy.
    pub prefill_bw_demand: GbPerSec,
    /// Bandwidth demand of decode while busy.
    pub decode_bw_demand: GbPerSec,
}

/// The serving engine.
#[derive(Debug, Clone)]
pub struct LlmEngine {
    cfg: EngineConfig,
    kernels: AuKernels,
    trace: VecDeque<Request>,
    queue: PrefillQueue,
    pool: DecodePool,
    /// Prefilled requests waiting for a decode slot: `(ready_at, request)`.
    ready: VecDeque<(SimTime, Request)>,
    /// In-flight chunked prefill: the request and tokens already processed.
    current_prefill: Option<(Request, usize)>,
    prefill_clock: SimTime,
    decode_clock: SimTime,
    ttfts: Vec<TtftRecord>,
    tokens: Vec<TokenRecord>,
    /// Per finished request: average *wall-clock* time per generated token,
    /// seconds — the TPOT a user experiences, including stalls behind
    /// prefill bursts (unlike [`TokenRecord::exec`], which is pure
    /// iteration time).
    wall_tpots: Vec<f64>,
    /// The same distribution as a mergeable histogram (quantile readout).
    wall_tpot_hist: LogHistogram,
    pmu: PmuCounters,
    completed: u64,
    /// Trace handle; request lifecycle and iteration events stream here
    /// when a sink is attached (free when disabled).
    tracer: Tracer,
    /// Span track label for this run (one experiment cell).
    span_track: String,
    /// Monotonic step counters — the deterministic span-id payloads for
    /// prefill/decode iteration spans.
    prefill_steps: u64,
    decode_steps: u64,
    /// Request ids with an open `RequestLifecycle` span (maintained only
    /// while a sink is attached). `BTreeSet` so end-of-run closes iterate
    /// in id order — deterministic across runs and worker counts.
    open_request_spans: std::collections::BTreeSet<u64>,
    /// TTFT (seconds) per request id, for `RequestFinished` emissions at
    /// decode time (maintained only while a sink is attached).
    ttft_by_id: std::collections::HashMap<u64, f64>,
}

impl LlmEngine {
    /// Creates an engine for `cfg` on `platform`, fed by `trace` (must be
    /// sorted by arrival time).
    ///
    /// # Panics
    ///
    /// Panics if the trace is unsorted.
    #[must_use]
    pub fn new(cfg: EngineConfig, platform: &PlatformSpec, trace: Vec<Request>) -> Self {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival"
        );
        let max_batch = cfg.max_batch;
        LlmEngine {
            cfg,
            kernels: AuKernels::for_platform(platform),
            trace: trace.into(),
            queue: PrefillQueue::new(),
            pool: DecodePool::new(max_batch),
            ready: VecDeque::new(),
            current_prefill: None,
            prefill_clock: SimTime::ZERO,
            decode_clock: SimTime::ZERO,
            ttfts: Vec::new(),
            tokens: Vec::new(),
            wall_tpots: Vec::new(),
            wall_tpot_hist: LogHistogram::new(),
            pmu: PmuCounters::new(),
            completed: 0,
            tracer: Tracer::disabled(),
            span_track: "run".to_string(),
            prefill_steps: 0,
            decode_steps: 0,
            open_request_spans: std::collections::BTreeSet::new(),
            ttft_by_id: std::collections::HashMap::new(),
        }
    }

    /// Attaches a trace handle; subsequent admissions, completions and
    /// iterations emit [`aum_sim::telemetry::Event`]s through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Names the span track for this run (one experiment cell). Span ids
    /// are unique per track, so concurrent cells sharing one sink must use
    /// distinct tracks.
    pub fn set_span_track(&mut self, track: impl Into<String>) {
        self.span_track = track.into();
    }

    /// Engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// SLO spec of the configured scenario.
    #[must_use]
    pub fn slo(&self) -> SloSpec {
        self.cfg.scenario.slo()
    }

    fn admit_arrivals(&mut self, upto: SimTime) {
        while let Some(front) = self.trace.front() {
            if front.arrival <= upto {
                let r = *front;
                self.trace.pop_front();
                if self.tracer.is_enabled() {
                    let id = SpanId::derive(SpanKind::RequestLifecycle, r.id.0);
                    let track = self.span_track.clone();
                    self.tracer.emit(r.arrival, || Event::SpanOpen {
                        id: id.0,
                        parent: None,
                        kind: SpanKind::RequestLifecycle,
                        track,
                        label: format!("req {}", r.id.0),
                    });
                    self.open_request_spans.insert(r.id.0);
                }
                self.queue.push(r);
            } else {
                break;
            }
        }
    }

    /// Peak-reservation KV bytes of the currently admitted requests.
    fn kv_reserved_bytes(&self) -> f64 {
        let per_token = self.cfg.model.kv_bytes_per_token(self.cfg.precision);
        self.pool
            .active()
            .iter()
            .map(|r| (r.context + r.remaining) as f64 * per_token)
            .sum()
    }

    fn admit_ready(&mut self, upto: SimTime) {
        while self.pool.free_slots() > 0 {
            match self.ready.front() {
                Some(&(at, req)) if at <= upto => {
                    if let Some(budget) = self.cfg.kv_budget {
                        let peak = crate::kv::KvBudget::request_peak_bytes(
                            &self.cfg.model,
                            self.cfg.precision,
                            req.input_len,
                            req.output_len,
                        );
                        if !budget.admits(self.kv_reserved_bytes(), peak) {
                            break; // capacity-bound: wait for retirements
                        }
                    }
                    self.ready.pop_front();
                    self.tracer.emit(upto, || Event::RequestAdmitted {
                        id: req.id.0,
                        input_len: req.input_len,
                        output_len: req.output_len,
                    });
                    self.pool
                        .admit(ActiveRequest::start(&req).admitted_at(upto.as_secs_f64()));
                }
                _ => break,
            }
        }
    }

    fn next_arrival(&self) -> Option<SimTime> {
        self.trace.front().map(|r| r.arrival)
    }

    /// Runs one prefill *step*: either a whole batch (unchunked) or one
    /// chunk of the in-flight prompt (chunked mode).
    fn run_prefill_step(&mut self, res: &ExecContext, stats: &mut IntervalStats) {
        let _prof = aum_sim::prof::scope("engine.prefill_step");
        match self.cfg.prefill_chunk {
            None => {
                let batch = self.queue.pop_batch(self.cfg.prefill_batch);
                debug_assert!(!batch.is_empty());
                let tokens: usize = batch.iter().map(|r| r.input_len).sum();
                let ctx = (tokens / batch.len()).max(1);
                let cost = iteration_cost(
                    &self.cfg.model,
                    Phase::Prefill,
                    tokens,
                    ctx,
                    self.cfg.precision,
                    &self.kernels,
                    res,
                    &mut self.pmu,
                );
                let start = self.prefill_clock;
                self.prefill_clock += cost.time;
                stats.prefill_tokens += tokens as u64;
                stats.prefill_bw_demand =
                    GbPerSec(stats.prefill_bw_demand.value().max(cost.bw_demand_gbs));
                self.tracer
                    .emit(self.prefill_clock, || Event::IterationCompleted {
                        phase: PhaseKind::Prefill,
                        batch: batch.len(),
                        tokens,
                        duration_secs: cost.time.as_secs_f64(),
                    });
                self.emit_step_span(SpanKind::Prefill, Some(batch[0].id.0), start);
                for r in batch {
                    self.finish_prefill(r, stats);
                }
            }
            Some(chunk) => {
                let chunk = chunk.max(16);
                let (req, done) = match self.current_prefill.take() {
                    Some(inflight) => inflight,
                    None => {
                        let mut batch = self.queue.pop_batch(1);
                        debug_assert!(!batch.is_empty());
                        (batch.remove(0), 0)
                    }
                };
                let step = chunk.min(req.input_len - done);
                // The chunk attends over the already-processed prefix.
                let cost = iteration_cost(
                    &self.cfg.model,
                    Phase::Prefill,
                    step,
                    (done + step).max(1),
                    self.cfg.precision,
                    &self.kernels,
                    res,
                    &mut self.pmu,
                );
                let start = self.prefill_clock;
                self.prefill_clock += cost.time;
                stats.prefill_tokens += step as u64;
                stats.prefill_bw_demand =
                    GbPerSec(stats.prefill_bw_demand.value().max(cost.bw_demand_gbs));
                self.tracer
                    .emit(self.prefill_clock, || Event::IterationCompleted {
                        phase: PhaseKind::Prefill,
                        batch: 1,
                        tokens: step,
                        duration_secs: cost.time.as_secs_f64(),
                    });
                self.emit_step_span(SpanKind::Prefill, Some(req.id.0), start);
                let done = done + step;
                if done >= req.input_len {
                    self.finish_prefill(req, stats);
                } else {
                    self.current_prefill = Some((req, done));
                }
            }
        }
    }

    /// Emits the open/close pair for one prefill or decode step span: the
    /// id payload is the step counter (deterministic), the parent the
    /// lifecycle span of a representative request in the batch.
    fn emit_step_span(&mut self, kind: SpanKind, parent_req: Option<u64>, start: SimTime) {
        let (counter, end) = match kind {
            SpanKind::Prefill => (&mut self.prefill_steps, self.prefill_clock),
            _ => (&mut self.decode_steps, self.decode_clock),
        };
        let step = *counter;
        *counter += 1;
        if !self.tracer.is_enabled() {
            return;
        }
        let id = SpanId::derive(kind, step);
        let parent = parent_req.map(|r| SpanId::derive(SpanKind::RequestLifecycle, r).0);
        let track = self.span_track.clone();
        self.tracer.emit(start, || Event::SpanOpen {
            id: id.0,
            parent,
            kind,
            track,
            label: format!("{} {step}", kind.label()),
        });
        let track = self.span_track.clone();
        self.tracer.emit(end, || Event::SpanClose {
            id: id.0,
            kind,
            track,
        });
    }

    fn finish_prefill(&mut self, r: Request, stats: &mut IntervalStats) {
        let ttft = self.prefill_clock.saturating_since(r.arrival);
        self.ttfts.push(TtftRecord {
            id: r.id,
            arrival: r.arrival,
            ttft,
        });
        if self.tracer.is_enabled() {
            self.ttft_by_id.insert(r.id.0, ttft.as_secs_f64());
            // Per-request TTFT breach, emitted where the deadline is
            // decided (prefill completion) for every request, terminal
            // or not — the flight recorder and breach blame key off it.
            self.emit_request_breaches(self.prefill_clock, ttft.as_secs_f64(), 0, 0.0);
        }
        if r.output_len > 1 {
            self.ready.push_back((self.prefill_clock, r));
        } else {
            self.completed += 1;
            stats.completed += 1;
            let ttft_secs = ttft.as_secs_f64();
            self.tracer
                .emit(self.prefill_clock, || Event::RequestFinished {
                    id: r.id.0,
                    generated: 0,
                    mean_tpot_secs: 0.0,
                    ttft_secs,
                });
            self.close_request_span(r.id.0, self.prefill_clock);
        }
    }

    /// Emits one [`Event::SloBreach`] per deadline the finished request
    /// missed (see [`SloSpec::request_breaches`]). Caller gates on
    /// [`Tracer::is_enabled`], so untraced runs pay nothing.
    fn emit_request_breaches(
        &mut self,
        at: SimTime,
        ttft_secs: f64,
        generated: usize,
        mean_tpot_secs: f64,
    ) {
        let slo = self.cfg.scenario.slo();
        for (metric, observed, budget) in slo
            .request_breaches(ttft_secs, generated, mean_tpot_secs)
            .into_iter()
            .flatten()
        {
            self.tracer.emit(at, || Event::SloBreach {
                metric,
                observed_secs: observed,
                budget_secs: budget,
            });
        }
    }

    /// Closes the lifecycle span of `id` at `at`, if it is open.
    fn close_request_span(&mut self, id: u64, at: SimTime) {
        if self.open_request_spans.remove(&id) {
            self.ttft_by_id.remove(&id);
            let track = self.span_track.clone();
            self.tracer.emit(at, || Event::SpanClose {
                id: SpanId::derive(SpanKind::RequestLifecycle, id).0,
                kind: SpanKind::RequestLifecycle,
                track,
            });
        }
    }

    /// Closes every still-open request lifecycle span (in request-id
    /// order, so the emitted stream is deterministic). The experiment
    /// harness calls this once at end of run so traces stay balanced even
    /// when the run window cuts requests mid-flight. Spans close at `at`
    /// or the engine's phase clocks, whichever is latest: iterations in
    /// flight at the final boundary overshoot `at`, and their step spans
    /// must stay contained in their parent lifecycle.
    pub fn close_open_spans(&mut self, at: SimTime) {
        let at = at.max(self.prefill_clock).max(self.decode_clock);
        let open: Vec<u64> = self.open_request_spans.iter().copied().collect();
        for id in open {
            self.close_request_span(id, at);
        }
    }

    /// Whether prefill has pending or in-flight work.
    fn has_prefill_work(&self) -> bool {
        !self.queue.is_empty() || self.current_prefill.is_some()
    }

    fn run_decode_iteration(&mut self, res: &ExecContext, stats: &mut IntervalStats) {
        let _prof = aum_sim::prof::scope("engine.decode_iter");
        let batch = self.pool.batch();
        debug_assert!(batch > 0);
        let ctx = self.pool.mean_context();
        let cost = iteration_cost(
            &self.cfg.model,
            Phase::Decode,
            batch,
            ctx,
            self.cfg.precision,
            &self.kernels,
            res,
            &mut self.pmu,
        );
        let start = self.decode_clock;
        self.decode_clock += cost.time;
        stats.decode_tokens += batch as u64;
        stats.decode_bw_demand = GbPerSec(stats.decode_bw_demand.value().max(cost.bw_demand_gbs));
        self.tracer
            .emit(self.decode_clock, || Event::IterationCompleted {
                phase: PhaseKind::Decode,
                batch,
                tokens: batch,
                duration_secs: cost.time.as_secs_f64(),
            });
        self.emit_step_span(SpanKind::DecodeIteration, None, start);
        for r in self.pool.active() {
            self.tokens.push(TokenRecord {
                id: r.id,
                emitted: self.decode_clock,
                exec: cost.time,
            });
        }
        let finished = self.pool.step(cost.time);
        for f in &finished {
            let mut mean_tpot = 0.0;
            if f.generated > 0 {
                let wall = self.decode_clock.as_secs_f64() - f.admitted_secs;
                mean_tpot = (wall / f.generated as f64).max(0.0);
                self.wall_tpots.push(mean_tpot);
                self.wall_tpot_hist.record(mean_tpot);
            }
            let ttft_secs = self.ttft_by_id.get(&f.id.0).copied().unwrap_or(0.0);
            self.tracer
                .emit(self.decode_clock, || Event::RequestFinished {
                    id: f.id.0,
                    generated: f.generated,
                    mean_tpot_secs: mean_tpot,
                    ttft_secs,
                });
            if self.tracer.is_enabled() {
                // TTFT was judged at prefill completion; only the TPOT
                // deadline is decided here.
                self.emit_request_breaches(self.decode_clock, 0.0, f.generated, mean_tpot);
            }
            self.close_request_span(f.id.0, self.decode_clock);
        }
        let n = finished.len() as u64;
        self.completed += n;
        stats.completed += n;
    }

    /// Advances the engine to `until` under the given resources, returning
    /// interval statistics. Iterations in flight at the boundary complete
    /// with the current resources (clocks may overshoot slightly; the next
    /// interval starts from the overshoot).
    pub fn run_interval(&mut self, until: SimTime, res: &EngineResources) -> IntervalStats {
        let _prof = aum_sim::prof::scope("engine.interval");
        let start_p = self.prefill_clock;
        let start_d = self.decode_clock;
        let interval_start = start_p.min(start_d);
        let mut stats = IntervalStats::default();
        let mut prefill_busy = SimDuration::ZERO;
        let mut decode_busy = SimDuration::ZERO;
        let prefill_ctx = res.prefill.exec_context();
        let decode_ctx = res.decode.exec_context();

        match res.mode {
            EngineMode::TimeMultiplexed => {
                // One executor: keep both clocks identical. Unchunked
                // prefill has strict priority (xft FCFS); chunked prefill
                // alternates with decode so generation never stalls behind
                // a long prompt.
                let chunked = self.cfg.prefill_chunk.is_some();
                let mut decode_turn = false;
                let mut clock = self.prefill_clock.max(self.decode_clock);
                while clock < until {
                    self.admit_arrivals(clock);
                    self.admit_ready(clock);
                    let prefill_now = self.has_prefill_work()
                        && prefill_ctx.is_some()
                        && !(chunked
                            && decode_turn
                            && !self.pool.is_empty()
                            && decode_ctx.is_some());
                    if prefill_now {
                        let ctx = prefill_ctx.expect("prefill_now implies context");
                        self.prefill_clock = clock;
                        let before = self.prefill_clock;
                        self.run_prefill_step(&ctx, &mut stats);
                        prefill_busy += self.prefill_clock - before;
                        clock = self.prefill_clock;
                        decode_turn = true;
                    } else if let (false, Some(ctx)) = (self.pool.is_empty(), decode_ctx) {
                        self.decode_clock = clock;
                        let before = self.decode_clock;
                        self.run_decode_iteration(&ctx, &mut stats);
                        decode_busy += self.decode_clock - before;
                        clock = self.decode_clock;
                        decode_turn = false;
                    } else {
                        // Idle: jump to the next event.
                        let next = self
                            .next_arrival()
                            .into_iter()
                            .chain(self.ready.front().map(|&(t, _)| t))
                            .min()
                            .unwrap_or(until)
                            .max(clock + SimDuration::from_micros(1));
                        clock = next.min(until);
                    }
                }
                self.prefill_clock = clock;
                self.decode_clock = clock;
            }
            EngineMode::Partitioned => loop {
                let p = self.prefill_clock;
                let d = self.decode_clock;
                if p >= until && d >= until {
                    break;
                }
                if p <= d && p < until {
                    self.admit_arrivals(p);
                    if let (true, Some(ctx)) = (self.has_prefill_work(), prefill_ctx) {
                        let before = self.prefill_clock;
                        self.run_prefill_step(&ctx, &mut stats);
                        prefill_busy += self.prefill_clock - before;
                    } else {
                        let next = self
                            .next_arrival()
                            .unwrap_or(until)
                            .max(p + SimDuration::from_micros(1));
                        self.prefill_clock = next.min(until);
                    }
                } else if d < until {
                    self.admit_ready(d);
                    if let (false, Some(ctx)) = (self.pool.is_empty(), decode_ctx) {
                        let before = self.decode_clock;
                        self.run_decode_iteration(&ctx, &mut stats);
                        decode_busy += self.decode_clock - before;
                    } else {
                        let next = self
                            .ready
                            .front()
                            .map(|&(t, _)| t)
                            .unwrap_or(until)
                            .max(d + SimDuration::from_micros(1));
                        self.decode_clock = next.min(until);
                    }
                } else {
                    break;
                }
            },
        }

        let span = until
            .saturating_since(interval_start)
            .as_secs_f64()
            .max(1e-9);
        stats.prefill_busy = (prefill_busy.as_secs_f64() / span).min(1.0);
        stats.decode_busy = (decode_busy.as_secs_f64() / span).min(1.0);
        stats
    }

    /// TTFT records so far.
    #[must_use]
    pub fn ttft_records(&self) -> &[TtftRecord] {
        &self.ttfts
    }

    /// Decode token records so far.
    #[must_use]
    pub fn token_records(&self) -> &[TokenRecord] {
        &self.tokens
    }

    /// SLO report over everything recorded so far.
    #[must_use]
    pub fn slo_report(&self) -> SloReport {
        SloReport::from_records(self.slo(), &self.ttfts, &self.tokens)
    }

    /// Quantile of per-request *wall-clock* TPOT (stall-inclusive), over
    /// finished requests; 0 when none finished. Read from the mergeable
    /// log-linear histogram (≤ 1/128 relative error), not the raw samples.
    #[must_use]
    pub fn wall_tpot_quantile(&self, q: f64) -> f64 {
        self.wall_tpot_hist.quantile(q)
    }

    /// The wall-clock TPOT distribution as a mergeable histogram.
    #[must_use]
    pub fn wall_tpot_hist(&self) -> &LogHistogram {
        &self.wall_tpot_hist
    }

    /// Fraction of finished requests whose wall-clock TPOT met the deadline.
    #[must_use]
    pub fn wall_tpot_guarantee(&self, d_tpot: SimDuration) -> f64 {
        if self.wall_tpots.is_empty() {
            return 1.0;
        }
        let met = self
            .wall_tpots
            .iter()
            .filter(|&&w| w <= d_tpot.as_secs_f64())
            .count();
        met as f64 / self.wall_tpots.len() as f64
    }

    /// Accumulated synthetic PMU counters.
    #[must_use]
    pub fn pmu(&self) -> &PmuCounters {
        &self.pmu
    }

    /// Requests fully completed.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests waiting for prefill.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Waiting time of the oldest queued request (the paper's `t_wait`).
    #[must_use]
    pub fn head_wait(&self) -> SimDuration {
        self.queue.head_wait(self.prefill_clock)
    }

    /// Current decode batch size.
    #[must_use]
    pub fn decode_batch(&self) -> usize {
        self.pool.batch()
    }

    /// Worst LAG across active decode requests in seconds (`+∞` if idle).
    #[must_use]
    pub fn worst_lag_secs(&self) -> f64 {
        self.pool.worst_lag_secs(self.slo().tpot)
    }

    /// True once the trace is exhausted and all work has drained.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.trace.is_empty()
            && self.queue.is_empty()
            && self.current_prefill.is_none()
            && self.pool.is_empty()
            && self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::TraceGenerator;
    use aum_sim::rng::DetRng;

    fn gen_a() -> PlatformSpec {
        PlatformSpec::gen_a()
    }

    fn exclusive_resources(spec: &PlatformSpec) -> EngineResources {
        EngineResources {
            prefill: RegionResources::new(spec.total_cores(), 2.5, spec.mem_bw),
            decode: RegionResources::new(spec.total_cores(), 3.1, spec.mem_bw),
            mode: EngineMode::TimeMultiplexed,
        }
    }

    fn run_scenario(scenario: Scenario, secs: u64) -> (LlmEngine, IntervalStats) {
        let spec = gen_a();
        let trace = TraceGenerator::new(scenario, scenario.default_rate())
            .generate(&DetRng::from_seed(42), SimDuration::from_secs(secs));
        let mut engine = LlmEngine::new(EngineConfig::paper_default(scenario), &spec, trace);
        let res = exclusive_resources(&spec);
        let mut total = IntervalStats::default();
        for step in 1..=secs {
            let s = engine.run_interval(SimTime::from_secs(step), &res);
            total.prefill_tokens += s.prefill_tokens;
            total.decode_tokens += s.decode_tokens;
            total.completed += s.completed;
        }
        (engine, total)
    }

    #[test]
    fn chatbot_throughput_matches_paper_scale() {
        // §III-B: GenA serves ≈188 tokens/s exclusively. At the default
        // 0.4 req/s × 200 tokens ≈ 80 tokens/s offered load (and a ramp-up
        // window), the engine should track the offered rate with headroom.
        let (engine, total) = run_scenario(Scenario::Chatbot, 120);
        let tput = total.decode_tokens as f64 / 120.0;
        assert!(
            (50.0..=120.0).contains(&tput),
            "decode throughput {tput} tokens/s"
        );
        assert!(engine.completed() > 25);
    }

    #[test]
    fn exclusive_serving_meets_most_tpot_slos() {
        let (engine, _) = run_scenario(Scenario::Chatbot, 120);
        let report = engine.slo_report();
        assert!(
            report.tpot_guarantee > 0.7,
            "exclusive TPOT guarantee should be high, got {}",
            report.tpot_guarantee
        );
    }

    #[test]
    fn code_completion_ttft_is_hard_even_exclusively() {
        // §VII-C: "for cc with strict TTFT SLOs, even using AU exclusively
        // for prefill cannot meet the SLO".
        let (engine, _) = run_scenario(Scenario::CodeCompletion, 120);
        let report = engine.slo_report();
        assert!(
            report.ttft_guarantee < 0.9,
            "cc TTFT should violate often, got {}",
            report.ttft_guarantee
        );
    }

    #[test]
    fn summarization_ttft_is_loose() {
        let (engine, _) = run_scenario(Scenario::Summarization, 120);
        let report = engine.slo_report();
        assert!(
            report.ttft_guarantee > 0.85,
            "sm TTFT (1.5s) should mostly hold, got {}",
            report.ttft_guarantee
        );
    }

    #[test]
    fn partitioned_mode_runs_phases_concurrently() {
        let spec = gen_a();
        let trace = TraceGenerator::new(Scenario::Chatbot, 0.7)
            .generate(&DetRng::from_seed(7), SimDuration::from_secs(60));
        let mut engine =
            LlmEngine::new(EngineConfig::paper_default(Scenario::Chatbot), &spec, trace);
        let res = EngineResources {
            prefill: RegionResources::new(48, 2.5, GbPerSec(60.0)),
            decode: RegionResources::new(32, 3.1, GbPerSec(170.0)),
            mode: EngineMode::Partitioned,
        };
        let mut tokens = 0;
        for step in 1..=60 {
            tokens += engine
                .run_interval(SimTime::from_secs(step), &res)
                .decode_tokens;
        }
        assert!(tokens > 1000, "partitioned decode generated {tokens}");
        assert!(engine.slo_report().prefills > 20);
    }

    #[test]
    fn starved_decode_region_stalls_decode_only() {
        let spec = gen_a();
        let trace = TraceGenerator::new(Scenario::Chatbot, 0.7)
            .generate(&DetRng::from_seed(8), SimDuration::from_secs(30));
        let mut engine =
            LlmEngine::new(EngineConfig::paper_default(Scenario::Chatbot), &spec, trace);
        let res = EngineResources {
            prefill: RegionResources::new(96, 2.5, spec.mem_bw),
            decode: RegionResources::new(0, 3.1, spec.mem_bw),
            mode: EngineMode::Partitioned,
        };
        let mut stats = IntervalStats::default();
        for step in 1..=30 {
            let s = engine.run_interval(SimTime::from_secs(step), &res);
            stats.prefill_tokens += s.prefill_tokens;
            stats.decode_tokens += s.decode_tokens;
        }
        assert!(stats.prefill_tokens > 0);
        assert_eq!(stats.decode_tokens, 0);
    }

    #[test]
    fn throttled_bandwidth_raises_tpot_violations() {
        let spec = gen_a();
        let make = |bw: f64| {
            let trace = TraceGenerator::new(Scenario::Chatbot, 0.7)
                .generate(&DetRng::from_seed(9), SimDuration::from_secs(90));
            let mut engine =
                LlmEngine::new(EngineConfig::paper_default(Scenario::Chatbot), &spec, trace);
            let res = EngineResources {
                prefill: RegionResources::new(64, 2.5, GbPerSec(bw)),
                decode: RegionResources::new(32, 3.1, GbPerSec(bw)),
                mode: EngineMode::Partitioned,
            };
            for step in 1..=90 {
                let _ = engine.run_interval(SimTime::from_secs(step), &res);
            }
            engine.slo_report().tpot_guarantee
        };
        let full = make(233.8);
        let starved = make(90.0);
        assert!(
            starved < full - 0.2,
            "bandwidth starvation must hurt TPOT: full={full}, starved={starved}"
        );
    }

    #[test]
    fn interval_stats_report_busy_fractions() {
        let spec = gen_a();
        let trace = TraceGenerator::new(Scenario::Chatbot, 0.7)
            .generate(&DetRng::from_seed(10), SimDuration::from_secs(20));
        let mut engine =
            LlmEngine::new(EngineConfig::paper_default(Scenario::Chatbot), &spec, trace);
        let res = exclusive_resources(&spec);
        let mut any_busy = false;
        for step in 1..=20 {
            let s = engine.run_interval(SimTime::from_secs(step), &res);
            assert!(s.prefill_busy <= 1.0 && s.decode_busy <= 1.0);
            if s.decode_busy > 0.0 {
                any_busy = true;
            }
        }
        assert!(any_busy);
    }

    #[test]
    fn drained_after_trace_completes() {
        let spec = gen_a();
        let trace = TraceGenerator::new(Scenario::CodeCompletion, 0.5)
            .generate(&DetRng::from_seed(11), SimDuration::from_secs(10));
        let n = trace.len() as u64;
        let mut engine = LlmEngine::new(
            EngineConfig::paper_default(Scenario::CodeCompletion),
            &spec,
            trace,
        );
        let res = exclusive_resources(&spec);
        let mut t = 0;
        while !engine.drained() && t < 200 {
            t += 1;
            let _ = engine.run_interval(SimTime::from_secs(t), &res);
        }
        assert!(engine.drained(), "engine should drain");
        assert_eq!(engine.completed(), n);
    }

    #[test]
    fn worst_lag_reflects_decode_health() {
        let spec = gen_a();
        let trace = TraceGenerator::new(Scenario::Chatbot, 0.7)
            .generate(&DetRng::from_seed(12), SimDuration::from_secs(60));
        let mut engine =
            LlmEngine::new(EngineConfig::paper_default(Scenario::Chatbot), &spec, trace);
        // Healthy run: LAG should not be catastrophically negative.
        let res = exclusive_resources(&spec);
        for step in 1..=60 {
            let _ = engine.run_interval(SimTime::from_secs(step), &res);
        }
        let lag = engine.worst_lag_secs();
        assert!(
            lag > -10.0,
            "healthy serving should not fall far behind, lag={lag}"
        );
    }

    #[test]
    fn chunked_prefill_bounds_inter_token_stalls() {
        // Chunking cannot reduce total prefill work (per-request average
        // TPOT is unchanged), but it bounds the *longest* inter-token gap
        // to roughly one chunk instead of one whole prompt — the jitter a
        // user of a streaming chatbot actually notices.
        let spec = gen_a();
        let run = |chunk: Option<usize>| {
            let trace = TraceGenerator::new(Scenario::Summarization, 0.6)
                .generate(&DetRng::from_seed(23), SimDuration::from_secs(120));
            let mut cfg = EngineConfig::paper_default(Scenario::Summarization);
            cfg.prefill_chunk = chunk;
            let mut engine = LlmEngine::new(cfg, &spec, trace);
            let res = exclusive_resources(&spec);
            for step in 1..=120 {
                let _ = engine.run_interval(SimTime::from_secs(step), &res);
            }
            // Largest inter-token wall gap across requests.
            let mut last: std::collections::BTreeMap<crate::request::RequestId, SimTime> =
                std::collections::BTreeMap::new();
            let mut max_gap = 0.0f64;
            for t in engine.token_records() {
                if let Some(prev) = last.insert(t.id, t.emitted) {
                    max_gap = max_gap.max(t.emitted.saturating_since(prev).as_secs_f64());
                }
            }
            (max_gap, engine.slo_report().prefills)
        };
        let (whole_gap, whole_prefills) = run(None);
        let (chunked_gap, chunked_prefills) = run(Some(512));
        assert!(
            chunked_gap < whole_gap * 0.8,
            "chunked max stall {chunked_gap} must beat whole-prompt {whole_gap}"
        );
        assert!(
            chunked_prefills >= whole_prefills * 9 / 10,
            "work still completes"
        );
    }

    #[test]
    fn chunked_prefill_preserves_request_accounting() {
        let spec = gen_a();
        let trace = TraceGenerator::new(Scenario::Chatbot, 0.5)
            .generate(&DetRng::from_seed(24), SimDuration::from_secs(20));
        let n = trace.len() as u64;
        let mut cfg = EngineConfig::paper_default(Scenario::Chatbot);
        cfg.prefill_chunk = Some(256);
        let mut engine = LlmEngine::new(cfg, &spec, trace);
        let res = exclusive_resources(&spec);
        let mut t = 0;
        while !engine.drained() && t < 400 {
            t += 1;
            let _ = engine.run_interval(SimTime::from_secs(t), &res);
        }
        assert!(engine.drained());
        assert_eq!(engine.completed(), n);
        assert_eq!(engine.ttft_records().len() as u64, n);
    }

    #[test]
    fn kv_budget_caps_the_decode_batch() {
        let spec = gen_a();
        let model = ModelConfig::llama2_7b();
        let trace = TraceGenerator::new(Scenario::Chatbot, 2.0)
            .generate(&DetRng::from_seed(21), SimDuration::from_secs(30));
        // Budget for roughly two resident chatbot requests.
        let per_req =
            crate::kv::KvBudget::request_peak_bytes(&model, Precision::Bf16, 755 * 4, 200 * 4);
        let mut cfg = EngineConfig::paper_default(Scenario::Chatbot);
        cfg.kv_budget = Some(crate::kv::KvBudget::from_bytes(per_req * 2.0));
        let budget = cfg.kv_budget.unwrap();
        let mut engine = LlmEngine::new(cfg.clone(), &spec, trace.clone());
        let mut uncapped_cfg = cfg;
        uncapped_cfg.kv_budget = None;
        let mut uncapped = LlmEngine::new(uncapped_cfg, &spec, trace);
        let res = exclusive_resources(&spec);
        let (mut capped_peak, mut uncapped_peak) = (0, 0);
        for step in 1..=60 {
            let _ = engine.run_interval(SimTime::from_secs(step), &res);
            let _ = uncapped.run_interval(SimTime::from_secs(step), &res);
            capped_peak = capped_peak.max(engine.decode_batch());
            uncapped_peak = uncapped_peak.max(uncapped.decode_batch());
            assert!(
                engine.kv_reserved_bytes() <= budget.capacity_bytes() * (1.0 + 1e-9),
                "reserved KV {} exceeds budget {}",
                engine.kv_reserved_bytes(),
                budget.capacity_bytes()
            );
        }
        assert!(
            capped_peak < uncapped_peak,
            "tiny KV budget must cap the batch: capped peak {capped_peak}, uncapped {uncapped_peak}"
        );
        assert!(
            engine.completed() > 0,
            "capacity-bound serving still progresses"
        );
    }

    #[test]
    fn platform_kv_budget_never_binds_on_gen_a() {
        // 1 TB of DDR5 swallows any chatbot batch; behaviour must match the
        // unbudgeted engine exactly.
        let spec = gen_a();
        let trace = || {
            TraceGenerator::new(Scenario::Chatbot, 0.4)
                .generate(&DetRng::from_seed(22), SimDuration::from_secs(60))
        };
        let unbounded = {
            let mut e = LlmEngine::new(
                EngineConfig::paper_default(Scenario::Chatbot),
                &spec,
                trace(),
            );
            for step in 1..=60 {
                let _ = e.run_interval(SimTime::from_secs(step), &exclusive_resources(&spec));
            }
            e.slo_report()
        };
        let budgeted = {
            let cfg = EngineConfig::paper_default(Scenario::Chatbot).with_platform_kv_budget(&spec);
            let mut e = LlmEngine::new(cfg, &spec, trace());
            for step in 1..=60 {
                let _ = e.run_interval(SimTime::from_secs(step), &exclusive_resources(&spec));
            }
            e.slo_report()
        };
        assert_eq!(unbounded, budgeted);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let spec = gen_a();
        let trace = vec![
            Request::new(0, SimTime::from_secs(5), 10, 10),
            Request::new(1, SimTime::from_secs(1), 10, 10),
        ];
        let _ = LlmEngine::new(EngineConfig::paper_default(Scenario::Chatbot), &spec, trace);
    }
}
