//! KV-cache capacity accounting.
//!
//! Serving memory holds the model weights plus one KV entry per token of
//! every active request. On capacity-constrained platforms — GenB carries
//! only 128 GB of HBM (Table I) — the cache budget caps the effective
//! decode batch: a prefilled request may have to wait for admission until
//! resident requests retire. The engine enforces the budget at admission
//! time, mirroring vLLM/xft-style block managers at the granularity this
//! simulation needs.

use serde::{Deserialize, Serialize};

use aum_au::unit::Precision;
use aum_platform::spec::PlatformSpec;

use crate::config::ModelConfig;

/// Fraction of platform memory available to serving after OS/runtime
/// overheads.
const USABLE_MEMORY_FRAC: f64 = 0.9;

/// A KV-cache capacity budget in bytes.
///
/// # Examples
///
/// ```
/// use aum_au::unit::Precision;
/// use aum_llm::config::ModelConfig;
/// use aum_llm::kv::KvBudget;
/// use aum_platform::spec::PlatformSpec;
///
/// let model = ModelConfig::llama2_7b();
/// let b = KvBudget::for_platform(&PlatformSpec::gen_b(), &model, Precision::Bf16);
/// // 128 GB HBM minus ≈13 GB of weights leaves roughly 100 GB of cache.
/// assert!(b.capacity_bytes() > 50e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvBudget {
    capacity_bytes: f64,
}

impl KvBudget {
    /// A budget of exactly `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not positive and finite.
    #[must_use]
    pub fn from_bytes(bytes: f64) -> Self {
        assert!(
            bytes.is_finite() && bytes > 0.0,
            "budget must be positive, got {bytes}"
        );
        KvBudget {
            capacity_bytes: bytes,
        }
    }

    /// The budget a platform leaves for KV after resident weights and a
    /// 10% runtime overhead.
    ///
    /// # Panics
    ///
    /// Panics if the model's weights do not even fit the platform.
    #[must_use]
    pub fn for_platform(spec: &PlatformSpec, model: &ModelConfig, prec: Precision) -> Self {
        let memory = spec.memory_gb as f64 * 1e9 * USABLE_MEMORY_FRAC;
        let weights = model.weight_bytes(prec);
        assert!(
            memory > weights,
            "{} ({} GB) cannot hold {}'s weights",
            spec.name,
            spec.memory_gb,
            model.name
        );
        KvBudget {
            capacity_bytes: memory - weights,
        }
    }

    /// Budget capacity, bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> f64 {
        self.capacity_bytes
    }

    /// Whether a cache occupying `used` bytes can admit a request that will
    /// peak at `peak_extra` additional bytes.
    #[must_use]
    pub fn admits(&self, used: f64, peak_extra: f64) -> bool {
        used + peak_extra <= self.capacity_bytes
    }

    /// Peak KV bytes of one request: its full context (prompt + all output
    /// tokens) at the model's per-token cost.
    #[must_use]
    pub fn request_peak_bytes(
        model: &ModelConfig,
        prec: Precision,
        input_len: usize,
        output_len: usize,
    ) -> f64 {
        (input_len + output_len) as f64 * model.kv_bytes_per_token(prec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_b_budget_is_memory_minus_weights() {
        let model = ModelConfig::llama2_7b();
        let b = KvBudget::for_platform(&PlatformSpec::gen_b(), &model, Precision::Bf16);
        let expect = 128e9 * 0.9 - model.weight_bytes(Precision::Bf16);
        assert!((b.capacity_bytes() - expect).abs() < 1.0);
    }

    #[test]
    fn admission_is_exact_at_the_boundary() {
        let b = KvBudget::from_bytes(1000.0);
        assert!(b.admits(400.0, 600.0));
        assert!(!b.admits(400.0, 601.0));
    }

    #[test]
    fn request_peak_matches_kv_math() {
        let model = ModelConfig::llama2_7b();
        let peak = KvBudget::request_peak_bytes(&model, Precision::Bf16, 755, 200);
        // 955 tokens × 0.5 MiB/token ≈ 500 MB for llama2-7b.
        assert!((4.5e8..5.5e8).contains(&peak), "got {peak}");
    }

    #[test]
    fn big_models_do_not_fit_small_memory() {
        // Qwen3-30B at BF16 ≈ 61 GB of weights — fits GenB's 128 GB, so
        // assert the budget exists but is much tighter than llama2's.
        let qwen = ModelConfig::qwen3_30b_a3b();
        let llama = ModelConfig::llama2_7b();
        let spec = PlatformSpec::gen_b();
        let q = KvBudget::for_platform(&spec, &qwen, Precision::Bf16);
        let l = KvBudget::for_platform(&spec, &llama, Precision::Bf16);
        assert!(q.capacity_bytes() < l.capacity_bytes() * 0.6);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = KvBudget::from_bytes(0.0);
    }
}
