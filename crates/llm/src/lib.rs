//! # aum-llm — LLM serving substrate
//!
//! Simulates xFasterTransformer-style CPU LLM serving, the AU application
//! of the AUM paper:
//!
//! - [`config`]: the six Table II model architectures;
//! - [`ops`]: per-iteration operator graphs (the paper's §IV-A3 GEMM
//!   shapes fall out of these);
//! - [`cost`]: iteration cost evaluation over the roofline model + PMU;
//! - [`request`] / [`traces`]: Table IV scenarios (cb/cc/sm) with seeded
//!   trace generation;
//! - [`batching`]: FCFS prefill queue + continuous-batching decode pool
//!   with the paper's LAG bookkeeping;
//! - [`kv`]: KV-cache capacity budgets (admission control on
//!   memory-constrained platforms like GenB);
//! - [`slo`]: TTFT/TPOT guarantee accounting (Fig 17);
//! - [`engine`]: the serving engine, time-multiplexed (ALL-AU) or
//!   partitioned across AUM's core regions.
//!
//! ## Example
//!
//! ```
//! use aum_llm::engine::{EngineConfig, EngineMode, EngineResources, LlmEngine, RegionResources};
//! use aum_llm::traces::{Scenario, TraceGenerator};
//! use aum_platform::spec::PlatformSpec;
//! use aum_sim::rng::DetRng;
//! use aum_sim::time::{SimDuration, SimTime};
//!
//! let spec = PlatformSpec::gen_a();
//! let trace = TraceGenerator::new(Scenario::Chatbot, 0.5)
//!     .generate(&DetRng::from_seed(1), SimDuration::from_secs(10));
//! let mut engine = LlmEngine::new(EngineConfig::paper_default(Scenario::Chatbot), &spec, trace);
//! let res = EngineResources {
//!     prefill: RegionResources::new(96, 2.5, spec.mem_bw),
//!     decode: RegionResources::new(96, 3.1, spec.mem_bw),
//!     mode: EngineMode::TimeMultiplexed,
//! };
//! let stats = engine.run_interval(SimTime::from_secs(10), &res);
//! assert!(stats.prefill_tokens > 0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batching;
pub mod config;
pub mod cost;
pub mod engine;
pub mod kv;
pub mod ops;
pub mod request;
pub mod slo;
pub mod traces;

pub use config::ModelConfig;
pub use engine::{EngineConfig, EngineMode, EngineResources, LlmEngine, RegionResources};
pub use ops::Phase;
pub use slo::{SloReport, SloSpec};
pub use traces::Scenario;
