//! Per-iteration operator graphs.
//!
//! One serving iteration of a transformer decomposes into weight GEMMs
//! (QKV/out/FFN projections, LM head), attention kernels over the KV cache,
//! and element-wise glue (norms, RoPE, softmax, residuals). The operator
//! dimensions — and through them the AU usage pattern — differ radically
//! between phases (§IV-A3): prefill projections have `m = batch×len`
//! (compute-bound, AMX), decode projections have `m = batch`
//! (bandwidth-bound), and attention kernels are vector-sized (AVX).

use serde::{Deserialize, Serialize};

use aum_au::gemm::GemmShape;
use aum_au::unit::AuKind;

use crate::config::ModelConfig;

/// LLM serving phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Prompt processing: all input tokens at once, produces the first token.
    Prefill,
    /// Auto-regressive generation: one token per active request per step.
    Decode,
}

impl core::fmt::Display for Phase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Phase::Prefill => write!(f, "prefill"),
            Phase::Decode => write!(f, "decode"),
        }
    }
}

/// Functional class of an operator (used for PMU/top-down synthesis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Weight-matrix GEMM (streams model weights).
    Projection,
    /// Attention score/context kernel (streams the KV cache).
    Attention,
    /// Vocabulary projection.
    LmHead,
    /// Element-wise glue: norms, activations, RoPE, residuals, sampling.
    Glue,
}

/// One operator of an iteration, possibly repeated (per layer / per head).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterOp {
    /// Short label for traces and tests.
    pub label: &'static str,
    /// GEMM-equivalent shape of one instance.
    pub shape: GemmShape,
    /// Number of identical instances in the iteration.
    pub repeat: usize,
    /// Functional class.
    pub class: OpClass,
    /// Forced unit, or `None` to let the cost model pick AMX vs AVX.
    pub unit: Option<AuKind>,
}

impl IterOp {
    /// Total floating-point operations across repeats.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.shape.flops() * self.repeat as f64
    }
}

/// Effective FFN width: `2×ffn` for fused gate+up in dense models (this is
/// where the paper's `N = 22016 = 2×11008` GEMMs come from), or the active
/// experts' combined width for MoE.
fn ffn_up_width(model: &ModelConfig) -> usize {
    match model.moe {
        None => 2 * model.ffn_dim,
        Some(m) => 2 * m.active_experts * m.expert_ffn_dim,
    }
}

fn ffn_down_width(model: &ModelConfig) -> usize {
    match model.moe {
        None => model.ffn_dim,
        Some(m) => m.active_experts * m.expert_ffn_dim,
    }
}

/// Builds the operator list for one iteration.
///
/// For prefill, `tokens` is `batch × prompt_len` and `context` the prompt
/// length; for decode, `tokens` is the batch size and `context` the average
/// context length of the active requests.
///
/// # Panics
///
/// Panics if `tokens` or `context` is zero.
///
/// # Examples
///
/// ```
/// use aum_llm::config::ModelConfig;
/// use aum_llm::ops::{iteration_ops, Phase};
///
/// let ops = iteration_ops(&ModelConfig::llama2_7b(), Phase::Decode, 16, 755);
/// let ffn = ops.iter().find(|o| o.label == "ffn_gate_up").unwrap();
/// assert_eq!(ffn.shape.n, 22016); // the paper's decode GEMM width
/// assert_eq!(ffn.shape.m, 16);
/// ```
#[must_use]
pub fn iteration_ops(
    model: &ModelConfig,
    phase: Phase,
    tokens: usize,
    context: usize,
) -> Vec<IterOp> {
    assert!(tokens > 0, "iteration needs at least one token");
    assert!(context > 0, "context length must be positive");
    let d = model.d_model;
    let hd = model.head_dim();
    let layers = model.layers;
    let m = tokens;
    // Attention kernel row count: in prefill each prompt's rows attend
    // over the context — for a *chunked* prefill step (`m < context`) only
    // the chunk's rows attend over the accumulated prefix, not the full
    // square; in decode each token attends from a single new row.
    let (attn_m, attn_batches) = match phase {
        Phase::Prefill => {
            let prompts = (m / context).max(1);
            let rows = (m / prompts).clamp(1, context);
            (rows, prompts * model.n_heads * layers)
        }
        Phase::Decode => (1, m * model.n_heads * layers),
    };
    // §IV-A1: decode's vector-size attention runs on AVX ("the avx_insts
    // metric of the decode phase is higher"); prefill's large score
    // matrices are free to use AMX.
    let attn_unit = match phase {
        Phase::Prefill => None,
        Phase::Decode => Some(AuKind::Avx512),
    };
    let lm_rows = match phase {
        Phase::Prefill => (m / context).max(1), // only last position per prompt
        Phase::Decode => m,
    };
    vec![
        IterOp {
            label: "qkv_proj",
            shape: GemmShape::new(m, d, d + model.kv_dim()),
            repeat: layers,
            class: OpClass::Projection,
            unit: None,
        },
        IterOp {
            label: "attn_score",
            shape: GemmShape::new(attn_m, hd, context),
            repeat: attn_batches,
            class: OpClass::Attention,
            unit: attn_unit,
        },
        IterOp {
            label: "attn_context",
            shape: GemmShape::new(attn_m, context, hd),
            repeat: attn_batches,
            class: OpClass::Attention,
            unit: attn_unit,
        },
        IterOp {
            label: "attn_out",
            shape: GemmShape::new(m, d, d),
            repeat: layers,
            class: OpClass::Projection,
            unit: None,
        },
        IterOp {
            label: "ffn_gate_up",
            shape: GemmShape::new(m, d, ffn_up_width(model)),
            repeat: layers,
            class: OpClass::Projection,
            unit: None,
        },
        IterOp {
            label: "ffn_down",
            shape: GemmShape::new(m, ffn_down_width(model), d),
            repeat: layers,
            class: OpClass::Projection,
            unit: None,
        },
        IterOp {
            label: "lm_head",
            shape: GemmShape::new(lm_rows, d, model.vocab),
            repeat: 1,
            class: OpClass::LmHead,
            unit: None,
        },
        IterOp {
            label: "glue",
            shape: GemmShape::new(m, 10, d),
            repeat: layers,
            class: OpClass::Glue,
            unit: Some(AuKind::Avx512),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aum_au::unit::Precision;

    #[test]
    fn decode_ffn_matches_paper_shape() {
        // §IV-A3: most decode GEMMs are 16×4096×22016.
        let ops = iteration_ops(&ModelConfig::llama2_7b(), Phase::Decode, 16, 855);
        let ffn = ops
            .iter()
            .find(|o| o.label == "ffn_gate_up")
            .expect("ffn present");
        assert_eq!(ffn.shape, GemmShape::new(16, 4096, 22016));
    }

    #[test]
    fn prefill_ffn_matches_paper_shape() {
        // §IV-A3: most prefill GEMMs are 8192×4096×22016 (bs16 × len 512).
        let ops = iteration_ops(&ModelConfig::llama2_7b(), Phase::Prefill, 16 * 512, 512);
        let ffn = ops
            .iter()
            .find(|o| o.label == "ffn_gate_up")
            .expect("ffn present");
        assert_eq!(ffn.shape, GemmShape::new(8192, 4096, 22016));
    }

    #[test]
    fn prefill_flops_scale_with_params() {
        // Forward pass ≈ 2 × params × tokens.
        let model = ModelConfig::llama2_7b();
        let tokens = 755;
        let ops = iteration_ops(&model, Phase::Prefill, tokens, tokens);
        let flops: f64 = ops.iter().map(IterOp::total_flops).sum();
        let expect = 2.0 * model.param_count() * tokens as f64;
        let ratio = flops / expect;
        assert!((0.7..=1.3).contains(&ratio), "flops/2NP ratio {ratio}");
    }

    #[test]
    fn decode_projection_bytes_stream_the_weights() {
        let model = ModelConfig::llama2_7b();
        let ops = iteration_ops(&model, Phase::Decode, 16, 855);
        let proj_bytes: f64 = ops
            .iter()
            .filter(|o| matches!(o.class, OpClass::Projection | OpClass::LmHead))
            .map(|o| o.shape.bytes(Precision::Bf16) * o.repeat as f64)
            .sum();
        let weights = model.weight_bytes(Precision::Bf16);
        let ratio = proj_bytes / weights;
        assert!(
            (0.8..=1.3).contains(&ratio),
            "projection traffic ≈ weights, ratio {ratio}"
        );
    }

    #[test]
    fn decode_attention_bytes_stream_the_kv_cache() {
        let model = ModelConfig::llama2_7b();
        let batch = 16;
        let ctx = 855;
        let ops = iteration_ops(&model, Phase::Decode, batch, ctx);
        let attn_bytes: f64 = ops
            .iter()
            .filter(|o| o.class == OpClass::Attention)
            .map(|o| o.shape.bytes(Precision::Bf16) * o.repeat as f64)
            .sum();
        let kv = model.kv_bytes_per_token(Precision::Bf16) * (batch * ctx) as f64;
        let ratio = attn_bytes / kv;
        assert!(
            (0.8..=1.4).contains(&ratio),
            "attention traffic ≈ KV cache, ratio {ratio}"
        );
    }

    #[test]
    fn attention_is_avx_in_decode_and_free_in_prefill() {
        let decode = iteration_ops(&ModelConfig::llama2_7b(), Phase::Decode, 16, 855);
        for op in &decode {
            match op.class {
                OpClass::Attention | OpClass::Glue => assert_eq!(op.unit, Some(AuKind::Avx512)),
                _ => assert_eq!(op.unit, None),
            }
        }
        let prefill = iteration_ops(&ModelConfig::llama2_7b(), Phase::Prefill, 8192, 512);
        for op in &prefill {
            match op.class {
                OpClass::Glue => assert_eq!(op.unit, Some(AuKind::Avx512)),
                _ => assert_eq!(op.unit, None),
            }
        }
    }

    #[test]
    fn moe_uses_active_expert_width() {
        let q = ModelConfig::qwen3_30b_a3b();
        let ops = iteration_ops(&q, Phase::Decode, 16, 500);
        let ffn = ops.iter().find(|o| o.label == "ffn_gate_up").expect("ffn");
        assert_eq!(ffn.shape.n, 2 * 8 * 768);
    }

    #[test]
    fn prefill_lm_head_only_processes_last_positions() {
        let ops = iteration_ops(&ModelConfig::llama2_7b(), Phase::Prefill, 2 * 755, 755);
        let head = ops.iter().find(|o| o.label == "lm_head").expect("lm head");
        assert_eq!(head.shape.m, 2);
    }

    #[test]
    fn chunked_prefill_attention_covers_chunk_rows_only() {
        // A 512-token chunk at prefix 7000 attends 512×7000, not 7000².
        let model = ModelConfig::llama2_7b();
        let ops = iteration_ops(&model, Phase::Prefill, 512, 7000);
        let score = ops.iter().find(|o| o.label == "attn_score").expect("score");
        assert_eq!(score.shape.m, 512);
        assert_eq!(score.shape.n, 7000);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_tokens_rejected() {
        let _ = iteration_ops(&ModelConfig::llama2_7b(), Phase::Decode, 0, 100);
    }
}
