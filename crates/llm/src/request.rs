//! Serving requests and per-token latency records.

use serde::{Deserialize, Serialize};

use aum_sim::time::{SimDuration, SimTime};

/// Unique id of a serving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The deterministic id of this request's lifecycle span (the request
    /// id is the span-id payload, so trace consumers can go from a
    /// `RequestFinished` event to the matching span without a join table).
    #[must_use]
    pub fn lifecycle_span(self) -> aum_sim::span::SpanId {
        aum_sim::span::SpanId::derive(aum_sim::span::SpanKind::RequestLifecycle, self.0)
    }
}

/// One inference request from the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (trace order).
    pub id: RequestId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub input_len: usize,
    /// Output length in tokens (including the first token).
    pub output_len: usize,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if either length is zero.
    #[must_use]
    pub fn new(id: u64, arrival: SimTime, input_len: usize, output_len: usize) -> Self {
        assert!(input_len > 0, "prompt must be non-empty");
        assert!(output_len > 0, "output must be non-empty");
        Request {
            id: RequestId(id),
            arrival,
            input_len,
            output_len,
        }
    }
}

/// Time-to-first-token outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtftRecord {
    /// The request.
    pub id: RequestId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Measured TTFT (queue wait + prefill execution).
    pub ttft: SimDuration,
}

/// Latency record of one generated (decode) token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenRecord {
    /// Owning request.
    pub id: RequestId,
    /// Time the token was emitted.
    pub emitted: SimTime,
    /// Execution time of the token (`e_token` in the paper's LAG analysis).
    pub exec: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_carries_fields() {
        let r = Request::new(3, SimTime::from_secs(1), 755, 200);
        assert_eq!(r.id, RequestId(3));
        assert_eq!(r.input_len, 755);
        assert_eq!(r.output_len, 200);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_prompt_rejected() {
        let _ = Request::new(0, SimTime::ZERO, 0, 10);
    }

    #[test]
    fn ids_order() {
        assert!(RequestId(1) < RequestId(2));
    }
}
