//! Service-level objectives and guarantee accounting.
//!
//! The paper measures TTFT (time-to-first-token) for prefill and TPOT
//! (time-per-output-token) for decode (§III-A2), and reports *SLO guarantee
//! ratios* — the fraction of requests/tokens meeting their deadline
//! (Fig 17) — plus throughput "with performance guarantees".
//!
//! Latency percentiles come from mergeable log-linear histograms
//! ([`aum_sim::hist::LogHistogram`], ≤ 1/128 relative bucket width) rather
//! than exact sample vectors, so per-cell reports aggregate across the
//! parallel sweep executor deterministically and without shipping raw
//! samples. Guarantee *ratios* stay exact — deadline hits are counted
//! against the raw records, never estimated from buckets.

use serde::{Deserialize, Serialize};

use aum_sim::hist::LogHistogram;
use aum_sim::telemetry::SloMetric;
use aum_sim::time::SimDuration;

use crate::request::{TokenRecord, TtftRecord};

/// The two serving deadlines of a scenario (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloSpec {
    /// TTFT deadline (`d_TTFT`).
    pub ttft: SimDuration,
    /// TPOT deadline (`d_TPOT`).
    pub tpot: SimDuration,
}

impl SloSpec {
    /// Creates a spec.
    #[must_use]
    pub const fn new(ttft: SimDuration, tpot: SimDuration) -> Self {
        SloSpec { ttft, tpot }
    }

    /// Per-request SLO trigger hook: which deadlines a finished request
    /// missed, as `(metric, observed_secs, budget_secs)` — at most one
    /// TTFT and one TPOT entry. The deadline boundary counts as met,
    /// mirroring [`SloReport::from_records`]. The engine emits an
    /// [`aum_sim::telemetry::Event::SloBreach`] per entry, which is what
    /// the flight recorder's burn tracker and the breach-blame report see.
    #[must_use]
    pub fn request_breaches(
        &self,
        ttft_secs: f64,
        generated: usize,
        mean_tpot_secs: f64,
    ) -> [Option<(SloMetric, f64, f64)>; 2] {
        let ttft_budget = self.ttft.as_secs_f64();
        let tpot_budget = self.tpot.as_secs_f64();
        [
            (ttft_secs > ttft_budget).then_some((SloMetric::Ttft, ttft_secs, ttft_budget)),
            (generated > 0 && mean_tpot_secs > tpot_budget).then_some((
                SloMetric::Tpot,
                mean_tpot_secs,
                tpot_budget,
            )),
        ]
    }
}

/// Aggregated SLO outcome of a serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Fraction of requests whose TTFT met `d_TTFT`.
    pub ttft_guarantee: f64,
    /// Fraction of requests whose *average* token time met `d_TPOT` — TPOT
    /// is a per-request average (§III-A2), which is precisely the slack the
    /// LAG analysis exploits: individual tokens may run late as long as the
    /// request's schedule catches up.
    pub tpot_guarantee: f64,
    /// Median TTFT in seconds.
    pub ttft_p50: f64,
    /// 90th-percentile TTFT in seconds.
    pub ttft_p90: f64,
    /// Median token execution time in seconds.
    pub tpot_p50: f64,
    /// 90th-percentile token execution time in seconds.
    pub tpot_p90: f64,
    /// Median of per-request *average* token times, seconds — the
    /// distribution the TPOT SLO is actually judged on.
    pub tpot_req_p50: f64,
    /// 90th percentile of per-request average token times, seconds.
    pub tpot_req_p90: f64,
    /// 99th-percentile TTFT in seconds.
    pub ttft_p99: f64,
    /// 99th percentile of per-request average token times, seconds.
    pub tpot_req_p99: f64,
    /// Requests with a completed prefill.
    pub prefills: usize,
    /// Decode tokens generated.
    pub tokens: usize,
    /// Full TTFT distribution (seconds).
    pub ttft_hist: LogHistogram,
    /// Full per-token execution-time distribution (seconds).
    pub tpot_hist: LogHistogram,
    /// Full per-request average-token-time distribution (seconds).
    pub tpot_req_hist: LogHistogram,
}

impl SloReport {
    /// Builds a report from raw records.
    #[must_use]
    pub fn from_records(slo: SloSpec, ttfts: &[TtftRecord], tokens: &[TokenRecord]) -> Self {
        let ttft_hist: LogHistogram = ttfts.iter().map(|r| r.ttft.as_secs_f64()).collect();
        let tpot_hist: LogHistogram = tokens.iter().map(|r| r.exec.as_secs_f64()).collect();
        let ttft_ok = if ttfts.is_empty() {
            1.0
        } else {
            ttfts.iter().filter(|r| r.ttft <= slo.ttft).count() as f64 / ttfts.len() as f64
        };
        // Per-request average token times — the quantity the TPOT SLO
        // constrains, and the slack the LAG analysis exploits.
        let mut per_request: std::collections::BTreeMap<crate::request::RequestId, (f64, u32)> =
            std::collections::BTreeMap::new();
        for t in tokens {
            let e = per_request.entry(t.id).or_insert((0.0, 0));
            e.0 += t.exec.as_secs_f64();
            e.1 += 1;
        }
        let tpot_req_hist: LogHistogram = per_request
            .values()
            .map(|(sum, n)| sum / f64::from(*n))
            .collect();
        let tpot_ok = if per_request.is_empty() {
            1.0
        } else {
            let met = per_request
                .values()
                .filter(|(sum, n)| sum / f64::from(*n) <= slo.tpot.as_secs_f64())
                .count();
            met as f64 / per_request.len() as f64
        };
        SloReport {
            ttft_guarantee: ttft_ok,
            tpot_guarantee: tpot_ok,
            ttft_p50: ttft_hist.quantile(0.5),
            ttft_p90: ttft_hist.quantile(0.9),
            tpot_p50: tpot_hist.quantile(0.5),
            tpot_p90: tpot_hist.quantile(0.9),
            tpot_req_p50: tpot_req_hist.quantile(0.5),
            tpot_req_p90: tpot_req_hist.quantile(0.9),
            ttft_p99: ttft_hist.quantile(0.99),
            tpot_req_p99: tpot_req_hist.quantile(0.99),
            prefills: ttfts.len(),
            tokens: tokens.len(),
            ttft_hist,
            tpot_hist,
            tpot_req_hist,
        }
    }

    /// Combined violation rate (1 − mean of the two guarantees).
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        1.0 - (self.ttft_guarantee + self.tpot_guarantee) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use aum_sim::time::SimTime;

    fn slo() -> SloSpec {
        SloSpec::new(SimDuration::from_millis(250), SimDuration::from_millis(100))
    }

    fn ttft(id: u64, ms: u64) -> TtftRecord {
        TtftRecord {
            id: RequestId(id),
            arrival: SimTime::ZERO,
            ttft: SimDuration::from_millis(ms),
        }
    }

    fn token(id: u64, ms: u64) -> TokenRecord {
        TokenRecord {
            id: RequestId(id),
            emitted: SimTime::ZERO,
            exec: SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn guarantee_ratios_count_deadline_hits() {
        let r = SloReport::from_records(
            slo(),
            &[ttft(0, 100), ttft(1, 200), ttft(2, 300), ttft(3, 400)],
            // Request 0 averages exactly 100 ms (meets); request 1 averages
            // 150 ms (violates) even though one of its tokens was fast.
            &[token(0, 50), token(0, 150), token(1, 50), token(1, 250)],
        );
        assert!((r.ttft_guarantee - 0.5).abs() < 1e-12);
        assert!((r.tpot_guarantee - 0.5).abs() < 1e-12);
        assert_eq!(r.prefills, 4);
        assert_eq!(r.tokens, 4);
    }

    #[test]
    fn empty_records_are_vacuously_guaranteed() {
        let r = SloReport::from_records(slo(), &[], &[]);
        assert_eq!(r.ttft_guarantee, 1.0);
        assert_eq!(r.tpot_guarantee, 1.0);
        assert_eq!(r.violation_rate(), 0.0);
    }

    #[test]
    fn percentiles_come_from_samples() {
        let records: Vec<TtftRecord> = (1..=100).map(|i| ttft(i, i * 10)).collect();
        let r = SloReport::from_records(slo(), &records, &[]);
        assert!((r.ttft_p50 - 0.505).abs() < 0.01, "p50 {}", r.ttft_p50);
        assert!((r.ttft_p90 - 0.901).abs() < 0.01, "p90 {}", r.ttft_p90);
    }

    #[test]
    fn hist_percentiles_match_exact_quantiles_within_bucket_width() {
        use aum_sim::stats::Samples;
        // Equivalence gate for the histogram-backed report: against the
        // exact order statistic, the log-linear estimate may deviate by at
        // most one bucket's relative width (1/128).
        let records: Vec<TtftRecord> = (1..=500).map(|i| ttft(i, 3 + i * 7)).collect();
        let exact: Samples = records.iter().map(|r| r.ttft.as_secs_f64()).collect();
        let r = SloReport::from_records(slo(), &records, &[]);
        let tol = 1.0 / 128.0;
        for (est, q) in [(r.ttft_p50, 0.5), (r.ttft_p90, 0.9), (r.ttft_p99, 0.99)] {
            let truth = exact.quantile(q);
            assert!(
                (est - truth).abs() <= truth * tol + 1e-12,
                "q{q}: hist {est} vs exact {truth}"
            );
        }
        // The report carries the full distribution for downstream merge.
        assert_eq!(r.ttft_hist.count(), 500);
        assert!(r.tpot_req_hist.is_empty());
    }

    #[test]
    fn request_breaches_flags_each_missed_deadline_once() {
        let s = slo(); // 250 ms TTFT, 100 ms TPOT
        let none = s.request_breaches(0.2, 10, 0.05);
        assert_eq!(none, [None, None]);
        let both = s.request_breaches(0.3, 10, 0.15);
        assert_eq!(both[0], Some((SloMetric::Ttft, 0.3, 0.25)));
        assert_eq!(both[1], Some((SloMetric::Tpot, 0.15, 0.1)));
        // Boundary counts as met; prefill-only requests never breach TPOT.
        assert_eq!(s.request_breaches(0.25, 0, 9.9), [None, None]);
    }

    #[test]
    fn violation_rate_blends_both() {
        let r = SloReport::from_records(slo(), &[ttft(0, 300)], &[token(0, 50)]);
        assert!((r.violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deadline_boundary_counts_as_met() {
        let r = SloReport::from_records(slo(), &[ttft(0, 250)], &[token(0, 100)]);
        assert_eq!(r.ttft_guarantee, 1.0);
        assert_eq!(r.tpot_guarantee, 1.0);
    }
}
