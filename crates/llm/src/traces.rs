//! Workload scenarios and request-trace generation.
//!
//! Table IV of the paper defines three AU usage scenarios with their
//! datasets, SLOs and average lengths:
//!
//! | App | Dataset    | d_TTFT | d_TPOT | input | output |
//! |-----|------------|--------|--------|-------|--------|
//! | cb  | ShareGPT   | 250 ms | 100 ms | 755   | 200    |
//! | cc  | HumanEval  | 75 ms  | 150 ms | 171   | 98     |
//! | sm  | LongBench  | 1.5 s  | 100 ms | 1738  | 91     |
//!
//! We do not ship the proprietary traces; instead a seeded generator draws
//! Poisson arrivals and log-normal lengths matching the table's means
//! (coefficient of variation 0.5, clamped to sane ranges). AUM consumes
//! only arrival/length statistics and SLOs, so this preserves the relevant
//! behaviour (DESIGN.md substitution table).

use serde::{Deserialize, Serialize};

use aum_sim::rng::DetRng;
use aum_sim::time::{SimDuration, SimTime};

use crate::request::Request;
use crate::slo::SloSpec;

/// The three evaluated AU usage scenarios (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// ChatGPT-like chatbot on ShareGPT.
    Chatbot,
    /// Cursor-like code completion on HumanEval.
    CodeCompletion,
    /// Summarization on LongBench.
    Summarization,
}

impl Scenario {
    /// All scenarios in the paper's order.
    pub const ALL: [Scenario; 3] = [
        Scenario::Chatbot,
        Scenario::CodeCompletion,
        Scenario::Summarization,
    ];

    /// Paper's short code (`cb`/`cc`/`sm`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Scenario::Chatbot => "cb",
            Scenario::CodeCompletion => "cc",
            Scenario::Summarization => "sm",
        }
    }

    /// Source dataset name.
    #[must_use]
    pub fn dataset(self) -> &'static str {
        match self {
            Scenario::Chatbot => "ShareGPT",
            Scenario::CodeCompletion => "HumanEval",
            Scenario::Summarization => "LongBench",
        }
    }

    /// Table IV SLOs.
    #[must_use]
    pub fn slo(self) -> SloSpec {
        match self {
            Scenario::Chatbot => {
                SloSpec::new(SimDuration::from_millis(250), SimDuration::from_millis(100))
            }
            Scenario::CodeCompletion => {
                SloSpec::new(SimDuration::from_millis(75), SimDuration::from_millis(150))
            }
            Scenario::Summarization => SloSpec::new(
                SimDuration::from_millis(1500),
                SimDuration::from_millis(100),
            ),
        }
    }

    /// Table IV mean input length.
    #[must_use]
    pub fn mean_input(self) -> usize {
        match self {
            Scenario::Chatbot => 755,
            Scenario::CodeCompletion => 171,
            Scenario::Summarization => 1738,
        }
    }

    /// Table IV mean output length.
    #[must_use]
    pub fn mean_output(self) -> usize {
        match self {
            Scenario::Chatbot => 200,
            Scenario::CodeCompletion => 98,
            Scenario::Summarization => 91,
        }
    }

    /// Default request rate (req/s) used by the evaluation harness: chosen
    /// so exclusive llama2-7b serving on GenA runs at ≈75-80% of its decode
    /// capacity, matching the "serving under load with slack" regime the
    /// paper evaluates.
    #[must_use]
    pub fn default_rate(self) -> f64 {
        match self {
            Scenario::Chatbot => 0.4,
            Scenario::CodeCompletion => 1.6,
            Scenario::Summarization => 0.6,
        }
    }
}

impl core::fmt::Display for Scenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Coefficient of variation of the length distributions.
const LENGTH_CV: f64 = 0.5;

/// Time profile of the offered request rate. User-facing LLM serving has
/// "inherently variable" arrival rates (§IV-A3); the paper's frameworks
/// absorb them through continuous batching, and AUM adapts its
/// configurations at runtime. The diurnal profile exercises exactly that
/// adaptation path.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RateProfile {
    /// Constant offered rate.
    #[default]
    Constant,
    /// Sinusoidal swing around the base rate: `rate·(1 + amplitude·sin)`.
    Diurnal {
        /// Relative swing in `[0, 1)`.
        amplitude: f64,
        /// Period of one swing, seconds.
        period_secs: f64,
    },
    /// A step change: `rate` until `at_secs`, then `rate × factor`.
    Step {
        /// When the step happens, seconds.
        at_secs: f64,
        /// Rate multiplier after the step.
        factor: f64,
    },
}

impl RateProfile {
    /// Instantaneous rate multiplier at time `t` (always positive).
    #[must_use]
    pub fn multiplier(&self, t_secs: f64) -> f64 {
        match *self {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal {
                amplitude,
                period_secs,
            } => {
                let a = amplitude.clamp(0.0, 0.95);
                1.0 + a * (std::f64::consts::TAU * t_secs / period_secs.max(1e-9)).sin()
            }
            RateProfile::Step { at_secs, factor } => {
                if t_secs < at_secs {
                    1.0
                } else {
                    factor.max(1e-3)
                }
            }
        }
    }
}

/// Seeded request-trace generator for a scenario.
///
/// # Examples
///
/// ```
/// use aum_llm::traces::{Scenario, TraceGenerator};
/// use aum_sim::rng::DetRng;
/// use aum_sim::time::SimDuration;
///
/// let rng = DetRng::from_seed(7);
/// let trace = TraceGenerator::new(Scenario::Chatbot, 1.0)
///     .generate(&rng, SimDuration::from_secs(60));
/// assert!(!trace.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceGenerator {
    scenario: Scenario,
    rate_rps: f64,
    profile: RateProfile,
}

impl TraceGenerator {
    /// Creates a generator at the given constant request rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    #[must_use]
    pub fn new(scenario: Scenario, rate_rps: f64) -> Self {
        assert!(
            rate_rps.is_finite() && rate_rps > 0.0,
            "rate must be positive, got {rate_rps}"
        );
        TraceGenerator {
            scenario,
            rate_rps,
            profile: RateProfile::Constant,
        }
    }

    /// Returns a copy with a time-varying rate profile.
    #[must_use]
    pub fn with_profile(mut self, profile: RateProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The scenario being generated.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Generates all requests arriving within `[0, duration)`.
    ///
    /// Time-varying rates use Lewis-Shedler thinning of a Poisson process
    /// at the profile's peak rate, so the instantaneous rate tracks
    /// `rate × profile.multiplier(t)` exactly.
    #[must_use]
    pub fn generate(&self, rng: &DetRng, duration: SimDuration) -> Vec<Request> {
        let mut arrivals = rng.stream(&format!("trace-arrivals-{}", self.scenario.code()));
        let mut lengths = rng.stream(&format!("trace-lengths-{}", self.scenario.code()));
        let mut thinning = rng.stream(&format!("trace-thinning-{}", self.scenario.code()));
        let horizon = duration.as_secs_f64();
        // Upper bound of the instantaneous rate over the horizon.
        let peak_mult = match self.profile {
            RateProfile::Constant => 1.0,
            RateProfile::Diurnal { amplitude, .. } => 1.0 + amplitude.clamp(0.0, 0.95),
            RateProfile::Step { factor, .. } => factor.max(1e-3).max(1.0),
        };
        let peak_rate = self.rate_rps * peak_mult;
        let mut out = Vec::new();
        let mut t = 0.0;
        let mut id = 0u64;
        loop {
            t += arrivals.exponential(1.0 / peak_rate);
            if t >= horizon {
                break;
            }
            // Thinning: accept with probability rate(t)/peak_rate.
            let accept = self.profile.multiplier(t) / peak_mult;
            if !thinning.chance(accept.clamp(0.0, 1.0)) {
                continue;
            }
            let input = sample_len(&mut lengths, self.scenario.mean_input(), 16);
            let output = sample_len(&mut lengths, self.scenario.mean_output(), 4);
            out.push(Request::new(id, SimTime::from_secs_f64(t), input, output));
            id += 1;
        }
        out
    }
}

fn sample_len(rng: &mut DetRng, mean: usize, min: usize) -> usize {
    let v = rng.lognormal_mean_cv(mean as f64, LENGTH_CV);
    (v.round() as usize).clamp(min, mean * 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_slos_are_exact() {
        let cb = Scenario::Chatbot.slo();
        assert_eq!(cb.ttft, SimDuration::from_millis(250));
        assert_eq!(cb.tpot, SimDuration::from_millis(100));
        let cc = Scenario::CodeCompletion.slo();
        assert_eq!(cc.ttft, SimDuration::from_millis(75));
        assert_eq!(cc.tpot, SimDuration::from_millis(150));
        let sm = Scenario::Summarization.slo();
        assert_eq!(sm.ttft, SimDuration::from_millis(1500));
        assert_eq!(sm.tpot, SimDuration::from_millis(100));
    }

    #[test]
    fn generated_lengths_match_table4_means() {
        let rng = DetRng::from_seed(11);
        let trace = TraceGenerator::new(Scenario::Chatbot, 20.0)
            .generate(&rng, SimDuration::from_secs(600));
        assert!(trace.len() > 5000, "got {}", trace.len());
        let mean_in: f64 =
            trace.iter().map(|r| r.input_len as f64).sum::<f64>() / trace.len() as f64;
        let mean_out: f64 =
            trace.iter().map(|r| r.output_len as f64).sum::<f64>() / trace.len() as f64;
        assert!(
            (mean_in - 755.0).abs() / 755.0 < 0.1,
            "mean input {mean_in}"
        );
        assert!(
            (mean_out - 200.0).abs() / 200.0 < 0.1,
            "mean output {mean_out}"
        );
    }

    #[test]
    fn arrival_rate_is_respected() {
        let rng = DetRng::from_seed(12);
        let trace = TraceGenerator::new(Scenario::CodeCompletion, 2.0)
            .generate(&rng, SimDuration::from_secs(1000));
        let rate = trace.len() as f64 / 1000.0;
        assert!((rate - 2.0).abs() < 0.2, "observed rate {rate}");
    }

    #[test]
    fn arrivals_are_sorted_and_in_horizon() {
        let rng = DetRng::from_seed(13);
        let trace = TraceGenerator::new(Scenario::Summarization, 1.0)
            .generate(&rng, SimDuration::from_secs(100));
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(trace.iter().all(|r| r.arrival < SimTime::from_secs(100)));
    }

    #[test]
    fn same_seed_same_trace() {
        let a = TraceGenerator::new(Scenario::Chatbot, 1.0)
            .generate(&DetRng::from_seed(5), SimDuration::from_secs(60));
        let b = TraceGenerator::new(Scenario::Chatbot, 1.0)
            .generate(&DetRng::from_seed(5), SimDuration::from_secs(60));
        assert_eq!(a, b);
    }

    #[test]
    fn scenarios_have_metadata() {
        for s in Scenario::ALL {
            assert!(!s.dataset().is_empty());
            assert!(s.default_rate() > 0.0);
            assert!(s.mean_input() > 0);
        }
        assert_eq!(format!("{}", Scenario::Chatbot), "cb");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TraceGenerator::new(Scenario::Chatbot, 0.0);
    }

    #[test]
    fn diurnal_profile_modulates_arrivals() {
        let rng = DetRng::from_seed(31);
        let gen = TraceGenerator::new(Scenario::Chatbot, 2.0).with_profile(RateProfile::Diurnal {
            amplitude: 0.8,
            period_secs: 400.0,
        });
        let trace = gen.generate(&rng, SimDuration::from_secs(400));
        // First half of the sine period is the busy half.
        let first_half = trace
            .iter()
            .filter(|r| r.arrival < SimTime::from_secs(200))
            .count() as f64;
        let second_half = trace.len() as f64 - first_half;
        assert!(
            first_half > second_half * 1.8,
            "busy half {first_half} vs quiet half {second_half}"
        );
        // Mean rate stays near the base rate.
        let rate = trace.len() as f64 / 400.0;
        assert!((rate - 2.0).abs() < 0.3, "observed mean rate {rate}");
    }

    #[test]
    fn step_profile_shifts_rate() {
        let rng = DetRng::from_seed(32);
        let gen =
            TraceGenerator::new(Scenario::CodeCompletion, 1.0).with_profile(RateProfile::Step {
                at_secs: 150.0,
                factor: 3.0,
            });
        let trace = gen.generate(&rng, SimDuration::from_secs(300));
        let before = trace
            .iter()
            .filter(|r| r.arrival < SimTime::from_secs(150))
            .count() as f64
            / 150.0;
        let after = trace
            .iter()
            .filter(|r| r.arrival >= SimTime::from_secs(150))
            .count() as f64
            / 150.0;
        assert!(
            after > before * 2.0,
            "step must triple the rate: {before} -> {after}"
        );
    }

    #[test]
    fn constant_profile_matches_plain_generator() {
        let rng = DetRng::from_seed(33);
        let plain =
            TraceGenerator::new(Scenario::Chatbot, 1.0).generate(&rng, SimDuration::from_secs(100));
        let profiled = TraceGenerator::new(Scenario::Chatbot, 1.0)
            .with_profile(RateProfile::Constant)
            .generate(&rng, SimDuration::from_secs(100));
        // Same arrival count scale (thinning at peak_mult=1 accepts all).
        assert_eq!(plain.len(), profiled.len());
    }

    #[test]
    fn multiplier_is_always_positive() {
        for profile in [
            RateProfile::Constant,
            RateProfile::Diurnal {
                amplitude: 0.9,
                period_secs: 60.0,
            },
            RateProfile::Step {
                at_secs: 10.0,
                factor: 0.1,
            },
        ] {
            for t in 0..200 {
                assert!(profile.multiplier(t as f64) > 0.0);
            }
        }
    }
}
