//! Property-based tests of the LLM serving substrate: conservation laws of
//! continuous batching, trace-generation statistics, and cost-model
//! monotonicity under arbitrary workloads.

use proptest::prelude::*;

use aum_au::counters::PmuCounters;
use aum_au::gemm::ExecContext;
use aum_au::unit::Precision;
use aum_llm::batching::{ActiveRequest, DecodePool, PrefillQueue};
use aum_llm::config::ModelConfig;
use aum_llm::cost::{iteration_cost, AuKernels};
use aum_llm::engine::{EngineConfig, EngineMode, EngineResources, LlmEngine, RegionResources};
use aum_llm::ops::{iteration_ops, IterOp, Phase};
use aum_llm::request::Request;
use aum_llm::traces::{Scenario, TraceGenerator};
use aum_platform::spec::PlatformSpec;
use aum_sim::rng::DetRng;
use aum_sim::time::{SimDuration, SimTime};

fn any_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        Just(Scenario::Chatbot),
        Just(Scenario::CodeCompletion),
        Just(Scenario::Summarization)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn traces_are_sorted_sized_and_bounded(
        scenario in any_scenario(),
        seed in any::<u64>(),
        rate in 0.1f64..5.0,
        secs in 1u64..120,
    ) {
        let trace = TraceGenerator::new(scenario, rate)
            .generate(&DetRng::from_seed(seed), SimDuration::from_secs(secs));
        for w in trace.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
            prop_assert!(w[0].id < w[1].id);
        }
        for r in &trace {
            prop_assert!(r.arrival < SimTime::from_secs(secs));
            prop_assert!(r.input_len >= 16 && r.input_len <= scenario.mean_input() * 4);
            prop_assert!(r.output_len >= 4 && r.output_len <= scenario.mean_output() * 4);
        }
    }

    #[test]
    fn decode_pool_conserves_tokens(
        outputs in prop::collection::vec(2usize..50, 1..16),
        iter_ms in 10u64..200,
    ) {
        let mut pool = DecodePool::new(outputs.len());
        let total_expected: usize = outputs.iter().map(|&o| o - 1).sum();
        for (i, &out) in outputs.iter().enumerate() {
            pool.admit(ActiveRequest::start(&Request::new(i as u64, SimTime::ZERO, 100, out)));
        }
        let mut emitted = 0usize;
        let mut finished = 0usize;
        let mut guard = 0;
        while !pool.is_empty() {
            emitted += pool.batch();
            finished += pool.step(SimDuration::from_millis(iter_ms)).len();
            guard += 1;
            prop_assert!(guard < 10_000, "pool must drain");
        }
        prop_assert_eq!(emitted, total_expected, "every remaining token emitted exactly once");
        prop_assert_eq!(finished, outputs.len(), "every request retires exactly once");
    }

    #[test]
    fn lag_matches_its_definition(
        exec_ms in prop::collection::vec(1u64..400, 1..50),
        d_tpot_ms in 10u64..300,
    ) {
        // LAG_i = Σ (d_TPOT − e_token) over completed tokens.
        let mut pool = DecodePool::new(1);
        pool.admit(ActiveRequest::start(&Request::new(0, SimTime::ZERO, 10, exec_ms.len() + 1)));
        let mut expected = 0.0;
        for &ms in &exec_ms {
            let _ = pool.step(SimDuration::from_millis(ms));
            expected += (d_tpot_ms as f64 - ms as f64) / 1000.0;
            if !pool.is_empty() {
                let lag = pool.worst_lag_secs(SimDuration::from_millis(d_tpot_ms));
                prop_assert!((lag - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn prefill_queue_is_fifo(arrivals in prop::collection::vec(0u64..10_000, 1..50), batch in 1usize..8) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut q = PrefillQueue::new();
        for (i, &a) in sorted.iter().enumerate() {
            q.push(Request::new(i as u64, SimTime::from_millis(a), 10, 10));
        }
        let mut last = None;
        while !q.is_empty() {
            for r in q.pop_batch(batch) {
                if let Some(prev) = last {
                    prop_assert!(r.id.0 > prev);
                }
                last = Some(r.id.0);
            }
        }
    }

    #[test]
    fn iteration_cost_monotone_in_tokens_and_context(
        tokens in 1usize..64,
        ctx_len in 16usize..4096,
    ) {
        let spec = PlatformSpec::gen_a();
        let kernels = AuKernels::for_platform(&spec);
        let exec_ctx = ExecContext::new(96, 3.1, spec.mem_bw);
        let mut pmu = PmuCounters::new();
        let model = ModelConfig::llama2_7b();
        let small = iteration_cost(&model, Phase::Decode, tokens, ctx_len,
            Precision::Bf16, &kernels, &exec_ctx, &mut pmu);
        let more_tokens = iteration_cost(&model, Phase::Decode, tokens + 8, ctx_len,
            Precision::Bf16, &kernels, &exec_ctx, &mut pmu);
        let more_ctx = iteration_cost(&model, Phase::Decode, tokens, ctx_len + 512,
            Precision::Bf16, &kernels, &exec_ctx, &mut pmu);
        prop_assert!(more_tokens.time >= small.time);
        prop_assert!(more_ctx.time >= small.time, "longer context reads more KV");
        prop_assert!(more_tokens.flops > small.flops);
        prop_assert!(more_ctx.bytes > small.bytes);
    }

    #[test]
    fn op_graphs_are_consistent(
        tokens in 1usize..64,
        ctx_len in 16usize..4096,
        phase in prop_oneof![Just(Phase::Prefill), Just(Phase::Decode)],
    ) {
        let model = ModelConfig::llama2_7b();
        let tokens = if phase == Phase::Prefill { tokens * ctx_len } else { tokens };
        let ops = iteration_ops(&model, phase, tokens, ctx_len);
        prop_assert!(!ops.is_empty());
        let flops: f64 = ops.iter().map(IterOp::total_flops).sum();
        prop_assert!(flops > 0.0);
        for op in &ops {
            prop_assert!(op.repeat >= 1);
            prop_assert!(!op.shape.is_empty(), "{}: degenerate shape", op.label);
        }
    }

    #[test]
    fn engine_never_loses_requests(
        seed in any::<u64>(),
        rate in 0.2f64..2.0,
        secs in 5u64..40,
    ) {
        let spec = PlatformSpec::gen_a();
        let trace = TraceGenerator::new(Scenario::CodeCompletion, rate)
            .generate(&DetRng::from_seed(seed), SimDuration::from_secs(secs));
        let n = trace.len() as u64;
        let mut engine = LlmEngine::new(
            EngineConfig::paper_default(Scenario::CodeCompletion), &spec, trace);
        let res = EngineResources {
            prefill: RegionResources::new(96, 2.5, spec.mem_bw),
            decode: RegionResources::new(96, 3.1, spec.mem_bw),
            mode: EngineMode::TimeMultiplexed,
        };
        let mut t = 0;
        while !engine.drained() && t < 10 * secs + 600 {
            t += 1;
            let _ = engine.run_interval(SimTime::from_secs(t), &res);
        }
        prop_assert!(engine.drained(), "engine must drain all {n} requests");
        prop_assert_eq!(engine.completed(), n);
        // Every request produced exactly one TTFT record.
        prop_assert_eq!(engine.ttft_records().len() as u64, n);
    }
}
