//! Way-partitioned cache model.
//!
//! CAT allocates cache *ways*; a workload's response to capacity is captured
//! by a miss-rate curve (MRC). We use the classic exponential-decay form
//! `miss(ways) = floor + (ceil - floor) * exp(-capacity/half_set)`, which
//! matches the paper's observation (Fig 13) that AU applications differ
//! strongly in LLC affinity: decode barely benefits beyond a few ways on
//! GenA while shared applications like SPECjbb keep improving.

use serde::{Deserialize, Serialize};

use crate::spec::PlatformSpec;

/// A workload's miss ratio as a function of allocated cache capacity.
///
/// # Examples
///
/// ```
/// use aum_platform::cache::MissRateCurve;
///
/// let mrc = MissRateCurve::new(0.05, 0.60, 20.0);
/// let few = mrc.miss_ratio(2.0);
/// let many = mrc.miss_ratio(100.0);
/// assert!(few > many);
/// assert!(many >= 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissRateCurve {
    /// Compulsory/streaming miss ratio with unbounded capacity.
    floor: f64,
    /// Miss ratio with (near) zero capacity.
    ceil: f64,
    /// Capacity in MiB at which ~63% of the capturable reuse is captured.
    knee_mb: f64,
}

impl MissRateCurve {
    /// Creates a curve.
    ///
    /// # Panics
    ///
    /// Panics if ratios are outside `[0, 1]`, `floor > ceil`, or the knee is
    /// not positive.
    #[must_use]
    pub fn new(floor: f64, ceil: f64, knee_mb: f64) -> Self {
        assert!((0.0..=1.0).contains(&floor), "floor out of range: {floor}");
        assert!((0.0..=1.0).contains(&ceil), "ceil out of range: {ceil}");
        assert!(floor <= ceil, "floor {floor} must not exceed ceil {ceil}");
        assert!(
            knee_mb > 0.0,
            "knee capacity must be positive, got {knee_mb}"
        );
        MissRateCurve {
            floor,
            ceil,
            knee_mb,
        }
    }

    /// A flat curve for streaming workloads that get no cache benefit.
    #[must_use]
    pub fn streaming(miss_ratio: f64) -> Self {
        MissRateCurve::new(miss_ratio, miss_ratio, 1.0)
    }

    /// Miss ratio at the given allocated capacity (MiB). Capacity below zero
    /// is treated as zero.
    #[must_use]
    pub fn miss_ratio(&self, capacity_mb: f64) -> f64 {
        let c = capacity_mb.max(0.0);
        self.floor + (self.ceil - self.floor) * (-c / self.knee_mb).exp()
    }

    /// Ratio of DRAM traffic at `capacity_mb` relative to traffic with the
    /// full `reference_mb` capacity — the traffic *amplification* caused by
    /// shrinking the partition. Always ≥ 1 when capacity ≤ reference.
    #[must_use]
    pub fn traffic_amplification(&self, capacity_mb: f64, reference_mb: f64) -> f64 {
        let reference = self.miss_ratio(reference_mb);
        if reference <= 0.0 {
            return 1.0;
        }
        self.miss_ratio(capacity_mb) / reference
    }

    /// Asymptotic miss ratio (unbounded capacity).
    #[must_use]
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Zero-capacity miss ratio.
    #[must_use]
    pub fn ceil(&self) -> f64 {
        self.ceil
    }
}

/// Cache sensitivity description of one workload: its miss-rate curves for
/// L2 and LLC plus the fraction of its performance governed by cache
/// residency (vs. raw compute).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheProfile {
    /// LLC miss-rate curve.
    pub llc: MissRateCurve,
    /// L2 miss-rate curve (per-core capacity).
    pub l2: MissRateCurve,
    /// Weight in `[0,1]` of cache behaviour in end-to-end performance.
    pub cache_sensitivity: f64,
}

impl CacheProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `cache_sensitivity` is outside `[0, 1]`.
    #[must_use]
    pub fn new(llc: MissRateCurve, l2: MissRateCurve, cache_sensitivity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cache_sensitivity),
            "cache sensitivity out of range: {cache_sensitivity}"
        );
        CacheProfile {
            llc,
            l2,
            cache_sensitivity,
        }
    }

    /// Performance multiplier (≤ 1) for running with `llc_ways`/`l2_ways`
    /// instead of the full cache on `spec`.
    ///
    /// The multiplier blends the cache-insensitive fraction (unaffected)
    /// with the cache-sensitive fraction slowed by the miss-ratio increase.
    #[must_use]
    pub fn performance_factor(&self, spec: &PlatformSpec, llc_ways: u32, l2_ways: u32) -> f64 {
        let llc_full = f64::from(spec.llc_ways) * spec.llc_mb_per_way();
        let llc_now = f64::from(llc_ways.min(spec.llc_ways)) * spec.llc_mb_per_way();
        let l2_way_mb = spec.l2_mb_per_core / f64::from(spec.l2_ways);
        let l2_full = spec.l2_mb_per_core;
        let l2_now = f64::from(l2_ways.min(spec.l2_ways)) * l2_way_mb;

        let llc_amp = self.llc.traffic_amplification(llc_now, llc_full);
        let l2_amp = self.l2.traffic_amplification(l2_now, l2_full);
        // Misses at L2 that hit in LLC are cheaper than LLC misses; weight
        // the LLC curve 3x the L2 curve in the slowdown blend.
        let amp = (3.0 * llc_amp + l2_amp) / 4.0;
        let sensitive_slowdown = 1.0 / amp.max(1e-9);
        (1.0 - self.cache_sensitivity) + self.cache_sensitivity * sensitive_slowdown
    }

    /// DRAM-traffic amplification for the LLC allocation alone, used to
    /// scale a workload's bandwidth demand when its partition shrinks.
    #[must_use]
    pub fn bandwidth_amplification(&self, spec: &PlatformSpec, llc_ways: u32) -> f64 {
        let llc_full = f64::from(spec.llc_ways) * spec.llc_mb_per_way();
        let llc_now = f64::from(llc_ways.min(spec.llc_ways)) * spec.llc_mb_per_way();
        self.llc.traffic_amplification(llc_now, llc_full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> MissRateCurve {
        MissRateCurve::new(0.1, 0.8, 30.0)
    }

    #[test]
    fn miss_ratio_decreases_with_capacity() {
        let c = curve();
        let mut last = c.miss_ratio(0.0);
        assert!((last - 0.8).abs() < 1e-12);
        for mb in [5.0, 10.0, 50.0, 100.0, 500.0] {
            let m = c.miss_ratio(mb);
            assert!(m < last, "miss ratio must strictly decrease");
            last = m;
        }
        assert!(last > 0.1, "never goes below floor");
    }

    #[test]
    fn negative_capacity_clamps() {
        let c = curve();
        assert_eq!(c.miss_ratio(-5.0), c.miss_ratio(0.0));
    }

    #[test]
    fn streaming_curve_is_flat() {
        let c = MissRateCurve::streaming(0.4);
        assert_eq!(c.miss_ratio(0.0), c.miss_ratio(1000.0));
        assert_eq!(c.traffic_amplification(1.0, 100.0), 1.0);
    }

    #[test]
    fn amplification_at_reference_is_one() {
        let c = curve();
        assert!((c.traffic_amplification(100.0, 100.0) - 1.0).abs() < 1e-12);
        assert!(c.traffic_amplification(5.0, 100.0) > 1.0);
    }

    #[test]
    #[should_panic(expected = "must not exceed ceil")]
    fn inverted_curve_rejected() {
        let _ = MissRateCurve::new(0.9, 0.1, 10.0);
    }

    #[test]
    fn performance_factor_monotone_in_ways() {
        let spec = PlatformSpec::gen_a();
        let p = CacheProfile::new(curve(), MissRateCurve::new(0.2, 0.7, 1.0), 0.6);
        let mut last = 0.0;
        for ways in 1..=16 {
            let f = p.performance_factor(&spec, ways, 16);
            assert!(f > last, "more ways must not hurt");
            assert!(f <= 1.0 + 1e-12);
            last = f;
        }
        assert!((p.performance_factor(&spec, 16, 16) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insensitive_workload_ignores_cache() {
        let spec = PlatformSpec::gen_a();
        let p = CacheProfile::new(curve(), curve(), 0.0);
        assert!((p.performance_factor(&spec, 1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_amplification_grows_as_ways_shrink() {
        let spec = PlatformSpec::gen_a();
        let p = CacheProfile::new(curve(), MissRateCurve::streaming(0.1), 0.5);
        let small = p.bandwidth_amplification(&spec, 2);
        let large = p.bandwidth_amplification(&spec, 16);
        assert!(small > large);
        assert!((large - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_ways_clamp_to_spec() {
        let spec = PlatformSpec::gen_a();
        let p = CacheProfile::new(curve(), curve(), 0.5);
        assert_eq!(
            p.performance_factor(&spec, 99, 99),
            p.performance_factor(&spec, 16, 16)
        );
    }
}
