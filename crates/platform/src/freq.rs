//! License-based frequency governor with power-stress coupling.
//!
//! Modern Xeons run wide-vector and matrix units under *license classes*:
//! cores executing AMX tiles draw so much current that the package drops
//! their frequency regardless of thermal headroom, and the drop deepens as
//! package power rises. The paper measures on GenA (§IV-B, Fig 6):
//!
//! - None-AU cores hold the 3.2 GHz all-core turbo and see **no cascaded
//!   reduction** from AU activity elsewhere (Fig 6a gray squares);
//! - decode (low AU, AVX-dominated) cores run ≈3.1 GHz alone but sink
//!   toward 2.8 GHz when power stressors co-run (blue squares, Table III);
//! - prefill (high AU, AMX-dominated) cores run ≈2.5 GHz nearly
//!   independent of AU core count (green circles), bottoming at 2.1 GHz
//!   under maximal sharing pressure (Table III).
//!
//! The governor reproduces exactly those responses; the abrupt drops of
//! Fig 6b come from the separate [`crate::thermal`] model.

use serde::{Deserialize, Serialize};

use crate::spec::PlatformSpec;
use crate::topology::AuUsageLevel;
use crate::units::{Ghz, Watts};

/// Offset below all-core turbo for the AVX license class.
const AVX_LICENSE_OFFSET: f64 = 0.1;
/// Offset below all-core turbo used to derive the AMX license class.
const AMX_LICENSE_OFFSET: f64 = 0.7;
/// How far below the AMX license the stress floor sits.
const STRESS_HEADROOM: f64 = 0.4;
/// Mild dependence of the AMX license on how many cores hold it.
const AMX_CROWDING_GHZ: f64 = 0.08;

/// Per-platform frequency governor.
///
/// # Examples
///
/// ```
/// use aum_platform::freq::FrequencyGovernor;
/// use aum_platform::spec::PlatformSpec;
/// use aum_platform::topology::AuUsageLevel;
///
/// let gov = FrequencyGovernor::for_spec(&PlatformSpec::gen_a());
/// let prefill = gov.license_frequency(AuUsageLevel::High);
/// let idle = gov.license_frequency(AuUsageLevel::None);
/// assert!(prefill < idle);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyGovernor {
    turbo: Ghz,
    avx_license: Ghz,
    amx_license: Ghz,
    stress_floor_avx: Ghz,
    stress_floor_amx: Ghz,
    tdp: Watts,
    /// Fault-injected license pin: when set, every AU region (Low/High) is
    /// treated as holding this license class regardless of the instructions
    /// it actually retires — a stuck firmware/PCU state. None-AU regions
    /// retire no AU instructions and hold no license, so they are immune.
    #[serde(default)]
    license_lock: Option<AuUsageLevel>,
}

/// Runtime conditions a region's frequency depends on.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FreqConditions {
    /// Fraction of platform cores holding an AU license, in `[0, 1]`.
    pub au_core_frac: f64,
    /// Package power pressure from co-runners, in `[0, 1]`: the ratio of
    /// non-AU dynamic power to the power the package could absorb before
    /// the voltage regulator tightens AU licenses.
    pub power_stress: f64,
    /// Additional frequency reduction requested by the thermal model.
    pub thermal_drop: Ghz,
}

impl FrequencyGovernor {
    /// Derives the governor for a platform from its spec frequencies.
    #[must_use]
    pub fn for_spec(spec: &PlatformSpec) -> Self {
        let turbo = spec.allcore_turbo;
        let avx_license = Ghz(turbo.value() - AVX_LICENSE_OFFSET);
        let amx_license = Ghz(spec
            .base_freq
            .value()
            .min(turbo.value() - AMX_LICENSE_OFFSET));
        FrequencyGovernor {
            turbo,
            avx_license,
            amx_license,
            stress_floor_avx: Ghz(avx_license.value() - 0.3),
            stress_floor_amx: Ghz(amx_license.value() - STRESS_HEADROOM),
            tdp: spec.tdp,
            license_lock: None,
        }
    }

    /// Pins (or releases, with `None`) the license class of every AU
    /// region — the `FrequencyLicenseLock` fault.
    pub fn set_license_lock(&mut self, lock: Option<AuUsageLevel>) {
        self.license_lock = lock;
    }

    /// The current fault-injected license pin, if any.
    #[must_use]
    pub fn license_lock(&self) -> Option<AuUsageLevel> {
        self.license_lock
    }

    /// The license class a region effectively holds under the lock.
    fn effective_level(&self, level: AuUsageLevel) -> AuUsageLevel {
        match (self.license_lock, level) {
            (Some(lock), AuUsageLevel::Low | AuUsageLevel::High) => lock,
            _ => level,
        }
    }

    /// Static license frequency of a usage level with no sharing pressure.
    #[must_use]
    pub fn license_frequency(&self, level: AuUsageLevel) -> Ghz {
        match level {
            AuUsageLevel::None => self.turbo,
            AuUsageLevel::Low => self.avx_license,
            AuUsageLevel::High => self.amx_license,
        }
    }

    /// All-core turbo (None-AU ceiling).
    #[must_use]
    pub fn turbo(&self) -> Ghz {
        self.turbo
    }

    /// Frequency of a region under the given runtime conditions.
    ///
    /// None-AU regions are immune to AU-induced reductions (Fig 6a) and
    /// only respond to the thermal drop. AU regions sink from their license
    /// frequency toward the stress floor as `power_stress` rises, with a
    /// mild crowding term for High-AU regions.
    #[must_use]
    pub fn region_frequency(&self, level: AuUsageLevel, cond: FreqConditions) -> Ghz {
        let stress = cond.power_stress.clamp(0.0, 1.0);
        let level = self.effective_level(level);
        let base = match level {
            AuUsageLevel::None => self.turbo.value(),
            AuUsageLevel::Low => {
                let span = self.avx_license.value() - self.stress_floor_avx.value();
                self.avx_license.value() - span * stress
            }
            AuUsageLevel::High => {
                let crowding = AMX_CROWDING_GHZ * cond.au_core_frac.clamp(0.0, 1.0);
                let span = self.amx_license.value() - self.stress_floor_amx.value();
                (self.amx_license.value() - crowding - span * stress)
                    .max(self.stress_floor_amx.value())
            }
        };
        Ghz((base - cond.thermal_drop.value()).max(0.4))
    }

    /// The lowest frequency a level can be pushed to by power stress alone.
    #[must_use]
    pub fn stress_floor(&self, level: AuUsageLevel) -> Ghz {
        match level {
            AuUsageLevel::None => self.turbo,
            AuUsageLevel::Low => self.stress_floor_avx,
            AuUsageLevel::High => self.stress_floor_amx,
        }
    }

    /// Package TDP the governor protects.
    #[must_use]
    pub fn tdp(&self) -> Watts {
        self.tdp
    }

    /// Applies a package-level TDP cap: if `power` exceeds the budget, all
    /// AU-region frequencies are scaled down by the cube-root power ratio
    /// (dynamic power ∝ f³ to first order at fixed voltage steps).
    #[must_use]
    pub fn tdp_scale(&self, power: Watts) -> f64 {
        if power.value() <= self.tdp.value() || power.value() <= 0.0 {
            1.0
        } else {
            (self.tdp.value() / power.value()).cbrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> FrequencyGovernor {
        FrequencyGovernor::for_spec(&PlatformSpec::gen_a())
    }

    #[test]
    fn gen_a_license_frequencies_match_fig6() {
        let g = gov();
        assert!((g.license_frequency(AuUsageLevel::None).value() - 3.2).abs() < 1e-9);
        assert!((g.license_frequency(AuUsageLevel::Low).value() - 3.1).abs() < 1e-9);
        assert!((g.license_frequency(AuUsageLevel::High).value() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn stress_floors_match_table3() {
        let g = gov();
        // Table III: High bucket at 2.1 GHz under max pressure.
        assert!((g.stress_floor(AuUsageLevel::High).value() - 2.1).abs() < 1e-9);
        assert!((g.stress_floor(AuUsageLevel::Low).value() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn none_region_is_immune_to_stress() {
        let g = gov();
        let f = g.region_frequency(
            AuUsageLevel::None,
            FreqConditions {
                au_core_frac: 1.0,
                power_stress: 1.0,
                thermal_drop: Ghz(0.0),
            },
        );
        assert!((f.value() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn stress_pushes_toward_floor() {
        let g = gov();
        let relaxed = g.region_frequency(AuUsageLevel::Low, FreqConditions::default());
        let stressed = g.region_frequency(
            AuUsageLevel::Low,
            FreqConditions {
                power_stress: 1.0,
                ..Default::default()
            },
        );
        assert!((relaxed.value() - 3.1).abs() < 1e-9);
        assert!((stressed.value() - 2.8).abs() < 1e-9);
        for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let f = g.region_frequency(
                AuUsageLevel::Low,
                FreqConditions {
                    power_stress: s,
                    ..Default::default()
                },
            );
            assert!(f.value() <= relaxed.value() + 1e-9);
            assert!(f.value() >= stressed.value() - 1e-9);
        }
    }

    #[test]
    fn amx_crowding_is_mild() {
        let g = gov();
        let few = g.region_frequency(
            AuUsageLevel::High,
            FreqConditions {
                au_core_frac: 0.1,
                ..Default::default()
            },
        );
        let many = g.region_frequency(
            AuUsageLevel::High,
            FreqConditions {
                au_core_frac: 1.0,
                ..Default::default()
            },
        );
        assert!(few > many);
        assert!(
            few.value() - many.value() < 0.1,
            "Fig 6a: little dependence on AU core count"
        );
    }

    #[test]
    fn thermal_drop_subtracts() {
        let g = gov();
        let f = g.region_frequency(
            AuUsageLevel::None,
            FreqConditions {
                thermal_drop: Ghz(0.4),
                ..Default::default()
            },
        );
        assert!((f.value() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn frequency_never_collapses() {
        let g = gov();
        let f = g.region_frequency(
            AuUsageLevel::High,
            FreqConditions {
                power_stress: 1.0,
                thermal_drop: Ghz(10.0),
                au_core_frac: 1.0,
            },
        );
        assert!(f.value() >= 0.4);
    }

    #[test]
    fn license_lock_pins_au_regions_and_spares_none() {
        let mut g = gov();
        let low_healthy = g.region_frequency(AuUsageLevel::Low, FreqConditions::default());
        g.set_license_lock(Some(AuUsageLevel::High));
        let low_locked = g.region_frequency(AuUsageLevel::Low, FreqConditions::default());
        let high_locked = g.region_frequency(AuUsageLevel::High, FreqConditions::default());
        let none_locked = g.region_frequency(AuUsageLevel::None, FreqConditions::default());
        assert!(low_locked < low_healthy, "Low must sink to the AMX curve");
        assert!((low_locked.value() - high_locked.value()).abs() < 1e-9);
        assert!(
            (none_locked.value() - 3.2).abs() < 1e-9,
            "None holds no license"
        );
        g.set_license_lock(None);
        let low_released = g.region_frequency(AuUsageLevel::Low, FreqConditions::default());
        assert!((low_released.value() - low_healthy.value()).abs() < 1e-9);
    }

    #[test]
    fn tdp_scale_only_bites_over_budget() {
        let g = gov();
        assert_eq!(g.tdp_scale(Watts(100.0)), 1.0);
        assert_eq!(g.tdp_scale(Watts(0.0)), 1.0);
        let s = g.tdp_scale(Watts(g.tdp().value() * 2.0));
        assert!(s < 1.0 && s > 0.5);
    }

    #[test]
    fn other_platforms_have_consistent_ordering() {
        for spec in PlatformSpec::presets() {
            let g = FrequencyGovernor::for_spec(&spec);
            assert!(
                g.license_frequency(AuUsageLevel::High) < g.license_frequency(AuUsageLevel::Low)
            );
            assert!(
                g.license_frequency(AuUsageLevel::Low) < g.license_frequency(AuUsageLevel::None)
            );
            assert!(g.stress_floor(AuUsageLevel::High).value() > 0.5);
        }
    }
}
