//! # aum-platform — simulated AU-enabled CPU platform
//!
//! Mechanistic model of the three production Xeon platforms the AUM paper
//! evaluates (Table I). The crate substitutes for the real hardware the
//! paper measured with `turbostat`, `perf` and Intel RDT:
//!
//! - [`spec`]: Table I hardware presets (`GenA`, `GenB`, `GenC`);
//! - [`topology`]: core regions and the High/Low/None processor division;
//! - [`freq`]: license-based frequency governor (Variation-2, Fig 6a);
//! - [`thermal`]: hotspot heat accumulation (abrupt drops of Fig 6b);
//! - [`power`]: package power model calibrated to §III-B (≈270 W GenA);
//! - [`cache`]: way-partitioned caches with miss-rate curves (Fig 13);
//! - [`membw`]: shared bandwidth pool with MBA throttling;
//! - [`numa`]: two-socket NUMA effects and division placement;
//! - [`rdt`]: CAT/MBA allocation knobs and validation;
//! - [`smt`]: hyperthread contention model (Fig 9);
//! - [`state`]: [`state::PlatformSim`], the steppable composition of all of
//!   the above.
//!
//! ## Example
//!
//! ```
//! use aum_platform::power::ActivityClass;
//! use aum_platform::spec::PlatformSpec;
//! use aum_platform::state::{PlatformSim, RegionLoad};
//! use aum_platform::topology::AuUsageLevel;
//! use aum_platform::units::GbPerSec;
//! use aum_sim::time::SimDuration;
//!
//! // Reproduce the Fig 6a observation: AMX cores downclock, idle cores don't.
//! let mut sim = PlatformSim::new(PlatformSpec::gen_a());
//! let snap = sim.step(
//!     SimDuration::from_millis(100),
//!     &[
//!         RegionLoad::new(AuUsageLevel::High, 32, ActivityClass::Amx, 1.0, GbPerSec(60.0)),
//!         RegionLoad::idle(AuUsageLevel::None, 64),
//!     ],
//! );
//! assert!(snap.freqs[0] < snap.freqs[1]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod freq;
pub mod membw;
pub mod numa;
pub mod power;
pub mod rdt;
pub mod smt;
pub mod spec;
pub mod state;
pub mod thermal;
pub mod topology;
pub mod units;

pub use spec::PlatformSpec;
pub use state::{PlatformSim, PlatformSnapshot, RegionLoad};
pub use topology::{AuUsageLevel, ProcessorDivision};
