//! Shared memory-bandwidth pool with MBA-style throttling.
//!
//! The decode phase of LLM serving is bandwidth-bound (paper Table II: DRAM
//! bound 53-68%), so contention on this pool is the single most important
//! interference channel between the AU application and memory-intensive
//! co-runners such as OLAP. The pool model:
//!
//! 1. caps each class's demand at its MBA throttle fraction;
//! 2. if total capped demand exceeds the sustainable bandwidth, grants are
//!    scaled proportionally;
//! 3. reports a latency factor that grows near saturation (queuing at the
//!    memory controller), which slows even granted traffic.

use serde::{Deserialize, Serialize};

use crate::units::GbPerSec;

/// Fraction of the peak bandwidth that is sustainable under mixed
/// read/write traffic. STREAM-style efficiency on SPR-class machines.
pub const SUSTAINED_FRACTION: f64 = 0.95;

/// Utilization above which memory-controller queuing visibly inflates
/// latency.
pub const QUEUING_ONSET: f64 = 0.75;

/// A single class's bandwidth request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BwDemand {
    /// Raw demand the class would consume if unconstrained.
    pub demand: GbPerSec,
    /// MBA throttle: the class may use at most this fraction of the pool.
    pub cap_frac: f64,
}

impl BwDemand {
    /// Creates a demand entry.
    ///
    /// # Panics
    ///
    /// Panics if `cap_frac` is outside `(0, 1]` or demand is negative.
    #[must_use]
    pub fn new(demand: GbPerSec, cap_frac: f64) -> Self {
        assert!(
            demand.value() >= 0.0,
            "bandwidth demand must be non-negative"
        );
        assert!(
            cap_frac > 0.0 && cap_frac <= 1.0,
            "MBA cap must be in (0,1], got {cap_frac}"
        );
        BwDemand { demand, cap_frac }
    }
}

/// Outcome of bandwidth arbitration for one class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BwGrant {
    /// Bandwidth actually granted.
    pub granted: GbPerSec,
    /// Multiplier ≥ 1 on the class's memory-phase time: demand/grant plus
    /// the pool-wide queuing factor.
    pub slowdown: f64,
}

/// Result of arbitrating the whole pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BwArbitration {
    /// Per-class grants, in demand order.
    pub grants: Vec<BwGrant>,
    /// Pool utilization after arbitration, in `[0, 1]`.
    pub utilization: f64,
    /// Pool-wide latency factor from queuing (≥ 1).
    pub queuing_factor: f64,
}

/// The shared bandwidth pool of one platform.
///
/// # Examples
///
/// ```
/// use aum_platform::membw::{BandwidthPool, BwDemand};
/// use aum_platform::units::GbPerSec;
///
/// let pool = BandwidthPool::new(GbPerSec(233.8));
/// let result = pool.arbitrate(&[
///     BwDemand::new(GbPerSec(150.0), 1.0),
///     BwDemand::new(GbPerSec(150.0), 1.0),
/// ]);
/// // 300 GB/s of demand cannot fit in a 233.8 GB/s pool.
/// assert!(result.grants[0].slowdown > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthPool {
    peak: GbPerSec,
}

impl BandwidthPool {
    /// Creates a pool with the given peak (Table I "Memory BW").
    ///
    /// # Panics
    ///
    /// Panics if peak is not positive.
    #[must_use]
    pub fn new(peak: GbPerSec) -> Self {
        assert!(peak.value() > 0.0, "bandwidth pool must have positive peak");
        BandwidthPool { peak }
    }

    /// Sustainable bandwidth under mixed traffic.
    #[must_use]
    pub fn sustainable(&self) -> GbPerSec {
        self.peak * SUSTAINED_FRACTION
    }

    /// Peak (spec) bandwidth.
    #[must_use]
    pub fn peak(&self) -> GbPerSec {
        self.peak
    }

    /// Arbitrates the pool across the given class demands.
    #[must_use]
    pub fn arbitrate(&self, demands: &[BwDemand]) -> BwArbitration {
        let budget = self.sustainable().value();
        let capped: Vec<f64> = demands
            .iter()
            .map(|d| d.demand.value().min(d.cap_frac * budget))
            .collect();
        let total: f64 = capped.iter().sum();
        let scale = if total > budget { budget / total } else { 1.0 };
        let granted: Vec<f64> = capped.iter().map(|c| c * scale).collect();
        let used: f64 = granted.iter().sum();
        let utilization = (used / budget).clamp(0.0, 1.0);
        let queuing_factor = queuing_factor(utilization);
        let grants = demands
            .iter()
            .zip(&granted)
            .map(|(d, &g)| {
                let starvation = if g > 0.0 {
                    (d.demand.value() / g).max(1.0)
                } else if d.demand.value() > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                BwGrant {
                    granted: GbPerSec(g),
                    slowdown: starvation * queuing_factor,
                }
            })
            .collect();
        BwArbitration {
            grants,
            utilization,
            queuing_factor,
        }
    }
}

/// Latency inflation from memory-controller queuing at a given utilization.
///
/// Flat at 1.0 below [`QUEUING_ONSET`], then grows smoothly to ~1.6x at
/// full saturation — consistent with measured DDR5 loaded-latency curves.
#[must_use]
pub fn queuing_factor(utilization: f64) -> f64 {
    let u = utilization.clamp(0.0, 1.0);
    if u <= QUEUING_ONSET {
        1.0
    } else {
        let x = (u - QUEUING_ONSET) / (1.0 - QUEUING_ONSET);
        1.0 + 0.6 * x * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BandwidthPool {
        BandwidthPool::new(GbPerSec(233.8))
    }

    #[test]
    fn undersubscribed_pool_grants_everything() {
        let r = pool().arbitrate(&[
            BwDemand::new(GbPerSec(50.0), 1.0),
            BwDemand::new(GbPerSec(30.0), 1.0),
        ]);
        assert!((r.grants[0].granted.value() - 50.0).abs() < 1e-9);
        assert!((r.grants[1].granted.value() - 30.0).abs() < 1e-9);
        assert!((r.grants[0].slowdown - 1.0).abs() < 1e-9);
        assert!(r.utilization < QUEUING_ONSET);
    }

    #[test]
    fn oversubscribed_pool_scales_proportionally() {
        let r = pool().arbitrate(&[
            BwDemand::new(GbPerSec(200.0), 1.0),
            BwDemand::new(GbPerSec(200.0), 1.0),
        ]);
        let budget = pool().sustainable().value();
        assert!((r.grants[0].granted.value() - budget / 2.0).abs() < 1e-9);
        assert!((r.utilization - 1.0).abs() < 1e-9);
        assert!(r.grants[0].slowdown > 2.0, "demand/grant ≈ 2 plus queuing");
    }

    #[test]
    fn mba_cap_limits_class() {
        let budget = pool().sustainable().value();
        let r = pool().arbitrate(&[
            BwDemand::new(GbPerSec(500.0), 0.1),
            BwDemand::new(GbPerSec(10.0), 1.0),
        ]);
        assert!((r.grants[0].granted.value() - 0.1 * budget).abs() < 1e-9);
        assert!((r.grants[1].granted.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn queuing_grows_above_onset() {
        assert_eq!(queuing_factor(0.0), 1.0);
        assert_eq!(queuing_factor(QUEUING_ONSET), 1.0);
        assert!(queuing_factor(0.9) > 1.0);
        assert!((queuing_factor(1.0) - 1.6).abs() < 1e-12);
        assert!(queuing_factor(0.9) < queuing_factor(0.95));
    }

    #[test]
    fn zero_demand_has_unit_slowdown() {
        let r = pool().arbitrate(&[BwDemand::new(GbPerSec(0.0), 1.0)]);
        assert_eq!(r.grants[0].slowdown, 1.0);
        assert_eq!(r.grants[0].granted.value(), 0.0);
    }

    #[test]
    fn empty_arbitration_is_benign() {
        let r = pool().arbitrate(&[]);
        assert!(r.grants.is_empty());
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.queuing_factor, 1.0);
    }

    #[test]
    #[should_panic(expected = "MBA cap")]
    fn cap_zero_rejected() {
        let _ = BwDemand::new(GbPerSec(1.0), 0.0);
    }

    #[test]
    fn sustainable_below_peak() {
        assert!(pool().sustainable() < pool().peak());
    }
}
