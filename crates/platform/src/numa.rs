//! NUMA topology model for the two-socket platforms.
//!
//! GenA and GenB are 2-socket machines (Table I); their 233.8/588 GB/s
//! bandwidth figures aggregate two per-socket memory domains joined by a
//! UPI-class interconnect. Core regions that span sockets, or that read
//! data homed on the other socket, pay a remote-access tax. The paper
//! manages a single machine and does not model NUMA explicitly; this
//! module quantifies what its processor divisions cost or save when
//! placement is NUMA-aware versus naive — a placement dimension a
//! production deployment of AUM must get right.

use serde::{Deserialize, Serialize};

use crate::spec::PlatformSpec;
use crate::topology::ProcessorDivision;
use crate::units::GbPerSec;

/// NUMA description of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumaConfig {
    /// Memory domains (= sockets).
    pub domains: usize,
    /// Local bandwidth of one domain.
    pub local_bw: GbPerSec,
    /// Cross-socket interconnect bandwidth (per direction).
    pub interconnect_bw: GbPerSec,
    /// Latency-driven efficiency multiplier on remote accesses, `(0, 1]`.
    pub remote_efficiency: f64,
}

impl NumaConfig {
    /// Derives the NUMA shape of a platform: each socket owns an equal
    /// share of the aggregate bandwidth; the interconnect carries roughly
    /// half of one domain's bandwidth (UPI-class links), and remote
    /// accesses run at ≈70% efficiency.
    #[must_use]
    pub fn for_spec(spec: &PlatformSpec) -> Self {
        let domains = spec.sockets.max(1);
        let local = spec.mem_bw.value() / domains as f64;
        NumaConfig {
            domains,
            local_bw: GbPerSec(local),
            interconnect_bw: GbPerSec(local * 0.5),
            remote_efficiency: 0.7,
        }
    }

    /// True when the platform has a single memory domain (no NUMA effects).
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.domains <= 1
    }

    /// Effective bandwidth available to a workload that spreads its
    /// accesses with `remote_frac` of traffic hitting the other domain.
    ///
    /// Remote traffic is limited by both the interconnect and the remote
    /// efficiency; local traffic uses the local domain.
    ///
    /// # Panics
    ///
    /// Panics if `remote_frac` is outside `[0, 1]`.
    #[must_use]
    pub fn effective_bandwidth(&self, remote_frac: f64) -> GbPerSec {
        assert!(
            (0.0..=1.0).contains(&remote_frac),
            "remote fraction out of range"
        );
        if self.is_uniform() || remote_frac == 0.0 {
            // All domains usable locally.
            return GbPerSec(self.local_bw.value() * self.domains as f64);
        }
        let local = self.local_bw.value() * (1.0 - remote_frac) * self.domains as f64;
        let remote_raw = self.local_bw.value() * remote_frac * self.domains as f64;
        let remote = remote_raw.min(self.interconnect_bw.value() * self.domains as f64)
            * self.remote_efficiency;
        GbPerSec(local + remote)
    }

    /// Remote-access fraction of a processor division placed naively
    /// (regions laid out contiguously over core ids, data interleaved
    /// across domains): every access is 1/domains-local, so
    /// `(domains-1)/domains` of traffic is remote.
    #[must_use]
    pub fn naive_remote_frac(&self) -> f64 {
        if self.is_uniform() {
            0.0
        } else {
            (self.domains as f64 - 1.0) / self.domains as f64
        }
    }

    /// Remote-access fraction under NUMA-aware placement of a division:
    /// each region is packed within sockets and its data homed locally;
    /// only regions that *straddle* a socket boundary pay remote accesses
    /// for their minority share.
    ///
    /// # Panics
    ///
    /// Panics if the division does not cover a whole number of cores per
    /// domain layout (division total must equal platform cores).
    #[must_use]
    pub fn aware_remote_frac(&self, division: &ProcessorDivision, total_cores: usize) -> f64 {
        assert_eq!(
            division.total_cores(),
            total_cores,
            "division must cover the platform"
        );
        if self.is_uniform() {
            return 0.0;
        }
        let per_socket = total_cores / self.domains;
        // Count, over region boundaries laid out contiguously, the cores
        // that sit on the "wrong" socket relative to their region's
        // majority socket.
        let mut remote_cores = 0usize;
        for level in aum_region_levels() {
            let (start, end) = division.region_range(level);
            if end == start {
                continue;
            }
            // Cores of this region per socket.
            let mut per_domain = vec![0usize; self.domains];
            for core in start..end {
                per_domain[(core / per_socket).min(self.domains - 1)] += 1;
            }
            let majority = per_domain.iter().copied().max().unwrap_or(0);
            remote_cores += (end - start) - majority;
        }
        remote_cores as f64 / total_cores as f64
    }
}

fn aum_region_levels() -> [crate::topology::AuUsageLevel; 3] {
    crate::topology::AuUsageLevel::ALL
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcessorDivision;

    #[test]
    fn gen_a_has_two_domains() {
        let n = NumaConfig::for_spec(&PlatformSpec::gen_a());
        assert_eq!(n.domains, 2);
        assert!((n.local_bw.value() - 116.9).abs() < 0.1);
        assert!(!n.is_uniform());
    }

    #[test]
    fn gen_c_is_uniform() {
        let n = NumaConfig::for_spec(&PlatformSpec::gen_c());
        assert!(n.is_uniform());
        assert_eq!(n.naive_remote_frac(), 0.0);
        assert_eq!(
            n.effective_bandwidth(0.5).value(),
            PlatformSpec::gen_c().mem_bw.value()
        );
    }

    #[test]
    fn remote_traffic_costs_bandwidth() {
        let n = NumaConfig::for_spec(&PlatformSpec::gen_a());
        let all_local = n.effective_bandwidth(0.0);
        let half_remote = n.effective_bandwidth(0.5);
        let all_remote = n.effective_bandwidth(1.0);
        assert!((all_local.value() - 233.8).abs() < 0.1);
        assert!(half_remote < all_local);
        assert!(all_remote < half_remote);
        // Fully remote: bounded by interconnect × efficiency.
        assert!(all_remote.value() <= 116.9 * 0.7 + 1e-9);
    }

    #[test]
    fn naive_placement_is_half_remote_on_two_sockets() {
        let n = NumaConfig::for_spec(&PlatformSpec::gen_a());
        assert!((n.naive_remote_frac() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn socket_aligned_divisions_have_no_remote_traffic() {
        let n = NumaConfig::for_spec(&PlatformSpec::gen_a());
        // H48 fills socket 0; L24+N24 fill socket 1... L straddles? H=48
        // exactly covers socket 0, L covers cores 48-71, N covers 72-95 —
        // both within socket 1, each region wholly on one socket.
        let d = ProcessorDivision::new(48, 24, 24);
        assert_eq!(n.aware_remote_frac(&d, 96), 0.0);
    }

    #[test]
    fn straddling_regions_pay_for_their_minority_share() {
        let n = NumaConfig::for_spec(&PlatformSpec::gen_a());
        // H64 spans sockets (48 + 16): 16 cores are on the minority socket.
        let d = ProcessorDivision::new(64, 16, 16);
        let frac = n.aware_remote_frac(&d, 96);
        assert!((frac - 16.0 / 96.0).abs() < 1e-12, "got {frac}");
        // Aware placement always beats naive.
        assert!(frac < n.naive_remote_frac());
    }

    #[test]
    fn aware_beats_naive_for_every_profiled_division() {
        let n = NumaConfig::for_spec(&PlatformSpec::gen_a());
        for (h, l) in [(64, 16), (56, 24), (48, 32), (48, 24), (40, 32), (32, 24)] {
            let d = ProcessorDivision::new(h, l, 96 - h - l);
            let aware = n.aware_remote_frac(&d, 96);
            assert!(
                aware <= n.naive_remote_frac() + 1e-12,
                "aware {aware} must not exceed naive for {d}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "remote fraction")]
    fn bad_remote_fraction_rejected() {
        let n = NumaConfig::for_spec(&PlatformSpec::gen_a());
        let _ = n.effective_bandwidth(1.5);
    }
}
