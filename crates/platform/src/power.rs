//! Package power model.
//!
//! Per-core dynamic power follows the classic `P ∝ C·V²·f` with voltage
//! tracking frequency across license steps, giving an effective cubic
//! frequency dependence. Different instruction mixes load the core
//! differently: sustained AMX tiles switch far more transistors per cycle
//! than scalar code. Constants are calibrated so
//! that exclusive llama2-7b serving on GenA draws ≈270 W — the absolute
//! power the paper reports in §III-B.

use serde::{Deserialize, Serialize};

use crate::spec::PlatformSpec;
use crate::units::{Ghz, Watts};

/// Instruction-mix classes with distinct switching activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityClass {
    /// Core is idle / parked.
    Idle,
    /// Pointer-chasing, memory-latency-bound scalar code (mcf, OLTP).
    MemoryBound,
    /// General mixed integer code (SPECjbb, ads).
    Mixed,
    /// Dense scalar/vector compute (sysbench prime loops).
    ScalarCompute,
    /// AVX-512-dominated execution (decode phase).
    Avx,
    /// AMX-tile-dominated execution (prefill phase, dense GEMM).
    Amx,
}

impl ActivityClass {
    /// Relative switching-activity factor of the class (scalar compute = 1).
    #[must_use]
    pub fn activity_factor(self) -> f64 {
        match self {
            ActivityClass::Idle => 0.0,
            ActivityClass::MemoryBound => 0.55,
            ActivityClass::Mixed => 0.8,
            ActivityClass::ScalarCompute => 1.0,
            ActivityClass::Avx => 1.35,
            ActivityClass::Amx => 2.1,
        }
    }
}

/// One homogeneous group of cores for power accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreGroupPower {
    /// Number of cores in the group.
    pub cores: usize,
    /// Operating frequency of the group.
    pub freq: Ghz,
    /// Dominant instruction mix.
    pub class: ActivityClass,
    /// Duty cycle in `[0, 1]` (fraction of time the cores are active).
    pub duty: f64,
}

/// Calibrated power model of a platform.
///
/// # Examples
///
/// ```
/// use aum_platform::power::{ActivityClass, CoreGroupPower, PowerModel};
/// use aum_platform::spec::PlatformSpec;
/// use aum_platform::units::Ghz;
///
/// let spec = PlatformSpec::gen_a();
/// let model = PowerModel::for_spec(&spec);
/// let idle = model.platform_power(&[], 0.0);
/// assert!(idle.value() > 0.0, "uncore power is always drawn");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static power per core (leakage + clocks), W.
    idle_per_core: f64,
    /// Dynamic power of one core at reference frequency and activity 1.0, W.
    dyn_coeff: f64,
    /// Reference frequency for the dynamic coefficient.
    ref_freq: Ghz,
    /// Constant uncore power (mesh, IO, memory PHY idle), W.
    uncore_base: f64,
    /// Extra uncore power at full memory-bandwidth utilization, W.
    uncore_bw: f64,
    cores: usize,
}

impl PowerModel {
    /// Calibrated model for a platform spec.
    #[must_use]
    pub fn for_spec(spec: &PlatformSpec) -> Self {
        // Uncore scales with socket count and memory build-out; the dynamic
        // coefficient is shared across generations (same core family class).
        let sockets = spec.sockets as f64;
        PowerModel {
            idle_per_core: 0.85,
            dyn_coeff: 0.95,
            ref_freq: spec.allcore_turbo,
            uncore_base: 28.0 * sockets,
            uncore_bw: 14.0 * sockets,
            cores: spec.total_cores(),
        }
    }

    /// Power of one core at `freq` with the given class and duty cycle.
    #[must_use]
    pub fn core_power(&self, freq: Ghz, class: ActivityClass, duty: f64) -> Watts {
        let ratio = (freq.value() / self.ref_freq.value()).max(0.0);
        let dynamic = self.dyn_coeff * class.activity_factor() * ratio.powi(3);
        Watts(self.idle_per_core + dynamic * duty.clamp(0.0, 1.0))
    }

    /// Total package power for the given core groups plus uncore power at
    /// `bw_utilization` (fraction of sustainable memory bandwidth in use).
    /// Cores not covered by any group are accounted as idle.
    #[must_use]
    pub fn platform_power(&self, groups: &[CoreGroupPower], bw_utilization: f64) -> Watts {
        let mut total = 0.0;
        let mut covered = 0usize;
        for g in groups {
            covered += g.cores;
            total += self.core_power(g.freq, g.class, g.duty).value() * g.cores as f64;
        }
        let idle_cores = self.cores.saturating_sub(covered);
        total += self.idle_per_core * idle_cores as f64;
        total += self.uncore_base + self.uncore_bw * bw_utilization.clamp(0.0, 1.0);
        Watts(total)
    }

    /// The package power that would be drawn if every core ran the most
    /// power-hungry mix at turbo — a normalizer for "power stress" terms.
    #[must_use]
    pub fn max_power(&self) -> Watts {
        let per_core = self
            .core_power(self.ref_freq, ActivityClass::Amx, 1.0)
            .value();
        Watts(per_core * self.cores as f64 + self.uncore_base + self.uncore_bw)
    }

    /// Static (leakage + clock-tree) power of one idle core. Subtracting
    /// this from [`core_power`](Self::core_power) isolates the dynamic
    /// component — the attribution ledger splits the two.
    #[must_use]
    pub fn idle_core_power(&self) -> Watts {
        Watts(self.idle_per_core)
    }

    /// Uncore (mesh + memory-controller) power at the given fraction of
    /// sustainable memory bandwidth in use. `uncore_power(0.0)` is the
    /// uncore's static floor.
    #[must_use]
    pub fn uncore_power(&self, bw_utilization: f64) -> Watts {
        Watts(self.uncore_base + self.uncore_bw * bw_utilization.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::for_spec(&PlatformSpec::gen_a())
    }

    #[test]
    fn activity_factors_are_ordered() {
        let mut last = -1.0;
        for class in [
            ActivityClass::Idle,
            ActivityClass::MemoryBound,
            ActivityClass::Mixed,
            ActivityClass::ScalarCompute,
            ActivityClass::Avx,
            ActivityClass::Amx,
        ] {
            let f = class.activity_factor();
            assert!(f > last, "activity factors must increase with intensity");
            last = f;
        }
    }

    #[test]
    fn core_power_scales_cubically_with_freq() {
        let m = model();
        let lo = m.core_power(Ghz(1.6), ActivityClass::Amx, 1.0).value() - 0.85;
        let hi = m.core_power(Ghz(3.2), ActivityClass::Amx, 1.0).value() - 0.85;
        assert!(
            (hi / lo - 8.0).abs() < 1e-6,
            "halving frequency cuts dynamic power 8x"
        );
    }

    #[test]
    fn duty_cycle_scales_dynamic_only() {
        let m = model();
        let idle = m.core_power(Ghz(3.2), ActivityClass::Amx, 0.0).value();
        assert!((idle - 0.85).abs() < 1e-12);
        let half = m.core_power(Ghz(3.2), ActivityClass::Amx, 0.5).value();
        let full = m.core_power(Ghz(3.2), ActivityClass::Amx, 1.0).value();
        assert!((full - 0.85 - 2.0 * (half - 0.85)).abs() < 1e-9);
    }

    #[test]
    fn uncovered_cores_idle() {
        let m = model();
        let none = m.platform_power(&[], 0.0).value();
        // 96 idle cores + uncore base (2 sockets).
        assert!((none - (96.0 * 0.85 + 56.0)).abs() < 1e-9);
    }

    #[test]
    fn accessors_reconstruct_platform_power() {
        // The attribution ledger re-derives package power from the static
        // and dynamic pieces; the accessors must decompose exactly.
        let m = model();
        let groups = [
            CoreGroupPower {
                cores: 32,
                freq: Ghz(2.5),
                class: ActivityClass::Amx,
                duty: 0.95,
            },
            CoreGroupPower {
                cores: 40,
                freq: Ghz(3.1),
                class: ActivityClass::Avx,
                duty: 0.9,
            },
        ];
        let bw = 0.7;
        let idle = m.idle_core_power().value();
        let mut rebuilt = 96.0 * idle + m.uncore_power(bw).value();
        for g in &groups {
            rebuilt += (m.core_power(g.freq, g.class, g.duty).value() - idle) * g.cores as f64;
        }
        let reference = m.platform_power(&groups, bw).value();
        assert!(
            (rebuilt - reference).abs() < 1e-9,
            "rebuilt {rebuilt} vs reference {reference}"
        );
        assert!((m.uncore_power(0.0).value() - 56.0).abs() < 1e-12);
        assert!(m.uncore_power(2.0).value() <= m.uncore_power(1.0).value() + 1e-12);
    }

    #[test]
    fn exclusive_llm_serving_power_near_270w() {
        // Calibration target from §III-B: GenA exclusive serving ≈ 270 W.
        // Typical division: 32 prefill cores at 2.5 GHz AMX, 64 decode cores
        // at 3.1 GHz AVX, heavy bandwidth use.
        let m = model();
        let p = m
            .platform_power(
                &[
                    CoreGroupPower {
                        cores: 32,
                        freq: Ghz(2.5),
                        class: ActivityClass::Amx,
                        duty: 0.95,
                    },
                    CoreGroupPower {
                        cores: 64,
                        freq: Ghz(3.1),
                        class: ActivityClass::Avx,
                        duty: 0.9,
                    },
                ],
                0.85,
            )
            .value();
        assert!((240.0..=300.0).contains(&p), "expected ≈270 W, got {p}");
    }

    #[test]
    fn platform_power_monotone_in_bw() {
        let m = model();
        let lo = m.platform_power(&[], 0.1);
        let hi = m.platform_power(&[], 0.9);
        assert!(hi > lo);
    }

    #[test]
    fn max_power_bounds_everything() {
        let m = model();
        let anything = m.platform_power(
            &[CoreGroupPower {
                cores: 96,
                freq: Ghz(3.2),
                class: ActivityClass::Avx,
                duty: 1.0,
            }],
            1.0,
        );
        assert!(m.max_power() > anything);
    }

    #[test]
    fn gen_c_uncore_is_single_socket() {
        let c = PowerModel::for_spec(&PlatformSpec::gen_c());
        let idle = c.platform_power(&[], 0.0).value();
        assert!((idle - (120.0 * 0.85 + 28.0)).abs() < 1e-9);
    }
}
