//! Resource-partitioning knobs modeled after Intel Resource Director
//! Technology: Cache Allocation Technology (CAT) for L2/LLC ways and Memory
//! Bandwidth Allocation (MBA) throttling (paper §VI-B3).

use serde::{Deserialize, Serialize};

use crate::spec::PlatformSpec;

/// The three partitionable backend resources the paper profiles as the
/// tuple `R_AU = (R_L2C, R_LLC, R_BW)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Private mid-level cache ways.
    L2Cache,
    /// Shared last-level cache ways.
    Llc,
    /// Memory bandwidth share.
    MemBandwidth,
}

impl ResourceKind {
    /// All partitionable resources.
    pub const ALL: [ResourceKind; 3] = [
        ResourceKind::L2Cache,
        ResourceKind::Llc,
        ResourceKind::MemBandwidth,
    ];
}

impl core::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ResourceKind::L2Cache => write!(f, "L2"),
            ResourceKind::Llc => write!(f, "LLC"),
            ResourceKind::MemBandwidth => write!(f, "MemBW"),
        }
    }
}

/// Resource assignment for one class of service: the paper's three-tuple of
/// L2 ways, LLC ways and an MBA bandwidth percentage.
///
/// # Examples
///
/// ```
/// use aum_platform::rdt::ResourceVector;
///
/// // Table III "High" bucket row: L2 ways 0-2, LLC ways 0-1, 50% bandwidth.
/// let r = ResourceVector::new(3, 2, 0.5);
/// assert_eq!(r.llc_ways, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceVector {
    /// L2 cache ways granted.
    pub l2_ways: u32,
    /// LLC ways granted.
    pub llc_ways: u32,
    /// Memory-bandwidth share in `(0, 1]` (MBA throttle level).
    pub mem_bw_frac: f64,
}

impl ResourceVector {
    /// Creates a resource vector.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bw_frac` is outside `(0, 1]`.
    #[must_use]
    pub fn new(l2_ways: u32, llc_ways: u32, mem_bw_frac: f64) -> Self {
        assert!(
            mem_bw_frac > 0.0 && mem_bw_frac <= 1.0,
            "memory bandwidth fraction must be in (0,1], got {mem_bw_frac}"
        );
        ResourceVector {
            l2_ways,
            llc_ways,
            mem_bw_frac,
        }
    }

    /// The "everything" vector for a platform: all ways, full bandwidth.
    #[must_use]
    pub fn full(spec: &PlatformSpec) -> Self {
        ResourceVector::new(spec.l2_ways, spec.llc_ways, 1.0)
    }

    /// Reads the allocation level of one resource dimension as a plain
    /// number (ways, or fraction×100 for bandwidth) — used for CDF reports.
    #[must_use]
    pub fn level(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::L2Cache => f64::from(self.l2_ways),
            ResourceKind::Llc => f64::from(self.llc_ways),
            ResourceKind::MemBandwidth => self.mem_bw_frac * 100.0,
        }
    }
}

/// Error produced when an [`RdtAllocation`] violates platform constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateAllocationError {
    /// Combined LLC ways exceed the platform's way count.
    LlcOversubscribed {
        /// Ways requested by both classes together.
        requested: u32,
        /// Ways the platform offers.
        available: u32,
    },
    /// Combined L2 ways exceed the platform's way count.
    L2Oversubscribed {
        /// Ways requested by both classes together.
        requested: u32,
        /// Ways the platform offers.
        available: u32,
    },
    /// A class was granted zero LLC ways, which CAT does not permit.
    EmptyWayMask,
}

impl core::fmt::Display for ValidateAllocationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ValidateAllocationError::LlcOversubscribed {
                requested,
                available,
            } => {
                write!(
                    f,
                    "llc ways oversubscribed: {requested} requested, {available} available"
                )
            }
            ValidateAllocationError::L2Oversubscribed {
                requested,
                available,
            } => {
                write!(
                    f,
                    "l2 ways oversubscribed: {requested} requested, {available} available"
                )
            }
            ValidateAllocationError::EmptyWayMask => {
                write!(f, "a class of service must hold at least one llc way")
            }
        }
    }
}

impl std::error::Error for ValidateAllocationError {}

/// A full partitioning decision: one resource vector for the AU (LLM
/// serving) class and one for the shared best-effort class.
///
/// # Examples
///
/// ```
/// use aum_platform::rdt::{RdtAllocation, ResourceVector};
/// use aum_platform::spec::PlatformSpec;
///
/// let spec = PlatformSpec::gen_a();
/// let alloc = RdtAllocation::new(
///     ResourceVector::new(12, 10, 0.8),
///     ResourceVector::new(4, 6, 0.2),
/// );
/// assert!(alloc.validate(&spec).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RdtAllocation {
    /// Resources granted to the AU application (latency-critical class).
    pub au: ResourceVector,
    /// Resources granted to co-located shared applications.
    pub shared: ResourceVector,
}

impl RdtAllocation {
    /// Creates an allocation from the two class vectors.
    #[must_use]
    pub const fn new(au: ResourceVector, shared: ResourceVector) -> Self {
        RdtAllocation { au, shared }
    }

    /// The unmanaged default: both classes see the full machine (no
    /// partitioning), which is what AUV-oblivious SMT sharing does.
    #[must_use]
    pub fn unpartitioned(spec: &PlatformSpec) -> Self {
        RdtAllocation::new(ResourceVector::full(spec), ResourceVector::full(spec))
    }

    /// Checks the allocation against platform way counts.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateAllocationError`] if way masks oversubscribe the
    /// cache or a class holds no LLC ways.
    pub fn validate(&self, spec: &PlatformSpec) -> Result<(), ValidateAllocationError> {
        if self.au.llc_ways == 0 || self.shared.llc_ways == 0 {
            return Err(ValidateAllocationError::EmptyWayMask);
        }
        let llc = self.au.llc_ways + self.shared.llc_ways;
        if llc > spec.llc_ways {
            return Err(ValidateAllocationError::LlcOversubscribed {
                requested: llc,
                available: spec.llc_ways,
            });
        }
        let l2 = self.au.l2_ways + self.shared.l2_ways;
        if l2 > spec.l2_ways {
            return Err(ValidateAllocationError::L2Oversubscribed {
                requested: l2,
                available: spec.l2_ways,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_allocation_passes() {
        let spec = PlatformSpec::gen_a();
        let alloc = RdtAllocation::new(
            ResourceVector::new(8, 8, 0.5),
            ResourceVector::new(8, 8, 0.5),
        );
        assert!(alloc.validate(&spec).is_ok());
    }

    #[test]
    fn oversubscribed_llc_fails() {
        let spec = PlatformSpec::gen_a();
        let alloc = RdtAllocation::new(
            ResourceVector::new(8, 12, 0.5),
            ResourceVector::new(8, 12, 0.5),
        );
        assert_eq!(
            alloc.validate(&spec),
            Err(ValidateAllocationError::LlcOversubscribed {
                requested: 24,
                available: 16
            })
        );
    }

    #[test]
    fn oversubscribed_l2_fails() {
        let spec = PlatformSpec::gen_a();
        let alloc = RdtAllocation::new(
            ResourceVector::new(12, 8, 0.5),
            ResourceVector::new(12, 8, 0.5),
        );
        assert!(matches!(
            alloc.validate(&spec),
            Err(ValidateAllocationError::L2Oversubscribed { .. })
        ));
    }

    #[test]
    fn empty_mask_fails() {
        let spec = PlatformSpec::gen_a();
        let alloc = RdtAllocation::new(
            ResourceVector::new(8, 0, 0.5),
            ResourceVector::new(8, 8, 0.5),
        );
        assert_eq!(
            alloc.validate(&spec),
            Err(ValidateAllocationError::EmptyWayMask)
        );
    }

    #[test]
    #[should_panic(expected = "memory bandwidth fraction")]
    fn zero_bandwidth_rejected() {
        let _ = ResourceVector::new(1, 1, 0.0);
    }

    #[test]
    fn unpartitioned_validates_as_overlap() {
        // Unpartitioned masks overlap fully; validate() models *partitioned*
        // setups, so the overlap is reported as oversubscription.
        let spec = PlatformSpec::gen_a();
        let alloc = RdtAllocation::unpartitioned(&spec);
        assert!(alloc.validate(&spec).is_err());
        assert_eq!(alloc.au.llc_ways, spec.llc_ways);
    }

    #[test]
    fn levels_read_back() {
        let r = ResourceVector::new(3, 2, 0.4);
        assert_eq!(r.level(ResourceKind::L2Cache), 3.0);
        assert_eq!(r.level(ResourceKind::Llc), 2.0);
        assert!((r.level(ResourceKind::MemBandwidth) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = ValidateAllocationError::LlcOversubscribed {
            requested: 20,
            available: 16,
        };
        assert!(format!("{e}").contains("oversubscribed"));
    }
}
