//! SMT (hyperthread) contention model.
//!
//! The SMT-AU baseline shares each physical core between the AU application
//! and a best-effort sibling thread. The paper finds (Fig 9) that the
//! resulting interference is *workload-shaped*: a memory-intensive sibling
//! (OLAP) degrades AU latency by >200% through cache pollution and
//! bandwidth pressure, while a scalar-compute sibling interferes <10%
//! directly (AMX occupies dedicated tile ports) and hurts mainly through
//! the frequency reduction its power draw triggers.
//!
//! This module models only the *core-local* SMT effects; global bandwidth
//! contention is arbitrated by [`crate::membw`] and frequency coupling by
//! [`crate::freq`].

use serde::{Deserialize, Serialize};

use crate::topology::AuUsageLevel;

/// Core-local contention fingerprint of a sibling workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmtCorunnerProfile {
    /// Demand on the execution ports the AU pipeline also needs, `[0, 1]`.
    pub port_pressure: f64,
    /// L1/L2 pollution inflicted on the sibling, `[0, 1]`.
    pub cache_pollution: f64,
    /// Front-end (i-cache, decode) pressure, `[0, 1]`.
    pub frontend_pressure: f64,
    /// How strongly this workload itself suffers from a busy sibling, `[0, 1]`.
    pub be_sensitivity: f64,
}

impl SmtCorunnerProfile {
    /// Creates a profile; all fields are clamped to `[0, 1]`.
    #[must_use]
    pub fn new(
        port_pressure: f64,
        cache_pollution: f64,
        frontend_pressure: f64,
        be_sensitivity: f64,
    ) -> Self {
        SmtCorunnerProfile {
            port_pressure: port_pressure.clamp(0.0, 1.0),
            cache_pollution: cache_pollution.clamp(0.0, 1.0),
            frontend_pressure: frontend_pressure.clamp(0.0, 1.0),
            be_sensitivity: be_sensitivity.clamp(0.0, 1.0),
        }
    }
}

/// Mutual slowdown of the two hyperthreads of a shared core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmtImpact {
    /// Multiplier ≥ 1 on the AU side's *compute* phases (port contention,
    /// front-end pressure).
    pub au_compute_slowdown: f64,
    /// Multiplier ≥ 1 on the AU side's *memory* phases (L1/L2 pollution).
    pub au_memory_slowdown: f64,
    /// Multiplier ≥ 1 on BE-side latency (i.e. BE throughput divides by it).
    pub be_slowdown: f64,
}

impl SmtImpact {
    /// Combined worst-case AU slowdown (for coarse comparisons).
    #[must_use]
    pub fn au_slowdown(&self) -> f64 {
        self.au_compute_slowdown.max(self.au_memory_slowdown)
    }
}

/// Weight of port contention in AU slowdown.
const W_PORT: f64 = 0.35;
/// Weight of cache pollution in AU slowdown.
const W_CACHE: f64 = 1.1;
/// Weight of front-end pressure in AU slowdown.
const W_FRONTEND: f64 = 0.25;

/// Sensitivity of an AU usage level to sibling cache pollution. The decode
/// phase streams weights through the cache hierarchy and suffers most; the
/// prefill phase is compute-dense and a bit more tolerant.
fn cache_weight(level: AuUsageLevel) -> f64 {
    match level {
        AuUsageLevel::High => 0.75,
        AuUsageLevel::Low => 1.0,
        AuUsageLevel::None => 0.0,
    }
}

/// Port overlap of an AU usage level with a generic sibling: AMX tile math
/// uses dedicated TMUL ports, so port fights are milder for High usage.
fn port_weight(level: AuUsageLevel) -> f64 {
    match level {
        AuUsageLevel::High => 0.45,
        AuUsageLevel::Low => 1.0,
        AuUsageLevel::None => 0.0,
    }
}

/// How busy an AU thread keeps the shared core's common resources, i.e. how
/// much the BE sibling suffers.
fn au_occupancy(level: AuUsageLevel) -> f64 {
    match level {
        AuUsageLevel::High => 1.0,
        AuUsageLevel::Low => 0.85,
        AuUsageLevel::None => 0.0,
    }
}

/// Computes the mutual SMT slowdowns when a fraction `sharing_frac` of the
/// AU application's cores host a busy sibling of the given profile.
///
/// # Examples
///
/// ```
/// use aum_platform::smt::{smt_impact, SmtCorunnerProfile};
/// use aum_platform::topology::AuUsageLevel;
///
/// // A polluting, memory-hungry sibling on every core:
/// let olap = SmtCorunnerProfile::new(0.3, 0.95, 0.3, 0.9);
/// let i = smt_impact(olap, AuUsageLevel::Low, 1.0);
/// assert!(i.au_memory_slowdown > 1.5);
/// assert!(i.be_slowdown > 1.0);
/// ```
#[must_use]
pub fn smt_impact(
    profile: SmtCorunnerProfile,
    au_level: AuUsageLevel,
    sharing_frac: f64,
) -> SmtImpact {
    let share = sharing_frac.clamp(0.0, 1.0);
    if au_level == AuUsageLevel::None || share == 0.0 {
        return SmtImpact {
            au_compute_slowdown: 1.0,
            au_memory_slowdown: 1.0,
            be_slowdown: 1.0,
        };
    }
    let compute_pen = W_PORT * profile.port_pressure * port_weight(au_level)
        + W_FRONTEND * profile.frontend_pressure;
    let memory_pen = W_CACHE * profile.cache_pollution * cache_weight(au_level);
    let be_pen = 0.5 * profile.be_sensitivity * au_occupancy(au_level);
    SmtImpact {
        au_compute_slowdown: 1.0 + share * compute_pen,
        au_memory_slowdown: 1.0 + share * memory_pen,
        be_slowdown: 1.0 + be_pen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn olap() -> SmtCorunnerProfile {
        SmtCorunnerProfile::new(0.3, 0.95, 0.3, 0.9)
    }

    fn compute() -> SmtCorunnerProfile {
        SmtCorunnerProfile::new(0.8, 0.1, 0.1, 0.3)
    }

    #[test]
    fn no_sharing_no_impact() {
        let i = smt_impact(olap(), AuUsageLevel::Low, 0.0);
        assert_eq!(i.au_slowdown(), 1.0);
        assert_eq!(i.be_slowdown, 1.0);
    }

    #[test]
    fn none_level_is_untouched() {
        let i = smt_impact(olap(), AuUsageLevel::None, 1.0);
        assert_eq!(i.au_slowdown(), 1.0);
    }

    #[test]
    fn impact_scales_with_sharing_pressure() {
        let mut last = 1.0;
        for frac in [0.25, 0.5, 0.75, 1.0] {
            let i = smt_impact(olap(), AuUsageLevel::Low, frac);
            assert!(i.au_slowdown() > last);
            last = i.au_slowdown();
        }
    }

    #[test]
    fn memory_sibling_pollutes_memory_leg_compute_sibling_fights_ports() {
        // Fig 9b: direct interference from Compute is small (decode is
        // memory-bound and Compute barely touches the memory path), while
        // OLAP's pollution lands exactly on decode's critical leg.
        let o = smt_impact(olap(), AuUsageLevel::Low, 1.0);
        let c = smt_impact(compute(), AuUsageLevel::Low, 1.0);
        assert!(
            o.au_memory_slowdown > 1.8,
            "OLAP memory slowdown {}",
            o.au_memory_slowdown
        );
        assert!(
            c.au_memory_slowdown < 1.2,
            "Compute memory slowdown {}",
            c.au_memory_slowdown
        );
        assert!(c.au_compute_slowdown > o.au_compute_slowdown);
    }

    #[test]
    fn prefill_tolerates_pollution_better_than_decode() {
        let prefill = smt_impact(olap(), AuUsageLevel::High, 1.0);
        let decode = smt_impact(olap(), AuUsageLevel::Low, 1.0);
        assert!(prefill.au_memory_slowdown < decode.au_memory_slowdown);
    }

    #[test]
    fn be_side_suffers_from_busy_au_sibling() {
        let i = smt_impact(olap(), AuUsageLevel::High, 1.0);
        assert!(
            i.be_slowdown > 1.3,
            "OLAP side degraded >40% in Fig 9a, got {}",
            i.be_slowdown
        );
    }

    #[test]
    fn profile_clamps_inputs() {
        let p = SmtCorunnerProfile::new(5.0, -1.0, 0.5, 2.0);
        assert_eq!(p.port_pressure, 1.0);
        assert_eq!(p.cache_pollution, 0.0);
        assert_eq!(p.be_sensitivity, 1.0);
    }

    #[test]
    fn sharing_frac_clamps() {
        let a = smt_impact(olap(), AuUsageLevel::Low, 5.0);
        let b = smt_impact(olap(), AuUsageLevel::Low, 1.0);
        assert_eq!(a.au_memory_slowdown, b.au_memory_slowdown);
    }
}
