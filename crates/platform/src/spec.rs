//! Hardware specifications of the evaluated platforms (paper Table I).
//!
//! The three presets mirror the paper's GenA/GenB/GenC machines:
//!
//! | Platform | Generation      | CPU            | cores | AVX/AMX TFLOPS | base   | LLC/socket | memory        | BW        |
//! |----------|-----------------|----------------|-------|----------------|--------|-----------|---------------|-----------|
//! | GenA     | Sapphire Rapids | Xeon 8475B     | 48×2  | 25.6 / 206.4   | 2.7GHz | 97.5 MB   | DDR5 1 TB     | 233.8 GB/s |
//! | GenB     | Sapphire Rapids | Xeon Max 9468  | 48×2  | 25.6 / 206.4   | 2.1GHz | 105 MB    | HBM 128 GB    | 588 GB/s  |
//! | GenC     | Granite Rapids  | Xeon 6982P-C   | 120×1 | 32 / 344       | 2.8GHz | 504 MB    | MCR 768 GB    | 600 GB/s  |

use serde::{Deserialize, Serialize};

use crate::units::{GbPerSec, Ghz, Tflops};

/// Which paper platform a spec corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// 4th-gen Xeon Sapphire Rapids (2022).
    SapphireRapids,
    /// 6th-gen Xeon Granite Rapids (2024).
    GraniteRapids,
}

impl core::fmt::Display for Generation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Generation::SapphireRapids => write!(f, "Sapphire Rapids"),
            Generation::GraniteRapids => write!(f, "Granite Rapids"),
        }
    }
}

/// Memory technology attached to the socket (Table I "Memory" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Conventional DDR5 DIMMs.
    Ddr5,
    /// On-package high-bandwidth memory (Xeon Max).
    Hbm,
    /// Multiplexer-combined-rank DIMMs (Granite Rapids).
    Mcr,
}

impl core::fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemoryKind::Ddr5 => write!(f, "DDR5"),
            MemoryKind::Hbm => write!(f, "HBM"),
            MemoryKind::Mcr => write!(f, "MCR"),
        }
    }
}

/// Full description of an AU-enabled CPU platform.
///
/// # Examples
///
/// ```
/// use aum_platform::spec::PlatformSpec;
///
/// let gen_a = PlatformSpec::gen_a();
/// assert_eq!(gen_a.total_cores(), 96);
/// assert_eq!(gen_a.amx_peak.value(), 206.4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Short platform label ("GenA"/"GenB"/"GenC" for the presets).
    pub name: String,
    /// Microarchitecture generation.
    pub generation: Generation,
    /// Marketing CPU model string.
    pub cpu_model: String,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Socket count.
    pub sockets: usize,
    /// Platform-wide peak AVX-512 BF16 throughput.
    pub avx_peak: Tflops,
    /// Platform-wide peak AMX BF16 throughput.
    pub amx_peak: Tflops,
    /// Nominal base frequency.
    pub base_freq: Ghz,
    /// All-core turbo frequency with no AU activity (the paper measures
    /// 3.2 GHz on GenA with turbostat, §IV-B1).
    pub allcore_turbo: Ghz,
    /// L1 instruction cache per core, KiB.
    pub l1i_kb: u32,
    /// L1 data cache per core, KiB.
    pub l1d_kb: u32,
    /// L2 cache per core, MiB.
    pub l2_mb_per_core: f64,
    /// Last-level cache per socket, MiB.
    pub llc_mb_per_socket: f64,
    /// CAT-partitionable LLC ways (Table III allocates ways 0..=15).
    pub llc_ways: u32,
    /// Partitionable L2 ways (Table III allocates ways 0..=15).
    pub l2_ways: u32,
    /// Memory technology.
    pub memory: MemoryKind,
    /// Installed memory capacity, GiB.
    pub memory_gb: u64,
    /// Peak memory bandwidth of the platform.
    pub mem_bw: GbPerSec,
    /// Platform thermal design power (package power budget the frequency
    /// governor must respect).
    pub tdp: crate::units::Watts,
    /// Acquisition cost in USD; GenA's $7200 is given in §III-B, others are
    /// scaled by their relative compute/memory build-out for the TCO study.
    pub cost_usd: f64,
}

impl PlatformSpec {
    /// Table I GenA: Sapphire Rapids Xeon 8475B, DDR5.
    #[must_use]
    pub fn gen_a() -> Self {
        PlatformSpec {
            name: "GenA".to_owned(),
            generation: Generation::SapphireRapids,
            cpu_model: "Xeon 8475B".to_owned(),
            cores_per_socket: 48,
            sockets: 2,
            avx_peak: Tflops(25.6),
            amx_peak: Tflops(206.4),
            base_freq: Ghz(2.7),
            allcore_turbo: Ghz(3.2),
            l1i_kb: 32,
            l1d_kb: 48,
            l2_mb_per_core: 2.0,
            llc_mb_per_socket: 97.5,
            llc_ways: 16,
            l2_ways: 16,
            memory: MemoryKind::Ddr5,
            memory_gb: 1024,
            mem_bw: GbPerSec(233.8),
            tdp: crate::units::Watts(300.0),
            cost_usd: 7200.0,
        }
    }

    /// Table I GenB: Sapphire Rapids Xeon Max 9468 with HBM.
    #[must_use]
    pub fn gen_b() -> Self {
        PlatformSpec {
            name: "GenB".to_owned(),
            generation: Generation::SapphireRapids,
            cpu_model: "Xeon Max 9468".to_owned(),
            cores_per_socket: 48,
            sockets: 2,
            avx_peak: Tflops(25.6),
            amx_peak: Tflops(206.4),
            base_freq: Ghz(2.1),
            allcore_turbo: Ghz(2.6),
            l1i_kb: 32,
            l1d_kb: 48,
            l2_mb_per_core: 2.0,
            llc_mb_per_socket: 105.0,
            llc_ways: 16,
            l2_ways: 16,
            memory: MemoryKind::Hbm,
            memory_gb: 128,
            mem_bw: GbPerSec(588.0),
            tdp: crate::units::Watts(350.0),
            cost_usd: 9800.0,
        }
    }

    /// Table I GenC: Granite Rapids Xeon 6982P-C with MCR DIMMs.
    #[must_use]
    pub fn gen_c() -> Self {
        PlatformSpec {
            name: "GenC".to_owned(),
            generation: Generation::GraniteRapids,
            cpu_model: "Xeon 6982P-C".to_owned(),
            cores_per_socket: 120,
            sockets: 1,
            avx_peak: Tflops(32.0),
            amx_peak: Tflops(344.0),
            base_freq: Ghz(2.8),
            allcore_turbo: Ghz(3.4),
            l1i_kb: 64,
            l1d_kb: 48,
            l2_mb_per_core: 2.0,
            llc_mb_per_socket: 504.0,
            llc_ways: 16,
            l2_ways: 16,
            memory: MemoryKind::Mcr,
            memory_gb: 768,
            mem_bw: GbPerSec(600.0),
            tdp: crate::units::Watts(500.0),
            cost_usd: 12400.0,
        }
    }

    /// The three paper presets in order.
    #[must_use]
    pub fn presets() -> Vec<PlatformSpec> {
        vec![Self::gen_a(), Self::gen_b(), Self::gen_c()]
    }

    /// Total physical cores across sockets.
    #[must_use]
    pub fn total_cores(&self) -> usize {
        self.cores_per_socket * self.sockets
    }

    /// Total LLC capacity across sockets, MiB.
    #[must_use]
    pub fn llc_mb_total(&self) -> f64 {
        self.llc_mb_per_socket * self.sockets as f64
    }

    /// LLC capacity of one CAT way across the platform, MiB.
    #[must_use]
    pub fn llc_mb_per_way(&self) -> f64 {
        self.llc_mb_total() / f64::from(self.llc_ways)
    }

    /// Per-core peak AMX throughput at the frequency the vendor quotes the
    /// Table I TFLOPS numbers for.
    #[must_use]
    pub fn amx_peak_per_core(&self) -> Tflops {
        Tflops(self.amx_peak.value() / self.total_cores() as f64)
    }

    /// Per-core peak AVX-512 throughput.
    #[must_use]
    pub fn avx_peak_per_core(&self) -> Tflops {
        Tflops(self.avx_peak.value() / self.total_cores() as f64)
    }

    /// Returns a copy restricted to `cores` physical cores (e.g. a sub-NUMA
    /// slice for small experiments such as the Table III bucket example).
    /// Peak throughputs, LLC capacity and memory bandwidth scale
    /// proportionally; per-core properties are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds the platform's total cores.
    #[must_use]
    pub fn with_cores(&self, cores: usize) -> PlatformSpec {
        assert!(cores > 0, "a platform slice needs at least one core");
        assert!(
            cores <= self.total_cores(),
            "cannot slice {cores} cores from a {}-core platform",
            self.total_cores()
        );
        let frac = cores as f64 / self.total_cores() as f64;
        let mut spec = self.clone();
        spec.name = format!("{}/{}c", self.name, cores);
        spec.cores_per_socket = cores;
        spec.sockets = 1;
        spec.avx_peak = self.avx_peak * frac;
        spec.amx_peak = self.amx_peak * frac;
        spec.llc_mb_per_socket = self.llc_mb_total() * frac;
        spec.mem_bw = self.mem_bw * frac;
        spec.tdp = self.tdp * frac;
        spec.cost_usd = self.cost_usd * frac;
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let a = PlatformSpec::gen_a();
        assert_eq!(a.total_cores(), 96);
        assert_eq!(a.base_freq, Ghz(2.7));
        assert_eq!(a.mem_bw, GbPerSec(233.8));
        assert_eq!(a.memory, MemoryKind::Ddr5);

        let b = PlatformSpec::gen_b();
        assert_eq!(b.total_cores(), 96);
        assert_eq!(b.base_freq, Ghz(2.1));
        assert_eq!(b.mem_bw, GbPerSec(588.0));
        assert_eq!(b.memory, MemoryKind::Hbm);

        let c = PlatformSpec::gen_c();
        assert_eq!(c.total_cores(), 120);
        assert_eq!(c.amx_peak, Tflops(344.0));
        assert_eq!(c.memory, MemoryKind::Mcr);
        assert_eq!(c.llc_mb_per_socket, 504.0);
    }

    #[test]
    fn per_core_peaks_divide_out() {
        let a = PlatformSpec::gen_a();
        let per_core = a.amx_peak_per_core().value();
        assert!((per_core * 96.0 - 206.4).abs() < 1e-9);
        assert!(per_core > a.avx_peak_per_core().value());
    }

    #[test]
    fn llc_way_capacity() {
        let a = PlatformSpec::gen_a();
        assert!((a.llc_mb_total() - 195.0).abs() < 1e-9);
        assert!((a.llc_mb_per_way() - 195.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn with_cores_scales_shared_resources() {
        let a = PlatformSpec::gen_a();
        let slice = a.with_cores(24);
        assert_eq!(slice.total_cores(), 24);
        assert!((slice.amx_peak.value() - 206.4 / 4.0).abs() < 1e-9);
        assert!((slice.mem_bw.value() - 233.8 / 4.0).abs() < 1e-9);
        // Per-core properties preserved.
        assert!((slice.amx_peak_per_core().value() - a.amx_peak_per_core().value()).abs() < 1e-12);
        assert_eq!(slice.l2_mb_per_core, a.l2_mb_per_core);
    }

    #[test]
    #[should_panic(expected = "cannot slice")]
    fn with_cores_rejects_oversize() {
        let _ = PlatformSpec::gen_a().with_cores(1000);
    }

    #[test]
    fn presets_are_three() {
        assert_eq!(PlatformSpec::presets().len(), 3);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", Generation::SapphireRapids), "Sapphire Rapids");
        assert_eq!(format!("{}", MemoryKind::Hbm), "HBM");
    }
}
