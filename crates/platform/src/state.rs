//! Integrated platform simulator.
//!
//! [`PlatformSim`] composes the frequency governor, thermal reservoirs,
//! power model and bandwidth pool into one steppable object. The experiment
//! harness describes the instantaneous load as a set of [`RegionLoad`]s and
//! receives a [`PlatformSnapshot`] with the equilibrium frequencies, power,
//! and per-load bandwidth grants for the step.
//!
//! Resolution order inside a step (no fixed-point needed):
//!
//! 1. None-region cores run at turbo; their power defines the
//!    *power stress* on AU licenses;
//! 2. AU region frequencies follow from license class + stress + thermal;
//! 3. bandwidth demands are arbitrated by the shared pool;
//! 4. package power is evaluated and a TDP cap re-scales AU frequencies if
//!    exceeded;
//! 5. thermal reservoirs integrate this step's power densities.

use serde::{Deserialize, Serialize};

use aum_sim::telemetry::{Event, RegionClass, Tracer};
use aum_sim::time::{SimDuration, SimTime};

use crate::freq::{FreqConditions, FrequencyGovernor};
use crate::membw::{BandwidthPool, BwDemand, BwGrant};
use crate::power::{ActivityClass, CoreGroupPower, PowerModel};
use crate::spec::PlatformSpec;
use crate::thermal::{RegionHeat, ThermalState};
use crate::topology::AuUsageLevel;
use crate::units::{GbPerSec, Ghz, Watts};

/// Fraction of [`PowerModel::max_power`] that non-AU co-runner power is
/// normalized against when computing license power stress.
const STRESS_REF_FRAC: f64 = 0.25;

/// A bandwidth-degradation request outside the physical range `(0, 1]`.
///
/// Returned (not panicked) so a malformed fault plan read from JSON fails
/// the experiment cleanly; `aum::error::AumError` wraps this in core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthDegradeError {
    /// The rejected fraction.
    pub frac: f64,
}

impl std::fmt::Display for BandwidthDegradeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bandwidth degradation fraction must be in (0, 1], got {}",
            self.frac
        )
    }
}

impl std::error::Error for BandwidthDegradeError {}

/// A best-effort thread occupying the hyperthread siblings of a region's
/// cores (the SMT-AU deployment). Siblings contribute power — and therefore
/// license stress and heat — at a reduced SMT efficiency, without occupying
/// additional physical cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmtSibling {
    /// Instruction mix of the sibling thread.
    pub class: ActivityClass,
    /// Sibling duty cycle in `[0, 1]`.
    pub duty: f64,
}

/// Fraction of a full core's dynamic power a sibling hyperthread adds.
pub const SMT_POWER_FACTOR: f64 = 0.6;

/// Instantaneous load of one processor region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionLoad {
    /// Region this load occupies.
    pub level: AuUsageLevel,
    /// Cores in the region.
    pub cores: usize,
    /// Dominant instruction mix on those cores.
    pub class: ActivityClass,
    /// Active duty cycle in `[0, 1]`.
    pub duty: f64,
    /// Raw memory-bandwidth demand of the region.
    pub bw_demand: GbPerSec,
    /// MBA cap for the region's class, `(0, 1]`.
    pub bw_cap: f64,
    /// Best-effort thread on the hyperthread siblings, if any.
    #[serde(default)]
    pub smt_sibling: Option<SmtSibling>,
}

impl RegionLoad {
    /// An idle region of `cores` cores.
    #[must_use]
    pub fn idle(level: AuUsageLevel, cores: usize) -> Self {
        RegionLoad {
            level,
            cores,
            class: ActivityClass::Idle,
            duty: 0.0,
            bw_demand: GbPerSec::ZERO,
            bw_cap: 1.0,
            smt_sibling: None,
        }
    }

    /// A busy region load with no SMT sibling and full bandwidth access.
    #[must_use]
    pub fn new(
        level: AuUsageLevel,
        cores: usize,
        class: ActivityClass,
        duty: f64,
        bw_demand: GbPerSec,
    ) -> Self {
        RegionLoad {
            level,
            cores,
            class,
            duty,
            bw_demand,
            bw_cap: 1.0,
            smt_sibling: None,
        }
    }
}

/// Equilibrium outcome of one simulation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSnapshot {
    /// Effective frequency of each input load's region, in input order.
    pub freqs: Vec<Ghz>,
    /// Bandwidth grant for each input load, in input order.
    pub bw_grants: Vec<BwGrant>,
    /// Package power during the step.
    pub power: Watts,
    /// Memory pool utilization in `[0, 1]`.
    pub bw_utilization: f64,
    /// Pool-wide memory-controller queuing factor (≥ 1).
    pub queuing_factor: f64,
    /// License power stress that was applied, `[0, 1]`.
    pub power_stress: f64,
    /// TDP frequency scale that was applied (1.0 when under budget).
    pub tdp_scale: f64,
}

/// The steppable platform model.
///
/// # Examples
///
/// ```
/// use aum_platform::power::ActivityClass;
/// use aum_platform::spec::PlatformSpec;
/// use aum_platform::state::{PlatformSim, RegionLoad};
/// use aum_platform::topology::AuUsageLevel;
/// use aum_platform::units::GbPerSec;
/// use aum_sim::time::SimDuration;
///
/// let mut sim = PlatformSim::new(PlatformSpec::gen_a());
/// let snap = sim.step(
///     SimDuration::from_millis(100),
///     &[RegionLoad::new(AuUsageLevel::High, 32, ActivityClass::Amx, 1.0, GbPerSec(80.0))],
/// );
/// assert!(snap.freqs[0].value() < 3.2, "AMX license reduces frequency");
/// ```
#[derive(Debug, Clone)]
pub struct PlatformSim {
    spec: PlatformSpec,
    governor: FrequencyGovernor,
    power_model: PowerModel,
    pool: BandwidthPool,
    thermal: ThermalState,
    /// Trace handle plus the state needed to detect transitions: the
    /// internal clock (advanced by each step's `dt`), the last effective
    /// frequency seen per region, and the last thermal drop per region.
    tracer: Tracer,
    clock: SimTime,
    last_freq: [Option<f64>; 3],
    last_thermal_drop: [f64; 3],
}

/// Index of a region level in the transition-tracking arrays.
fn level_idx(level: AuUsageLevel) -> usize {
    match level {
        AuUsageLevel::High => 0,
        AuUsageLevel::Low => 1,
        AuUsageLevel::None => 2,
    }
}

/// Telemetry region label for a topology usage level.
fn region_class(level: AuUsageLevel) -> RegionClass {
    match level {
        AuUsageLevel::High => RegionClass::High,
        AuUsageLevel::Low => RegionClass::Low,
        AuUsageLevel::None => RegionClass::None,
    }
}

impl PlatformSim {
    /// Creates a cold platform from its spec.
    #[must_use]
    pub fn new(spec: PlatformSpec) -> Self {
        let governor = FrequencyGovernor::for_spec(&spec);
        let power_model = PowerModel::for_spec(&spec);
        let pool = BandwidthPool::new(spec.mem_bw);
        PlatformSim {
            spec,
            governor,
            power_model,
            pool,
            thermal: ThermalState::new(),
            tracer: Tracer::disabled(),
            clock: SimTime::ZERO,
            last_freq: [None; 3],
            last_thermal_drop: [0.0; 3],
        }
    }

    /// Attaches a trace handle; subsequent steps emit
    /// [`Event::FreqTransition`] when a region's effective frequency moves
    /// and [`Event::ThermalThrottle`] when thermal throttling deepens. The
    /// platform stamps events with an internal clock advanced by each
    /// step's `dt`, so attach before the first step of a run.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The platform spec this simulator models.
    #[must_use]
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// The frequency governor (read-only).
    #[must_use]
    pub fn governor(&self) -> &FrequencyGovernor {
        &self.governor
    }

    /// The power model (read-only).
    #[must_use]
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// The memory bandwidth pool.
    #[must_use]
    pub fn pool(&self) -> &BandwidthPool {
        &self.pool
    }

    /// Current thermal state (diagnostics).
    #[must_use]
    pub fn thermal(&self) -> &ThermalState {
        &self.thermal
    }

    /// Resets thermal history (cold restart between experiments).
    pub fn reset_thermal(&mut self) {
        self.thermal = ThermalState::new();
    }

    /// Degrades the memory pool to `frac` of the *spec* bandwidth — a DIMM
    /// failure or memory-RAS event. Used by fault-injection experiments.
    /// `frac = 1.0` restores the healthy pool (fault recovery).
    ///
    /// # Errors
    ///
    /// Returns [`BandwidthDegradeError`] unless `0 < frac <= 1` and finite,
    /// leaving the pool untouched — a malformed `FaultPlan` must not abort
    /// the process.
    pub fn degrade_bandwidth(&mut self, frac: f64) -> Result<(), BandwidthDegradeError> {
        if !(frac > 0.0 && frac <= 1.0) {
            return Err(BandwidthDegradeError { frac });
        }
        self.pool = BandwidthPool::new(self.spec.mem_bw * frac);
        Ok(())
    }

    /// Sets the thermal cooling-loss severity (the `ThermalRunaway` fault);
    /// `0.0` restores healthy cooling.
    pub fn set_cooling_loss(&mut self, severity: f64) {
        self.thermal.set_cooling_loss(severity);
    }

    /// Pins (or with `None`, releases) the AU license class — the
    /// `FrequencyLicenseLock` fault.
    pub fn set_license_lock(&mut self, lock: Option<AuUsageLevel>) {
        self.governor.set_license_lock(lock);
    }

    /// Advances the platform by `dt` under the given loads and returns the
    /// equilibrium snapshot for the step.
    ///
    /// # Panics
    ///
    /// Panics if the loads claim more cores than the platform has.
    pub fn step(&mut self, dt: SimDuration, loads: &[RegionLoad]) -> PlatformSnapshot {
        let total_cores = self.spec.total_cores();
        let claimed: usize = loads.iter().map(|l| l.cores).sum();
        assert!(
            claimed <= total_cores,
            "loads claim {claimed} cores, platform has {total_cores}"
        );

        // 1. Power stress from non-AU activity (co-runners).
        let stress_ref = self.power_model.max_power().value() * STRESS_REF_FRAC;
        let idle_w = {
            let f = self.governor.license_frequency(AuUsageLevel::None);
            self.power_model
                .core_power(f, ActivityClass::Idle, 0.0)
                .value()
        };
        let mut corunner_power = 0.0;
        for l in loads {
            let f = self.governor.license_frequency(AuUsageLevel::None);
            if l.level == AuUsageLevel::None {
                corunner_power += (self.power_model.core_power(f, l.class, l.duty).value()
                    - idle_w)
                    * l.cores as f64;
            }
            if let Some(sib) = l.smt_sibling {
                corunner_power += (self.power_model.core_power(f, sib.class, sib.duty).value()
                    - idle_w)
                    * SMT_POWER_FACTOR
                    * l.cores as f64;
            }
        }
        let power_stress = (corunner_power / stress_ref).clamp(0.0, 1.0);

        // 2. Region frequencies.
        let au_core_frac = loads
            .iter()
            .filter(|l| l.level != AuUsageLevel::None)
            .map(|l| l.cores)
            .sum::<usize>() as f64
            / total_cores as f64;
        let mut freqs: Vec<Ghz> = loads
            .iter()
            .map(|l| {
                self.governor.region_frequency(
                    l.level,
                    FreqConditions {
                        au_core_frac,
                        power_stress,
                        thermal_drop: self.thermal.drop_for(l.level),
                    },
                )
            })
            .collect();

        // 3. Bandwidth arbitration.
        let demands: Vec<BwDemand> = loads
            .iter()
            .map(|l| BwDemand::new(l.bw_demand, l.bw_cap))
            .collect();
        let arbitration = self.pool.arbitrate(&demands);

        // 4. Package power and TDP cap. Sibling hyperthreads contribute a
        // fraction of a full core's dynamic power at the region frequency.
        let total_power = |freqs: &[Ghz]| -> Watts {
            let groups: Vec<CoreGroupPower> = loads
                .iter()
                .zip(freqs)
                .map(|(l, &f)| CoreGroupPower {
                    cores: l.cores,
                    freq: f,
                    class: l.class,
                    duty: l.duty,
                })
                .collect();
            let mut p = self
                .power_model
                .platform_power(&groups, arbitration.utilization)
                .value();
            for (l, &f) in loads.iter().zip(freqs) {
                if let Some(sib) = l.smt_sibling {
                    let idle = self
                        .power_model
                        .core_power(f, ActivityClass::Idle, 0.0)
                        .value();
                    let sib_dyn =
                        self.power_model.core_power(f, sib.class, sib.duty).value() - idle;
                    p += sib_dyn * SMT_POWER_FACTOR * l.cores as f64;
                }
            }
            Watts(p)
        };
        let mut power = total_power(&freqs);
        let tdp_scale = self.governor.tdp_scale(power);
        if tdp_scale < 1.0 {
            for (f, l) in freqs.iter_mut().zip(loads) {
                if l.level != AuUsageLevel::None {
                    *f = Ghz(f.value() * tdp_scale);
                }
            }
            power = total_power(&freqs);
        }

        // 5. Thermal integration.
        let heats: Vec<RegionHeat> = loads
            .iter()
            .zip(&freqs)
            .filter(|(l, _)| l.duty > 0.0 && l.cores > 0)
            .map(|(l, &f)| {
                let mut per_core = self.power_model.core_power(f, l.class, l.duty).value();
                if let Some(sib) = l.smt_sibling {
                    let idle = self
                        .power_model
                        .core_power(f, ActivityClass::Idle, 0.0)
                        .value();
                    per_core += (self.power_model.core_power(f, sib.class, sib.duty).value()
                        - idle)
                        * SMT_POWER_FACTOR;
                }
                RegionHeat {
                    level: l.level,
                    per_core_power: Watts(per_core),
                    busy_core_frac: (l.cores as f64 * l.duty) / total_cores as f64,
                }
            })
            .collect();
        self.thermal.advance(dt, &heats);

        // Telemetry: events are stamped at the start of the step — the
        // interval the resolved frequencies take effect for — so a stream
        // merged with engine events (which fill the interval's interior)
        // stays monotonic.
        if self.tracer.is_enabled() {
            let mut seen = [false; 3];
            for (l, &f) in loads.iter().zip(&freqs) {
                let idx = level_idx(l.level);
                if seen[idx] || l.cores == 0 {
                    continue;
                }
                seen[idx] = true;
                let new = f.value();
                if let Some(prev) = self.last_freq[idx] {
                    if (new - prev).abs() > 1e-3 {
                        self.tracer.emit(self.clock, || Event::FreqTransition {
                            region: region_class(l.level),
                            from_ghz: prev,
                            to_ghz: new,
                        });
                    }
                }
                self.last_freq[idx] = Some(new);
                let drop = self.thermal.drop_for(l.level).value();
                if drop > self.last_thermal_drop[idx] + 1e-3 {
                    self.tracer.emit(self.clock, || Event::ThermalThrottle {
                        region: region_class(l.level),
                        drop_ghz: drop,
                    });
                }
                self.last_thermal_drop[idx] = drop;
            }
        }
        self.clock += dt;

        PlatformSnapshot {
            freqs,
            bw_grants: arbitration.grants,
            power,
            bw_utilization: arbitration.utilization,
            queuing_factor: arbitration.queuing_factor,
            power_stress,
            tdp_scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> PlatformSim {
        PlatformSim::new(PlatformSpec::gen_a())
    }

    fn amx_load(cores: usize) -> RegionLoad {
        RegionLoad {
            level: AuUsageLevel::High,
            cores,
            class: ActivityClass::Amx,
            duty: 1.0,
            bw_demand: GbPerSec(60.0),
            bw_cap: 1.0,
            smt_sibling: None,
        }
    }

    fn decode_load(cores: usize) -> RegionLoad {
        RegionLoad {
            level: AuUsageLevel::Low,
            cores,
            class: ActivityClass::Avx,
            duty: 1.0,
            bw_demand: GbPerSec(170.0),
            bw_cap: 1.0,
            smt_sibling: None,
        }
    }

    fn stressor_load(cores: usize) -> RegionLoad {
        RegionLoad {
            level: AuUsageLevel::None,
            cores,
            class: ActivityClass::ScalarCompute,
            duty: 1.0,
            bw_demand: GbPerSec(5.0),
            bw_cap: 1.0,
            smt_sibling: None,
        }
    }

    #[test]
    fn prefill_frequency_matches_fig6a() {
        let mut s = sim();
        let snap = s.step(SimDuration::from_millis(100), &[amx_load(32)]);
        let f = snap.freqs[0].value();
        assert!((2.4..=2.55).contains(&f), "prefill ≈2.5 GHz, got {f}");
    }

    #[test]
    fn decode_frequency_matches_fig6a() {
        let mut s = sim();
        let snap = s.step(SimDuration::from_millis(100), &[decode_load(96)]);
        let f = snap.freqs[0].value();
        assert!((3.0..=3.15).contains(&f), "decode ≈3.1 GHz, got {f}");
    }

    #[test]
    fn stressors_deepen_decode_reduction() {
        let mut a = sim();
        let alone = a
            .step(SimDuration::from_millis(100), &[decode_load(48)])
            .freqs[0];
        let mut b = sim();
        let stressed = b
            .step(
                SimDuration::from_millis(100),
                &[decode_load(48), stressor_load(48)],
            )
            .freqs[0];
        assert!(
            stressed.value() < alone.value(),
            "Fig 6a blue squares: stressors deepen decode reduction"
        );
        assert!(stressed.value() >= 2.75, "bounded by the stress floor");
    }

    #[test]
    fn none_region_holds_turbo_under_au_activity() {
        let mut s = sim();
        let snap = s.step(
            SimDuration::from_millis(100),
            &[amx_load(32), RegionLoad::idle(AuUsageLevel::None, 64)],
        );
        assert!(
            (snap.freqs[1].value() - 3.2).abs() < 1e-9,
            "Fig 6a gray squares"
        );
    }

    #[test]
    fn power_for_exclusive_serving_is_calibrated() {
        let mut s = sim();
        let snap = s.step(
            SimDuration::from_millis(100),
            &[amx_load(32), decode_load(64)],
        );
        let p = snap.power.value();
        assert!((230.0..=310.0).contains(&p), "§III-B: ≈270 W, got {p}");
    }

    #[test]
    fn oversubscribed_bandwidth_slows_loads() {
        let mut s = sim();
        let mut d = decode_load(48);
        d.bw_demand = GbPerSec(200.0);
        let mut o = stressor_load(48);
        o.bw_demand = GbPerSec(150.0);
        let snap = s.step(SimDuration::from_millis(100), &[d, o]);
        assert!(snap.bw_grants[0].slowdown > 1.0);
        assert!(snap.bw_utilization > 0.99);
    }

    #[test]
    fn sustained_clustered_stress_triggers_thermal_drop() {
        let mut s = sim();
        // 24 of 96 cores (25%) running hot compute: the Fig 6b hotspot case.
        let loads = [decode_load(72), stressor_load(24)];
        let mut dropped = false;
        for _ in 0..200 {
            let snap = s.step(SimDuration::from_millis(250), &loads);
            if snap.freqs[1].value() < 3.1 {
                dropped = true;
                break;
            }
        }
        assert!(
            dropped,
            "expected abrupt thermal drop on clustered shared cores"
        );
    }

    #[test]
    fn spread_stress_avoids_thermal_drop() {
        let mut s = sim();
        let loads = [decode_load(24), stressor_load(72)];
        for _ in 0..200 {
            let snap = s.step(SimDuration::from_millis(250), &loads);
            assert!(
                (snap.freqs[1].value() - 3.2).abs() < 1e-9,
                "spread-out shared cores keep turbo"
            );
        }
    }

    #[test]
    #[should_panic(expected = "loads claim")]
    fn oversubscribed_cores_panic() {
        sim().step(
            SimDuration::from_millis(1),
            &[amx_load(96), decode_load(10)],
        );
    }

    #[test]
    fn bandwidth_degradation_shrinks_grants() {
        let mut s = sim();
        let before = s
            .step(SimDuration::from_millis(100), &[decode_load(48)])
            .bw_grants[0]
            .granted;
        s.degrade_bandwidth(0.5).expect("valid fraction");
        let after = s
            .step(SimDuration::from_millis(100), &[decode_load(48)])
            .bw_grants[0]
            .granted;
        // 170 GB/s demand: fully granted before, capped at the degraded
        // pool's ~111 GB/s sustainable bandwidth after.
        assert!(
            after.value() < before.value() * 0.7,
            "{} vs {}",
            after.value(),
            before.value()
        );
    }

    #[test]
    fn out_of_range_degradation_is_a_typed_error() {
        let mut s = sim();
        let healthy = s.pool().peak();
        for bad in [0.0, -0.25, 1.5, f64::NAN, f64::INFINITY] {
            let err = s.degrade_bandwidth(bad).expect_err("must reject");
            assert!(err.to_string().contains("(0, 1]"), "{err}");
        }
        assert_eq!(s.pool().peak(), healthy, "pool untouched after rejects");
        s.degrade_bandwidth(0.5).expect("valid");
        s.degrade_bandwidth(1.0)
            .expect("recovery restores the pool");
        assert_eq!(s.pool().peak(), healthy);
    }

    #[test]
    fn degradation_recovers_to_spec_bandwidth() {
        let mut s = sim();
        let before = s
            .step(SimDuration::from_millis(100), &[decode_load(48)])
            .bw_grants[0]
            .granted;
        s.degrade_bandwidth(0.5).expect("valid");
        s.degrade_bandwidth(1.0).expect("valid");
        let after = s
            .step(SimDuration::from_millis(100), &[decode_load(48)])
            .bw_grants[0]
            .granted;
        assert!((after.value() - before.value()).abs() < 1e-9);
    }

    #[test]
    fn fault_hooks_reach_thermal_and_governor() {
        let mut s = sim();
        s.set_cooling_loss(1.5);
        assert!(s.thermal().cooling_loss() > 0.0);
        s.set_license_lock(Some(AuUsageLevel::High));
        assert_eq!(s.governor().license_lock(), Some(AuUsageLevel::High));
        let snap = s.step(SimDuration::from_millis(100), &[decode_load(48)]);
        assert!(
            snap.freqs[0].value() < 2.6,
            "locked decode region must run at the AMX curve, got {}",
            snap.freqs[0].value()
        );
        s.set_cooling_loss(0.0);
        s.set_license_lock(None);
        assert_eq!(s.governor().license_lock(), None);
    }

    #[test]
    fn tracer_captures_freq_and_thermal_events() {
        use aum_sim::telemetry::MemorySink;
        let mut s = sim();
        let (tracer, sink) = Tracer::shared(MemorySink::new());
        s.attach_tracer(tracer);
        // The Fig 6b hotspot case: clustered stress eventually trips the
        // thermal integrator, which must show up as ThermalThrottle plus a
        // FreqTransition on the shared region.
        let loads = [decode_load(72), stressor_load(24)];
        for _ in 0..200 {
            let _ = s.step(SimDuration::from_millis(250), &loads);
        }
        let records = sink.lock().expect("sink lock").records().to_vec();
        assert!(
            records
                .iter()
                .any(|r| matches!(r.event, Event::ThermalThrottle { .. })),
            "expected a thermal-throttle event"
        );
        assert!(
            records
                .iter()
                .any(|r| matches!(r.event, Event::FreqTransition { .. })),
            "expected a frequency transition"
        );
        for w in records.windows(2) {
            assert!(w[0].at <= w[1].at, "event stamps must be monotonic");
        }
    }

    #[test]
    fn reset_thermal_cools() {
        let mut s = sim();
        for _ in 0..100 {
            s.step(SimDuration::from_millis(500), &[stressor_load(24)]);
        }
        s.reset_thermal();
        assert_eq!(s.thermal().heat(AuUsageLevel::None), 0.0);
    }
}
