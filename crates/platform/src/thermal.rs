//! Heat-accumulation model for the abrupt mid-pressure frequency drops.
//!
//! Fig 6b of the paper shows that when a *limited* number of cores (12-24 of
//! 96) run compute-intensive shared work next to AU cores, their frequency
//! drops abruptly — the authors attribute this to heat accumulation on
//! densely packed busy cores, and observed it across repeated runs. At
//! higher sharing pressure the work spreads out across the package and the
//! hotspot dissolves.
//!
//! We model a per-region thermal reservoir: heat integrates the product of
//! per-core power density and a *clustering factor* that peaks when roughly
//! a quarter of the package is busy with the shared work. Above a soft
//! threshold the reservoir requests a frequency drop with hysteresis.

use serde::{Deserialize, Serialize};

use aum_sim::time::SimDuration;

use crate::topology::AuUsageLevel;
use crate::units::{Ghz, Watts};

/// Share of package cores at which hotspot clustering is worst.
pub const HOTSPOT_PEAK_FRAC: f64 = 0.22;
/// Width of the hotspot bell around [`HOTSPOT_PEAK_FRAC`].
pub const HOTSPOT_WIDTH: f64 = 0.15;
/// Heat units above which throttling engages.
const THROTTLE_ON: f64 = 55.0;
/// Heat units below which throttling releases (hysteresis).
const THROTTLE_OFF: f64 = 40.0;
/// Frequency drop applied while throttled.
const THROTTLE_DROP_GHZ: f64 = 0.35;
/// Reservoir relaxation time constant, seconds.
const TAU_SECS: f64 = 2.0;
/// Power density (W/core) that holds the reservoir exactly at THROTTLE_ON
/// when fully clustered.
const DENSITY_REF: f64 = 1.4;

/// Clustering factor in `[0, 1]`: how much the shared work concentrates
/// heat, as a function of the fraction of package cores it occupies.
#[must_use]
pub fn hotspot_factor(busy_core_frac: f64) -> f64 {
    let x = busy_core_frac.clamp(0.0, 1.0) - HOTSPOT_PEAK_FRAC;
    (-0.5 * (x / HOTSPOT_WIDTH).powi(2)).exp()
}

/// Per-region thermal reservoir state.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct Reservoir {
    heat: f64,
    throttled: bool,
}

impl Reservoir {
    fn advance(&mut self, dt_secs: f64, influx: f64) {
        // First-order relaxation toward `influx * TAU` (steady state).
        let target = influx * TAU_SECS;
        let alpha = 1.0 - (-dt_secs / TAU_SECS).exp();
        self.heat += (target - self.heat) * alpha;
        if self.throttled {
            if self.heat < THROTTLE_OFF {
                self.throttled = false;
            }
        } else if self.heat > THROTTLE_ON {
            self.throttled = true;
        }
    }

    fn drop_ghz(&self) -> f64 {
        if self.throttled {
            THROTTLE_DROP_GHZ
        } else {
            0.0
        }
    }
}

/// Thermal state of the three processor regions.
///
/// # Examples
///
/// ```
/// use aum_platform::thermal::{RegionHeat, ThermalState};
/// use aum_platform::topology::AuUsageLevel;
/// use aum_sim::time::SimDuration;
///
/// let mut t = ThermalState::new();
/// // A cool region requests no frequency drop.
/// assert_eq!(t.drop_for(AuUsageLevel::None).value(), 0.0);
/// t.advance(
///     SimDuration::from_secs(30),
///     &[RegionHeat { level: AuUsageLevel::None, per_core_power: aum_platform::units::Watts(8.0), busy_core_frac: 0.25 }],
/// );
/// assert!(t.drop_for(AuUsageLevel::None).value() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ThermalState {
    regions: [Reservoir; 3],
    /// Cooling-loss severity injected by the fault plane: 0 is a healthy
    /// package; 1.0 adds — on every region, independent of load — exactly
    /// the heat influx that holds a reservoir at the throttle-on threshold
    /// in steady state. Values above 1 throttle even an idle region.
    #[serde(default)]
    cooling_loss: f64,
}

/// Heat influx description for one region during a time step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionHeat {
    /// Which region the heat applies to.
    pub level: AuUsageLevel,
    /// Average power per active core in the region.
    pub per_core_power: Watts,
    /// Fraction of the whole package occupied by this region's busy cores.
    pub busy_core_frac: f64,
}

fn idx(level: AuUsageLevel) -> usize {
    match level {
        AuUsageLevel::High => 0,
        AuUsageLevel::Low => 1,
        AuUsageLevel::None => 2,
    }
}

impl ThermalState {
    /// A cold package.
    #[must_use]
    pub fn new() -> Self {
        ThermalState::default()
    }

    /// Integrates heat over `dt` for the described regions; regions not
    /// mentioned cool down.
    pub fn advance(&mut self, dt: SimDuration, heats: &[RegionHeat]) {
        let dt_secs = dt.as_secs_f64();
        let ambient = self.cooling_loss.max(0.0) * (THROTTLE_ON / TAU_SECS);
        let mut influx = [ambient; 3];
        for h in heats {
            let cluster = hotspot_factor(h.busy_core_frac);
            influx[idx(h.level)] +=
                (h.per_core_power.value() / DENSITY_REF) * cluster * (THROTTLE_ON / TAU_SECS);
        }
        for (r, &f) in self.regions.iter_mut().zip(influx.iter()) {
            r.advance(dt_secs, f);
        }
    }

    /// Sets the cooling-loss severity (fault injection). `0.0` restores a
    /// healthy package; negative values are clamped to healthy.
    pub fn set_cooling_loss(&mut self, severity: f64) {
        self.cooling_loss = severity.max(0.0);
    }

    /// Current cooling-loss severity.
    #[must_use]
    pub fn cooling_loss(&self) -> f64 {
        self.cooling_loss
    }

    /// Frequency drop currently requested for a region.
    ///
    /// Only None-AU regions throttle: AU license classes already cap the
    /// voltage/frequency point of High/Low regions, keeping them below the
    /// hotspot threshold — which matches the paper's observation that the
    /// abrupt drops appear on compute-intensive *shared* cores (Fig 6b)
    /// while AU cores follow their license frequencies (Fig 6a).
    ///
    /// That immunity assumes intact package cooling: under an injected
    /// cooling loss ([`ThermalState::set_cooling_loss`]) every region's
    /// reservoir can trip the throttle, AU license caps notwithstanding.
    #[must_use]
    pub fn drop_for(&self, level: AuUsageLevel) -> Ghz {
        if level != AuUsageLevel::None && self.cooling_loss <= 0.0 {
            return Ghz(0.0);
        }
        Ghz(self.regions[idx(level)].drop_ghz())
    }

    /// Raw heat level of a region (test/diagnostic use).
    #[must_use]
    pub fn heat(&self, level: AuUsageLevel) -> f64 {
        self.regions[idx(level)].heat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_peaks_at_limited_occupancy() {
        assert!((hotspot_factor(HOTSPOT_PEAK_FRAC) - 1.0).abs() < 1e-12);
        assert!(hotspot_factor(0.02) < 0.5);
        assert!(hotspot_factor(0.6) < 0.1);
        assert!(hotspot_factor(HOTSPOT_PEAK_FRAC) > hotspot_factor(0.1));
        assert!(hotspot_factor(HOTSPOT_PEAK_FRAC) > hotspot_factor(0.40));
    }

    fn hot(level: AuUsageLevel) -> RegionHeat {
        RegionHeat {
            level,
            per_core_power: Watts(9.0),
            busy_core_frac: 0.25,
        }
    }

    #[test]
    fn sustained_hot_cluster_throttles() {
        let mut t = ThermalState::new();
        for _ in 0..100 {
            t.advance(
                SimDuration::from_millis(500),
                &[hot(AuUsageLevel::None), hot(AuUsageLevel::High)],
            );
        }
        assert!(t.drop_for(AuUsageLevel::None).value() > 0.0);
        // AU regions never throttle: license classes already cap voltage.
        assert_eq!(t.drop_for(AuUsageLevel::High).value(), 0.0);
    }

    #[test]
    fn spread_out_work_does_not_throttle() {
        let mut t = ThermalState::new();
        let spread = RegionHeat {
            level: AuUsageLevel::None,
            per_core_power: Watts(9.0),
            busy_core_frac: 0.9,
        };
        for _ in 0..100 {
            t.advance(SimDuration::from_millis(500), &[spread]);
        }
        assert_eq!(t.drop_for(AuUsageLevel::None).value(), 0.0);
    }

    #[test]
    fn cool_down_releases_with_hysteresis() {
        let mut t = ThermalState::new();
        for _ in 0..100 {
            t.advance(SimDuration::from_millis(500), &[hot(AuUsageLevel::None)]);
        }
        assert!(t.drop_for(AuUsageLevel::None).value() > 0.0);
        let heat_when_hot = t.heat(AuUsageLevel::None);
        // Idle for a while: heat decays, throttle releases.
        for _ in 0..100 {
            t.advance(SimDuration::from_millis(500), &[]);
        }
        assert!(t.heat(AuUsageLevel::None) < heat_when_hot);
        assert_eq!(t.drop_for(AuUsageLevel::None).value(), 0.0);
    }

    #[test]
    fn mild_power_never_throttles() {
        let mut t = ThermalState::new();
        let mild = RegionHeat {
            level: AuUsageLevel::None,
            per_core_power: Watts(1.0),
            busy_core_frac: 0.25,
        };
        for _ in 0..200 {
            t.advance(SimDuration::from_millis(500), &[mild]);
        }
        assert_eq!(t.drop_for(AuUsageLevel::None).value(), 0.0);
    }

    #[test]
    fn cooling_loss_throttles_all_regions_then_recovers() {
        let mut t = ThermalState::new();
        t.set_cooling_loss(1.5);
        for _ in 0..100 {
            t.advance(SimDuration::from_millis(500), &[]);
        }
        for level in AuUsageLevel::ALL {
            assert!(
                t.drop_for(level).value() > 0.0,
                "cooling loss must defeat the AU license cap for {level:?}"
            );
        }
        t.set_cooling_loss(0.0);
        for _ in 0..100 {
            t.advance(SimDuration::from_millis(500), &[]);
        }
        for level in AuUsageLevel::ALL {
            assert_eq!(t.drop_for(level).value(), 0.0);
        }
    }

    #[test]
    fn heat_accumulates_toward_steady_state() {
        let mut t = ThermalState::new();
        t.advance(SimDuration::from_millis(100), &[hot(AuUsageLevel::High)]);
        let h1 = t.heat(AuUsageLevel::High);
        t.advance(SimDuration::from_millis(100), &[hot(AuUsageLevel::High)]);
        let h2 = t.heat(AuUsageLevel::High);
        assert!(h2 > h1 && h1 > 0.0);
    }
}
