//! Core topology and the three-region processor division.
//!
//! AUM's frequency-aware stage divides the physical cores into a High-AU
//! region `C_H`, a Low-AU region `C_L`, and a None-AU region `C_N`
//! (paper §VI-B2). Each region runs at a frequency determined by its AU
//! license class, which isolates the compulsory frequency reduction of AMX
//! code from AU-free co-runners.

use serde::{Deserialize, Serialize};

/// Identifier of a physical core on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// AU usage level of a processor region (paper's `U_AU` classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AuUsageLevel {
    /// No AU instructions execute in the region (shared applications only).
    None,
    /// Light AU usage, e.g. the decode phase (mostly AVX with sporadic AMX).
    Low,
    /// Heavy AU usage, e.g. the prefill phase (sustained AMX tiles).
    High,
}

impl AuUsageLevel {
    /// All levels, ordered from no usage to heavy usage.
    pub const ALL: [AuUsageLevel; 3] = [AuUsageLevel::None, AuUsageLevel::Low, AuUsageLevel::High];
}

impl core::fmt::Display for AuUsageLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AuUsageLevel::None => write!(f, "None"),
            AuUsageLevel::Low => write!(f, "Low"),
            AuUsageLevel::High => write!(f, "High"),
        }
    }
}

/// A contiguous three-way split of the platform's physical cores:
/// `[0, high)` is the High-AU region, `[high, high+low)` the Low-AU region,
/// and `[high+low, total)` the None-AU region.
///
/// # Examples
///
/// ```
/// use aum_platform::topology::{AuUsageLevel, ProcessorDivision};
///
/// // Table III example: High = cores 0-11, Low = 12-15, None = 16-23.
/// let div = ProcessorDivision::new(12, 4, 8);
/// assert_eq!(div.total_cores(), 24);
/// assert_eq!(div.cores(AuUsageLevel::Low), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessorDivision {
    high: usize,
    low: usize,
    none: usize,
}

impl ProcessorDivision {
    /// Creates a division with the given region sizes.
    #[must_use]
    pub const fn new(high: usize, low: usize, none: usize) -> Self {
        ProcessorDivision { high, low, none }
    }

    /// The exclusive division: every core serves the AU application, split
    /// between prefill (High) and decode (Low) with no sharing region. This
    /// is the ALL-AU baseline's arrangement.
    #[must_use]
    pub fn exclusive(total: usize, high: usize) -> Self {
        assert!(high <= total, "high region larger than platform");
        ProcessorDivision {
            high,
            low: total - high,
            none: 0,
        }
    }

    /// Cores in a region.
    #[must_use]
    pub const fn cores(&self, level: AuUsageLevel) -> usize {
        match level {
            AuUsageLevel::High => self.high,
            AuUsageLevel::Low => self.low,
            AuUsageLevel::None => self.none,
        }
    }

    /// Total cores across all regions.
    #[must_use]
    pub const fn total_cores(&self) -> usize {
        self.high + self.low + self.none
    }

    /// Cores with any AU activity (High + Low).
    #[must_use]
    pub const fn au_cores(&self) -> usize {
        self.high + self.low
    }

    /// Fraction of cores in a region, 0 when the platform is empty.
    #[must_use]
    pub fn fraction(&self, level: AuUsageLevel) -> f64 {
        let total = self.total_cores();
        if total == 0 {
            0.0
        } else {
            self.cores(level) as f64 / total as f64
        }
    }

    /// The region a core id falls into.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the division.
    #[must_use]
    pub fn region_of(&self, core: CoreId) -> AuUsageLevel {
        let idx = core.0;
        assert!(idx < self.total_cores(), "core {idx} outside division");
        if idx < self.high {
            AuUsageLevel::High
        } else if idx < self.high + self.low {
            AuUsageLevel::Low
        } else {
            AuUsageLevel::None
        }
    }

    /// Core-id range of a region, as `(start, end)` exclusive.
    #[must_use]
    pub const fn region_range(&self, level: AuUsageLevel) -> (usize, usize) {
        match level {
            AuUsageLevel::High => (0, self.high),
            AuUsageLevel::Low => (self.high, self.high + self.low),
            AuUsageLevel::None => (self.high + self.low, self.high + self.low + self.none),
        }
    }

    /// Returns a new division with one core moved from region `from` to
    /// region `to`, or `None` if `from` is empty or `from == to`.
    #[must_use]
    pub fn shift_core(&self, from: AuUsageLevel, to: AuUsageLevel) -> Option<ProcessorDivision> {
        if from == to || self.cores(from) == 0 {
            return None;
        }
        let mut next = *self;
        match from {
            AuUsageLevel::High => next.high -= 1,
            AuUsageLevel::Low => next.low -= 1,
            AuUsageLevel::None => next.none -= 1,
        }
        match to {
            AuUsageLevel::High => next.high += 1,
            AuUsageLevel::Low => next.low += 1,
            AuUsageLevel::None => next.none += 1,
        }
        Some(next)
    }

    /// Enumerates every division of `total` cores whose region sizes are
    /// multiples of `step` (used by the profiler's division sweep).
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[must_use]
    pub fn enumerate(total: usize, step: usize) -> Vec<ProcessorDivision> {
        assert!(step > 0, "enumeration step must be positive");
        let mut out = Vec::new();
        let mut high = 0;
        while high <= total {
            let mut low = 0;
            while high + low <= total {
                out.push(ProcessorDivision::new(high, low, total - high - low));
                low += step;
            }
            high += step;
        }
        out
    }
}

impl core::fmt::Display for ProcessorDivision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "H{}/L{}/N{}", self.high, self.low, self.none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_cores() {
        let d = ProcessorDivision::new(12, 4, 8);
        assert_eq!(d.total_cores(), 24);
        assert_eq!(d.au_cores(), 16);
        assert_eq!(d.region_of(CoreId(0)), AuUsageLevel::High);
        assert_eq!(d.region_of(CoreId(11)), AuUsageLevel::High);
        assert_eq!(d.region_of(CoreId(12)), AuUsageLevel::Low);
        assert_eq!(d.region_of(CoreId(15)), AuUsageLevel::Low);
        assert_eq!(d.region_of(CoreId(16)), AuUsageLevel::None);
        assert_eq!(d.region_of(CoreId(23)), AuUsageLevel::None);
    }

    #[test]
    #[should_panic(expected = "outside division")]
    fn region_of_out_of_range_panics() {
        let _ = ProcessorDivision::new(1, 1, 1).region_of(CoreId(3));
    }

    #[test]
    fn fractions_sum_to_one() {
        let d = ProcessorDivision::new(10, 20, 18);
        let sum: f64 = AuUsageLevel::ALL.iter().map(|&l| d.fraction(l)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exclusive_has_no_shared_region() {
        let d = ProcessorDivision::exclusive(96, 32);
        assert_eq!(d.cores(AuUsageLevel::None), 0);
        assert_eq!(d.cores(AuUsageLevel::High), 32);
        assert_eq!(d.cores(AuUsageLevel::Low), 64);
    }

    #[test]
    fn shift_core_conserves_total() {
        let d = ProcessorDivision::new(4, 4, 4);
        let shifted = d
            .shift_core(AuUsageLevel::None, AuUsageLevel::High)
            .expect("possible");
        assert_eq!(shifted.total_cores(), 12);
        assert_eq!(shifted.cores(AuUsageLevel::High), 5);
        assert_eq!(shifted.cores(AuUsageLevel::None), 3);
    }

    #[test]
    fn shift_core_edge_cases() {
        let d = ProcessorDivision::new(0, 4, 4);
        assert!(d
            .shift_core(AuUsageLevel::High, AuUsageLevel::Low)
            .is_none());
        assert!(d.shift_core(AuUsageLevel::Low, AuUsageLevel::Low).is_none());
    }

    #[test]
    fn enumerate_covers_simplex() {
        let divisions = ProcessorDivision::enumerate(8, 4);
        // high, low in {0,4,8} with high+low <= 8: (0,0)(0,4)(0,8)(4,0)(4,4)(8,0)
        assert_eq!(divisions.len(), 6);
        assert!(divisions.iter().all(|d| d.total_cores() == 8));
    }

    #[test]
    fn region_ranges_are_contiguous() {
        let d = ProcessorDivision::new(3, 5, 2);
        assert_eq!(d.region_range(AuUsageLevel::High), (0, 3));
        assert_eq!(d.region_range(AuUsageLevel::Low), (3, 8));
        assert_eq!(d.region_range(AuUsageLevel::None), (8, 10));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", ProcessorDivision::new(1, 2, 3)), "H1/L2/N3");
        assert_eq!(format!("{}", AuUsageLevel::High), "High");
    }
}
