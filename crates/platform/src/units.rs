//! Physical unit newtypes.
//!
//! Thin wrappers that keep frequencies, powers and bandwidths from being
//! accidentally mixed. Inner values are public: these are measurement
//! carriers, not invariant-bearing abstractions.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Raw value.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Element-wise minimum.
            #[must_use]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Element-wise maximum.
            #[must_use]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.3}", $suffix), self.0)
            }
        }
    };
}

unit!(
    /// Clock frequency in gigahertz.
    ///
    /// # Examples
    ///
    /// ```
    /// use aum_platform::units::Ghz;
    /// let f = Ghz(2.7);
    /// assert_eq!(f.value(), 2.7);
    /// assert_eq!(format!("{f}"), "2.700GHz");
    /// ```
    Ghz,
    "GHz"
);

unit!(
    /// Electrical power in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use aum_platform::units::Watts;
    /// assert_eq!((Watts(100.0) + Watts(70.0)).value(), 170.0);
    /// ```
    Watts,
    "W"
);

unit!(
    /// Memory bandwidth in gigabytes per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use aum_platform::units::GbPerSec;
    /// assert_eq!(GbPerSec(233.8).min(GbPerSec(100.0)).value(), 100.0);
    /// ```
    GbPerSec,
    "GB/s"
);

unit!(
    /// Compute throughput in teraFLOPS.
    ///
    /// # Examples
    ///
    /// ```
    /// use aum_platform::units::Tflops;
    /// assert_eq!((Tflops(206.4) * 0.5).value(), 103.2);
    /// ```
    Tflops,
    "TFLOPS"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_works() {
        assert_eq!((Ghz(2.0) + Ghz(1.0)).value(), 3.0);
        assert_eq!((Ghz(2.0) - Ghz(0.5)).value(), 1.5);
        assert_eq!((Ghz(2.0) * 2.0).value(), 4.0);
        let mut w = Watts(5.0);
        w += Watts(1.0);
        assert_eq!(w.value(), 6.0);
    }

    #[test]
    fn sum_collects() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    fn min_max() {
        assert_eq!(Ghz(2.0).min(Ghz(3.0)), Ghz(2.0));
        assert_eq!(Ghz(2.0).max(Ghz(3.0)), Ghz(3.0));
    }

    #[test]
    fn ordering() {
        assert!(Ghz(2.1) < Ghz(2.5));
        assert!(GbPerSec(600.0) > GbPerSec(233.8));
    }

    #[test]
    fn display_has_units() {
        assert_eq!(format!("{}", Watts(270.0)), "270.000W");
        assert_eq!(format!("{}", GbPerSec(233.8)), "233.800GB/s");
        assert_eq!(format!("{}", Tflops(206.4)), "206.400TFLOPS");
    }
}
