//! Property-based tests of the platform substrate.

use proptest::prelude::*;

use aum_platform::cache::MissRateCurve;
use aum_platform::freq::{FreqConditions, FrequencyGovernor};
use aum_platform::membw::{BandwidthPool, BwDemand};
use aum_platform::power::{ActivityClass, PowerModel};
use aum_platform::spec::PlatformSpec;
use aum_platform::state::{PlatformSim, RegionLoad};
use aum_platform::topology::{AuUsageLevel, ProcessorDivision};
use aum_platform::units::{GbPerSec, Ghz};
use aum_sim::time::SimDuration;

fn any_spec() -> impl Strategy<Value = PlatformSpec> {
    prop_oneof![
        Just(PlatformSpec::gen_a()),
        Just(PlatformSpec::gen_b()),
        Just(PlatformSpec::gen_c()),
    ]
}

proptest! {
    #[test]
    fn bandwidth_grants_conserve_and_respect_caps(
        demands in prop::collection::vec((0.0f64..500.0, 0.05f64..1.0), 1..8),
    ) {
        let pool = BandwidthPool::new(GbPerSec(233.8));
        let reqs: Vec<BwDemand> =
            demands.iter().map(|&(d, c)| BwDemand::new(GbPerSec(d), c)).collect();
        let result = pool.arbitrate(&reqs);
        let budget = pool.sustainable().value();
        let total: f64 = result.grants.iter().map(|g| g.granted.value()).sum();
        prop_assert!(total <= budget * (1.0 + 1e-9), "grants must fit the pool");
        for (g, r) in result.grants.iter().zip(&reqs) {
            prop_assert!(g.granted.value() <= r.demand.value() + 1e-9, "no over-grant");
            prop_assert!(g.granted.value() <= r.cap_frac * budget + 1e-9, "MBA cap holds");
            prop_assert!(g.slowdown >= 1.0 - 1e-12);
        }
        prop_assert!((0.0..=1.0).contains(&result.utilization));
        prop_assert!(result.queuing_factor >= 1.0);
    }

    #[test]
    fn frequency_is_monotone_in_stress(
        spec in any_spec(),
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
        frac in 0.0f64..1.0,
    ) {
        let gov = FrequencyGovernor::for_spec(&spec);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        for level in [AuUsageLevel::Low, AuUsageLevel::High] {
            let f_lo = gov.region_frequency(level, FreqConditions {
                au_core_frac: frac, power_stress: lo, thermal_drop: Ghz(0.0) });
            let f_hi = gov.region_frequency(level, FreqConditions {
                au_core_frac: frac, power_stress: hi, thermal_drop: Ghz(0.0) });
            prop_assert!(f_hi <= f_lo, "more stress can only lower frequency");
            prop_assert!(f_hi.value() >= gov.stress_floor(level).value() - 1e-9);
            prop_assert!(f_lo.value() <= gov.license_frequency(level).value() + 1e-9);
        }
    }

    #[test]
    fn license_ordering_always_holds(spec in any_spec(), stress in 0.0f64..1.0, frac in 0.0f64..1.0) {
        let gov = FrequencyGovernor::for_spec(&spec);
        let cond = FreqConditions { au_core_frac: frac, power_stress: stress, thermal_drop: Ghz(0.0) };
        let high = gov.region_frequency(AuUsageLevel::High, cond);
        let low = gov.region_frequency(AuUsageLevel::Low, cond);
        let none = gov.region_frequency(AuUsageLevel::None, cond);
        prop_assert!(high <= low);
        prop_assert!(low <= none);
    }

    #[test]
    fn miss_rate_curves_are_monotone(
        floor in 0.0f64..0.5,
        spread in 0.0f64..0.5,
        knee in 0.1f64..500.0,
        c1 in 0.0f64..1000.0,
        c2 in 0.0f64..1000.0,
    ) {
        let curve = MissRateCurve::new(floor, floor + spread, knee);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(curve.miss_ratio(hi) <= curve.miss_ratio(lo) + 1e-12);
        prop_assert!(curve.miss_ratio(hi) >= floor - 1e-12);
        prop_assert!(curve.miss_ratio(lo) <= floor + spread + 1e-12);
        prop_assert!(curve.traffic_amplification(lo, hi) >= 1.0 - 1e-12);
    }

    #[test]
    fn power_is_monotone_in_frequency_and_duty(
        spec in any_spec(),
        f1 in 0.5f64..4.0,
        f2 in 0.5f64..4.0,
        duty in 0.0f64..1.0,
    ) {
        let pm = PowerModel::for_spec(&spec);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        for class in [ActivityClass::Mixed, ActivityClass::Avx, ActivityClass::Amx] {
            let p_lo = pm.core_power(Ghz(lo), class, duty);
            let p_hi = pm.core_power(Ghz(hi), class, duty);
            prop_assert!(p_hi.value() >= p_lo.value() - 1e-12);
            let p_idle = pm.core_power(Ghz(hi), class, 0.0);
            prop_assert!(p_hi.value() >= p_idle.value() - 1e-12);
        }
    }

    #[test]
    fn divisions_partition_exactly(total in 1usize..256, a in 0usize..256, b in 0usize..256) {
        let high = a % (total + 1);
        let low = b % (total - high + 1);
        let d = ProcessorDivision::new(high, low, total - high - low);
        prop_assert_eq!(d.total_cores(), total);
        let sum: f64 = [AuUsageLevel::High, AuUsageLevel::Low, AuUsageLevel::None]
            .iter().map(|&l| d.fraction(l)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // Every core belongs to exactly the region its range says.
        for (level, (lo, hi)) in [
            (AuUsageLevel::High, d.region_range(AuUsageLevel::High)),
            (AuUsageLevel::Low, d.region_range(AuUsageLevel::Low)),
            (AuUsageLevel::None, d.region_range(AuUsageLevel::None)),
        ] {
            for c in lo..hi {
                prop_assert_eq!(d.region_of(aum_platform::topology::CoreId(c)), level);
            }
        }
    }

    #[test]
    fn shift_core_conserves_total(high in 0usize..64, low in 0usize..64, none in 0usize..64) {
        let d = ProcessorDivision::new(high, low, none);
        for from in AuUsageLevel::ALL {
            for to in AuUsageLevel::ALL {
                if let Some(next) = d.shift_core(from, to) {
                    prop_assert_eq!(next.total_cores(), d.total_cores());
                    prop_assert_eq!(next.cores(from) + 1, d.cores(from));
                    prop_assert_eq!(next.cores(to), d.cores(to) + 1);
                }
            }
        }
    }

    #[test]
    fn platform_step_outputs_stay_physical(
        spec in any_spec(),
        high_frac in 0.0f64..0.5,
        low_frac in 0.0f64..0.5,
        duty in 0.05f64..1.0,
        bw1 in 0.0f64..400.0,
        bw2 in 0.0f64..400.0,
        steps in 1usize..20,
    ) {
        let total = spec.total_cores();
        let high = (total as f64 * high_frac) as usize;
        let low = (total as f64 * low_frac) as usize;
        let none = total - high - low;
        let mut sim = PlatformSim::new(spec.clone());
        let loads = [
            RegionLoad::new(AuUsageLevel::High, high, ActivityClass::Amx, duty, GbPerSec(bw1)),
            RegionLoad::new(AuUsageLevel::Low, low, ActivityClass::Avx, duty, GbPerSec(bw2)),
            RegionLoad::new(AuUsageLevel::None, none, ActivityClass::Mixed, duty, GbPerSec(10.0)),
        ];
        for _ in 0..steps {
            let snap = sim.step(SimDuration::from_millis(500), &loads);
            for f in &snap.freqs {
                prop_assert!(f.value() > 0.3 && f.value() <= spec.allcore_turbo.value() + 1e-9);
            }
            prop_assert!(snap.power.value() > 0.0);
            prop_assert!(snap.power.value() < 1200.0, "power blew past any real package");
            prop_assert!((0.0..=1.0).contains(&snap.bw_utilization));
            prop_assert!((0.0..=1.0).contains(&snap.power_stress));
            prop_assert!(snap.tdp_scale <= 1.0 && snap.tdp_scale > 0.0);
        }
    }
}
