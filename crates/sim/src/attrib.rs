//! Time/energy attribution ledger with conservation checks.
//!
//! AUM's argument is an accounting argument: the paper attributes cycles
//! (top-down retiring vs memory-bound), frequency-license penalties and
//! watts to specific causes, and the controller's perf-per-watt objective
//! is only trustworthy if that accounting *closes*. This module joins the
//! raw signals the stack already emits into a per-control-interval,
//! per-region ledger saying where each second and each joule went.
//!
//! The crate layering keeps this module free of platform/AU types: the
//! experiment harness (in `aum`, which can see `TopDown`, `PowerModel` and
//! the RDT state) reduces each interval to primitive [`RegionSample`]s and
//! this module turns them into a [`Ledger`] whose rows provably conserve:
//!
//! - **time**: each region's causes sum to the interval's wall time;
//! - **energy**: all regions' causes sum to the interval's modeled package
//!   energy;
//!
//! both within [`EPSILON`] relative error. [`Ledger::verify`] enforces the
//! invariants and returns a typed [`ConservationError`] on violation — the
//! `repro attrib` driver turns that into a nonzero exit.
//!
//! ## Cause taxonomy
//!
//! Busy time splits by what the region's workload was bound on
//! ([`Cause::Compute`] plus the L1/L2/LLC/DRAM memory hierarchy and
//! [`Cause::BeContention`] for stalls induced by the co-runner's pressure
//! on shared resources); the gap between the region's achieved frequency
//! and the unlicensed ceiling splits into [`Cause::ThermalThrottle`] (the
//! thermal governor's drop) and [`Cause::LicensePenalty`] (license class,
//! power stress and TDP clipping — everything else that separates the
//! achieved clock from turbo). Non-busy time is [`Cause::Idle`], or
//! [`Cause::SafeModeShed`] when the controller's resilience layer shed the
//! work on purpose.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Relative epsilon for the conservation invariants: attributed time must
/// sum to wall time, and attributed joules to modeled energy, within this
/// relative error per interval.
pub const EPSILON: f64 = 1e-6;

/// Where a second (or a joule) went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cause {
    /// Productive execution: retiring plus in-core (non-memory) slots.
    Compute,
    /// Stalled on the L1 data cache.
    MemL1,
    /// Stalled on the L2 cache.
    MemL2,
    /// Stalled on the last-level cache.
    MemLlc,
    /// Stalled on DRAM (bandwidth + latency).
    MemDram,
    /// Running below the unlicensed frequency: license class, power
    /// stress and TDP clipping.
    LicensePenalty,
    /// Running below the unlicensed frequency due to thermal throttling.
    ThermalThrottle,
    /// Extra memory stalls induced by best-effort co-runner pressure on
    /// the shared pool/LLC (the allocation-dependent part).
    BeContention,
    /// Capacity deliberately idled by the controller's safe mode.
    SafeModeShed,
    /// Nothing to run.
    Idle,
}

impl Cause {
    /// Every cause, in the stable serialization/report order.
    pub const ALL: [Cause; 10] = [
        Cause::Compute,
        Cause::MemL1,
        Cause::MemL2,
        Cause::MemLlc,
        Cause::MemDram,
        Cause::LicensePenalty,
        Cause::ThermalThrottle,
        Cause::BeContention,
        Cause::SafeModeShed,
        Cause::Idle,
    ];

    /// Stable lowercase label (used in reports and Prometheus labels).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Cause::Compute => "compute",
            Cause::MemL1 => "mem-l1",
            Cause::MemL2 => "mem-l2",
            Cause::MemLlc => "mem-llc",
            Cause::MemDram => "mem-dram",
            Cause::LicensePenalty => "license-penalty",
            Cause::ThermalThrottle => "thermal-throttle",
            Cause::BeContention => "be-contention",
            Cause::SafeModeShed => "safe-mode-shed",
            Cause::Idle => "idle",
        }
    }

    /// Whether this cause represents lost (non-productive, non-idle)
    /// capacity — the candidates for a "blame" verdict.
    #[must_use]
    pub fn is_loss(self) -> bool {
        !matches!(self, Cause::Compute | Cause::Idle)
    }

    fn index(self) -> usize {
        Cause::ALL.iter().position(|&c| c == self).expect("in ALL")
    }
}

impl core::fmt::Display for Cause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The platform region a ledger row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// AU-high serving cores (prefill / AMX).
    AuHigh,
    /// AU-low serving cores (decode / AVX).
    AuLow,
    /// Shared capacity: best-effort cores, SMT siblings and spare cores.
    Shared,
    /// The uncore: mesh, memory controllers and PHY.
    Uncore,
}

impl Region {
    /// Every region, in report order.
    pub const ALL: [Region; 4] = [
        Region::AuHigh,
        Region::AuLow,
        Region::Shared,
        Region::Uncore,
    ];

    /// Stable lowercase label (used in reports and Prometheus labels).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Region::AuHigh => "au-high",
            Region::AuLow => "au-low",
            Region::Shared => "shared",
            Region::Uncore => "uncore",
        }
    }
}

impl core::fmt::Display for Region {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A quantity (seconds or joules) split across every [`Cause`], stored in
/// [`Cause::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CauseVec {
    values: [f64; 10],
}

impl CauseVec {
    /// The all-zero vector.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// The amount attributed to `cause`.
    #[must_use]
    pub fn get(&self, cause: Cause) -> f64 {
        self.values[cause.index()]
    }

    /// Adds `amount` to `cause`.
    pub fn add(&mut self, cause: Cause, amount: f64) {
        self.values[cause.index()] += amount;
    }

    /// Sum over all causes.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Iterates `(cause, amount)` pairs in [`Cause::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Cause, f64)> + '_ {
        Cause::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Adds `other` into `self`, component-wise.
    pub fn accumulate(&mut self, other: &CauseVec) {
        for (v, o) in self.values.iter_mut().zip(&other.values) {
            *v += o;
        }
    }

    /// The loss cause (see [`Cause::is_loss`]) with the largest amount, if
    /// any loss is material relative to `scale`.
    #[must_use]
    pub fn dominant_loss(&self, scale: f64) -> Option<(Cause, f64)> {
        let mut best: Option<(Cause, f64)> = None;
        for (cause, v) in self.iter() {
            if cause.is_loss() && best.is_none_or(|(_, b)| v > b) {
                best = Some((cause, v));
            }
        }
        best.filter(|&(_, v)| v > scale.max(0.0) * 1e-9 && v > 0.0)
    }

    /// Distributes floating-point residue so the vector sums *exactly* to
    /// `total`: the difference lands on the largest component (whose
    /// relative perturbation is smallest). With an all-zero vector the
    /// residue lands on `fallback`.
    fn reconcile(&mut self, total: f64, fallback: Cause) {
        let diff = total - self.sum();
        if diff == 0.0 {
            return;
        }
        let mut idx = fallback.index();
        let mut max = f64::MIN;
        for (i, &v) in self.values.iter().enumerate() {
            if v > max && v > 0.0 {
                max = v;
                idx = i;
            }
        }
        self.values[idx] += diff;
    }
}

/// Fractions of *busy work* by boundedness, as the harness derives them
/// from a top-down signature under the interval's live pressure. Values
/// are normalized to sum to 1 by [`RegionSample`] construction; negatives
/// are clamped to zero.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkFractions {
    /// Productive (retiring + core-bound, non-memory) fraction.
    pub compute: f64,
    /// L1-bound fraction.
    pub l1: f64,
    /// L2-bound fraction.
    pub l2: f64,
    /// LLC-bound fraction.
    pub llc: f64,
    /// DRAM-bound fraction.
    pub dram: f64,
    /// Co-runner-induced extra memory stalls.
    pub contention: f64,
}

impl WorkFractions {
    /// All work is productive compute (also the fallback for degenerate
    /// inputs).
    #[must_use]
    pub fn all_compute() -> Self {
        WorkFractions {
            compute: 1.0,
            ..Default::default()
        }
    }

    /// All work is DRAM traffic (the uncore's "work").
    #[must_use]
    pub fn all_dram() -> Self {
        WorkFractions {
            dram: 1.0,
            ..Default::default()
        }
    }

    fn normalized(self) -> Self {
        let c = self.compute.max(0.0);
        let l1 = self.l1.max(0.0);
        let l2 = self.l2.max(0.0);
        let llc = self.llc.max(0.0);
        let dram = self.dram.max(0.0);
        let ct = self.contention.max(0.0);
        let sum = c + l1 + l2 + llc + dram + ct;
        if sum <= 0.0 || !sum.is_finite() {
            return WorkFractions::all_compute();
        }
        WorkFractions {
            compute: c / sum,
            l1: l1 / sum,
            l2: l2 / sum,
            llc: llc / sum,
            dram: dram / sum,
            contention: ct / sum,
        }
    }
}

/// One region's primitive observations for one control interval — the
/// interface between the harness (which can see platform internals) and
/// the ledger construction here (which cannot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSample {
    /// The region described.
    pub region: Region,
    /// Fraction of the interval the region was actively working, `[0, 1]`.
    pub busy_frac: f64,
    /// Achieved frequency while busy, GHz (use 1.0 for the uncore).
    pub freq_ghz: f64,
    /// The unlicensed reference frequency (all-core turbo), GHz. The gap
    /// to `freq_ghz` is charged to thermal + license causes.
    pub unlicensed_ghz: f64,
    /// Thermal governor's frequency drop in effect this interval, GHz.
    pub thermal_drop_ghz: f64,
    /// How busy work splits by boundedness.
    pub work: WorkFractions,
    /// Static (leakage/clocks) energy of the region this interval, J.
    pub static_j: f64,
    /// Dynamic (switching) energy of the region this interval, J.
    pub dynamic_j: f64,
    /// Whether non-busy time is deliberate safe-mode shedding rather than
    /// plain idleness.
    pub shed: bool,
}

impl RegionSample {
    /// An idle region drawing only static power.
    #[must_use]
    pub fn idle(region: Region, static_j: f64) -> Self {
        RegionSample {
            region,
            busy_frac: 0.0,
            freq_ghz: 1.0,
            unlicensed_ghz: 1.0,
            thermal_drop_ghz: 0.0,
            work: WorkFractions::all_compute(),
            static_j,
            dynamic_j: 0.0,
            shed: false,
        }
    }
}

/// One region's attributed time and energy for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionLedger {
    /// The region.
    pub region: Region,
    /// Seconds by cause; sums to the interval's wall time.
    pub time: CauseVec,
    /// Joules by cause; all regions together sum to the interval's
    /// modeled package energy.
    pub energy: CauseVec,
}

/// The full attribution of one control interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalLedger {
    /// Interval start.
    pub at: SimTime,
    /// Interval length, seconds.
    pub dt_secs: f64,
    /// Modeled package energy over the interval, J (the conservation
    /// target for the energy rows).
    pub energy_j: f64,
    /// Per-region rows, in [`Region::ALL`] order.
    pub regions: Vec<RegionLedger>,
}

impl IntervalLedger {
    /// Builds one interval's ledger from per-region primitive samples.
    ///
    /// `energy_j` is the *modeled* package energy (power-model readback ×
    /// dt); the samples' static + dynamic energies must re-derive it — the
    /// energy conservation check in [`Ledger::verify`] has teeth precisely
    /// because the two are computed independently.
    ///
    /// Construction conserves by design: per region, attributed time sums
    /// to `dt_secs` exactly (floating-point residue is folded into the
    /// largest component) and attributed energy sums to the sample's
    /// `static_j + dynamic_j`.
    #[must_use]
    pub fn build(at: SimTime, dt_secs: f64, energy_j: f64, samples: &[RegionSample]) -> Self {
        let regions = samples
            .iter()
            .map(|s| Self::build_region(dt_secs, s))
            .collect();
        IntervalLedger {
            at,
            dt_secs,
            energy_j,
            regions,
        }
    }

    fn build_region(dt_secs: f64, s: &RegionSample) -> RegionLedger {
        let dt = dt_secs.max(0.0);
        let busy = s.busy_frac.clamp(0.0, 1.0) * dt;
        let off = dt - busy;
        let off_cause = if s.shed {
            Cause::SafeModeShed
        } else {
            Cause::Idle
        };

        // Frequency decomposition: the busy window stretches by f0/f when
        // running at f < f0, so a fraction (1 - f/f0) of it is "lost
        // clock". The thermal governor's drop claims its share first;
        // license class, power stress and TDP clipping take the remainder.
        let f0 = s.unlicensed_ghz;
        let work_frac = if f0 > 0.0 {
            (s.freq_ghz / f0).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let thermal_frac = if f0 > 0.0 {
            (s.thermal_drop_ghz.max(0.0) / f0).clamp(0.0, 1.0 - work_frac)
        } else {
            0.0
        };
        let license_frac = (1.0 - work_frac - thermal_frac).max(0.0);

        let w = s.work.normalized();
        let mut time = CauseVec::zero();
        let working = busy * work_frac;
        time.add(Cause::Compute, working * w.compute);
        time.add(Cause::MemL1, working * w.l1);
        time.add(Cause::MemL2, working * w.l2);
        time.add(Cause::MemLlc, working * w.llc);
        time.add(Cause::MemDram, working * w.dram);
        time.add(Cause::BeContention, working * w.contention);
        time.add(Cause::ThermalThrottle, busy * thermal_frac);
        time.add(Cause::LicensePenalty, busy * license_frac);
        time.add(off_cause, off);
        time.reconcile(dt, off_cause);

        // Energy: static power burns through every attributed second
        // equally; dynamic power only through the busy ones.
        let static_j = s.static_j.max(0.0);
        let dynamic_j = s.dynamic_j.max(0.0);
        let mut energy = CauseVec::zero();
        if dt > 0.0 {
            for (cause, secs) in time.iter() {
                energy.add(cause, static_j * secs / dt);
            }
        } else {
            energy.add(off_cause, static_j);
        }
        if busy > 0.0 {
            for (cause, secs) in time.iter() {
                if !matches!(cause, Cause::Idle | Cause::SafeModeShed) {
                    energy.add(cause, dynamic_j * secs / busy);
                }
            }
        } else {
            energy.add(off_cause, dynamic_j);
        }
        energy.reconcile(static_j + dynamic_j, off_cause);

        RegionLedger {
            region: s.region,
            time,
            energy,
        }
    }

    /// Total attributed energy across regions, J.
    #[must_use]
    pub fn attributed_energy(&self) -> f64 {
        self.regions.iter().map(|r| r.energy.sum()).sum()
    }

    /// The row for `region`, if present.
    #[must_use]
    pub fn region(&self, region: Region) -> Option<&RegionLedger> {
        self.regions.iter().find(|r| r.region == region)
    }
}

/// Which conserved quantity a [`ConservationError`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantity {
    /// Wall-time conservation (per region).
    Time,
    /// Package-energy conservation (per interval).
    Energy,
}

/// A violated ledger invariant. Carrying the numbers makes the failure
/// actionable: the report shows exactly which interval leaked and by how
/// much.
#[derive(Debug, Clone, PartialEq)]
pub enum ConservationError {
    /// Attributed amounts do not sum to the conserved total.
    Leak {
        /// Which quantity leaked.
        quantity: Quantity,
        /// Interval start.
        at: SimTime,
        /// Region (None for the interval-wide energy check).
        region: Option<Region>,
        /// Sum of the attributed causes.
        attributed: f64,
        /// The conserved total it should match.
        expected: f64,
    },
    /// A cause came out materially negative.
    NegativeCause {
        /// Which quantity.
        quantity: Quantity,
        /// Interval start.
        at: SimTime,
        /// Region of the offending row.
        region: Region,
        /// The offending cause.
        cause: Cause,
        /// Its (negative) value.
        value: f64,
    },
}

impl core::fmt::Display for ConservationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let qname = |q: &Quantity| match q {
            Quantity::Time => "time",
            Quantity::Energy => "energy",
        };
        match self {
            ConservationError::Leak {
                quantity,
                at,
                region,
                attributed,
                expected,
            } => {
                let scope = region.map_or_else(|| "package".to_string(), |r| r.label().to_string());
                write!(
                    f,
                    "{} ledger leak at t={:.3}s ({scope}): attributed {attributed:.9} vs \
                     expected {expected:.9} (relative error {:.3e} > {EPSILON:.0e})",
                    qname(quantity),
                    at.as_secs_f64(),
                    (attributed - expected).abs() / expected.abs().max(1e-12),
                )
            }
            ConservationError::NegativeCause {
                quantity,
                at,
                region,
                cause,
                value,
            } => write!(
                f,
                "negative {} attribution at t={:.3}s: {}/{} = {value:.9}",
                qname(quantity),
                at.as_secs_f64(),
                region.label(),
                cause.label(),
            ),
        }
    }
}

impl std::error::Error for ConservationError {}

/// The attribution ledger of a whole run: one [`IntervalLedger`] per
/// control interval, in time order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Ledger {
    /// Per-interval attributions.
    pub intervals: Vec<IntervalLedger>,
}

impl Ledger {
    /// An empty ledger (also what deserializing pre-ledger outcomes
    /// yields via `#[serde(default)]`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the ledger holds no intervals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Checks both conservation invariants and cause non-negativity at
    /// relative epsilon `eps` (use [`EPSILON`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConservationError`] found, in time order.
    pub fn verify(&self, eps: f64) -> Result<(), ConservationError> {
        for iv in &self.intervals {
            let t_scale = iv.dt_secs.abs().max(1e-12);
            for row in &iv.regions {
                for (quantity, vec, scale) in [
                    (Quantity::Time, &row.time, t_scale),
                    (Quantity::Energy, &row.energy, iv.energy_j.abs().max(1e-12)),
                ] {
                    for (cause, v) in vec.iter() {
                        if v < -eps * scale {
                            return Err(ConservationError::NegativeCause {
                                quantity,
                                at: iv.at,
                                region: row.region,
                                cause,
                                value: v,
                            });
                        }
                    }
                }
                let t_sum = row.time.sum();
                if (t_sum - iv.dt_secs).abs() > eps * t_scale {
                    return Err(ConservationError::Leak {
                        quantity: Quantity::Time,
                        at: iv.at,
                        region: Some(row.region),
                        attributed: t_sum,
                        expected: iv.dt_secs,
                    });
                }
            }
            let e_sum = iv.attributed_energy();
            let e_scale = iv.energy_j.abs().max(1e-12);
            if (e_sum - iv.energy_j).abs() > eps * e_scale {
                return Err(ConservationError::Leak {
                    quantity: Quantity::Energy,
                    at: iv.at,
                    region: None,
                    attributed: e_sum,
                    expected: iv.energy_j,
                });
            }
        }
        Ok(())
    }

    /// Total wall time covered, seconds (per region; regions overlap in
    /// time, so this is *not* multiplied by the region count).
    #[must_use]
    pub fn wall_secs(&self) -> f64 {
        self.intervals.iter().map(|iv| iv.dt_secs).sum()
    }

    /// Total modeled package energy, J.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.intervals.iter().map(|iv| iv.energy_j).sum()
    }

    /// Summed time attribution of one region across the run.
    #[must_use]
    pub fn region_time(&self, region: Region) -> CauseVec {
        let mut total = CauseVec::zero();
        for iv in &self.intervals {
            if let Some(row) = iv.region(region) {
                total.accumulate(&row.time);
            }
        }
        total
    }

    /// Summed energy attribution of one region across the run.
    #[must_use]
    pub fn region_energy(&self, region: Region) -> CauseVec {
        let mut total = CauseVec::zero();
        for iv in &self.intervals {
            if let Some(row) = iv.region(region) {
                total.accumulate(&row.energy);
            }
        }
        total
    }

    /// Summed time attribution across all regions.
    #[must_use]
    pub fn total_time(&self) -> CauseVec {
        let mut total = CauseVec::zero();
        for iv in &self.intervals {
            for row in &iv.regions {
                total.accumulate(&row.time);
            }
        }
        total
    }

    /// Summed energy attribution across all regions.
    #[must_use]
    pub fn total_energy(&self) -> CauseVec {
        let mut total = CauseVec::zero();
        for iv in &self.intervals {
            for row in &iv.regions {
                total.accumulate(&row.energy);
            }
        }
        total
    }

    /// The interval whose `[at, at + dt)` window covers `t`, if any.
    #[must_use]
    pub fn interval_covering(&self, t: SimTime) -> Option<&IntervalLedger> {
        // Intervals are in time order; find the last one starting at or
        // before `t` and check its window.
        let idx = self.intervals.partition_point(|iv| iv.at <= t);
        let iv = self.intervals.get(idx.checked_sub(1)?)?;
        let end = iv.at.as_secs_f64() + iv.dt_secs;
        (t.as_secs_f64() < end).then_some(iv)
    }

    /// The dominant loss cause for `region` at time `t`: which cause was
    /// eating the region's capacity when (say) an SLO breach happened.
    #[must_use]
    pub fn blame(&self, t: SimTime, region: Region) -> Option<(Cause, f64)> {
        let iv = self.interval_covering(t)?;
        let row = iv.region(region)?;
        let (cause, secs) = row.time.dominant_loss(iv.dt_secs)?;
        Some((cause, secs / iv.dt_secs.max(1e-12)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_sample(region: Region) -> RegionSample {
        RegionSample {
            region,
            busy_frac: 0.8,
            freq_ghz: 2.5,
            unlicensed_ghz: 3.2,
            thermal_drop_ghz: 0.2,
            work: WorkFractions {
                compute: 0.4,
                l1: 0.1,
                l2: 0.1,
                llc: 0.1,
                dram: 0.25,
                contention: 0.05,
            },
            static_j: 10.0,
            dynamic_j: 50.0,
            shed: false,
        }
    }

    #[test]
    fn interval_conserves_time_and_energy() {
        let samples = [
            busy_sample(Region::AuHigh),
            busy_sample(Region::AuLow),
            RegionSample::idle(Region::Shared, 4.0),
            RegionSample {
                region: Region::Uncore,
                busy_frac: 0.7,
                freq_ghz: 1.0,
                unlicensed_ghz: 1.0,
                thermal_drop_ghz: 0.0,
                work: WorkFractions::all_dram(),
                static_j: 14.0,
                dynamic_j: 4.9,
                shed: false,
            },
        ];
        let energy: f64 = samples.iter().map(|s| s.static_j + s.dynamic_j).sum();
        let iv = IntervalLedger::build(SimTime::from_secs(3), 0.5, energy, &samples);
        let ledger = Ledger {
            intervals: vec![iv],
        };
        ledger.verify(EPSILON).expect("conserves by construction");
        let iv = &ledger.intervals[0];
        for row in &iv.regions {
            assert!((row.time.sum() - 0.5).abs() < 1e-12, "{:?}", row.region);
        }
        assert!((iv.attributed_energy() - energy).abs() < 1e-9);
    }

    #[test]
    fn frequency_gap_splits_into_thermal_then_license() {
        let mut s = busy_sample(Region::AuLow);
        s.busy_frac = 1.0;
        let iv = IntervalLedger::build(SimTime::ZERO, 1.0, 60.0, &[s]);
        let row = &iv.regions[0];
        // work 2.5/3.2, thermal 0.2/3.2, license the rest.
        assert!((row.time.get(Cause::ThermalThrottle) - 0.2 / 3.2).abs() < 1e-12);
        let license = 1.0 - 2.5 / 3.2 - 0.2 / 3.2;
        assert!((row.time.get(Cause::LicensePenalty) - license).abs() < 1e-12);
        assert!(row.time.get(Cause::Idle) == 0.0);
    }

    #[test]
    fn thermal_drop_never_steals_more_than_the_gap() {
        let mut s = busy_sample(Region::AuHigh);
        s.freq_ghz = 3.0;
        s.thermal_drop_ghz = 5.0; // larger than the whole gap
        let iv = IntervalLedger::build(SimTime::ZERO, 1.0, 60.0, &[s]);
        let row = &iv.regions[0];
        assert!(row.time.get(Cause::LicensePenalty).abs() < 1e-12);
        let gap = 1.0 - 3.0 / 3.2;
        assert!((row.time.get(Cause::ThermalThrottle) - s.busy_frac * gap).abs() < 1e-12);
        Ledger {
            intervals: vec![iv],
        }
        .verify(EPSILON)
        .expect("still conserves");
    }

    #[test]
    fn shed_idle_goes_to_safe_mode() {
        let mut s = RegionSample::idle(Region::Shared, 8.0);
        s.shed = true;
        let iv = IntervalLedger::build(SimTime::ZERO, 0.5, 8.0, &[s]);
        let row = &iv.regions[0];
        assert!((row.time.get(Cause::SafeModeShed) - 0.5).abs() < 1e-12);
        assert_eq!(row.time.get(Cause::Idle), 0.0);
        assert!((row.energy.get(Cause::SafeModeShed) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn verify_flags_a_leak() {
        let s = busy_sample(Region::AuHigh);
        let mut iv = IntervalLedger::build(SimTime::ZERO, 0.5, 60.0, &[s]);
        iv.energy_j = 61.0; // model says 61 J, rows attribute 60 J
        let err = Ledger {
            intervals: vec![iv],
        }
        .verify(EPSILON)
        .expect_err("must flag the leak");
        assert!(matches!(
            err,
            ConservationError::Leak {
                quantity: Quantity::Energy,
                ..
            }
        ));
        assert!(err.to_string().contains("energy ledger leak"));
    }

    #[test]
    fn verify_flags_negative_causes() {
        let s = busy_sample(Region::AuHigh);
        let mut iv = IntervalLedger::build(SimTime::ZERO, 0.5, 60.0, &[s]);
        iv.regions[0].time.add(Cause::MemDram, -0.2);
        iv.regions[0].time.add(Cause::Compute, 0.2); // keep the sum intact
        let err = Ledger {
            intervals: vec![iv],
        }
        .verify(EPSILON)
        .expect_err("must flag the negative cause");
        assert!(matches!(err, ConservationError::NegativeCause { .. }));
    }

    #[test]
    fn blame_names_the_dominant_loss() {
        let mut s = busy_sample(Region::AuLow);
        s.work = WorkFractions {
            compute: 0.2,
            dram: 0.7,
            contention: 0.1,
            ..Default::default()
        };
        let iv = IntervalLedger::build(SimTime::from_secs(10), 0.5, 60.0, &[s]);
        let ledger = Ledger {
            intervals: vec![iv],
        };
        let (cause, share) = ledger
            .blame(SimTime::from_secs(10), Region::AuLow)
            .expect("blame exists");
        assert_eq!(cause, Cause::MemDram);
        assert!(share > 0.3, "share {share}");
        assert!(ledger
            .blame(SimTime::from_secs(10), Region::Uncore)
            .is_none());
    }

    #[test]
    fn interval_covering_uses_half_open_windows() {
        let s = RegionSample::idle(Region::Shared, 1.0);
        let mk = |secs: u64| IntervalLedger::build(SimTime::from_secs(secs), 0.5, 1.0, &[s]);
        let ledger = Ledger {
            intervals: vec![mk(0), mk(1)],
        };
        assert_eq!(
            ledger
                .interval_covering(SimTime::from_secs(1))
                .expect("covered")
                .at,
            SimTime::from_secs(1)
        );
        assert!(ledger
            .interval_covering(SimTime::from_secs_f64(0.75))
            .is_none());
        assert!(ledger.interval_covering(SimTime::from_secs(5)).is_none());
    }

    #[test]
    fn ledger_serde_round_trips() {
        let samples = [busy_sample(Region::AuHigh), busy_sample(Region::AuLow)];
        let iv = IntervalLedger::build(SimTime::from_secs(1), 0.5, 120.0, &samples);
        let ledger = Ledger {
            intervals: vec![iv],
        };
        let json = serde_json::to_string(&ledger).expect("serialize");
        let back: Ledger = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, ledger);
        let empty: Ledger = serde_json::from_str("{\"intervals\":[]}").expect("parse");
        assert!(empty.is_empty());
    }

    #[test]
    fn totals_aggregate_across_intervals() {
        let s = busy_sample(Region::AuHigh);
        let mk = |secs: u64| IntervalLedger::build(SimTime::from_secs(secs), 0.5, 60.0, &[s]);
        let ledger = Ledger {
            intervals: vec![mk(0), mk(1)],
        };
        assert!((ledger.wall_secs() - 1.0).abs() < 1e-12);
        assert!((ledger.energy_j() - 120.0).abs() < 1e-12);
        assert!((ledger.total_time().sum() - 1.0).abs() < 1e-12);
        assert!((ledger.region_time(Region::AuHigh).sum() - 1.0).abs() < 1e-12);
        assert_eq!(ledger.region_time(Region::Uncore).sum(), 0.0);
        assert!((ledger.total_energy().sum() - 120.0).abs() < 1e-9);
    }
}
