//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)` so that two events scheduled for
//! the same instant fire in insertion order, independent of payload type or
//! hash state. This total order is what makes whole-experiment runs
//! reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Monotonically increasing identifier assigned to each scheduled event.
///
/// Besides tie-breaking, it allows O(log n) *logical* cancellation: cancelled
/// ids are remembered and skipped on pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use aum_sim::event::EventQueue;
/// use aum_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_millis(1), "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_id: u64,
    cancelled: std::collections::BTreeSet<EventId>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_id: 0,
            cancelled: std::collections::BTreeSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped event, or
    /// zero before any event has fired.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`, returning a handle that can
    /// later be passed to [`EventQueue::cancel`].
    ///
    /// Scheduling in the past is allowed (the event fires "immediately", i.e.
    /// at its recorded time which may be earlier than `now`); model code that
    /// cares should assert on its side.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Scheduled {
            time: at,
            id,
            payload,
        });
        id
    }

    /// Logically removes a scheduled event. Returns `true` if the id was
    /// still pending (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Pops the earliest pending event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            self.now = ev.time;
            return Some((ev.time, ev.payload));
        }
        None
    }

    /// Timestamp of the earliest pending event without popping it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(ev) = self.heap.peek() {
            if self.cancelled.contains(&ev.id) {
                let ev = self.heap.pop().expect("peeked event exists");
                self.cancelled.remove(&ev.id);
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }
}
