//! Deterministic parallel sweep executor.
//!
//! Every expensive computation in this reproduction is a grid of
//! *independent, deterministically-seeded cells*: the offline profiler
//! sweeps (division × allocation) cells, the evaluation figures sweep
//! (scenario × co-runner × scheme) cells, and the chaos/attribution
//! matrices multiply those further. Cells never communicate, so the sweep
//! is embarrassingly parallel — but the repository's determinism contract
//! (same seed ⇒ byte-identical traces and reports, `repro trace-diff`
//! self-diffs to exactly zero) must survive the parallelism.
//!
//! [`sweep`] delivers both: cells are claimed from a shared atomic cursor
//! by a small pool of scoped worker threads (work-stealing-lite — idle
//! workers simply take the next unclaimed cell, so an expensive cell never
//! stalls the queue behind it), and results are returned **in canonical
//! cell order** regardless of completion order. Because each cell derives
//! its randomness from its own index/seed and never observes its
//! neighbours, the result vector is bit-identical for every worker count.
//!
//! [`sweep_traced`] extends the guarantee to telemetry: each cell traces
//! into a private in-memory sink, and the per-cell streams are merged into
//! the parent [`Tracer`] in cell order after the sweep — so the serialized
//! event stream is byte-identical to a serial run's (the determinism
//! argument is: per-cell seeds ⇒ identical per-cell streams; ordered merge
//! ⇒ identical concatenation).
//!
//! The worker count resolves, in priority order: [`set_jobs`] (the
//! `repro --jobs` flag) → the `AUM_JOBS` environment variable →
//! [`std::thread::available_parallelism`]. `jobs = 1` degrades to a plain
//! in-place loop on the calling thread — no pool, no channels.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use crate::hist::LogHistogram;
use crate::telemetry::{MemorySink, Tracer};

/// Process-wide worker-count override; 0 = unset (fall through to the
/// `AUM_JOBS` environment variable, then to `available_parallelism`).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cumulative executor statistics (see [`stats`]).
static SWEEPS: AtomicU64 = AtomicU64::new(0);
static CELLS: AtomicU64 = AtomicU64::new(0);
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
static WALL_NANOS: AtomicU64 = AtomicU64::new(0);
static CLAIM_NANOS: AtomicU64 = AtomicU64::new(0);
static MERGE_NANOS: AtomicU64 = AtomicU64::new(0);
static IDLE_NANOS: AtomicU64 = AtomicU64::new(0);
thread_local! {
    /// Cell-nesting depth of the current thread. A sweep started from
    /// inside another sweep's cell (an unwarmed `ModelCache` build, say)
    /// must not add its wall time to [`WALL_NANOS`] — the outer sweep's
    /// wall already covers it, and double counting would understate every
    /// speedup ratio derived from the stats. The depth is thread-local
    /// (not a global count) so concurrent *independent* sweeps — parallel
    /// test threads — still each count their own wall.
    static CELL_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// RAII marker for "this thread is executing a sweep cell".
struct CellDepthGuard;

impl CellDepthGuard {
    fn enter() -> CellDepthGuard {
        CELL_DEPTH.with(|d| d.set(d.get() + 1));
        CellDepthGuard
    }
}

impl Drop for CellDepthGuard {
    fn drop(&mut self) {
        CELL_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// Overrides the worker count for subsequent [`sweep`] calls.
///
/// `0` clears the override (reverting to `AUM_JOBS` / auto-detection).
/// This is how `repro --jobs <N>` configures the whole harness, and how
/// the determinism tests force `--jobs 1` vs `--jobs N` comparisons.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count a sweep will use, after resolving the [`set_jobs`]
/// override, the `AUM_JOBS` environment variable and the machine's
/// available parallelism (in that priority order). Always ≥ 1.
#[must_use]
pub fn jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(env) = std::env::var("AUM_JOBS") {
        if let Ok(n) = env.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Cumulative executor counters since process start. Snapshot before and
/// after a study and subtract ([`ExecStats::since`]) to report that
/// study's parallel speedup (`repro` prints this per study).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Sweeps executed.
    pub sweeps: u64,
    /// Cells executed across all sweeps.
    pub cells: u64,
    /// Summed per-cell execution time (what a serial run would pay).
    pub busy: Duration,
    /// Summed sweep wall-clock time (what the parallel run paid).
    pub wall: Duration,
    /// Time pool workers spent claiming cells (cursor bump + slot take).
    pub claim: Duration,
    /// Time spent re-emitting per-cell trace records into the parent
    /// tracer after a [`sweep_traced`] sweep (the ordered merge).
    pub merge: Duration,
    /// Pool-worker wall time not accounted to compute or claiming —
    /// result sends plus waiting out the sweep's straggler cells.
    pub idle: Duration,
}

impl ExecStats {
    /// The counter delta `self − earlier` (saturating).
    #[must_use]
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            sweeps: self.sweeps.saturating_sub(earlier.sweeps),
            cells: self.cells.saturating_sub(earlier.cells),
            busy: self.busy.saturating_sub(earlier.busy),
            wall: self.wall.saturating_sub(earlier.wall),
            claim: self.claim.saturating_sub(earlier.claim),
            merge: self.merge.saturating_sub(earlier.merge),
            idle: self.idle.saturating_sub(earlier.idle),
        }
    }

    /// Observed speedup: total cell compute time over sweep wall time
    /// (≈ 1.0 serial; approaches the worker count under ideal scaling).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / wall
        }
    }
}

/// Cumulative executor statistics since process start.
#[must_use]
pub fn stats() -> ExecStats {
    ExecStats {
        sweeps: SWEEPS.load(Ordering::Relaxed),
        cells: CELLS.load(Ordering::Relaxed),
        busy: Duration::from_nanos(BUSY_NANOS.load(Ordering::Relaxed)),
        wall: Duration::from_nanos(WALL_NANOS.load(Ordering::Relaxed)),
        claim: Duration::from_nanos(CLAIM_NANOS.load(Ordering::Relaxed)),
        merge: Duration::from_nanos(MERGE_NANOS.load(Ordering::Relaxed)),
        idle: Duration::from_nanos(IDLE_NANOS.load(Ordering::Relaxed)),
    }
}

/// Runs `f` over every cell with the ambient worker count ([`jobs`]),
/// returning results in cell order. See [`sweep_jobs`].
pub fn sweep<T, R, F>(cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    sweep_jobs(jobs(), cells, f)
}

/// Runs `f(index, cell)` over every cell on up to `jobs` scoped worker
/// threads, returning the results **in canonical cell order** regardless
/// of completion order.
///
/// Workers claim cells from a shared atomic cursor (an idle worker always
/// takes the next unclaimed cell), finished results flow back over a
/// channel tagged with their cell index, and the collector slots them into
/// place — so neither OS scheduling nor cell cost imbalance can reorder
/// the output. Determinism beyond ordering is the *caller's* contract:
/// `f` must derive any randomness from `index`/its cell alone.
///
/// # Panics
///
/// Propagates the first worker panic after the scope joins.
pub fn sweep_jobs<T, R, F>(jobs: usize, cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    /// Panic-safe wall accounting: the outermost sweep's wall
    /// contribution must land even when a cell panic unwinds through
    /// `sweep_jobs` (tests assert on the stats afterwards).
    struct WallGuard {
        outermost: bool,
        t0: Instant,
    }
    impl Drop for WallGuard {
        fn drop(&mut self) {
            if self.outermost {
                WALL_NANOS.fetch_add(self.t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }

    let n = cells.len();
    let jobs = jobs.max(1).min(n.max(1));
    let wall_guard = WallGuard {
        outermost: CELL_DEPTH.with(std::cell::Cell::get) == 0,
        t0: Instant::now(),
    };
    SWEEPS.fetch_add(1, Ordering::Relaxed);
    CELLS.fetch_add(n as u64, Ordering::Relaxed);
    crate::live::sweep_started(n);

    // Self-profiling: the sweep itself is a scope on the calling thread,
    // and every cell runs re-rooted under it ([`crate::prof::with_parent`])
    // so the self-time tree has the same shape at every worker count.
    let prof_sweep = crate::prof::scope("exec.sweep");
    let prof_parent = crate::prof::current_parent();

    let out: Vec<R> = if jobs <= 1 {
        cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                let t0 = Instant::now();
                let r = {
                    let _depth = CellDepthGuard::enter();
                    let _cell_scope = crate::prof::scope("exec.cell");
                    f(i, cell)
                };
                BUSY_NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                crate::live::cell_finished();
                r
            })
            .collect()
    } else {
        // Each cell is claimed exactly once via the cursor; the Mutex is
        // only the safe way to move `T` out of the shared slot vector.
        let slots: Vec<Mutex<Option<T>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let collected: Vec<Option<R>> = std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(jobs);
            for _ in 0..jobs {
                let tx = tx.clone();
                let slots = &slots;
                let cursor = &cursor;
                let f = &f;
                workers.push(scope.spawn(move || {
                    let worker_t0 = Instant::now();
                    let mut busy_w: u64 = 0;
                    let mut claim_w: u64 = 0;
                    loop {
                        let claim_t0 = Instant::now();
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let cell = slots[i]
                            .lock()
                            .expect("cell slot lock")
                            .take()
                            .expect("each cell is claimed exactly once");
                        claim_w += claim_t0.elapsed().as_nanos() as u64;
                        let t0 = Instant::now();
                        let r = crate::prof::with_parent(prof_parent, || {
                            let _depth = CellDepthGuard::enter();
                            let _cell_scope = crate::prof::scope("exec.cell");
                            f(i, cell)
                        });
                        let busy = t0.elapsed().as_nanos() as u64;
                        busy_w += busy;
                        BUSY_NANOS.fetch_add(busy, Ordering::Relaxed);
                        crate::live::cell_finished();
                        // The collector outlives every sender; a send only
                        // fails if it panicked, and then the scope propagates
                        // that panic anyway.
                        let _ = tx.send((i, r));
                    }
                    CLAIM_NANOS.fetch_add(claim_w, Ordering::Relaxed);
                    let total = worker_t0.elapsed().as_nanos() as u64;
                    IDLE_NANOS.fetch_add(
                        total.saturating_sub(busy_w).saturating_sub(claim_w),
                        Ordering::Relaxed,
                    );
                }));
            }
            drop(tx);
            let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, r) in rx {
                out[i] = Some(r);
            }
            for worker in workers {
                if let Err(payload) = worker.join() {
                    std::panic::resume_unwind(payload);
                }
            }
            out
        });
        collected
            .into_iter()
            .map(|r| r.expect("every cell reports exactly once"))
            .collect()
    };
    drop(prof_sweep);
    drop(wall_guard);
    out
}

/// [`sweep`] with per-cell telemetry capture: each cell receives a private
/// [`Tracer`], and after the sweep every cell's records are re-emitted
/// into `parent` **in cell order**, so the merged stream is byte-identical
/// to what a serial sweep over the same cells would have emitted.
///
/// When `parent` is disabled the cells get disabled tracers and the merge
/// is skipped entirely — tracing stays zero-cost when off.
pub fn sweep_traced<T, R, F>(parent: &Tracer, cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T, Tracer) -> R + Sync,
{
    if !parent.is_enabled() {
        return sweep(cells, |i, cell| f(i, cell, Tracer::disabled()));
    }
    let mut traced: Vec<(R, Vec<crate::telemetry::TraceRecord>)> = sweep(cells, |i, cell| {
        let (tracer, sink) = Tracer::shared(MemorySink::new());
        let r = f(i, cell, tracer);
        let records = sink.lock().expect("cell sink lock").records().to_vec();
        (r, records)
    });
    let merge_t0 = Instant::now();
    {
        let _merge_scope = crate::prof::scope("exec.merge");
        for (_, records) in &traced {
            for record in records {
                parent.emit(record.at, || record.event.clone());
            }
        }
    }
    MERGE_NANOS.fetch_add(merge_t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    traced.drain(..).map(|(r, _)| r).collect()
}

/// [`sweep_traced`] plus per-cell histogram reduction: each cell returns
/// its result together with named [`LogHistogram`]s, and the sweep folds
/// same-named histograms together **in canonical cell order**.
///
/// Histogram bucket counts are order-independent (element-wise `u64`
/// addition), but the running `sum` is an `f64` whose value depends on the
/// addition order — merging in cell order makes the folded state
/// byte-identical at every `--jobs` level, the same argument
/// `sweep_traced` makes for trace streams. This is how SLO latency
/// distributions aggregate across evaluation-grid cells without shipping
/// raw sample vectors.
pub fn sweep_traced_hists<T, R, F>(
    parent: &Tracer,
    cells: Vec<T>,
    f: F,
) -> (Vec<R>, std::collections::BTreeMap<String, LogHistogram>)
where
    T: Send,
    R: Send,
    F: Fn(usize, T, Tracer) -> (R, Vec<(String, LogHistogram)>) + Sync,
{
    let cell_results = sweep_traced(parent, cells, f);
    let mut merged: std::collections::BTreeMap<String, LogHistogram> =
        std::collections::BTreeMap::new();
    let mut out = Vec::with_capacity(cell_results.len());
    for (r, hists) in cell_results {
        for (name, h) in hists {
            merged.entry(name).or_default().merge(&h);
        }
        out.push(r);
    }
    (out, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{Event, MemorySink, Tracer};
    use crate::time::SimTime;

    #[test]
    fn results_come_back_in_cell_order_for_any_job_count() {
        let cells: Vec<usize> = (0..37).collect();
        for jobs in [1, 2, 4, 8] {
            let out = sweep_jobs(jobs, cells.clone(), |i, c| {
                assert_eq!(i, c);
                // Uneven cell cost: later cells finish first under
                // parallelism, exercising the reorder path.
                if c % 5 == 0 {
                    std::thread::yield_now();
                }
                c * 10
            });
            assert_eq!(out, cells.iter().map(|c| c * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_cell_sweeps_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep_jobs(4, empty, |_, c: u32| c).is_empty());
        assert_eq!(sweep_jobs(4, vec![9u32], |_, c| c + 1), vec![10]);
    }

    #[test]
    fn traced_sweep_merges_in_cell_order_regardless_of_jobs() {
        let run = |jobs: usize| -> Vec<String> {
            set_jobs(jobs);
            let (parent, sink) = Tracer::shared(MemorySink::new());
            let cells: Vec<usize> = (0..12).collect();
            let out = sweep_traced(&parent, cells, |i, _, tracer| {
                tracer.emit(SimTime::from_secs(i as u64), || Event::ProfilerProgress {
                    completed: i + 1,
                    total: 12,
                    division: i,
                    config: 0,
                });
                i
            });
            set_jobs(0);
            assert_eq!(out, (0..12).collect::<Vec<_>>());
            let lines: Vec<String> = sink
                .lock()
                .expect("sink lock")
                .records()
                .iter()
                .map(|r| serde_json::to_string(r).expect("serialize"))
                .collect();
            lines
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial.len(), 12);
        assert_eq!(serial, parallel, "merged trace must be order-identical");
    }

    #[test]
    fn traced_hist_sweep_folds_identically_for_any_job_count() {
        let run = |jobs: usize| -> String {
            set_jobs(jobs);
            let cells: Vec<usize> = (0..10).collect();
            let (out, hists) = sweep_traced_hists(&Tracer::disabled(), cells, |i, _, _| {
                let mut h = LogHistogram::new();
                // Cell-local values: the fold order, not the values,
                // is what parallelism could perturb.
                for k in 0..=i {
                    h.record(0.01 * (k + 1) as f64);
                }
                (i, vec![("ttft".to_string(), h)])
            });
            set_jobs(0);
            assert_eq!(out, (0..10).collect::<Vec<_>>());
            serde_json::to_string(&hists["ttft"]).expect("serialize")
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel, "folded histogram must be byte-identical");
    }

    #[test]
    fn disabled_parent_hands_out_disabled_tracers() {
        let parent = Tracer::disabled();
        let out = sweep_traced(&parent, vec![1, 2, 3], |_, c, tracer| {
            assert!(!tracer.is_enabled());
            c * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn stats_accumulate_busy_and_wall_time() {
        let before = stats();
        let _ = sweep_jobs(2, (0..8).collect::<Vec<_>>(), |_, c: u64| {
            std::thread::sleep(Duration::from_millis(2));
            c
        });
        let delta = stats().since(&before);
        assert_eq!(delta.sweeps, 1);
        assert_eq!(delta.cells, 8);
        assert!(delta.busy >= Duration::from_millis(16));
        assert!(delta.wall > Duration::ZERO);
        assert!(delta.speedup() > 0.0);
    }

    #[test]
    fn jobs_override_takes_priority() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "cell panic")]
    fn worker_panics_propagate() {
        let _ = sweep_jobs(4, (0..16).collect::<Vec<_>>(), |_, c: u32| {
            assert!(c != 7, "cell panic");
            c
        });
    }
}
